// Tests for DTW Barycenter Averaging: convergence, objective descent
// (DBA must not be worse than its seed under the sum-of-squared-DTW
// objective), and alignment-awareness (on warped copies of a shape the
// DBA center beats the point-wise mean).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "datagen/warp.h"
#include "distance/dba.h"
#include "distance/dtw.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

std::vector<double> PointwiseMean(
    const std::vector<std::vector<double>>& members) {
  std::vector<double> mean(members[0].size(), 0.0);
  for (const auto& m : members) {
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += m[i];
  }
  for (auto& x : mean) x /= static_cast<double>(members.size());
  return mean;
}

std::vector<std::span<const double>> Spans(
    const std::vector<std::vector<double>>& members) {
  std::vector<std::span<const double>> spans;
  spans.reserve(members.size());
  for (const auto& m : members) spans.push_back(S(m));
  return spans;
}

TEST(DbaTest, SingleMemberConvergesToThatMember) {
  std::vector<std::vector<double>> members = {{0.1, 0.5, 0.9, 0.4}};
  std::vector<double> seed = {0.0, 0.0, 0.0, 0.0};
  const auto center = DbaBarycenter(Spans(members), S(seed));
  ASSERT_EQ(center.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(center[i], members[0][i], 1e-9);
  }
}

TEST(DbaTest, IdenticalMembersGiveThatSeries) {
  std::vector<std::vector<double>> members(5, {0.2, 0.8, 0.5});
  std::vector<double> seed = {0.5, 0.5, 0.5};
  const auto center = DbaBarycenter(Spans(members), S(seed));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(center[i], members[0][i], 1e-9);
  }
}

TEST(DbaTest, EmptyMembersReturnSeed) {
  std::vector<double> seed = {1.0, 2.0};
  const auto center = DbaBarycenter({}, S(seed));
  EXPECT_EQ(center, seed);
}

TEST(DbaTest, NeverWorseThanSeedObjective) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<double>> members;
    for (int m = 0; m < 6; ++m) {
      std::vector<double> v(24);
      for (auto& x : v) x = rng.UniformDouble(0.0, 1.0);
      members.push_back(std::move(v));
    }
    const auto seed = PointwiseMean(members);
    const auto spans = Spans(members);
    const auto center = DbaBarycenter(spans, S(seed));
    EXPECT_LE(SumSquaredDtw(spans, S(center)),
              SumSquaredDtw(spans, S(seed)) + 1e-9)
        << "trial " << trial;
  }
}

TEST(DbaTest, BeatsPointwiseMeanOnWarpedCopies) {
  // Members are time-warped copies of one prototype: the point-wise
  // mean smears the misaligned shape while the DBA center re-aligns it,
  // so DBA's DTW objective must be clearly lower.
  Rng rng(7);
  std::vector<double> prototype(48);
  for (size_t i = 0; i < prototype.size(); ++i) {
    prototype[i] = GaussianBump(static_cast<double>(i), 24.0, 5.0, 1.0);
  }
  std::vector<std::vector<double>> members;
  for (int m = 0; m < 8; ++m) {
    members.push_back(ApplyRandomWarp(S(prototype), 0.5, &rng));
  }
  const auto seed = PointwiseMean(members);
  const auto spans = Spans(members);
  DbaOptions options;
  options.max_iterations = 20;
  const auto center = DbaBarycenter(spans, S(seed), options);
  const double obj_mean = SumSquaredDtw(spans, S(seed));
  const double obj_dba = SumSquaredDtw(spans, S(center));
  EXPECT_LT(obj_dba, obj_mean * 0.9);
}

TEST(DbaTest, ConvergesWithinIterationBudget) {
  // With epsilon convergence the result of 10 iterations must match 50
  // on easy inputs.
  Rng rng(11);
  std::vector<std::vector<double>> members;
  for (int m = 0; m < 4; ++m) {
    std::vector<double> v(16);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = std::sin(0.4 * static_cast<double>(i)) +
             rng.UniformDouble(-0.05, 0.05);
    }
    members.push_back(std::move(v));
  }
  const auto seed = PointwiseMean(members);
  const auto spans = Spans(members);
  DbaOptions ten;
  ten.max_iterations = 10;
  DbaOptions fifty;
  fifty.max_iterations = 50;
  const auto a = DbaBarycenter(spans, S(seed), ten);
  const auto b = DbaBarycenter(spans, S(seed), fifty);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4);
}

TEST(DbaTest, SupportsUnequalMemberLengths) {
  std::vector<std::vector<double>> members = {
      {0.0, 0.5, 1.0}, {0.0, 0.2, 0.6, 1.0}, {0.0, 1.0}};
  std::vector<double> seed = {0.0, 0.5, 1.0};
  const auto center = DbaBarycenter(Spans(members), S(seed));
  ASSERT_EQ(center.size(), 3u);
  for (double x : center) EXPECT_TRUE(std::isfinite(x));
}

}  // namespace
}  // namespace onex

// Tests for the frozen index structures (paper Sec. 4.3): LSI member
// ordering and lookup, GTI's Dc matrix / sum-sorted array / memory
// accounting, and the GlobalTimeIndex directory.

#include <gtest/gtest.h>

#include <cmath>

#include "core/group_builder.h"
#include "core/gti.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "distance/euclidean.h"
#include "util/rng.h"

namespace onex {
namespace {

Dataset TestDataset() {
  GenOptions options;
  options.num_series = 10;
  options.length = 24;
  options.seed = 42;
  Dataset d = MakeItalyPower(options);
  MinMaxNormalize(&d);
  return d;
}

GtiEntry BuildEntry(const Dataset& d, size_t length, double st = 0.2) {
  Rng rng(1);
  auto groups = BuildGroupsForLength(d, length, st, &rng);
  return BuildGtiEntry(d, std::move(groups), st, 0.1, true);
}

TEST(GtiEntryTest, MembersSortedByEdToRep) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  ASSERT_GT(entry.NumGroups(), 0u);
  for (const auto& group : entry.groups) {
    for (size_t i = 1; i < group.members.size(); ++i) {
      EXPECT_LE(group.members[i - 1].ed_to_rep, group.members[i].ed_to_rep);
    }
  }
}

TEST(GtiEntryTest, StoredEdMatchesRecomputation) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  for (const auto& group : entry.groups) {
    const std::span<const double> rep(group.representative.data(),
                                      entry.length);
    for (const auto& member : group.members) {
      EXPECT_NEAR(member.ed_to_rep,
                  NormalizedEuclidean(member.ref.View(d), rep), 1e-12);
    }
  }
}

TEST(GtiEntryTest, DcMatrixSymmetricZeroDiagonal) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  const size_t g = entry.NumGroups();
  for (size_t k = 0; k < g; ++k) {
    EXPECT_DOUBLE_EQ(entry.Dc(k, k), 0.0);
    for (size_t l = 0; l < g; ++l) {
      EXPECT_DOUBLE_EQ(entry.Dc(k, l), entry.Dc(l, k));
      if (k != l) {
        // Distinct groups' representatives are separated by construction.
        EXPECT_GT(entry.Dc(k, l), 0.0);
      }
    }
  }
}

TEST(GtiEntryTest, DcValuesMatchNormalizedEd) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  const size_t g = entry.NumGroups();
  for (size_t k = 0; k < g; ++k) {
    for (size_t l = k + 1; l < g; ++l) {
      const double expected = NormalizedEuclidean(
          std::span<const double>(entry.groups[k].representative.data(),
                                  entry.length),
          std::span<const double>(entry.groups[l].representative.data(),
                                  entry.length));
      EXPECT_NEAR(entry.Dc(k, l), expected, 1e-12);
    }
  }
}

TEST(GtiEntryTest, SumSortedAscendingAndComplete) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  const size_t g = entry.NumGroups();
  ASSERT_EQ(entry.sum_sorted.size(), g);
  std::vector<bool> seen(g, false);
  for (size_t i = 0; i < g; ++i) {
    const auto [k, sum] = entry.sum_sorted[i];
    EXPECT_LT(k, g);
    seen[k] = true;
    if (i > 0) EXPECT_GE(sum, entry.sum_sorted[i - 1].second);
    // Sum matches its Dc row.
    double expected = 0.0;
    for (size_t l = 0; l < g; ++l) expected += entry.Dc(k, l);
    EXPECT_NEAR(sum, expected, 1e-9);
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(GtiEntryTest, EnvelopesSizedToLength) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  for (const auto& group : entry.groups) {
    EXPECT_EQ(group.envelope.size(), entry.length);
    // Envelope brackets its representative.
    for (size_t i = 0; i < entry.length; ++i) {
      EXPECT_LE(group.envelope.lower[i], group.representative[i] + 1e-12);
      EXPECT_GE(group.envelope.upper[i], group.representative[i] - 1e-12);
    }
  }
}

TEST(GtiEntryTest, MergeThresholdsOrdered) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  EXPECT_GE(entry.st_half, 0.2);  // At least the base ST.
  EXPECT_GE(entry.st_final, entry.st_half);
}

TEST(GtiEntryTest, MemoryAccountingPositive) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  EXPECT_GT(entry.GtiMemoryBytes(), 0u);
  EXPECT_GT(entry.LsiMemoryBytes(), 0u);
  // LSI must dominate for member-heavy bases (it stores per-sequence
  // records); sanity-check scale rather than exact numbers.
  size_t members = 0;
  for (const auto& g : entry.groups) members += g.size();
  EXPECT_GE(entry.LsiMemoryBytes(), members * sizeof(LsiMember));
}

TEST(GtiEntryTest, EmptyGroupsYieldEmptyEntry) {
  Dataset d = TestDataset();
  GtiEntry entry = BuildGtiEntry(d, {}, 0.2, 0.1, true);
  EXPECT_EQ(entry.NumGroups(), 0u);
  EXPECT_EQ(entry.length, 0u);
}

// --------------------------------------------------------------- LsiEntry.

TEST(LsiEntryTest, ClosestMemberBinarySearchAgreesWithLinearScan) {
  Dataset d = TestDataset();
  const GtiEntry entry = BuildEntry(d, 8);
  for (const auto& group : entry.groups) {
    if (group.members.empty()) continue;
    for (double target : {0.0, 0.01, 0.05, 0.1, 0.5, 2.0}) {
      const size_t got = group.ClosestMemberTo(target);
      // Linear reference.
      size_t want = 0;
      double best = std::abs(group.members[0].ed_to_rep - target);
      for (size_t i = 1; i < group.members.size(); ++i) {
        const double diff = std::abs(group.members[i].ed_to_rep - target);
        if (diff < best) {
          best = diff;
          want = i;
        }
      }
      EXPECT_NEAR(std::abs(group.members[got].ed_to_rep - target), best,
                  1e-12);
    }
  }
}

TEST(LsiEntryTest, ClosestMemberOnEmptyEntry) {
  LsiEntry entry;
  EXPECT_EQ(entry.ClosestMemberTo(0.5), 0u);
}

// -------------------------------------------------------- GlobalTimeIndex.

TEST(GlobalTimeIndexTest, InsertAndFind) {
  Dataset d = TestDataset();
  GlobalTimeIndex gti;
  gti.Insert(BuildEntry(d, 8));
  gti.Insert(BuildEntry(d, 12));
  EXPECT_NE(gti.Find(8), nullptr);
  EXPECT_NE(gti.Find(12), nullptr);
  EXPECT_EQ(gti.Find(10), nullptr);
  const auto lengths = gti.Lengths();
  ASSERT_EQ(lengths.size(), 2u);
  EXPECT_EQ(lengths[0], 8u);
  EXPECT_EQ(lengths[1], 12u);
}

}  // namespace
}  // namespace onex

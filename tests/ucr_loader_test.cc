// Tests for the UCR-format reader/writer: parsing, delimiters, error
// reporting, and file round-trips.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "dataset/ucr_loader.h"
#include "datagen/generators.h"

namespace onex {
namespace {

TEST(UcrLoaderTest, ParsesCommaSeparated) {
  auto result = ParseUcrContent("1,0.5,0.6,0.7\n2,1.0,1.1,1.2\n", "t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].label(), 1);
  EXPECT_EQ(d[1].label(), 2);
  EXPECT_EQ(d[0].length(), 3u);
  EXPECT_DOUBLE_EQ(d[1][2], 1.2);
}

TEST(UcrLoaderTest, ParsesWhitespaceSeparated) {
  auto result = ParseUcrContent("  1   0.5\t0.6 \n-1 2.5 3.5\n", "t");
  ASSERT_TRUE(result.ok());
  const Dataset& d = result.value();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[1].label(), -1);
  EXPECT_DOUBLE_EQ(d[1][1], 3.5);
}

TEST(UcrLoaderTest, SkipsBlankLines) {
  auto result = ParseUcrContent("\n1,2,3\n\n\n2,4,5\n\n", "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(UcrLoaderTest, ScientificNotationValues) {
  auto result = ParseUcrContent("1,1e-3,2.5E2,-3e1\n", "t");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value()[0][0], 1e-3);
  EXPECT_DOUBLE_EQ(result.value()[0][1], 250.0);
  EXPECT_DOUBLE_EQ(result.value()[0][2], -30.0);
}

TEST(UcrLoaderTest, RejectsBadValue) {
  auto result = ParseUcrContent("1,2,zzz\n", "t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  EXPECT_NE(result.status().ToString().find("zzz"), std::string::npos);
}

TEST(UcrLoaderTest, RejectsBadLabel) {
  auto result = ParseUcrContent("abc,1,2\n", "t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
}

TEST(UcrLoaderTest, RejectsNonFiniteValues) {
  // NaN/Inf would poison every distance computation downstream.
  EXPECT_FALSE(ParseUcrContent("1,2,nan\n", "t").ok());
  EXPECT_FALSE(ParseUcrContent("1,inf,3\n", "t").ok());
  EXPECT_FALSE(ParseUcrContent("1,2,-inf\n", "t").ok());
}

TEST(UcrLoaderTest, RejectsLabelOnlyLine) {
  auto result = ParseUcrContent("1\n", "t");
  ASSERT_FALSE(result.ok());
}

TEST(UcrLoaderTest, RejectsEmptyContent) {
  auto result = ParseUcrContent("", "t");
  ASSERT_FALSE(result.ok());
}

TEST(UcrLoaderTest, MissingFileIsIOError) {
  auto result = LoadUcrFile("/nonexistent/path/data.tsv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST(UcrLoaderTest, FileRoundTripPreservesData) {
  GenOptions options;
  options.num_series = 20;
  options.seed = 77;
  Dataset original = MakeItalyPower(options);
  const std::string path =
      (std::filesystem::temp_directory_path() / "onex_roundtrip.csv")
          .string();
  ASSERT_TRUE(SaveUcrFile(original, path).ok());
  auto loaded = LoadUcrFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& copy = loaded.value();
  ASSERT_EQ(copy.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(copy[i].label(), original[i].label());
    ASSERT_EQ(copy[i].length(), original[i].length());
    for (size_t j = 0; j < original[i].length(); ++j) {
      EXPECT_NEAR(copy[i][j], original[i][j], 1e-7);
    }
  }
  std::remove(path.c_str());
}

TEST(UcrLoaderTest, LoadDerivesNameFromPath) {
  Dataset d("x");
  d.Add(TimeSeries({1.0, 2.0}, 1));
  const std::string path =
      (std::filesystem::temp_directory_path() / "MyData.csv").string();
  ASSERT_TRUE(SaveUcrFile(d, path).ok());
  auto loaded = LoadUcrFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().name(), "MyData");
  std::remove(path.c_str());
}

TEST(UcrLoaderTest, SaveToBadPathIsIOError) {
  Dataset d("x");
  d.Add(TimeSeries({1.0}, 1));
  EXPECT_EQ(SaveUcrFile(d, "/nonexistent/dir/out.csv").code(),
            Status::Code::kIOError);
}

}  // namespace
}  // namespace onex

// Tests for Algorithm 1 (similarity-group construction): coverage and
// exclusivity (every subsequence in exactly one group, Def. 8),
// radius and compactness behaviour, determinism, and the group-count
// trend as ST varies (the mechanism behind the paper's Figs. 5-6).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/group_builder.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "distance/euclidean.h"
#include "util/rng.h"

namespace onex {
namespace {

Dataset TestDataset(size_t n_series = 10, size_t length = 24,
                    uint64_t seed = 42) {
  GenOptions options;
  options.num_series = n_series;
  options.length = length;
  options.seed = seed;
  Dataset d = MakeItalyPower(options);
  MinMaxNormalize(&d);
  return d;
}

uint64_t KeyOf(const SubsequenceRef& ref) {
  return (static_cast<uint64_t>(ref.series) << 40) |
         (static_cast<uint64_t>(ref.start) << 16) | ref.length;
}

TEST(GroupBuilderTest, CoversEverySubsequenceExactlyOnce) {
  Dataset d = TestDataset();
  Rng rng(1);
  const size_t length = 8;
  const auto groups = BuildGroupsForLength(d, length, 0.2, &rng);
  std::set<uint64_t> seen;
  size_t total = 0;
  for (const auto& group : groups) {
    EXPECT_EQ(group.length(), length);
    EXPECT_GT(group.size(), 0u);
    for (const auto& ref : group.members()) {
      EXPECT_EQ(ref.length, length);
      EXPECT_TRUE(seen.insert(KeyOf(ref)).second)
          << "subsequence appears in two groups";
      ++total;
    }
  }
  // Exactly N * (n - L + 1) subsequences of this length.
  EXPECT_EQ(total, d.size() * (d.MaxLength() - length + 1));
}

TEST(GroupBuilderTest, RepresentativeIsPointwiseAverage) {
  Dataset d = TestDataset();
  Rng rng(2);
  const size_t length = 6;
  const auto groups = BuildGroupsForLength(d, length, 0.3, &rng);
  for (const auto& group : groups) {
    std::vector<double> mean(length, 0.0);
    for (const auto& ref : group.members()) {
      const auto values = ref.View(d);
      for (size_t i = 0; i < length; ++i) mean[i] += values[i];
    }
    for (size_t i = 0; i < length; ++i) {
      mean[i] /= static_cast<double>(group.size());
      EXPECT_NEAR(group.representative()[i], mean[i], 1e-9);
    }
  }
}

TEST(GroupBuilderTest, MembersCloseToFinalRepresentative) {
  // Members join within ST/2 of the representative *at join time*; the
  // running mean then drifts. On smooth data the drift is small: assert
  // the documented relaxation that members sit within ST of the final
  // representative (normalized ED), and that the vast majority still sit
  // within ST/2.
  Dataset d = TestDataset(15, 24, 7);
  Rng rng(3);
  const size_t length = 8;
  const double st = 0.2;
  const auto groups = BuildGroupsForLength(d, length, st, &rng);
  size_t total = 0, within_half = 0;
  for (const auto& group : groups) {
    const std::span<const double> rep(group.representative().data(), length);
    for (const auto& ref : group.members()) {
      const double ed = NormalizedEuclidean(ref.View(d), rep);
      EXPECT_LE(ed, st);
      if (ed <= st / 2.0 + 1e-9) ++within_half;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(within_half) / total, 0.9);
}

TEST(GroupBuilderTest, PairwiseMembersWithinLemma1Bound) {
  // Lemma 1: two members of the same group are within ST of each other
  // (normalized ED), given both are within ST/2 of the representative.
  // With the running mean, allow the same 2x relaxation as above.
  Dataset d = TestDataset(10, 24, 11);
  Rng rng(4);
  const double st = 0.25;
  const auto groups = BuildGroupsForLength(d, 10, st, &rng);
  for (const auto& group : groups) {
    const auto& members = group.members();
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        const double ed =
            NormalizedEuclidean(members[a].View(d), members[b].View(d));
        EXPECT_LE(ed, 2.0 * st);
      }
    }
  }
}

TEST(GroupBuilderTest, DeterministicForSeed) {
  Dataset d = TestDataset();
  Rng rng1(5), rng2(5);
  const auto a = BuildGroupsForLength(d, 8, 0.2, &rng1);
  const auto b = BuildGroupsForLength(d, 8, 0.2, &rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i].members()[j], b[i].members()[j]);
    }
  }
}

class GroupCountSweep : public ::testing::TestWithParam<double> {};

TEST_P(GroupCountSweep, TinyThresholdManyGroupsLargeThresholdFew) {
  // The paper's Fig. 6 trend: representative count decreases as ST grows.
  Dataset d = TestDataset(8, 24, 13);
  const double st = GetParam();
  Rng rng(6);
  const auto groups = BuildGroupsForLength(d, 8, st, &rng);
  Rng rng2(6);
  const auto groups_bigger = BuildGroupsForLength(d, 8, st * 2.0, &rng2);
  EXPECT_GE(groups.size(), groups_bigger.size());
}

INSTANTIATE_TEST_SUITE_P(Thresholds, GroupCountSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.4));

TEST(GroupBuilderTest, HugeThresholdYieldsOneGroup) {
  Dataset d = TestDataset();
  Rng rng(7);
  // Data lives in [0,1]: normalized ED can never exceed 1, so ST = 4
  // (radius 2) swallows everything into the first group.
  const auto groups = BuildGroupsForLength(d, 8, 4.0, &rng);
  EXPECT_EQ(groups.size(), 1u);
}

TEST(GroupBuilderTest, LengthLongerThanSeriesYieldsNothing) {
  Dataset d = TestDataset(4, 24, 15);
  Rng rng(8);
  const auto groups = BuildGroupsForLength(d, 100, 0.2, &rng);
  EXPECT_TRUE(groups.empty());
}

TEST(BuildAllGroupsTest, RespectsLengthSpec) {
  Dataset d = TestDataset(5, 24, 17);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {6, 18, 6};  // Lengths 6, 12, 18.
  const auto by_length = BuildAllGroups(d, options);
  ASSERT_EQ(by_length.size(), 3u);
  EXPECT_TRUE(by_length.count(6));
  EXPECT_TRUE(by_length.count(12));
  EXPECT_TRUE(by_length.count(18));
  // Each length covers all its subsequences.
  for (const auto& [len, groups] : by_length) {
    size_t total = 0;
    for (const auto& g : groups) total += g.size();
    EXPECT_EQ(total, d.size() * (24 - len + 1)) << "length " << len;
  }
}

TEST(BuildAllGroupsTest, RaggedSeriesContributeWhereLongEnough) {
  Dataset d("ragged");
  d.Add(TimeSeries(std::vector<double>(20, 0.5), 1));
  d.Add(TimeSeries(std::vector<double>(10, 0.5), 1));
  OnexOptions options;
  options.lengths = {8, 16, 8};  // Lengths 8, 16.
  const auto by_length = BuildAllGroups(d, options);
  ASSERT_TRUE(by_length.count(8));
  ASSERT_TRUE(by_length.count(16));
  size_t total8 = 0;
  for (const auto& g : by_length.at(8)) total8 += g.size();
  EXPECT_EQ(total8, (20 - 8 + 1) + (10 - 8 + 1));
  size_t total16 = 0;
  for (const auto& g : by_length.at(16)) total16 += g.size();
  EXPECT_EQ(total16, static_cast<size_t>(20 - 16 + 1));  // Only series 0.
}

}  // namespace
}  // namespace onex

// Tests for the SP-Space (paper Sec. 4.2): the Kruskal merge sweep that
// derives SThalf / STfinal, the global aggregation across lengths, and
// the S/M/L similarity degrees behind query class Q3.

#include <gtest/gtest.h>

#include <vector>

#include "core/sp_space.h"
#include "util/rng.h"
#include "util/union_find.h"

namespace onex {
namespace {

// Builds a row-major symmetric Dc matrix from an upper-triangle list.
std::vector<double> Matrix(size_t g,
                           std::vector<std::tuple<size_t, size_t, double>>
                               entries) {
  std::vector<double> dc(g * g, 0.0);
  for (const auto& [k, l, d] : entries) {
    dc[k * g + l] = d;
    dc[l * g + k] = d;
  }
  return dc;
}

TEST(MergeThresholdsTest, SingleGroupIsBaseThreshold) {
  std::vector<double> dc = {0.0};
  const MergeThresholds t =
      ComputeMergeThresholds(std::span<const double>(dc.data(), 1), 1, 0.2);
  EXPECT_DOUBLE_EQ(t.st_half, 0.2);
  EXPECT_DOUBLE_EQ(t.st_final, 0.2);
}

TEST(MergeThresholdsTest, TwoGroups) {
  const auto dc = Matrix(2, {{0, 1, 0.3}});
  const MergeThresholds t = ComputeMergeThresholds(
      std::span<const double>(dc.data(), dc.size()), 2, 0.2);
  // One merge event at ST' = 0.2 + 0.3: it is both "half" (1 <= 1
  // component target) and "final".
  EXPECT_DOUBLE_EQ(t.st_half, 0.5);
  EXPECT_DOUBLE_EQ(t.st_final, 0.5);
}

TEST(MergeThresholdsTest, TwoTightClustersFarApart) {
  // Groups {0,1} and {2,3} are near each other (0.1) but the clusters
  // are 1.0 apart: half-merge happens at st + 0.1, full at st + 1.0.
  const auto dc = Matrix(4, {{0, 1, 0.1},
                             {2, 3, 0.1},
                             {0, 2, 1.0},
                             {0, 3, 1.0},
                             {1, 2, 1.0},
                             {1, 3, 1.0}});
  const MergeThresholds t = ComputeMergeThresholds(
      std::span<const double>(dc.data(), dc.size()), 4, 0.2);
  EXPECT_DOUBLE_EQ(t.st_half, 0.2 + 0.1);
  EXPECT_DOUBLE_EQ(t.st_final, 0.2 + 1.0);
}

TEST(MergeThresholdsTest, ChainMergesProgressively) {
  // Chain 0-1-2-3 with increasing edge weights.
  const auto dc = Matrix(4, {{0, 1, 0.1},
                             {1, 2, 0.2},
                             {2, 3, 0.3},
                             {0, 2, 0.9},
                             {0, 3, 0.9},
                             {1, 3, 0.9}});
  const MergeThresholds t = ComputeMergeThresholds(
      std::span<const double>(dc.data(), dc.size()), 4, 0.0);
  // After edge 0.1: 3 components; after 0.2: 2 components = half (g/2);
  // after 0.3: 1 component = final.
  EXPECT_DOUBLE_EQ(t.st_half, 0.2);
  EXPECT_DOUBLE_EQ(t.st_final, 0.3);
}

// Property: the Kruskal sweep agrees with a brute-force threshold scan
// using union-find at each candidate threshold.
TEST(MergeThresholdsTest, AgreesWithBruteForceSweep) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t g = 2 + rng.Uniform(10);
    std::vector<double> dc(g * g, 0.0);
    for (size_t k = 0; k < g; ++k) {
      for (size_t l = k + 1; l < g; ++l) {
        const double d = rng.UniformDouble(0.01, 1.0);
        dc[k * g + l] = d;
        dc[l * g + k] = d;
      }
    }
    const double st = 0.2;
    const MergeThresholds got = ComputeMergeThresholds(
        std::span<const double>(dc.data(), dc.size()), g, st);

    auto components_at = [&](double st_prime) {
      UnionFind uf(g);
      for (size_t k = 0; k < g; ++k) {
        for (size_t l = k + 1; l < g; ++l) {
          if (st_prime - st >= dc[k * g + l]) uf.Union(k, l);
        }
      }
      return uf.components();
    };
    // At the reported thresholds the conditions hold (with an epsilon:
    // (st + d) - st can round below d in floating point)...
    EXPECT_LE(components_at(got.st_half + 1e-9), (g + 1) / 2);
    EXPECT_EQ(components_at(got.st_final + 1e-9), 1u);
    // ...and just below them they do not.
    EXPECT_GT(components_at(got.st_half - 1e-9),
              (g + 1) / 2);
    EXPECT_GT(components_at(got.st_final - 1e-9), 1u);
  }
}

// ----------------------------------------------------------------- Degrees.

TEST(ParseDegreeTest, Letters) {
  EXPECT_EQ(ParseDegree("S"), SimilarityDegree::kStrict);
  EXPECT_EQ(ParseDegree("strict"), SimilarityDegree::kStrict);
  EXPECT_EQ(ParseDegree("M"), SimilarityDegree::kMedium);
  EXPECT_EQ(ParseDegree("L"), SimilarityDegree::kLoose);
  EXPECT_EQ(ParseDegree("loose"), SimilarityDegree::kLoose);
  EXPECT_EQ(ParseDegree(""), SimilarityDegree::kMedium);
  EXPECT_EQ(ParseDegree("x"), SimilarityDegree::kMedium);
}

// ----------------------------------------------------------------- SpSpace.

TEST(SpSpaceTest, GlobalIsMaxOfLocals) {
  SpSpace sp;
  sp.AddLength(8, {0.5, 0.78});   // The paper's Fig. 1 example values.
  sp.AddLength(16, {0.6, 0.7});
  sp.AddLength(24, {0.4, 0.75});
  const MergeThresholds global = sp.Global();
  EXPECT_DOUBLE_EQ(global.st_half, 0.6);
  EXPECT_DOUBLE_EQ(global.st_final, 0.78);
}

TEST(SpSpaceTest, LocalLookup) {
  SpSpace sp;
  sp.AddLength(8, {0.5, 0.78});
  EXPECT_DOUBLE_EQ(sp.Local(8).st_final, 0.78);
  EXPECT_DOUBLE_EQ(sp.Local(99).st_half, 0.0);  // Unknown length.
}

TEST(SpSpaceTest, RecommendIntervalsPartitionTheAxis) {
  SpSpace sp;
  sp.AddLength(8, {0.5, 0.78});
  const auto strict = sp.Recommend(SimilarityDegree::kStrict, 8);
  const auto medium = sp.Recommend(SimilarityDegree::kMedium, 8);
  const auto loose = sp.Recommend(SimilarityDegree::kLoose, 8);
  EXPECT_DOUBLE_EQ(strict.first, 0.0);
  EXPECT_DOUBLE_EQ(strict.second, medium.first);
  EXPECT_DOUBLE_EQ(medium.second, loose.first);
  EXPECT_GT(loose.second, loose.first);
}

TEST(SpSpaceTest, UnknownLengthFallsBackToGlobal) {
  SpSpace sp;
  sp.AddLength(8, {0.5, 0.78});
  const auto from_unknown = sp.Recommend(SimilarityDegree::kStrict, 999);
  const auto global = sp.Recommend(SimilarityDegree::kStrict, 0);
  EXPECT_DOUBLE_EQ(from_unknown.second, global.second);
}

TEST(SpSpaceTest, ClassifyMatchesPaperDefinition) {
  SpSpace sp;
  sp.AddLength(8, {0.5, 0.78});
  // Paper Sec. 4.2: S when ST <= SThalf, M in [SThalf, STfinal],
  // L when ST >= STfinal.
  EXPECT_EQ(sp.Classify(0.3, 8), SimilarityDegree::kStrict);
  EXPECT_EQ(sp.Classify(0.5, 8), SimilarityDegree::kStrict);
  EXPECT_EQ(sp.Classify(0.6, 8), SimilarityDegree::kMedium);
  EXPECT_EQ(sp.Classify(0.78, 8), SimilarityDegree::kLoose);
  EXPECT_EQ(sp.Classify(0.9, 8), SimilarityDegree::kLoose);
}

}  // namespace
}  // namespace onex

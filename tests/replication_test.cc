// Tests for the v7 replication foundation: the consistent-cut manifest
// (render/parse round trip, the MANIFEST verb cutting a fresh
// checkpoint per request, the on-disk onex_manifest.json), the FETCH
// artifact stream (CRC-verified chunked binary framing, traversal and
// cross-dataset rejection), the follower loop (ReplicaSyncer
// bootstrapping from a live leader, applying incremental deltas,
// converging byte-identically — including across a follower restart),
// the read-only follower catalog (ERR READ_ONLY on mutation verbs),
// and the v7 cross-session admin CANCEL with its structured NOT_FOUND
// forms. The v6 grammar regression at the bottom pins the bytes of a
// pre-v7 session so the version bump is provably a strict superset.

#include <gtest/gtest.h>
#include <unistd.h>

#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/engine.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/replica.h"
#include "server/server.h"
#include "storage/manifest.h"
#include "storage/storage.h"
#include "util/crc32.h"

namespace onex {
namespace server {
namespace {

namespace fs = std::filesystem;

Engine BuildSmallEngine(uint64_t seed, size_t num_series = 10) {
  GenOptions gen;
  gen.num_series = num_series;
  gen.length = 24;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto built = Engine::Build(std::move(d), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TimeSeries MakeAppendSeries(uint64_t seed) {
  std::vector<double> values(24);
  double level = 0.3 + 0.01 * static_cast<double>(seed % 40);
  for (double& v : values) {
    level += (seed * 2654435761u % 17) * 1e-3 - 0.008;
    if (level < 0.0) level = 0.0;
    if (level > 1.0) level = 1.0;
    v = level;
    ++seed;
  }
  return TimeSeries(std::move(values), static_cast<int>(seed % 7));
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ------------------------------------------- manifest render / parse

TEST(ManifestFormat, WireRenderParsesBackIdentically) {
  storage::Manifest manifest;
  manifest.created_unix_s = 1754650000;
  storage::ManifestEntry entry;
  entry.name = "ecg";
  entry.series = 12;
  entry.live_series = 14;
  entry.base_file = "ecg.onex";
  entry.base_bytes = 4096;
  entry.base_crc = 0xDEADBEEF;
  entry.deltas.push_back({"ecg.onex.delta.1", 128, 0x12345678});
  entry.deltas.push_back({"ecg.onex.delta.2", 256, 0x9ABCDEF0});
  entry.wal_file = "ecg.wal";
  entry.wal_bytes = 64;
  manifest.entries.push_back(entry);
  storage::ManifestEntry bare;
  bare.name = "power";
  bare.series = 5;
  bare.live_series = 5;
  bare.base_file = "power.onex";
  bare.base_bytes = 2048;
  bare.base_crc = 7;
  bare.wal_file = "power.wal";
  bare.wal_bytes = 16;
  manifest.entries.push_back(bare);

  const std::string block = RenderManifestBlock(manifest);
  std::vector<std::string> lines;
  {
    std::istringstream in(block);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.back(), ".");
  lines.pop_back();
  auto parsed_block = ParseResponseBlock(lines);
  ASSERT_TRUE(parsed_block.ok()) << parsed_block.status().ToString();
  ASSERT_TRUE(parsed_block.value().ok);
  EXPECT_EQ(parsed_block.value().kind, "Manifest");

  auto parsed = ParseManifestPayload(parsed_block.value().payload,
                                     parsed_block.value().header);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const storage::Manifest& got = parsed.value();
  EXPECT_EQ(got.version, storage::kManifestFormatVersion);
  EXPECT_EQ(got.created_unix_s, manifest.created_unix_s);
  ASSERT_EQ(got.entries.size(), 2u);
  EXPECT_EQ(got.entries[0].name, "ecg");
  EXPECT_EQ(got.entries[0].series, 12u);
  EXPECT_EQ(got.entries[0].live_series, 14u);
  EXPECT_EQ(got.entries[0].base_file, "ecg.onex");
  EXPECT_EQ(got.entries[0].base_bytes, 4096u);
  EXPECT_EQ(got.entries[0].base_crc, 0xDEADBEEFu);
  ASSERT_EQ(got.entries[0].deltas.size(), 2u);
  EXPECT_EQ(got.entries[0].deltas[1].file, "ecg.onex.delta.2");
  EXPECT_EQ(got.entries[0].deltas[1].bytes, 256u);
  EXPECT_EQ(got.entries[0].deltas[1].crc, 0x9ABCDEF0u);
  EXPECT_EQ(got.entries[0].wal_file, "ecg.wal");
  EXPECT_EQ(got.entries[0].wal_bytes, 64u);
  EXPECT_EQ(got.entries[1].name, "power");
  EXPECT_TRUE(got.entries[1].deltas.empty());
}

TEST(ManifestFormat, ParseRejectsOutOfOrderDeltaChain) {
  storage::Manifest manifest;
  storage::ManifestEntry entry;
  entry.name = "a";
  entry.base_file = "a.onex";
  entry.wal_file = "a.wal";
  entry.deltas.push_back({"a.onex.delta.1", 1, 1});
  manifest.entries.push_back(entry);
  const std::string block = RenderManifestBlock(manifest);
  std::vector<std::string> lines;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) {
    if (line == ".") break;
    // Corrupt the chain ordering: k=1 becomes k=3.
    size_t at = line.find("k=1");
    if (at != std::string::npos) line.replace(at, 3, "k=3");
    lines.push_back(line);
  }
  auto parsed_block = ParseResponseBlock(lines);
  ASSERT_TRUE(parsed_block.ok());
  auto parsed = ParseManifestPayload(parsed_block.value().payload,
                                     parsed_block.value().header);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);
}

// ------------------------------------------------ leader-side fixture

/// A durable leader server over a temp data directory, plus helpers to
/// stand up follower catalogs/syncers over a second directory.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string unique =
        std::to_string(::getpid()) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    leader_dir_ = fs::path(::testing::TempDir()) / ("repl_leader_" + unique);
    follower_dir_ =
        fs::path(::testing::TempDir()) / ("repl_follower_" + unique);
    fs::create_directories(leader_dir_);
    fs::create_directories(follower_dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(leader_dir_, ec);
    fs::remove_all(follower_dir_, ec);
  }

  void StartLeader(ServerOptions options = {}) {
    CatalogOptions catalog_options;
    catalog_options.data_dir = leader_dir_.string();
    catalog_options.durable = true;
    catalog_options.storage = leader_storage_;
    catalog_options.storage.background_checkpointer = false;
    leader_catalog_ = std::make_shared<Catalog>(catalog_options);
    leader_catalog_->Register("power", BuildSmallEngine(42));
    auto started = Server::Start(std::move(options), leader_catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    leader_ = std::move(started).value();
  }

  Client ConnectLeader() {
    auto client = Client::Connect("127.0.0.1", leader_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::shared_ptr<Catalog> MakeFollowerCatalog() {
    CatalogOptions catalog_options;
    catalog_options.data_dir = follower_dir_.string();
    catalog_options.durable = true;
    catalog_options.read_only = true;
    catalog_options.storage.background_checkpointer = false;
    return std::make_shared<Catalog>(catalog_options);
  }

  ReplicaOptions FollowerOptions() {
    ReplicaOptions options;
    options.leader_host = "127.0.0.1";
    options.leader_port = leader_->port();
    options.data_dir = follower_dir_.string();
    return options;
  }

  /// Renders one deterministic best-match answer from `catalog`'s
  /// "power" dataset — the byte-level convergence probe (the payload
  /// depends on every series value, so leader and follower render
  /// identical bytes iff their recovered states match).
  std::string RenderedAnswer(Catalog& catalog) {
    auto acquired = catalog.Acquire("power");
    EXPECT_TRUE(acquired.ok()) << acquired.status().ToString();
    if (!acquired.ok()) return "";
    std::vector<double> probe(12, 0.5);
    for (size_t i = 0; i < probe.size(); ++i) {
      probe[i] = 0.2 + 0.05 * static_cast<double>(i % 8);
    }
    auto executed = acquired.value()->Execute(
        QueryRequest(KSimilarRequest{probe, 5, 0}), ExecContext{});
    EXPECT_TRUE(executed.ok()) << executed.status().ToString();
    if (!executed.ok()) return "";
    // Drop the header line: latency_us= is wall-clock, not state.
    const std::string block = RenderResponse(executed.value());
    const size_t eol = block.find('\n');
    return eol == std::string::npos ? block : block.substr(eol + 1);
  }

  fs::path leader_dir_;
  fs::path follower_dir_;
  /// Tweak before StartLeader() to shape the leader's storage (chain
  /// bounds, GC grace). background_checkpointer is forced off either way.
  storage::StorageOptions leader_storage_;
  std::shared_ptr<Catalog> leader_catalog_;
  std::unique_ptr<Server> leader_;
};

// ------------------------------------------------------ MANIFEST verb

TEST_F(ReplicationTest, ManifestVerbCutsCheckpointAndWritesDiskManifest) {
  StartLeader();
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(leader_catalog_->Append("power", MakeAppendSeries(i)).ok());
  }

  Client client = ConnectLeader();
  auto manifest = client.FetchManifest();
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest.value().entries.size(), 1u);
  const storage::ManifestEntry& entry = manifest.value().entries[0];
  EXPECT_EQ(entry.name, "power");
  EXPECT_EQ(entry.series, 13u);       // 10 seeded + 3 appended, all cut.
  EXPECT_EQ(entry.live_series, 13u);  // WAL tail empty right after the cut.
  EXPECT_EQ(entry.base_file, "power.onex");
  EXPECT_EQ(entry.wal_file, "power.wal");
  EXPECT_GT(entry.base_bytes, 0u);

  // The wire view and the disk file describe the same cut.
  const std::string disk_path =
      storage::ManifestPathFor(leader_dir_.string());
  ASSERT_TRUE(fs::exists(disk_path));
  EXPECT_EQ(ReadWholeFile(disk_path), RenderManifestJson(manifest.value()));

  // A second MANIFEST with no new appends is a no-op cut: same chain.
  auto again = client.FetchManifest();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().entries.size(), 1u);
  EXPECT_EQ(again.value().entries[0].series, entry.series);
  EXPECT_EQ(again.value().entries[0].deltas.size(), entry.deltas.size());

  // New appends make the next cut publish one more incremental delta.
  ASSERT_TRUE(leader_catalog_->Append("power", MakeAppendSeries(99)).ok());
  auto after = client.FetchManifest();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().entries[0].series, entry.series + 1);
  EXPECT_EQ(after.value().entries[0].deltas.size(),
            entry.deltas.size() + 1);
}

// --------------------------------------------------------- FETCH verb

TEST_F(ReplicationTest, FetchStreamsArtifactBytesWithVerifiedCrcs) {
  StartLeader();
  Client client = ConnectLeader();
  auto manifest = client.FetchManifest();
  ASSERT_TRUE(manifest.ok());
  const storage::ManifestEntry& entry = manifest.value().entries[0];

  auto fetched = client.FetchArtifact("power", entry.base_file);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  const std::string on_disk =
      ReadWholeFile((leader_dir_ / entry.base_file).string());
  EXPECT_EQ(fetched.value(), on_disk);
  EXPECT_EQ(fetched.value().size(), entry.base_bytes);
  EXPECT_EQ(Crc32(fetched.value().data(), fetched.value().size()),
            entry.base_crc);

  // The WAL artifact fetches too (empty header-only file right after a
  // cut is fine — size just has to match the file).
  auto wal = client.FetchArtifact("power", entry.wal_file);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal.value().size(),
            fs::file_size(leader_dir_ / entry.wal_file));

  // And the session still speaks the line protocol afterwards — the
  // binary frames left the stream exactly framed.
  auto list = client.Roundtrip("list");
  ASSERT_TRUE(list.ok());
  EXPECT_TRUE(list.value().ok);
}

TEST_F(ReplicationTest, FetchRejectsTraversalAndForeignArtifacts) {
  StartLeader();
  Client client = ConnectLeader();

  // Path separators and dot-dots die at the parser (BAD_REQUEST).
  auto traversal = client.Roundtrip("fetch power ../secrets");
  ASSERT_TRUE(traversal.ok());
  EXPECT_FALSE(traversal.value().ok);

  // A well-formed name outside the dataset's own artifact set is
  // refused by the server (one dataset cannot read another's files).
  auto foreign = client.FetchArtifact("power", "other.onex");
  EXPECT_FALSE(foreign.ok());

  // A chain position that does not exist suggests re-fetching the
  // manifest (compaction may have collapsed it).
  auto gone = client.FetchArtifact("power", "power.onex.delta.9");
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), Status::Code::kNotFound);
}

// --------------------------------------------------- follower catch-up

TEST_F(ReplicationTest, FollowerBootstrapsTailsAndConvergesByteIdentically) {
  StartLeader();
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(leader_catalog_->Append("power", MakeAppendSeries(i)).ok());
  }

  auto follower_catalog = MakeFollowerCatalog();
  ReplicaSyncer syncer(FollowerOptions(), follower_catalog.get());
  ASSERT_TRUE(syncer.SyncOnce().ok());

  EXPECT_EQ(RenderedAnswer(*follower_catalog),
            RenderedAnswer(*leader_catalog_));
  const ReplicaStatus after_bootstrap = syncer.status();
  EXPECT_GE(after_bootstrap.lag_seconds, 0.0);
  EXPECT_EQ(after_bootstrap.last_applied_seq, 14u);

  // Tail: new leader appends arrive as ONE incremental delta on the
  // next round, and the follower's answer converges again.
  for (uint64_t i = 10; i < 13; ++i) {
    ASSERT_TRUE(leader_catalog_->Append("power", MakeAppendSeries(i)).ok());
  }
  ASSERT_TRUE(syncer.SyncOnce().ok());
  EXPECT_EQ(syncer.status().last_applied_seq, 17u);
  EXPECT_EQ(RenderedAnswer(*follower_catalog),
            RenderedAnswer(*leader_catalog_));

  // The follower's artifact directory now holds a delta chain — the
  // incremental path, not a base re-download.
  EXPECT_TRUE(
      fs::exists(storage::DeltaPathFor(follower_dir_.string(), "power", 1)));
}

TEST_F(ReplicationTest, RestartedFollowerConvergesWithoutRedownloadingBase) {
  StartLeader();
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(leader_catalog_->Append("power", MakeAppendSeries(i)).ok());
  }
  {
    auto follower_catalog = MakeFollowerCatalog();
    ReplicaSyncer first(FollowerOptions(), follower_catalog.get());
    ASSERT_TRUE(first.SyncOnce().ok());
  }  // Follower "crashes": syncer and catalog gone, artifacts remain.

  // Leader moves on while the follower is down.
  for (uint64_t i = 20; i < 23; ++i) {
    ASSERT_TRUE(leader_catalog_->Append("power", MakeAppendSeries(i)).ok());
  }

  auto follower_catalog = MakeFollowerCatalog();
  ReplicaSyncer restarted(FollowerOptions(), follower_catalog.get());
  ASSERT_TRUE(restarted.SyncOnce().ok());
  EXPECT_EQ(RenderedAnswer(*follower_catalog),
            RenderedAnswer(*leader_catalog_));
  EXPECT_EQ(restarted.status().last_applied_seq, 16u);
}

// ------------------------------------------- read-only follower verbs

TEST_F(ReplicationTest, FollowerServesReadsButRefusesMutationsReadOnly) {
  StartLeader();
  ASSERT_TRUE(leader_catalog_->Append("power", MakeAppendSeries(1)).ok());

  auto follower_catalog = MakeFollowerCatalog();
  ReplicaSyncer syncer(FollowerOptions(), follower_catalog.get());
  ASSERT_TRUE(syncer.SyncOnce().ok());

  ServerOptions options;
  options.replica_status = [&syncer] { return syncer.status(); };
  options.replica_lag_budget_s = 3600.0;
  auto started = Server::Start(std::move(options), follower_catalog);
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<Server> follower = std::move(started).value();

  auto client = Client::Connect("127.0.0.1", follower->port());
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.value().greeting(), "ONEX/8 ready");

  // Reads serve.
  auto use = client.value().Roundtrip("use power");
  ASSERT_TRUE(use.ok());
  ASSERT_TRUE(use.value().ok) << use.value().message;
  EXPECT_EQ(use.value().header.at("series"), "11");

  // Mutations are refused with the structured READ_ONLY code.
  auto append = client.value().Roundtrip("append 0.1,0.2,0.3");
  ASSERT_TRUE(append.ok());
  EXPECT_FALSE(append.value().ok);
  EXPECT_EQ(append.value().code, kReadOnlyCode);
  auto flush = client.value().Roundtrip("flush");
  ASSERT_TRUE(flush.ok());
  EXPECT_FALSE(flush.value().ok);
  EXPECT_EQ(flush.value().code, kReadOnlyCode);

  // HEALTH: synced follower inside budget is ready, with the replica
  // gate line present.
  auto health = client.value().Roundtrip("health");
  ASSERT_TRUE(health.ok());
  ASSERT_TRUE(health.value().ok);
  EXPECT_EQ(health.value().header.at("ready"), "1");
  bool saw_replica_check = false;
  for (const std::string& line : health.value().payload) {
    if (line.rfind("check name=replica_lag", 0) == 0) {
      saw_replica_check = true;
      EXPECT_NE(line.find("ok=1"), std::string::npos) << line;
    }
  }
  EXPECT_TRUE(saw_replica_check);

  // METRICS: the replica gauges exist and reflect the applied count.
  auto metrics = client.value().Roundtrip("metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics.value().ok);
  bool saw_applied = false;
  for (const std::string& line : metrics.value().payload) {
    if (line.rfind("onex_replica_last_applied_seq ", 0) == 0) {
      saw_applied = true;
      EXPECT_EQ(line, "onex_replica_last_applied_seq 11");
    }
  }
  EXPECT_TRUE(saw_applied);
}

TEST_F(ReplicationTest, NeverSyncedFollowerIsNotReady) {
  StartLeader();
  auto follower_catalog = MakeFollowerCatalog();
  ServerOptions options;
  options.replica_status = [] { return ReplicaStatus{}; };  // Never synced.
  auto started = Server::Start(std::move(options), follower_catalog);
  ASSERT_TRUE(started.ok());
  std::unique_ptr<Server> follower = std::move(started).value();

  auto client = Client::Connect("127.0.0.1", follower->port());
  ASSERT_TRUE(client.ok());
  auto health = client.value().Roundtrip("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().header.at("ready"), "0");
}

// ------------------------------------------------- delta GC grace (v8)

TEST_F(ReplicationTest, RetiredArtifactsStayFetchableInsideGcGrace) {
  // A follower that planned its catch-up from an older manifest must be
  // able to finish fetching those deltas even after the leader compacts
  // the chain out from under it. A long grace keeps the retired bytes
  // on disk and servable over FETCH.
  leader_storage_.max_delta_chain_length = 2;
  leader_storage_.delta_gc_grace_s = 3600.0;
  StartLeader();

  Client client = ConnectLeader();
  // Append + cut until a compaction folds the chain back into the base;
  // remember the last manifest that still advertised deltas — that is
  // the stale plan a mid-catch-up follower would hold.
  storage::Manifest old_manifest;
  bool compacted = false;
  for (int round = 0; round < 6 && !compacted; ++round) {
    ASSERT_TRUE(
        leader_catalog_->Append("power", MakeAppendSeries(100 + round)).ok());
    auto manifest = client.FetchManifest();
    ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
    ASSERT_EQ(manifest.value().entries.size(), 1u);
    if (manifest.value().entries[0].deltas.empty()) {
      compacted = !old_manifest.entries.empty();
    } else {
      old_manifest = manifest.value();
    }
  }
  ASSERT_TRUE(compacted) << "chain never compacted within 6 cuts";
  ASSERT_FALSE(old_manifest.entries[0].deltas.empty());

  // Every delta the stale manifest names is retired, not gone: FETCH
  // still streams the exact advertised byte count.
  for (const storage::ManifestEntry::DeltaRef& delta :
       old_manifest.entries[0].deltas) {
    auto bytes = client.FetchArtifact("power", delta.file);
    ASSERT_TRUE(bytes.ok()) << delta.file << ": "
                            << bytes.status().ToString();
    EXPECT_EQ(bytes.value().size(), delta.bytes) << delta.file;
  }

  // The gauges show artifacts parked in the grace window and nothing
  // reclaimed yet.
  auto metrics = client.Roundtrip("metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics.value().ok);
  bool saw_pending = false;
  bool saw_reclaimed = false;
  for (const std::string& line : metrics.value().payload) {
    if (line.rfind("onex_delta_gc_pending_artifacts ", 0) == 0) {
      saw_pending = true;
      EXPECT_NE(line, "onex_delta_gc_pending_artifacts 0");
    }
    if (line.rfind("onex_delta_gc_reclaimed_bytes ", 0) == 0) {
      saw_reclaimed = true;
      EXPECT_EQ(line, "onex_delta_gc_reclaimed_bytes 0");
    }
  }
  EXPECT_TRUE(saw_pending);
  EXPECT_TRUE(saw_reclaimed);
}

// -------------------------------------------- cross-session admin CANCEL

TEST_F(ReplicationTest, AdminCancelAbortsAnotherSessionsQuery) {
  // The worker blocks at job start until released, so the admin CANCEL
  // deterministically lands while the victim's query is in flight.
  std::mutex mutex;
  std::condition_variable cv;
  bool job_started = false;
  bool release = false;
  ServerOptions options;
  options.num_workers = 1;
  options.on_job_start = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    job_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  StartLeader(std::move(options));

  Client victim = ConnectLeader();
  ASSERT_TRUE(victim.Roundtrip("use power").ok());
  auto handle = victim.Submit(
      QueryRequest(RangeWithinRequest{std::vector<double>(24, 0.5),
                                      10.0, 0, false}));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return job_started; });
  }

  // The admin finds the victim's session number via INSPECT (sessions
  // are listed by fd) and cancels its in-flight id. With only two
  // sessions connected, the victim is whichever listed fd answers OK.
  Client admin = ConnectLeader();
  auto inspect = admin.Roundtrip("inspect");
  ASSERT_TRUE(inspect.ok());
  ASSERT_TRUE(inspect.value().ok);
  std::vector<std::string> session_fds;
  for (const std::string& line : inspect.value().payload) {
    if (line.rfind("session fd=", 0) == 0) {
      session_fds.push_back(line.substr(std::string("session fd=").size()));
    }
  }
  ASSERT_GE(session_fds.size(), 2u);
  bool cancelled = false;
  for (const std::string& fd : session_fds) {
    const std::string target = fd + "/" + std::to_string(handle.value().id());
    auto reply = admin.Roundtrip("cancel " + target);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply.value().ok) {
      EXPECT_EQ(reply.value().kind, "Cancel");
      EXPECT_EQ(reply.value().header.at("target"), target);
      cancelled = true;
      break;
    }
    // The admin's own session (or a wrong guess) answers the
    // structured NOT_FOUND, never a dropped connection.
    EXPECT_EQ(reply.value().code, "NOT_FOUND");
  }
  EXPECT_TRUE(cancelled);

  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  ASSERT_TRUE(final.value().ok);
  EXPECT_TRUE(final.value().partial());
  EXPECT_EQ(final.value().header.at("interrupt"), "CANCELLED");
}

TEST_F(ReplicationTest, AdminCancelUnknownSessionAndIdAreStructuredErrs) {
  StartLeader();
  Client client = ConnectLeader();

  // Unknown session number.
  auto no_session = client.Roundtrip("cancel 999999/1");
  ASSERT_TRUE(no_session.ok());
  EXPECT_FALSE(no_session.value().ok);
  EXPECT_EQ(no_session.value().code, "NOT_FOUND");
  EXPECT_NE(no_session.value().message.find("no session"),
            std::string::npos);

  // Known session (our own fd via INSPECT), unknown id.
  auto inspect = client.Roundtrip("inspect");
  ASSERT_TRUE(inspect.ok());
  std::string own_fd;
  for (const std::string& line : inspect.value().payload) {
    if (line.rfind("session fd=", 0) == 0) {
      own_fd = line.substr(std::string("session fd=").size());
    }
  }
  ASSERT_FALSE(own_fd.empty());
  auto no_id = client.Roundtrip("cancel " + own_fd + "/424242");
  ASSERT_TRUE(no_id.ok());
  EXPECT_FALSE(no_id.value().ok);
  EXPECT_EQ(no_id.value().code, "NOT_FOUND");
  EXPECT_NE(no_id.value().message.find("no in-flight query"),
            std::string::npos);

  // Malformed admin forms die at the parser.
  auto malformed = client.Roundtrip("cancel 12/");
  ASSERT_TRUE(malformed.ok());
  EXPECT_FALSE(malformed.value().ok);
}

// ------------------------------------------------- v6 grammar regression

TEST_F(ReplicationTest, V6SessionBytesAreUnchangedUnderV7) {
  // A pre-v7 control session replayed verb by verb: every reply here
  // is pinned to the exact v6 rendering (deterministic replies only —
  // no latency headers), so the v7 additions are provably additive.
  StartLeader();
  Client client = ConnectLeader();

  auto use = client.Roundtrip("use power");
  ASSERT_TRUE(use.ok());
  EXPECT_EQ(use.value().kind, "Use");
  EXPECT_EQ(use.value().header.at("series"), "10");
  EXPECT_EQ(use.value().header.at("durable"), "1");

  // Same-session cancel of an unknown id: the v6 NOT_FOUND bytes,
  // including the id= echo.
  auto cancel = client.Roundtrip("cancel 424242");
  ASSERT_TRUE(cancel.ok());
  EXPECT_FALSE(cancel.value().ok);
  EXPECT_EQ(cancel.value().code, "NOT_FOUND");
  EXPECT_EQ(cancel.value().id(), 424242u);
  EXPECT_EQ(cancel.value().message,
            "no in-flight query with id 424242 — already completed, or "
            "never sent");

  // An unknown verb is the same BAD_REQUEST it always was.
  auto bad = client.Roundtrip("manifesto");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().ok);

  // HEALTH on a non-replica: no replica_lag check line (the gate is
  // absent, not vacuously green).
  auto health = client.Roundtrip("health");
  ASSERT_TRUE(health.ok());
  ASSERT_TRUE(health.value().ok);
  for (const std::string& line : health.value().payload) {
    EXPECT_EQ(line.rfind("check name=replica_lag", 0), std::string::npos)
        << line;
  }
}

}  // namespace
}  // namespace server
}  // namespace onex

// Tests for incremental base maintenance (OnexBase::AppendSeries): the
// Algorithm-1 invariants must keep holding after appends, appended data
// must become queryable, and stats must track the growth.

#include <gtest/gtest.h>

#include <set>

#include "core/onex_base.h"
#include "core/query_processor.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"

namespace onex {
namespace {

OnexBase BuildTestBase(size_t n_series = 8) {
  GenOptions gen;
  gen.num_series = n_series;
  gen.length = 24;
  gen.seed = 42;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto result = OnexBase::Build(std::move(d), options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TimeSeries NewSeries(uint64_t seed) {
  GenOptions gen;
  gen.num_series = 1;
  gen.length = 24;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  return d[0];
}

uint64_t KeyOf(const SubsequenceRef& ref) {
  return (static_cast<uint64_t>(ref.series) << 40) |
         (static_cast<uint64_t>(ref.start) << 16) | ref.length;
}

TEST(MaintenanceTest, AppendGrowsDatasetAndStats) {
  OnexBase base = BuildTestBase();
  const uint64_t before_subs = base.stats().num_subsequences;
  const size_t before_series = base.dataset().size();
  ASSERT_TRUE(base.AppendSeries(NewSeries(99)).ok());
  EXPECT_EQ(base.dataset().size(), before_series + 1);
  // The new series contributes (24-8+1) + (24-16+1) + (24-24+1)
  // subsequences at lengths 8, 16, 24.
  EXPECT_EQ(base.stats().num_subsequences, before_subs + 17 + 9 + 1);
}

TEST(MaintenanceTest, CoverageInvariantHoldsAfterAppend) {
  OnexBase base = BuildTestBase();
  ASSERT_TRUE(base.AppendSeries(NewSeries(7)).ok());
  ASSERT_TRUE(base.AppendSeries(NewSeries(8)).ok());
  for (size_t length : base.gti().Lengths()) {
    const GtiEntry* entry = base.EntryFor(length);
    std::set<uint64_t> seen;
    size_t total = 0;
    for (const auto& group : entry->groups) {
      for (const auto& member : group.members) {
        EXPECT_TRUE(seen.insert(KeyOf(member.ref)).second);
        ++total;
      }
    }
    EXPECT_EQ(total, base.dataset().size() * (24 - length + 1));
  }
}

TEST(MaintenanceTest, AppendedDataIsQueryable) {
  OnexBase base = BuildTestBase();
  TimeSeries fresh = NewSeries(1234);
  ASSERT_TRUE(base.AppendSeries(fresh).ok());
  const uint32_t new_id = static_cast<uint32_t>(base.dataset().size() - 1);

  // Query with a fragment of the appended series: the exact fragment is
  // in the base, but ONEX descends into the group whose representative
  // is DTW-nearest, which may be a sibling group — so assert a
  // near-zero distance rather than exactly zero (the same inherent
  // approximation the paper's accuracy tables quantify).
  const auto view = base.dataset()[new_id].Subsequence(5, 16);
  std::vector<double> query(view.begin(), view.end());
  QueryProcessor processor(&base);
  auto result = processor.FindBestMatchOfLength(
      std::span<const double>(query.data(), query.size()), 16);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().distance, 0.02);
}

TEST(MaintenanceTest, IndexStructuresStayConsistent) {
  OnexBase base = BuildTestBase();
  ASSERT_TRUE(base.AppendSeries(NewSeries(55)).ok());
  for (size_t length : base.gti().Lengths()) {
    const GtiEntry* entry = base.EntryFor(length);
    const size_t g = entry->NumGroups();
    ASSERT_EQ(entry->dc.size(), g * g);
    ASSERT_EQ(entry->sum_sorted.size(), g);
    for (const auto& group : entry->groups) {
      EXPECT_EQ(group.envelope.size(), length);
      for (size_t i = 1; i < group.members.size(); ++i) {
        EXPECT_LE(group.members[i - 1].ed_to_rep,
                  group.members[i].ed_to_rep);
      }
    }
  }
}

TEST(MaintenanceTest, IncrementalMatchesScratchBuildStatistically) {
  // Appending one-by-one is order-dependent (the running averages see
  // different orders), so exact equality with a scratch build is not
  // expected — but coverage and the group-count scale must agree.
  OnexBase incremental = BuildTestBase(8);
  for (uint64_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(incremental.AppendSeries(NewSeries(100 + s)).ok());
  }

  GenOptions gen;
  gen.num_series = 8;
  gen.length = 24;
  gen.seed = 42;
  Dataset all = MakeItalyPower(gen);
  MinMaxNormalize(&all);
  for (uint64_t s = 0; s < 4; ++s) all.Add(NewSeries(100 + s));
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto scratch = OnexBase::Build(std::move(all), options);
  ASSERT_TRUE(scratch.ok());

  EXPECT_EQ(incremental.stats().num_subsequences,
            scratch.value().stats().num_subsequences);
  const double inc_groups =
      static_cast<double>(incremental.stats().num_representatives);
  const double scr_groups =
      static_cast<double>(scratch.value().stats().num_representatives);
  EXPECT_LT(std::abs(inc_groups - scr_groups) / scr_groups, 0.5);
}

TEST(MaintenanceTest, EmptySeriesRejected) {
  OnexBase base = BuildTestBase();
  EXPECT_EQ(base.AppendSeries(TimeSeries()).code(),
            Status::Code::kInvalidArgument);
}

TEST(MaintenanceTest, ShortSeriesOnlyFeedsShortLengths) {
  OnexBase base = BuildTestBase();
  const uint64_t before = base.stats().num_subsequences;
  // A 10-point series only produces length-8 subsequences (spec 8/16/24).
  std::vector<double> values(10, 0.5);
  ASSERT_TRUE(base.AppendSeries(TimeSeries(values, 1)).ok());
  EXPECT_EQ(base.stats().num_subsequences, before + (10 - 8 + 1));
}

}  // namespace
}  // namespace onex

// Property tests for the paper's theoretical foundation: Lemma 1 (two
// sequences within ST/2 of the same representative are within ST of each
// other, in normalized ED) and Lemma 2 (the ED-DTW triangle inequality:
// ED(Y, Y') <= ST/2 and DTW(X, Y) <= ST/2 imply DTW(X, Y') <= ST, all
// normalized). These are the guarantees that let ONEX search the compact
// R-Space instead of the raw data, so we verify them over thousands of
// random instances, including unequal query lengths.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

std::vector<double> RandomVector(size_t n, Rng* rng, double lo = 0.0,
                                 double hi = 1.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->UniformDouble(lo, hi);
  return v;
}

// Produces Y within normalized ED <= bound of X, by bounded perturbation:
// every point moves by at most `bound`, so ED/sqrt(n) <= bound.
std::vector<double> Perturb(const std::vector<double>& x, double bound,
                            Rng* rng) {
  std::vector<double> y = x;
  for (auto& value : y) value += rng->UniformDouble(-bound, bound);
  return y;
}

class LemmaSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {
};

// Lemma 1: ED(X,R) <= ST/2 and ED(Y,R) <= ST/2 => ED(X,Y) <= ST.
TEST_P(LemmaSweep, Lemma1HoldsForRandomInstances) {
  const auto [n, st, seed] = GetParam();
  Rng rng(seed);
  int verified = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const auto r = RandomVector(n, &rng);
    const auto x = Perturb(r, st / 2.0, &rng);
    const auto y = Perturb(r, st / 2.0, &rng);
    const double ed_xr = NormalizedEuclidean(S(x), S(r));
    const double ed_yr = NormalizedEuclidean(S(y), S(r));
    if (ed_xr > st / 2.0 || ed_yr > st / 2.0) continue;  // Premise filter.
    ++verified;
    EXPECT_LE(NormalizedEuclidean(S(x), S(y)), st + 1e-12);
  }
  EXPECT_GT(verified, 100);  // The construction satisfies the premises.
}

// Lemma 2, equal lengths: DTW(X,Y) <= ST/2 and ED(Y,Y') <= ST/2 =>
// DTW(X,Y') <= ST. Normalized DTW uses the unconstrained distance, the
// form the lemma is proved for.
TEST_P(LemmaSweep, Lemma2HoldsForEqualLengths) {
  const auto [n, st, seed] = GetParam();
  Rng rng(seed + 1000);
  int verified = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Y is the "representative", X a sequence warping-similar to it,
    // Y' a group member ED-close to it.
    const auto y = RandomVector(n, &rng);
    const auto x = Perturb(y, st * 0.4, &rng);
    const auto y_prime = Perturb(y, st / 2.0, &rng);
    const double dtw_xy = NormalizedDtw(S(x), S(y));
    const double ed_yy = NormalizedEuclidean(S(y), S(y_prime));
    if (dtw_xy > st / 2.0 || ed_yy > st / 2.0) continue;
    ++verified;
    EXPECT_LE(NormalizedDtw(S(x), S(y_prime)), st + 1e-12)
        << "n=" << n << " st=" << st << " trial=" << trial;
  }
  EXPECT_GT(verified, 50);
}

// Lemma 2, unequal lengths (the paper's proof sketch case): X of length
// m <= n, Y and Y' of length n.
TEST_P(LemmaSweep, Lemma2HoldsForUnequalLengths) {
  const auto [n, st, seed] = GetParam();
  if (n < 8) return;
  Rng rng(seed + 2000);
  int verified = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto y = RandomVector(n, &rng);
    const auto y_prime = Perturb(y, st / 2.0, &rng);
    // X: a shorter, smoothly resampled variant of Y (warping-similar).
    const size_t m = n / 2 + rng.Uniform(n / 2);
    std::vector<double> x(m);
    for (size_t i = 0; i < m; ++i) {
      const double pos = static_cast<double>(i) * (n - 1) / (m - 1);
      const size_t lo = static_cast<size_t>(pos);
      const double frac = pos - lo;
      const double base =
          y[lo] * (1 - frac) + y[std::min(lo + 1, n - 1)] * frac;
      x[i] = base + rng.UniformDouble(-st * 0.2, st * 0.2);
    }
    const double dtw_xy = NormalizedDtw(S(x), S(y));
    const double ed_yy = NormalizedEuclidean(S(y), S(y_prime));
    if (dtw_xy > st / 2.0 || ed_yy > st / 2.0) continue;
    ++verified;
    EXPECT_LE(NormalizedDtw(S(x), S(y_prime)), st + 1e-12);
  }
  EXPECT_GT(verified, 20);
}

INSTANTIATE_TEST_SUITE_P(
    Space, LemmaSweep,
    ::testing::Combine(::testing::Values<size_t>(4, 16, 64),
                       ::testing::Values(0.1, 0.2, 0.5),
                       ::testing::Values<uint64_t>(1, 2)));

// Adversarial check of the lemma's slack: the bound ST must not be
// wildly loose on structured (non-random) inputs either.
TEST(LemmaTightnessTest, ConclusionCanApproachTheBound) {
  // X = Y = const 0, Y' = const ST/2 offset: ED(Y,Y') = ST/2 and
  // DTW(X,Y) = 0; DTW(X,Y') = (ST/2) * sqrt(n) / (2n) — well within ST,
  // demonstrating (as the paper notes) that the inequality is safe.
  const size_t n = 16;
  const double st = 0.2;
  std::vector<double> x(n, 0.0), y(n, 0.0), y_prime(n, st / 2.0);
  EXPECT_NEAR(NormalizedEuclidean(S(y), S(y_prime)), st / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(NormalizedDtw(S(x), S(y)), 0.0);
  EXPECT_LE(NormalizedDtw(S(x), S(y_prime)), st);
}

// The well-known ED triangle inequality the paper's Lemma 1 mirrors.
TEST(LemmaTightnessTest, NormalizedEdTriangleInequality) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = RandomVector(20, &rng);
    const auto b = RandomVector(20, &rng);
    const auto c = RandomVector(20, &rng);
    EXPECT_LE(NormalizedEuclidean(S(a), S(c)),
              NormalizedEuclidean(S(a), S(b)) +
                  NormalizedEuclidean(S(b), S(c)) + 1e-12);
  }
}

// DTW itself violates the triangle inequality — the reason the paper
// needs Lemma 2 instead of a metric argument. Verify our DTW exhibits
// the violation on the canonical counterexample.
TEST(LemmaTightnessTest, DtwTriangleInequalityCanFail) {
  // b's elasticity lets it match both constant runs cheaply (one bad
  // point each), but a and c differ at every one of their five points:
  // DTW(a,b) = DTW(b,c) = 1 while DTW(a,c) = sqrt(5) > 2.
  std::vector<double> a = {0.0, 0.0, 0.0, 0.0, 0.0};
  std::vector<double> b = {0.0, 1.0};
  std::vector<double> c = {1.0, 1.0, 1.0, 1.0, 1.0};
  const double ab = DtwDistance(S(a), S(b));
  const double bc = DtwDistance(S(b), S(c));
  const double ac = DtwDistance(S(a), S(c));
  EXPECT_DOUBLE_EQ(ab, 1.0);
  EXPECT_DOUBLE_EQ(bc, 1.0);
  EXPECT_NEAR(ac, std::sqrt(5.0), 1e-12);
  EXPECT_GT(ac, ab + bc);
}

}  // namespace
}  // namespace onex

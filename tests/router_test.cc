// Tests for the v8 scatter-gather query router (src/router/): the
// shard-set grammar and replica-aware routing table, the probe parsers
// (HEALTH role detection, LIST dataset discovery), the text-level merge
// engine (distance re-ranking, stats summing, final-block rendering,
// deadline budget arithmetic), and the wire-level router itself —
// write-to-leader vs read-to-freshest-follower, scatter-gather parity
// against a single-node union run, mid-query upstream kill with
// idempotent re-submit, CANCEL fan-out, and deadline propagation.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "api/engine.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "router/merge.h"
#include "router/router.h"
#include "router/routing_table.h"
#include "router/upstream.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/replica.h"
#include "server/server.h"

namespace onex {
namespace router {
namespace {

namespace fs = std::filesystem;

Engine BuildEngineFrom(Dataset d) {
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto built = Engine::Build(std::move(d), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

Engine BuildSmallEngine(uint64_t seed, size_t num_series = 10) {
  GenOptions gen;
  gen.num_series = num_series;
  gen.length = 24;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  return BuildEngineFrom(std::move(d));
}

UpstreamHealth ReadyLeader() {
  UpstreamHealth h;
  h.reachable = h.live = h.ready = true;
  return h;
}

UpstreamHealth ReadyFollower(double lag_s) {
  UpstreamHealth h = ReadyLeader();
  h.follower = true;
  h.replica_lag_s = lag_s;
  return h;
}

// ------------------------------------------------- shard-set grammar

TEST(ShardSetTest, GrammarMatchesExactStarAndPrefix) {
  EXPECT_FALSE(IsShardSet("sales"));
  EXPECT_TRUE(IsShardSet("sales-*"));
  EXPECT_TRUE(IsShardSet("*"));

  EXPECT_TRUE(MatchesShardSet("sales", "sales"));
  EXPECT_FALSE(MatchesShardSet("sales", "sales-a"));
  EXPECT_TRUE(MatchesShardSet("*", "anything"));
  EXPECT_TRUE(MatchesShardSet("sales-*", "sales-a"));
  EXPECT_TRUE(MatchesShardSet("sales-*", "sales-"));
  EXPECT_FALSE(MatchesShardSet("sales-*", "sale"));
  EXPECT_FALSE(MatchesShardSet("sales-*", "power"));
}

// ---------------------------------------------------- routing table

TEST(RoutingTableTest, ExpandDeduplicatesAndSorts) {
  RoutingTable table({{"h", 1}, {"h", 2}, {"h", 3}});
  table.Update(0, ReadyLeader(), {"sales-b", "power"});
  table.Update(1, ReadyFollower(0.1), {"sales-b", "sales-a"});
  table.Update(2, ReadyFollower(0.2), {"other"});

  EXPECT_EQ(table.Expand("sales-*"),
            (std::vector<std::string>{"sales-a", "sales-b"}));
  EXPECT_EQ(table.Expand("power"), std::vector<std::string>{"power"});
  EXPECT_TRUE(table.Expand("missing-*").empty());
  EXPECT_EQ(table.Expand("*").size(), 4u);
}

TEST(RoutingTableTest, PickReadPrefersLowestLagReadyFollower) {
  RoutingTable table({{"h", 1}, {"h", 2}, {"h", 3}, {"h", 4}});
  table.Update(0, ReadyLeader(), {"power"});
  table.Update(1, ReadyFollower(2.5), {"power"});
  table.Update(2, ReadyFollower(0.5), {"power"});
  // A follower that is not ready never serves reads, however fresh.
  UpstreamHealth draining = ReadyFollower(0.0);
  draining.ready = false;
  table.Update(3, draining, {"power"});

  EXPECT_EQ(table.PickRead("power", {}), std::optional<size_t>(2));
  // Failover exclusion walks to the next-freshest follower, then the
  // leader, then gives up.
  EXPECT_EQ(table.PickRead("power", {2}), std::optional<size_t>(1));
  EXPECT_EQ(table.PickRead("power", {2, 1}), std::optional<size_t>(0));
  EXPECT_EQ(table.PickRead("power", {2, 1, 0}), std::nullopt);
  // A dataset only the leader serves skips the follower tier.
  table.Update(0, ReadyLeader(), {"power", "solo"});
  EXPECT_EQ(table.PickRead("solo", {}), std::optional<size_t>(0));
  EXPECT_EQ(table.PickRead("nowhere", {}), std::nullopt);
}

TEST(RoutingTableTest, PickWriteRequiresReadyNonFollower) {
  RoutingTable table({{"h", 1}, {"h", 2}});
  table.Update(0, ReadyFollower(0.0), {"power"});
  table.Update(1, ReadyLeader(), {"power"});
  EXPECT_EQ(table.PickWrite("power"), std::optional<size_t>(1));

  UpstreamHealth down = ReadyLeader();
  down.ready = false;
  table.Update(1, down, {"power"});
  EXPECT_EQ(table.PickWrite("power"), std::nullopt);
}

// ---------------------------------------------------- probe parsers

TEST(ProbeParseTest, HealthReplyYieldsRoleAndLag) {
  server::WireResponse reply;
  reply.ok = true;
  reply.kind = "Health";
  reply.header = {{"live", "1"}, {"ready", "1"}};
  reply.payload = {"check name=workers ok=1",
                   "check name=replica_lag ok=1 lag_s=0.250 budget_s=5.000 "
                   "applied_seq=14"};
  const UpstreamHealth follower = UpstreamPool::ParseHealth(reply);
  EXPECT_TRUE(follower.reachable);
  EXPECT_TRUE(follower.live);
  EXPECT_TRUE(follower.ready);
  EXPECT_TRUE(follower.follower);
  EXPECT_DOUBLE_EQ(follower.replica_lag_s, 0.25);

  // No replica_lag gate row: a leader, not a follower with zero lag.
  reply.payload = {"check name=workers ok=1"};
  reply.header["ready"] = "0";
  const UpstreamHealth leader = UpstreamPool::ParseHealth(reply);
  EXPECT_TRUE(leader.reachable);
  EXPECT_FALSE(leader.follower);
  EXPECT_FALSE(leader.ready);

  server::WireResponse bad;
  bad.ok = false;
  bad.code = "IO_ERROR";
  EXPECT_FALSE(UpstreamPool::ParseHealth(bad).reachable);
}

TEST(ProbeParseTest, ListReplyYieldsDatasetNames) {
  server::WireResponse reply;
  reply.ok = true;
  reply.kind = "List";
  reply.payload = {"dataset name=power resident=1 pinned=0 durable=1 dirty=0",
                   "dataset name=ecg resident=0 pinned=0 durable=1 dirty=0",
                   "unrelated line"};
  EXPECT_EQ(UpstreamPool::ParseDatasets(reply),
            (std::vector<std::string>{"power", "ecg"}));
  reply.ok = false;
  EXPECT_TRUE(UpstreamPool::ParseDatasets(reply).empty());
}

// ------------------------------------------------------- merge units

TEST(MergeTest, KeepLimitTracksQueryShape) {
  EXPECT_EQ(MergeKeepLimit(QueryRequest(BestMatchRequest{{0.1}, 0})), 1u);
  EXPECT_EQ(MergeKeepLimit(QueryRequest(KSimilarRequest{{0.1}, 7, 0})), 7u);
  EXPECT_EQ(MergeKeepLimit(QueryRequest(RangeWithinRequest{{0.1}, 0.2, 0,
                                                           false})),
            std::numeric_limits<size_t>::max());
  EXPECT_TRUE(IsMatchShaped(QueryRequest(BestMatchRequest{{0.1}, 0})));
  EXPECT_FALSE(IsMatchShaped(QueryRequest(SeasonalRequest{{}, 8})));
}

TEST(MergeTest, MatchRowsRankByDistanceWithDeterministicTies) {
  const std::vector<std::vector<std::string>> legs = {
      {"match series=0 start=0 length=8 distance=0.5 group=1",
       "match series=1 start=2 length=8 distance=0.125 group=2"},
      {"match series=0 start=4 length=8 distance=0.125 group=1",
       "match series=2 start=0 length=8 distance=0.25 group=3",
       "match series=3 start=0 length=8 distance=nonsense"}};

  const auto merged = MergeMatchRows(legs, 4);
  ASSERT_EQ(merged.size(), 4u);
  // Equal distances tie-break by leg index, then arrival order; the
  // malformed row sorts last (+inf) and is cut by the keep limit.
  EXPECT_EQ(merged[0], legs[0][1]);
  EXPECT_EQ(merged[1], legs[1][0]);
  EXPECT_EQ(merged[2], legs[1][1]);
  EXPECT_EQ(merged[3], legs[0][0]);

  EXPECT_EQ(MergeMatchRows(legs, 1),
            std::vector<std::string>{legs[0][1]});
  EXPECT_EQ(MatchRowDistance("match series=0"),
            std::numeric_limits<double>::infinity());
}

TEST(MergeTest, StatsSumAcrossLegsAndRenderServerFormat) {
  MergedStats stats;
  stats.Absorb("stats lengths_scanned=3 reps_compared=10 reps_pruned=4 "
               "members_compared=7 lemma2_admitted=1");
  stats.Absorb("stats lengths_scanned=2 reps_compared=5 reps_pruned=1 "
               "members_compared=3 lemma2_admitted=0");
  EXPECT_EQ(stats.Render(),
            "stats lengths_scanned=5 reps_compared=15 reps_pruned=5 "
            "members_compared=10 lemma2_admitted=1\n");
}

TEST(MergeTest, SplitFinalPayloadRoutesRowsStatsAndTrace) {
  MergedStats stats;
  std::vector<std::string> rows;
  std::vector<std::string> extra;
  SplitFinalPayload(
      {"stats lengths_scanned=1 reps_compared=2 reps_pruned=0 "
       "members_compared=2 lemma2_admitted=0",
       "match series=0 start=0 length=8 distance=0.5 group=1",
       "group id=3 members=2", "TRACE stage=cascade us=12"},
      &stats, &rows, &extra);
  EXPECT_EQ(stats.lengths_scanned, 1u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], "group id=3 members=2");
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0], "TRACE stage=cascade us=12");
}

TEST(MergeTest, RenderMergedFinalMatchesServerGrammar) {
  MergedStats stats;
  stats.Absorb("stats lengths_scanned=3 reps_compared=4 reps_pruned=2 "
               "members_compared=1 lemma2_admitted=0");
  const std::vector<std::string> rows = {
      "match series=1 start=2 length=8 distance=0.125 group=2"};
  EXPECT_EQ(RenderMergedFinal("KSimilar", 7, rows, 1234, false, "", stats,
                              {}),
            "OK KSimilar id=7 matches=1 latency_us=1234\n"
            "stats lengths_scanned=3 reps_compared=4 reps_pruned=2 "
            "members_compared=1 lemma2_admitted=0\n"
            "match series=1 start=2 length=8 distance=0.125 group=2\n"
            ".\n");
  // Partial coverage keeps the v3 partial/interrupt header grammar, and
  // the untagged form drops id= exactly like the server.
  const std::string partial = RenderMergedFinal(
      "Seasonal", 0, {}, 10, true, "IO_ERROR", MergedStats{}, {});
  EXPECT_EQ(partial.substr(0, partial.find('\n')),
            "OK Seasonal groups=0 latency_us=10 partial=1 "
            "interrupt=IO_ERROR");
}

TEST(MergeTest, RemainingBudgetClampsButNeverInventsADeadline) {
  EXPECT_EQ(RemainingBudgetMs(0, 12345), 0u);   // Unbounded stays so.
  EXPECT_EQ(RemainingBudgetMs(100, 40), 60u);
  EXPECT_EQ(RemainingBudgetMs(100, 100), 1u);   // Exhausted: bounce fast,
  EXPECT_EQ(RemainingBudgetMs(100, 5000), 1u);  // never run unbounded.
}

// -------------------------------------------- single-upstream fixture

/// One in-process server (non-durable catalog) behind an in-process
/// router. Datasets: the sharded pair sales-a / sales-b (one normalized
/// union split in half) plus the union itself for parity runs.
class RouterWireTest : public ::testing::Test {
 protected:
  void StartUpstream(server::ServerOptions options = {}) {
    catalog_ = std::make_shared<server::Catalog>(server::CatalogOptions{});
    GenOptions gen;
    gen.num_series = 20;
    gen.length = 24;
    gen.seed = 42;
    union_data_ = MakeItalyPower(gen);
    MinMaxNormalize(&union_data_);  // Normalize BEFORE splitting: shard
                                    // rows must be byte-comparable.
    Dataset a("sales-a");
    Dataset b("sales-b");
    for (size_t i = 0; i < union_data_.size(); ++i) {
      (i < 10 ? a : b).Add(union_data_[i]);
    }
    catalog_->Register("sales-a", BuildEngineFrom(std::move(a)));
    catalog_->Register("sales-b", BuildEngineFrom(std::move(b)));
    Dataset u = union_data_;
    catalog_->Register("union", BuildEngineFrom(std::move(u)));
    auto started = server::Server::Start(std::move(options), catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    upstream_ = std::move(started).value();
  }

  void StartRouter() {
    RouterOptions options;
    options.upstreams = {{"127.0.0.1", upstream_->port()}};
    options.pool.probe_interval_ms = 60000;  // Tests re-probe by hand.
    auto started = Router::Start(options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    router_ = std::move(started).value();
  }

  void TearDown() override {
    if (router_) router_->Stop();
  }

  server::Client Connect(uint16_t port) {
    auto client = server::Client::Connect("127.0.0.1", port);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  /// An in-dataset probe: a subsequence of one union series, so both
  /// the union run and exactly one shard contain a zero-distance match.
  std::vector<double> Probe(size_t series, size_t start, size_t len) {
    const auto view = union_data_[series].Subsequence(
        static_cast<uint32_t>(start), len);
    return {view.begin(), view.end()};
  }

  /// (series, start, length, distance-string) of every match row, with
  /// union series ids folded onto shard-local ids when `remap_union` —
  /// shard B re-numbers union series 10..19 as 0..9.
  static std::multiset<std::tuple<int, int, int, std::string>> MatchSet(
      const std::vector<std::string>& payload, bool remap_union) {
    std::multiset<std::tuple<int, int, int, std::string>> out;
    for (const std::string& row : payload) {
      if (row.rfind("match ", 0) != 0) continue;
      const auto kv = server::ParseKeyValues(row);
      int series = std::atoi(kv.at("series").c_str());
      if (remap_union && series >= 10) series -= 10;
      out.emplace(series, std::atoi(kv.at("start").c_str()),
                  std::atoi(kv.at("length").c_str()), kv.at("distance"));
    }
    return out;
  }

  Dataset union_data_;
  std::shared_ptr<server::Catalog> catalog_;
  std::unique_ptr<server::Server> upstream_;
  std::unique_ptr<Router> router_;
};

TEST_F(RouterWireTest, SpeaksTheWireProtocolAndRendersOwnIntrospection) {
  StartUpstream();
  StartRouter();
  server::Client client = Connect(router_->port());
  EXPECT_EQ(client.greeting(), "ONEX/8 ready");

  auto ping = client.Roundtrip("ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().kind, "Pong");

  // LIST aggregates upstream datasets with upstream counts.
  auto list = client.Roundtrip("list");
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(list.value().ok);
  EXPECT_EQ(list.value().header.at("datasets"), "3");

  // HEALTH renders one check row per upstream with its probed role.
  auto health = client.Roundtrip("health");
  ASSERT_TRUE(health.ok());
  ASSERT_TRUE(health.value().ok);
  EXPECT_EQ(health.value().header.at("ready"), "1");
  ASSERT_EQ(health.value().payload.size(), 1u);
  EXPECT_NE(health.value().payload[0].find("role=leader"),
            std::string::npos);

  // METRICS speaks the exposition grammar with the router families.
  auto metrics = client.Roundtrip("metrics");
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics.value().ok);
  std::set<std::string> families;
  for (const std::string& line : metrics.value().payload) {
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t space = line.find(' ', 7);
      families.insert(line.substr(7, space - 7));
    }
  }
  for (const char* family :
       {"onex_router_requests_total", "onex_router_failovers_total",
        "onex_router_scatter_queries_total",
        "onex_router_cancel_fanout_total",
        "onex_router_upstream_requests_total",
        "onex_router_merge_latency_seconds",
        "onex_router_upstream_healthy", "onex_router_upstream_lag_seconds",
        "onex_process_uptime_seconds"}) {
    EXPECT_TRUE(families.count(family)) << family;
  }

  // Node-local verbs are refused, not half-answered.
  auto stats = client.Roundtrip("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().code, "NOT_SUPPORTED");
  auto manifest = client.Roundtrip("manifest");
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest.value().code, "NOT_SUPPORTED");

  // Queries with nothing bound get the structured NO_DATASET error.
  auto unbound = client.Roundtrip(server::RenderRequestLine(
      QueryRequest(BestMatchRequest{Probe(0, 0, 8), 8})));
  ASSERT_TRUE(unbound.ok());
  EXPECT_EQ(unbound.value().code, server::kNoDatasetCode);

  auto missing = client.Roundtrip("use nothing-*");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().code, "NOT_FOUND");
}

TEST_F(RouterWireTest, ScatteredRangeQueryMatchesSingleNodeUnionRun) {
  StartUpstream();
  StartRouter();

  const QueryRequest query(
      RangeWithinRequest{Probe(2, 4, 8), 0.3, 8, /*exact_distances=*/true});
  const std::string line = server::RenderRequestLine(query);

  // The single-node union run: one engine over the pre-split dataset.
  server::Client direct = Connect(upstream_->port());
  ASSERT_TRUE(direct.Roundtrip("use union").ok());
  auto union_reply = direct.Roundtrip(line);
  ASSERT_TRUE(union_reply.ok());
  ASSERT_TRUE(union_reply.value().ok) << union_reply.value().message;
  const auto union_set = MatchSet(union_reply.value().payload, true);
  ASSERT_FALSE(union_set.empty());

  // The scattered run: one shard-set query through the router.
  server::Client routed = Connect(router_->port());
  auto use = routed.Roundtrip("use sales-*");
  ASSERT_TRUE(use.ok());
  ASSERT_TRUE(use.value().ok) << use.value().message;
  EXPECT_EQ(use.value().header.at("datasets"), "2");
  auto merged = routed.Roundtrip(line);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(merged.value().ok) << merged.value().message;
  EXPECT_EQ(merged.value().kind, "RangeWithin");
  EXPECT_FALSE(merged.value().partial());
  EXPECT_EQ(merged.value().header.at("matches"),
            std::to_string(union_set.size()));

  // Same matches, same exact distances — shard ids are shard-local, so
  // the union ids fold onto them (shard B = union series - 10).
  EXPECT_EQ(MatchSet(merged.value().payload, false), union_set);

  // The same scatter addressed per-query (v8 dataset= attribute, no
  // session binding) returns the same answer.
  server::Client tagged = Connect(router_->port());
  server::Client::SubmitOptions submit;
  submit.dataset = "sales-*";
  auto handle = tagged.Submit(query, submit);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  ASSERT_TRUE(final.value().ok) << final.value().message;
  EXPECT_EQ(MatchSet(final.value().payload, false), union_set);

  // A direct server, by contrast, refuses the shard-set spelling and
  // points at the router.
  auto rejected = direct.Submit(query, submit);
  ASSERT_TRUE(rejected.ok());
  auto err = rejected.value().Wait();
  ASSERT_TRUE(err.ok());
  EXPECT_FALSE(err.value().ok);
  EXPECT_EQ(err.value().code, "INVALID_ARGUMENT");
}

TEST_F(RouterWireTest, ScatteredTopKTruncatesToOneGlobalRanking) {
  StartUpstream();
  StartRouter();

  // q1k is "the k nearest members of the BEST group" — the union
  // engine may pick a different best group than either shard, so the
  // scatter contract is a global re-rank of the per-shard answers, not
  // union-engine parity (q1r covers that; its set IS decomposable).
  const QueryRequest query(KSimilarRequest{Probe(13, 2, 8), 5, 8});
  const std::string line = server::RenderRequestLine(query);

  auto distances_of = [](const std::vector<std::string>& payload) {
    std::vector<std::string> out;
    for (const std::string& row : payload) {
      if (row.rfind("match ", 0) == 0) {
        out.push_back(server::ParseKeyValues(row).at("distance"));
      }
    }
    return out;
  };

  // Expected: the 5 best of the two per-shard answers, merged by hand.
  server::Client direct = Connect(upstream_->port());
  std::vector<double> expected;
  for (const char* shard : {"sales-a", "sales-b"}) {
    ASSERT_TRUE(direct.Roundtrip(std::string("use ") + shard).ok());
    auto reply = direct.Roundtrip(line);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply.value().ok) << reply.value().message;
    for (const std::string& d : distances_of(reply.value().payload)) {
      expected.push_back(std::strtod(d.c_str(), nullptr));
    }
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_GE(expected.size(), 5u);
  expected.resize(5);

  server::Client routed = Connect(router_->port());
  ASSERT_TRUE(routed.Roundtrip("use sales-*").ok());
  auto merged = routed.Roundtrip(line);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(merged.value().ok) << merged.value().message;
  EXPECT_EQ(merged.value().header.at("matches"), "5");

  const auto merged_text = distances_of(merged.value().payload);
  ASSERT_EQ(merged_text.size(), 5u);  // k total, not k per shard.
  std::vector<double> got;
  for (const std::string& d : merged_text) {
    got.push_back(std::strtod(d.c_str(), nullptr));
  }
  EXPECT_EQ(got, expected);  // One global ascending ranking.
  EXPECT_GE(router_->metrics().requests(), 1u);
}

TEST_F(RouterWireTest, CancelFansOutToEveryLegAndMergesPartials) {
  // The single worker parks at job start until released, so the CANCEL
  // lands while the scattered query is provably in flight upstream.
  std::mutex mutex;
  std::condition_variable cv;
  bool job_started = false;
  bool release = false;
  server::ServerOptions options;
  options.num_workers = 1;
  options.on_job_start = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    job_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  StartUpstream(std::move(options));
  StartRouter();

  server::Client client = Connect(router_->port());
  ASSERT_TRUE(client.Roundtrip("use sales-*").ok());
  auto handle = client.Submit(QueryRequest(
      RangeWithinRequest{Probe(0, 0, 8), 10.0, 0, false}));
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return job_started; });
  }

  // CANCEL overtakes the in-flight query on the session thread and is
  // acknowledged with the server's own cancel grammar.
  EXPECT_TRUE(handle.value().Cancel().ok());
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();

  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  ASSERT_TRUE(final.value().ok);
  EXPECT_TRUE(final.value().partial());
  EXPECT_EQ(final.value().header.at("interrupt"), "CANCELLED");

  // The fan-out shows up on the router's own exposition.
  server::Client metrics_client = Connect(router_->port());
  auto metrics = metrics_client.Roundtrip("metrics");
  ASSERT_TRUE(metrics.ok());
  bool saw_fanout = false;
  for (const std::string& line : metrics.value().payload) {
    if (line.rfind("onex_router_cancel_fanout_total ", 0) == 0) {
      saw_fanout = std::strtod(line.c_str() + line.rfind(' '), nullptr) >= 1;
    }
  }
  EXPECT_TRUE(saw_fanout);
}

TEST_F(RouterWireTest, DeadlineBudgetPropagatesToUpstreamLegs) {
  // Stall the worker past the deadline: the upstream starts the query
  // already expired, which only happens if the router forwarded the
  // client's budget (minus elapsed time) on the upstream leg.
  server::ServerOptions options;
  options.num_workers = 1;
  options.on_job_start = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  };
  StartUpstream(std::move(options));
  StartRouter();

  server::Client client = Connect(router_->port());
  ASSERT_TRUE(client.Roundtrip("use sales-a").ok());
  server::Client::SubmitOptions submit;
  submit.deadline_ms = 5;
  auto handle = client.Submit(
      QueryRequest(RangeWithinRequest{Probe(0, 0, 8), 10.0, 0, false}),
      submit);
  ASSERT_TRUE(handle.ok());
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  ASSERT_TRUE(final.value().ok) << final.value().message;
  EXPECT_TRUE(final.value().partial());
  EXPECT_EQ(final.value().header.at("interrupt"), "DEADLINE_EXCEEDED");
}

// --------------------------------------- replicated-topology fixture

/// A durable leader plus one synced read-only follower behind the
/// router — the deployment shape the routing tier exists for.
class RouterReplicatedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string unique =
        std::to_string(::getpid()) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    leader_dir_ = fs::path(::testing::TempDir()) / ("rt_leader_" + unique);
    follower_dir_ =
        fs::path(::testing::TempDir()) / ("rt_follower_" + unique);
    fs::create_directories(leader_dir_);
    fs::create_directories(follower_dir_);
  }

  void TearDown() override {
    if (router_) router_->Stop();
    std::error_code ec;
    fs::remove_all(leader_dir_, ec);
    fs::remove_all(follower_dir_, ec);
  }

  void StartLeader() {
    server::CatalogOptions catalog_options;
    catalog_options.data_dir = leader_dir_.string();
    catalog_options.durable = true;
    catalog_options.storage.background_checkpointer = false;
    leader_catalog_ =
        std::make_shared<server::Catalog>(catalog_options);
    leader_catalog_->Register("power", BuildSmallEngine(42));
    auto started =
        server::Server::Start(server::ServerOptions{}, leader_catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    leader_ = std::move(started).value();
  }

  void StartFollower(server::ServerOptions options = {}) {
    server::CatalogOptions catalog_options;
    catalog_options.data_dir = follower_dir_.string();
    catalog_options.durable = true;
    catalog_options.read_only = true;
    catalog_options.storage.background_checkpointer = false;
    follower_catalog_ =
        std::make_shared<server::Catalog>(catalog_options);
    server::ReplicaOptions replica;
    replica.leader_host = "127.0.0.1";
    replica.leader_port = leader_->port();
    replica.data_dir = follower_dir_.string();
    syncer_ = std::make_unique<server::ReplicaSyncer>(
        replica, follower_catalog_.get());
    ASSERT_TRUE(syncer_->SyncOnce().ok());
    options.replica_status = [this] { return syncer_->status(); };
    options.replica_lag_budget_s = 3600.0;
    auto started =
        server::Server::Start(std::move(options), follower_catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    follower_ = std::move(started).value();
  }

  void StartRouter() {
    RouterOptions options;
    options.upstreams = {{"127.0.0.1", leader_->port()},
                         {"127.0.0.1", follower_->port()}};
    options.pool.probe_interval_ms = 60000;
    auto started = Router::Start(options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    router_ = std::move(started).value();
  }

  server::Client Connect(uint16_t port) {
    auto client = server::Client::Connect("127.0.0.1", port);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  static QueryRequest PowerQuery() {
    std::vector<double> probe(8);
    for (size_t i = 0; i < probe.size(); ++i) {
      probe[i] = 0.2 + 0.05 * static_cast<double>(i % 4);
    }
    return QueryRequest(KSimilarRequest{std::move(probe), 4, 8});
  }

  fs::path leader_dir_;
  fs::path follower_dir_;
  std::shared_ptr<server::Catalog> leader_catalog_;
  std::shared_ptr<server::Catalog> follower_catalog_;
  std::unique_ptr<server::ReplicaSyncer> syncer_;
  std::unique_ptr<server::Server> leader_;
  std::unique_ptr<server::Server> follower_;
  std::unique_ptr<Router> router_;
};

TEST_F(RouterReplicatedTest, ReadsServeFromFollowerWritesGoToLeader) {
  StartLeader();
  StartFollower();
  StartRouter();

  // The synchronous startup probes learned both roles.
  const auto snapshot = router_->table().Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_FALSE(snapshot[0].health.follower);
  EXPECT_TRUE(snapshot[1].health.follower);
  EXPECT_TRUE(snapshot[1].health.ready);

  server::Client client = Connect(router_->port());
  ASSERT_TRUE(client.Roundtrip("use power").ok());
  auto read = client.Roundtrip(server::RenderRequestLine(PowerQuery()));
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read.value().ok) << read.value().message;
  // The read went to the follower, not the leader.
  EXPECT_EQ(router_->metrics().upstream_requests(1, true), 1u);
  EXPECT_EQ(router_->metrics().upstream_requests(0, false), 0u);

  // A write through the same session is forwarded to the leader and
  // relayed in the server's own append grammar.
  std::vector<double> values(24, 0.5);
  auto append = client.Roundtrip(
      server::RenderAppendLine(server::AppendRequest{values, 3}));
  ASSERT_TRUE(append.ok());
  ASSERT_TRUE(append.value().ok) << append.value().message;
  EXPECT_EQ(append.value().kind, "Append");
  EXPECT_EQ(append.value().header.at("series"), "10");
  EXPECT_EQ(append.value().header.at("durable"), "1");
  EXPECT_EQ(router_->metrics().upstream_requests(0, false), 1u);

  // The leader really holds the append (11 series now); the follower
  // still serves the pre-append state until its next sync.
  server::Client direct = Connect(leader_->port());
  auto use = direct.Roundtrip("use power");
  ASSERT_TRUE(use.ok());
  EXPECT_EQ(use.value().header.at("series"), "11");
}

TEST_F(RouterReplicatedTest, UpstreamDeathMidQueryFailsOverIdempotently) {
  StartLeader();

  // The follower's worker announces the job, then stalls long enough
  // for the test to kill the node under it.
  std::mutex mutex;
  std::condition_variable cv;
  bool job_started = false;
  server::ServerOptions options;
  options.num_workers = 1;
  options.on_job_start = [&] {
    {
      std::lock_guard<std::mutex> lock(mutex);
      job_started = true;
    }
    cv.notify_all();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  };
  StartFollower(std::move(options));
  StartRouter();

  // Baseline: the same query straight at the leader.
  const std::string line = server::RenderRequestLine(PowerQuery());
  server::Client direct = Connect(leader_->port());
  ASSERT_TRUE(direct.Roundtrip("use power").ok());
  auto baseline = direct.Roundtrip(line);
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline.value().ok);

  server::Client client = Connect(router_->port());
  ASSERT_TRUE(client.Roundtrip("use power").ok());
  auto handle = client.Submit(PowerQuery());
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return job_started; });
  }
  // The query is in flight on the follower. Kill it: the leg's link
  // dies, its reconnects exhaust against the closed port, and the
  // router re-submits the tagged query to the leader — idempotently,
  // with the original id (reads only; the write path never retries).
  follower_->Stop();

  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  ASSERT_TRUE(final.value().ok) << final.value().message;
  // Full answer, not a partial: the failover leg succeeded.
  EXPECT_FALSE(final.value().partial());
  EXPECT_GE(router_->metrics().failovers(), 1u);
  EXPECT_GE(router_->metrics().upstream_requests(0, false), 1u);

  // Byte-identical payload to the leader-direct baseline (the header
  // differs only in id/latency, which are per-run by construction).
  EXPECT_EQ(final.value().payload, baseline.value().payload);
  EXPECT_EQ(final.value().header.at("matches"),
            baseline.value().header.at("matches"));
}

TEST_F(RouterReplicatedTest, ProbeNoticesFollowerDeathAndRoutesAround) {
  StartLeader();
  StartFollower();
  StartRouter();

  follower_->Stop();
  router_->pool().ProbeNow(1);
  const auto snapshot = router_->table().Snapshot();
  EXPECT_FALSE(snapshot[1].health.reachable);
  EXPECT_FALSE(snapshot[1].health.ready);

  // Reads now fall back to the leader without a failover (the table
  // already routed around the dead follower).
  server::Client client = Connect(router_->port());
  ASSERT_TRUE(client.Roundtrip("use power").ok());
  auto read = client.Roundtrip(server::RenderRequestLine(PowerQuery()));
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read.value().ok) << read.value().message;
  EXPECT_EQ(router_->metrics().upstream_requests(0, false), 1u);
  EXPECT_EQ(router_->metrics().failovers(), 0u);
}

}  // namespace
}  // namespace router
}  // namespace onex

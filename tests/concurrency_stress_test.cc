// Copyright 2026 The ONEX Reproduction Authors.
// Concurrency regression tests for the windows the thread-safety
// migration closed, written to be meaningful under ThreadSanitizer
// (the `thread-sanitizer` CI job runs this binary with lock-order
// checking compiled in) and still fast enough for the tier-1 suite:
//
//   - checkpointer vs. concurrent appends: the background checkpointer
//     rotates the WAL (engine writer lock via Exclusive) while many
//     threads append (writer lock + AppendSink + cp notify) — the
//     kCatalog < kStorageCheckpoint < kEngine < kStorageCp chain.
//   - client disconnect vs. in-flight cancel: Close() used to read the
//     demux pointer unguarded while a racing Cancel()/Submit ran.
//   - Server::Stop vs. live sessions: Stop() used to iterate
//     session_threads_ unlocked, racing the accept loop's reap.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "api/engine.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/storage.h"

namespace onex {
namespace {

namespace fs = std::filesystem;

constexpr size_t kSeries = 10;
constexpr size_t kLength = 24;

Engine BuildSmallEngine(uint64_t seed) {
  GenOptions gen;
  gen.num_series = kSeries;
  gen.length = kLength;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, kLength, 8};
  auto built = Engine::Build(std::move(d), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TimeSeries RampSeries(int tag) {
  std::vector<double> values(kLength);
  for (size_t j = 0; j < values.size(); ++j) {
    values[j] = 0.01 * static_cast<double>(tag % 50) +
                0.9 * static_cast<double>(j) /
                    static_cast<double>(values.size() - 1);
  }
  return TimeSeries(std::move(values), tag);
}

class ScratchDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("concurrency_stress_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

// ---------------------------------------- checkpointer vs. appenders.

TEST_F(ScratchDirTest, CheckpointerRacesConcurrentAppends) {
  storage::StorageOptions options;
  // Rotate constantly: every few appends crosses the threshold, so the
  // checkpointer keeps taking the writer lock mid-stream.
  options.checkpoint_wal_records = 4;
  options.checkpoint_wal_bytes = 0;
  options.background_checkpointer = true;
  options.sync_appends = false;  // Throughput; the batch sync still runs.

  auto created = storage::DurableEngine::Create(
      dir_.string(), "race", BuildSmallEngine(42), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto durable = std::move(created).value();

  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 24;
  std::vector<std::thread> appenders;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        const int tag = t * kAppendsPerThread + i;
        if (!durable->Append(RampSeries(tag)).ok()) {
          failures.fetch_add(1);
        }
        if (i % 8 == 0) {
          // Interleave reader-lock traffic with the writer churn.
          (void)durable->engine()->num_series();
        }
      }
    });
  }
  // Explicit checkpoints race the background ones (checkpoint_mutex_
  // serializes them; both then take the engine writer lock).
  std::thread explicit_checkpointer([&] {
    for (int i = 0; i < 8; ++i) {
      (void)durable->Checkpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::thread& appender : appenders) appender.join();
  explicit_checkpointer.join();

  EXPECT_EQ(failures.load(), 0);
  const size_t expected = kSeries + kThreads * kAppendsPerThread;
  EXPECT_EQ(durable->engine()->num_series(), expected);

  // Every acknowledged append must survive a reopen, no matter where
  // the rotation churn left the snapshot/WAL pair.
  durable.reset();
  auto reopened = storage::DurableEngine::Open(dir_.string(), "race");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->engine()->num_series(), expected);
}

// ------------------------------- catalog eviction vs. durable appends.

TEST_F(ScratchDirTest, CatalogEvictionRacesAppendsOnDurableEntries) {
  server::CatalogOptions options;
  options.data_dir = dir_.string();
  options.durable = true;
  options.max_open_engines = 1;  // Every Acquire evicts the other entry.
  options.storage.sync_appends = false;
  options.storage.checkpoint_wal_records = 8;
  server::Catalog catalog(options);
  catalog.Register("a", BuildSmallEngine(1));
  catalog.Register("b", BuildSmallEngine(2));

  // Two threads appending to different datasets force the pre-eviction
  // checkpoint of a dirty victim (catalog mutex -> checkpoint mutex ->
  // engine writer lock) to race the other dataset's appends.
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      const std::string name = t == 0 ? "a" : "b";
      for (int i = 0; i < 16; ++i) {
        if (!catalog.Append(name, RampSeries(t * 100 + i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread reader([&] {
    for (int i = 0; i < 16; ++i) {
      auto acquired = catalog.Acquire(i % 2 == 0 ? "a" : "b");
      if (acquired.ok()) (void)acquired.value()->num_series();
    }
  });
  for (std::thread& writer : writers) writer.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  for (const std::string& name : {"a", "b"}) {
    auto acquired = catalog.Acquire(name);
    ASSERT_TRUE(acquired.ok()) << acquired.status().ToString();
    EXPECT_EQ(acquired.value()->num_series(), kSeries + 16);
  }
}

// ------------------------------------ serving-layer shutdown windows.

class StressServerTest : public ::testing::Test {
 protected:
  void StartServer() {
    catalog_ = std::make_shared<server::Catalog>(server::CatalogOptions{});
    catalog_->Register("power", BuildSmallEngine(42));
    server::ServerOptions options;
    options.num_workers = 2;
    options.default_dataset = "power";
    auto started = server::Server::Start(std::move(options), catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  server::Client Connect() {
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  QueryRequest SomeQuery() {
    std::vector<double> query(8);
    for (size_t i = 0; i < query.size(); ++i) {
      query[i] = static_cast<double>(i) / 7.0;
    }
    return BestMatchRequest{std::move(query), 8};
  }

  std::shared_ptr<server::Catalog> catalog_;
  std::unique_ptr<server::Server> server_;
};

TEST_F(StressServerTest, ClientCloseRacesInflightCancels) {
  StartServer();
  // Close() used to read demux_ without its mutex; a Cancel() (through
  // the handle's weak_ptr) and a concurrent Submit raced it. Every
  // status outcome is legal here — the invariant under test is that
  // the teardown is race- and crash-free and never wedges.
  for (int round = 0; round < 8; ++round) {
    server::Client client = Connect();
    std::vector<server::Client::Handle> handles;
    for (int i = 0; i < 6; ++i) {
      auto submitted = client.Submit(SomeQuery());
      if (submitted.ok()) handles.push_back(std::move(submitted).value());
    }
    std::thread canceller([&handles] {
      for (auto& handle : handles) (void)handle.Cancel();
    });
    client.Close();
    canceller.join();
    for (auto& handle : handles) (void)handle.Wait();
  }
}

TEST_F(StressServerTest, StopRacesLiveSessionsAndReap) {
  StartServer();
  // Keep connections churning (so the accept loop reaps finished
  // session threads) while queries are in flight, then Stop() under
  // them — the path that used to join session_threads_ unlocked.
  std::atomic<bool> done{false};
  std::thread churn([&] {
    while (!done.load()) {
      auto client = server::Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) break;  // Server stopped: expected.
      (void)client.value().Execute(SomeQuery());
    }
  });
  std::vector<server::Client> held;
  for (int i = 0; i < 3; ++i) {
    held.push_back(Connect());
    (void)held.back().Submit(SomeQuery());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server_->Stop();
  done.store(true);
  churn.join();
}

}  // namespace
}  // namespace onex

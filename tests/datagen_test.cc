// Tests for the synthetic UCR-substitute generators: cardinality
// fidelity, determinism, class structure, and the warp/resample helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datagen/generators.h"
#include "datagen/registry.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {
namespace {

// ------------------------------------------------------------- Warp utils.

TEST(ResampleTest, IdentityWhenSameLength) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const auto out = Resample(std::span<const double>(v.data(), v.size()), 4);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(out[i], v[i], 1e-12);
}

TEST(ResampleTest, UpsampleInterpolatesLinearly) {
  std::vector<double> v = {0.0, 1.0};
  const auto out = Resample(std::span<const double>(v.data(), v.size()), 5);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[2], 0.5, 1e-12);
  EXPECT_NEAR(out[4], 1.0, 1e-12);
}

TEST(ResampleTest, DownsampleKeepsEndpoints) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  const auto out = Resample(std::span<const double>(v.data(), v.size()), 10);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_NEAR(out.front(), 0.0, 1e-12);
  EXPECT_NEAR(out.back(), 99.0, 1e-12);
}

TEST(ResampleTest, DegenerateInputs) {
  std::vector<double> one = {7.0};
  const auto out = Resample(std::span<const double>(one.data(), 1), 4);
  for (double x : out) EXPECT_DOUBLE_EQ(x, 7.0);
  const auto empty = Resample({}, 3);
  EXPECT_EQ(empty.size(), 3u);
}

TEST(ApplyRandomWarpTest, ZeroIntensityIsIdentity) {
  std::vector<double> v = {1.0, 4.0, 2.0, 8.0};
  Rng rng(1);
  const auto out =
      ApplyRandomWarp(std::span<const double>(v.data(), v.size()), 0.0, &rng);
  ASSERT_EQ(out.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(out[i], v[i]);
}

TEST(ApplyRandomWarpTest, PreservesEndpointsAndRange) {
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) v.push_back(std::sin(i * 0.2));
  Rng rng(5);
  const auto out =
      ApplyRandomWarp(std::span<const double>(v.data(), v.size()), 0.4, &rng);
  ASSERT_EQ(out.size(), v.size());
  EXPECT_NEAR(out.front(), v.front(), 1e-9);
  EXPECT_NEAR(out.back(), v.back(), 1e-9);
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  for (double x : out) {
    EXPECT_GE(x, *lo - 1e-9);
    EXPECT_LE(x, *hi + 1e-9);
  }
}

TEST(ApplyRandomWarpTest, ActuallyWarps) {
  std::vector<double> v;
  for (int i = 0; i < 64; ++i) v.push_back(std::sin(i * 0.3));
  Rng rng(5);
  const auto out =
      ApplyRandomWarp(std::span<const double>(v.data(), v.size()), 0.5, &rng);
  double max_diff = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(out[i] - v[i]));
  }
  EXPECT_GT(max_diff, 0.01);
}

TEST(GaussianBumpTest, PeakAndDecay) {
  EXPECT_DOUBLE_EQ(GaussianBump(5.0, 5.0, 1.0, 2.0), 2.0);
  EXPECT_LT(GaussianBump(8.0, 5.0, 1.0, 2.0),
            GaussianBump(6.0, 5.0, 1.0, 2.0));
  EXPECT_NEAR(GaussianBump(50.0, 5.0, 1.0, 2.0), 0.0, 1e-12);
}

TEST(AddGaussianNoiseTest, ZeroSigmaNoChange) {
  std::vector<double> v = {1.0, 2.0};
  Rng rng(1);
  AddGaussianNoise(&v, 0.0, &rng);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
}

// ------------------------------------------------------------- Generators.

struct GenCase {
  const char* name;
  Dataset (*make)(const GenOptions&);
  size_t default_n;
  size_t default_len;
  size_t num_classes;
};

class GeneratorTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorTest, SmallSampleHasRequestedShape) {
  const GenCase& c = GetParam();
  GenOptions options;
  options.num_series = 50;
  options.seed = 11;
  const Dataset d = c.make(options);
  EXPECT_EQ(d.size(), 50u);
  EXPECT_TRUE(d.IsFixedLength());
  EXPECT_EQ(d.MaxLength(), c.default_len);
  EXPECT_FALSE(d.name().empty());
}

TEST_P(GeneratorTest, DefaultCardinalityMatchesUcr) {
  const GenCase& c = GetParam();
  // Generate only a small number but confirm the *declared* defaults via
  // the registry (generating 9236x1024 here would be wasteful).
  GenOptions options;
  options.num_series = 3;
  const Dataset d = c.make(options);
  EXPECT_EQ(d.MaxLength(), c.default_len);
}

TEST_P(GeneratorTest, DeterministicForSeed) {
  const GenCase& c = GetParam();
  GenOptions options;
  options.num_series = 10;
  options.seed = 99;
  const Dataset a = c.make(options);
  const Dataset b = c.make(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label(), b[i].label());
    for (size_t j = 0; j < a[i].length(); ++j) {
      ASSERT_DOUBLE_EQ(a[i][j], b[i][j]);
    }
  }
}

TEST_P(GeneratorTest, SeedsDiffer) {
  const GenCase& c = GetParam();
  GenOptions o1, o2;
  o1.num_series = o2.num_series = 5;
  o1.seed = 1;
  o2.seed = 2;
  const Dataset a = c.make(o1);
  const Dataset b = c.make(o2);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    for (size_t j = 0; j < a[i].length(); ++j) {
      if (a[i][j] != b[i][j]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_P(GeneratorTest, LabelsWithinExpectedClassCount) {
  const GenCase& c = GetParam();
  GenOptions options;
  options.num_series = 200;
  options.seed = 3;
  const Dataset d = c.make(options);
  std::set<int> labels;
  for (size_t i = 0; i < d.size(); ++i) labels.insert(d[i].label());
  EXPECT_LE(labels.size(), c.num_classes);
  EXPECT_GE(labels.size(), 2u);
  for (int label : labels) {
    EXPECT_GE(label, 1);
    EXPECT_LE(label, static_cast<int>(c.num_classes));
  }
}

TEST_P(GeneratorTest, ValuesAreFinite) {
  const GenCase& c = GetParam();
  GenOptions options;
  options.num_series = 20;
  const Dataset d = c.make(options);
  for (size_t i = 0; i < d.size(); ++i) {
    for (double x : d[i].values()) EXPECT_TRUE(std::isfinite(x));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorTest,
    ::testing::Values(
        GenCase{"ItalyPower", MakeItalyPower, 1096, 24, 2},
        GenCase{"ECG", MakeEcg, 884, 136, 2},
        GenCase{"Face", MakeFace, 2250, 131, 14},
        GenCase{"Wafer", MakeWafer, 7164, 152, 2},
        GenCase{"Symbols", MakeSymbols, 1020, 398, 6},
        GenCase{"TwoPatterns", MakeTwoPatterns, 5000, 128, 4},
        GenCase{"StarLight", MakeStarLight, 9236, 1024, 3},
        GenCase{"RandomWalk", MakeRandomWalk, 500, 128, 2}),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      return info.param.name;
    });

TEST(GeneratorStructureTest, WaferAbnormalRatioNearArchive) {
  GenOptions options;
  options.num_series = 3000;
  options.seed = 5;
  const Dataset d = MakeWafer(options);
  size_t abnormal = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    if (d[i].label() == 2) ++abnormal;
  }
  const double ratio = static_cast<double>(abnormal) / d.size();
  EXPECT_NEAR(ratio, 0.106, 0.03);
}

TEST(GeneratorStructureTest, ItalyPowerClassesAreSeparable) {
  GenOptions options;
  options.num_series = 400;
  options.seed = 6;
  const Dataset d = MakeItalyPower(options);
  // Winter (class 1) has an evening peak around hour 19; summer doesn't.
  double evening1 = 0, evening2 = 0;
  size_t n1 = 0, n2 = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    const double evening = d[i][19];
    if (d[i].label() == 1) {
      evening1 += evening;
      ++n1;
    } else {
      evening2 += evening;
      ++n2;
    }
  }
  ASSERT_GT(n1, 0u);
  ASSERT_GT(n2, 0u);
  EXPECT_GT(evening1 / n1, evening2 / n2);
}

// --------------------------------------------------------------- Registry.

TEST(RegistryTest, EvaluationDatasetsAreThePapersSix) {
  const auto& names = EvaluationDatasetNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "ItalyPower");
  EXPECT_EQ(names[5], "TwoPattern");
}

TEST(RegistryTest, MakeByNameCaseInsensitive) {
  GenOptions options;
  options.num_series = 5;
  auto a = MakeDatasetByName("ecg", options);
  auto b = MakeDatasetByName("ECG", options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().size(), b.value().size());
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto result = MakeDatasetByName("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(RegistryTest, ScaledDatasetShrinksN) {
  auto full = MakeScaledDataset("ItalyPower", 1.0, 1);
  auto tiny = MakeScaledDataset("ItalyPower", 0.01, 1);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(full.value().size(), 1096u);
  EXPECT_LT(tiny.value().size(), 20u);
  EXPECT_GE(tiny.value().size(), 4u);
  EXPECT_EQ(tiny.value().MaxLength(), 24u);
}

TEST(RegistryTest, ScaleValidation) {
  EXPECT_FALSE(MakeScaledDataset("ECG", 0.0).ok());
  EXPECT_FALSE(MakeScaledDataset("ECG", 1.5).ok());
  EXPECT_FALSE(MakeScaledDataset("bogus", 0.5).ok());
}

TEST(RegistryTest, AllNamesInstantiable) {
  GenOptions options;
  options.num_series = 4;
  for (const auto& name : AllDatasetNames()) {
    auto result = MakeDatasetByName(name, options);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.value().size(), 4u) << name;
  }
}

}  // namespace
}  // namespace onex

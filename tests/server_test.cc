// Loopback smoke tests for the TCP serving layer (src/server/server.h):
// all six QueryKinds answered correctly over the wire (byte-identical
// to a direct Engine::Execute render), >= 4 concurrent clients across
// two catalog datasets, deterministic OVERLOADED shedding when the
// bounded queue fills, and the control verbs. Run the suite with
// -DONEX_SANITIZE=thread to put the worker pool and session threads
// under TSan (CI does).

#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "datagen/registry.h"
#include "dataset/normalize.h"
#include "server/client.h"
#include "server/protocol.h"

namespace onex {
namespace server {
namespace {

Dataset MakeNormalized(const std::string& generator, size_t n, size_t len,
                       uint64_t seed) {
  GenOptions gen;
  gen.num_series = n;
  gen.length = len;
  gen.seed = seed;
  auto made = MakeDatasetByName(generator, gen);
  EXPECT_TRUE(made.ok());
  Dataset d = std::move(made).value();
  MinMaxNormalize(&d);
  return d;
}

Engine BuildEngine(const std::string& generator, size_t n, uint64_t seed) {
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto built =
      Engine::Build(MakeNormalized(generator, n, 24, seed), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

std::vector<std::string> SplitLines(const std::string& block) {
  std::vector<std::string> lines;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Two catalog datasets ("power": 10 series, "ecg": 14 series) plus
/// identically-built local twins: the builds are deterministic, so a
/// wire answer must render byte-identically to the twin's direct
/// Execute (timing header aside).
class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    catalog_ = std::make_shared<Catalog>(CatalogOptions{});
    catalog_->Register("power", BuildEngine("ItalyPower", 10, 42));
    catalog_->Register("ecg", BuildEngine("ECG", 14, 7));
    auto started = Server::Start(std::move(options), catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    EXPECT_EQ(client.value().greeting(),
              "ONEX/" + std::to_string(kWireVersion) + " ready");
    return std::move(client).value();
  }

  std::vector<double> QueryFrom(const Engine& twin, uint32_t series,
                                uint32_t start, uint32_t len) {
    const auto view = twin.dataset()[series].Subsequence(start, len);
    return std::vector<double>(view.begin(), view.end());
  }

  /// Wire payload must equal the direct answer's rendered payload.
  void ExpectWireMatchesDirect(Client& client, const Engine& twin,
                               const QueryRequest& request) {
    auto wire = client.Execute(request);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    ASSERT_TRUE(wire.value().ok)
        << wire.value().code << " " << wire.value().message;

    auto direct = twin.Execute(request, ExecContext{});
    ASSERT_TRUE(direct.ok());
    const auto direct_lines = SplitLines(RenderResponse(direct.value()));
    // direct_lines: header, payload..., "."; wire payload excludes both.
    ASSERT_EQ(wire.value().payload.size(), direct_lines.size() - 2);
    for (size_t i = 0; i + 2 < direct_lines.size(); ++i) {
      EXPECT_EQ(wire.value().payload[i], direct_lines[i + 1]);
    }
    EXPECT_EQ(wire.value().kind,
              std::string(ToString(KindOf(request))));
  }

  std::shared_ptr<Catalog> catalog_;
  std::unique_ptr<Server> server_;
};

// ---------------------------------------- all six kinds over the wire.

TEST_F(ServerTest, AllSixQueryKindsAnswerCorrectlyOverTheWire) {
  StartServer(ServerOptions{});
  const Engine power = BuildEngine("ItalyPower", 10, 42);

  Client client = Connect();
  auto use = client.Roundtrip("use power");
  ASSERT_TRUE(use.ok());
  ASSERT_TRUE(use.value().ok) << use.value().message;
  EXPECT_EQ(use.value().header.at("series"), "10");

  const auto query = QueryFrom(power, 2, 3, 8);
  ExpectWireMatchesDirect(client, power, BestMatchRequest{query, 8});
  ExpectWireMatchesDirect(client, power, BestMatchRequest{query, 0});
  ExpectWireMatchesDirect(client, power, KSimilarRequest{query, 5, 8});
  ExpectWireMatchesDirect(client, power,
                          RangeWithinRequest{query, 0.2, 0, true});
  ExpectWireMatchesDirect(client, power,
                          RangeWithinRequest{query, 0.2, 8, false});
  ExpectWireMatchesDirect(client, power, SeasonalRequest{uint32_t{0}, 8});
  ExpectWireMatchesDirect(client, power, SeasonalRequest{std::nullopt, 8});
  ExpectWireMatchesDirect(client, power,
                          RecommendRequest{std::nullopt, size_t{0}});
  ExpectWireMatchesDirect(client, power,
                          RecommendRequest{SimilarityDegree::kStrict, 8});
  ExpectWireMatchesDirect(client, power, RefineThresholdRequest{0.1, 16});
  ExpectWireMatchesDirect(client, power, RefineThresholdRequest{0.1, 0});
}

// --------------------------------- concurrent clients, two datasets.

TEST_F(ServerTest, FourConcurrentClientsAcrossTwoDatasets) {
  ServerOptions options;
  options.num_workers = 2;
  StartServer(options);
  const Engine power = BuildEngine("ItalyPower", 10, 42);
  const Engine ecg = BuildEngine("ECG", 14, 7);

  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 20;
  std::atomic<int> failures{0};

  auto session = [&](int id) {
    const bool use_power = (id % 2 == 0);
    const Engine& twin = use_power ? power : ecg;
    auto connected = Client::Connect("127.0.0.1", server_->port());
    if (!connected.ok()) {
      failures.fetch_add(1);
      return;
    }
    Client client = std::move(connected).value();
    auto use = client.Roundtrip(use_power ? "use power" : "use ecg");
    if (!use.ok() || !use.value().ok) {
      failures.fetch_add(1);
      return;
    }
    for (int i = 0; i < kQueriesPerClient; ++i) {
      const uint32_t series = static_cast<uint32_t>((id + i) %
                                                    twin.num_series());
      const auto query = QueryFrom(twin, series, (i * 3) % 16, 8);
      const QueryRequest request = BestMatchRequest{query, 8};
      auto wire = client.Execute(request);
      if (!wire.ok() || !wire.value().ok || wire.value().payload.size() < 2) {
        failures.fetch_add(1);
        continue;
      }
      // Parity with the twin proves the session is wired to the right
      // engine: builds are deterministic and %.17g round-trips exactly.
      auto direct = twin.Execute(request, ExecContext{});
      const auto fields = ParseKeyValues(wire.value().payload[1]);
      if (!direct.ok() ||
          std::stod(fields.at("distance")) !=
              direct.value().matches()[0].distance ||
          std::stoul(fields.at("series")) !=
              direct.value().matches()[0].ref.series) {
        failures.fetch_add(1);
      }
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) clients.emplace_back(session, c);
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(server_->metrics().requests(),
            static_cast<uint64_t>(kClients) * kQueriesPerClient);
}

// ------------------------------------------- deterministic shedding.

TEST_F(ServerTest, ShedsLoadWithOverloadedWhenQueueIsFull) {
  // One worker, one queue slot. The test hooks make the schedule
  // deterministic: job A blocks inside the worker, job B fills the
  // queue, job C must be shed.
  std::mutex mutex;
  std::condition_variable cv;
  bool job_started = false;
  bool release_jobs = false;
  std::atomic<int> enqueued{0};

  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.on_job_start = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    job_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release_jobs; });
  };
  options.on_enqueue = [&](size_t) {
    // Lock so the increment cannot slip between a waiter's predicate
    // check and its sleep (lost wakeup).
    std::lock_guard<std::mutex> lock(mutex);
    enqueued.fetch_add(1);
    cv.notify_all();
  };
  StartServer(options);
  const Engine power = BuildEngine("ItalyPower", 10, 42);
  const auto query = QueryFrom(power, 1, 0, 8);
  const std::string query_line =
      RenderRequestLine(BestMatchRequest{query, 8});

  auto blocked_roundtrip = [&](std::atomic<bool>* ok) {
    Client client = Connect();
    if (!client.Roundtrip("use power").ok()) return;
    auto reply = client.Roundtrip(query_line);
    *ok = reply.ok() && reply.value().ok;
  };

  // Client A: its job reaches the worker and blocks in on_job_start.
  std::atomic<bool> a_ok{false};
  std::thread client_a(blocked_roundtrip, &a_ok);
  std::atomic<bool> b_ok{false};
  std::thread client_b;

  // If any ASSERT below fires, still release the worker and join the
  // client threads — otherwise the early return destroys joinable
  // std::threads (std::terminate) and leaves the worker blocked on
  // stack variables that are about to die.
  struct Cleanup {
    std::mutex& mutex;
    std::condition_variable& cv;
    bool& release_jobs;
    std::thread& a;
    std::thread& b;
    ~Cleanup() {
      {
        std::lock_guard<std::mutex> lock(mutex);
        release_jobs = true;
      }
      cv.notify_all();
      if (a.joinable()) a.join();
      if (b.joinable()) b.join();
    }
  } cleanup{mutex, cv, release_jobs, client_a, client_b};

  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return job_started; });
  }

  // Client B: fills the single queue slot (2nd enqueue observed).
  client_b = std::thread(blocked_roundtrip, &b_ok);
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return enqueued.load() >= 2; });
  }

  // Client C: queue full -> explicit shed, immediately.
  Client client_c = Connect();
  ASSERT_TRUE(client_c.Roundtrip("use power").ok());
  auto shed = client_c.Roundtrip(query_line);
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_FALSE(shed.value().ok);
  EXPECT_EQ(shed.value().code, kOverloadedCode);

  // Release the worker; A and B complete normally.
  {
    std::lock_guard<std::mutex> lock(mutex);
    release_jobs = true;
  }
  cv.notify_all();
  client_a.join();
  client_b.join();
  EXPECT_TRUE(a_ok.load());
  EXPECT_TRUE(b_ok.load());
  EXPECT_GE(server_->metrics().overloaded(), 1u);

  // After the burst the server still answers.
  auto after = client_c.Roundtrip(query_line);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().ok);
}

// ------------------------------------------------------ control verbs.

TEST_F(ServerTest, ControlVerbsAndErrorPaths) {
  StartServer(ServerOptions{});
  Client client = Connect();

  // Query before USE: explicit NO_DATASET error.
  auto unbound = client.Roundtrip("q1 8 0.1,0.2,0.3");
  ASSERT_TRUE(unbound.ok());
  EXPECT_FALSE(unbound.value().ok);
  EXPECT_EQ(unbound.value().code, kNoDatasetCode);

  // Unknown verbs and unknown datasets are structured errors.
  auto garbage = client.Roundtrip("frobnicate 12");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage.value().code, "INVALID_ARGUMENT");
  auto missing = client.Roundtrip("use no-such-dataset");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().code, "NOT_FOUND");

  // LIST shows both catalog datasets.
  auto list = client.Roundtrip("list");
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(list.value().ok);
  EXPECT_EQ(list.value().header.at("datasets"), "2");
  ASSERT_EQ(list.value().payload.size(), 2u);
  EXPECT_EQ(ParseKeyValues(list.value().payload[0]).at("name"), "ecg");
  EXPECT_EQ(ParseKeyValues(list.value().payload[1]).at("name"), "power");

  // PING / HELP.
  auto ping = client.Roundtrip("ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().kind, "Pong");
  auto help = client.Roundtrip("help");
  ASSERT_TRUE(help.ok());
  EXPECT_GT(help.value().payload.size(), 4u);

  // An engine error (unconstructed length) travels as its wire code.
  ASSERT_TRUE(client.Roundtrip("use power").ok());
  auto bad_length = client.Roundtrip("q1 7 0.1,0.2,0.3");
  ASSERT_TRUE(bad_length.ok());
  EXPECT_FALSE(bad_length.value().ok);
  EXPECT_EQ(bad_length.value().code, "NOT_FOUND");

  // STATS reflects the traffic this test generated.
  auto stats = client.Roundtrip("stats");
  ASSERT_TRUE(stats.ok());
  ASSERT_TRUE(stats.value().ok);
  bool saw_server_line = false;
  bool saw_catalog_line = false;
  for (const std::string& line : stats.value().payload) {
    if (line.rfind("server ", 0) == 0) {
      saw_server_line = true;
      const auto fields = ParseKeyValues(line);
      EXPECT_GE(std::stoull(fields.at("requests")), 1u);
      EXPECT_GE(std::stoull(fields.at("bad_requests")), 2u);
    }
    if (line.rfind("catalog ", 0) == 0) saw_catalog_line = true;
  }
  EXPECT_TRUE(saw_server_line);
  EXPECT_TRUE(saw_catalog_line);

  // QUIT ends the session server-side.
  auto bye = client.Roundtrip("quit");
  ASSERT_TRUE(bye.ok());
  EXPECT_EQ(bye.value().kind, "Bye");
  EXPECT_FALSE(client.Roundtrip("ping").ok());
}

TEST_F(ServerTest, DefaultDatasetBindsSessionsAtConnect) {
  ServerOptions options;
  options.default_dataset = "ecg";
  StartServer(options);
  const Engine ecg = BuildEngine("ECG", 14, 7);

  Client client = Connect();
  // No USE line needed: the query answers against the default dataset.
  const auto query = QueryFrom(ecg, 3, 2, 8);
  ExpectWireMatchesDirect(client, ecg, BestMatchRequest{query, 8});
}

TEST_F(ServerTest, StopIsIdempotentAndDisconnectsClients) {
  StartServer(ServerOptions{});
  Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("ping").ok());

  server_->Stop();
  server_->Stop();  // Idempotent.

  // The session socket was shut down; the next round trip fails cleanly.
  EXPECT_FALSE(client.Roundtrip("ping").ok());
  // And new connections are refused.
  EXPECT_FALSE(Client::Connect("127.0.0.1", server_->port()).ok());
}

}  // namespace
}  // namespace server
}  // namespace onex

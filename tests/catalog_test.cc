// Tests for the multi-dataset catalog (src/server/catalog.h): lazy
// Engine::Open from the data directory, engine sharing across sessions
// (same shared_ptr), LRU eviction under the resident cap, in-use and
// pinned engines surviving eviction, and LIST enumeration.

#include "server/catalog.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>

#include "api/engine.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"

namespace onex {
namespace server {
namespace {

namespace fs = std::filesystem;

Engine BuildSmallEngine(uint64_t seed) {
  GenOptions gen;
  gen.num_series = 10;
  gen.length = 24;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto built = Engine::Build(std::move(d), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// A temp data directory with `names.size()` persisted bases.
class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("catalog_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    uint64_t seed = 1;
    for (const char* name : {"alpha", "beta", "gamma"}) {
      Engine engine = BuildSmallEngine(seed++);
      ASSERT_TRUE(engine.Save((dir_ / (std::string(name) + ".onex"))
                                  .string())
                      .ok());
    }
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  Catalog MakeCatalog(size_t cap) {
    CatalogOptions options;
    options.data_dir = dir_.string();
    options.max_open_engines = cap;
    return Catalog(options);
  }

  fs::path dir_;
};

TEST_F(CatalogTest, LazyOpensAndSharesEngines) {
  Catalog catalog = MakeCatalog(8);
  EXPECT_EQ(catalog.stats().resident, 0u);  // Nothing opened eagerly.

  auto first = catalog.Acquire("alpha");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value()->num_series(), 10u);
  EXPECT_EQ(catalog.stats().lazy_opens, 1u);
  EXPECT_EQ(catalog.stats().resident, 1u);

  // A second session gets the SAME engine, not a second copy.
  auto second = catalog.Acquire("alpha");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(catalog.stats().lazy_opens, 1u);
  EXPECT_EQ(catalog.stats().hits, 1u);
}

TEST_F(CatalogTest, UnknownNameIsNotFound) {
  Catalog catalog = MakeCatalog(8);
  auto missing = catalog.Acquire("no-such-dataset");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), Status::Code::kNotFound);

  // No data_dir at all: same error, no filesystem poking.
  Catalog empty{CatalogOptions{}};
  EXPECT_EQ(empty.Acquire("alpha").status().code(),
            Status::Code::kNotFound);
}

TEST_F(CatalogTest, LruEvictsIdleEnginesBeyondCap) {
  Catalog catalog = MakeCatalog(2);
  // Touch alpha, then beta; do not hold the references.
  ASSERT_TRUE(catalog.Acquire("alpha").ok());
  ASSERT_TRUE(catalog.Acquire("beta").ok());
  EXPECT_EQ(catalog.stats().resident, 2u);

  // gamma exceeds the cap: alpha (least recently used) is evicted.
  ASSERT_TRUE(catalog.Acquire("gamma").ok());
  EXPECT_EQ(catalog.stats().resident, 2u);
  EXPECT_EQ(catalog.stats().evictions, 1u);
  for (const auto& row : catalog.List()) {
    if (row.name == "alpha") EXPECT_FALSE(row.resident);
    if (row.name == "beta" || row.name == "gamma") {
      EXPECT_TRUE(row.resident);
    }
  }

  // Re-acquiring alpha lazily reopens it (and evicts beta, now LRU).
  ASSERT_TRUE(catalog.Acquire("alpha").ok());
  EXPECT_EQ(catalog.stats().lazy_opens, 4u);
  EXPECT_EQ(catalog.stats().evictions, 2u);
}

TEST_F(CatalogTest, InUseEnginesAreNotEvicted) {
  Catalog catalog = MakeCatalog(1);
  auto held = catalog.Acquire("alpha");
  ASSERT_TRUE(held.ok());

  // alpha is in use (we hold the shared_ptr), so opening beta cannot
  // reclaim it: the catalog runs over cap rather than pull a live
  // engine out from under a session.
  auto other = catalog.Acquire("beta");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(catalog.stats().resident, 2u);
  EXPECT_EQ(catalog.stats().evictions, 0u);
  EXPECT_EQ(held.value()->num_series(), 10u);  // Still fully usable.

  // Dropping both references makes them evictable at the next open.
  held = Status::NotFound("released");
  other = Status::NotFound("released");
  ASSERT_TRUE(catalog.Acquire("gamma").ok());
  EXPECT_EQ(catalog.stats().resident, 1u);
  EXPECT_EQ(catalog.stats().evictions, 2u);
}

TEST_F(CatalogTest, RegisteredEnginesArePinned) {
  Catalog catalog = MakeCatalog(1);
  catalog.Register("mem", BuildSmallEngine(77));

  auto mem = catalog.Acquire("mem");
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(catalog.stats().lazy_opens, 0u);  // Served from memory.

  // Disk engines churn past the cap; the pinned engine stays put (it
  // has no file to be reopened from).
  auto mem_before = mem.value().get();
  mem = Status::NotFound("released");
  ASSERT_TRUE(catalog.Acquire("alpha").ok());
  ASSERT_TRUE(catalog.Acquire("beta").ok());
  auto mem_after = catalog.Acquire("mem");
  ASSERT_TRUE(mem_after.ok());
  EXPECT_EQ(mem_after.value().get(), mem_before);
  for (const auto& row : catalog.List()) {
    if (row.name == "mem") {
      EXPECT_TRUE(row.resident);
      EXPECT_TRUE(row.pinned);
    }
  }
}

TEST_F(CatalogTest, ListMergesDiskAndMemoryEntries) {
  Catalog catalog = MakeCatalog(8);
  catalog.Register("mem", BuildSmallEngine(78));
  ASSERT_TRUE(catalog.Acquire("beta").ok());

  const auto rows = catalog.List();
  ASSERT_EQ(rows.size(), 4u);  // alpha, beta, gamma, mem — sorted.
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_FALSE(rows[0].resident);  // Known on disk, never opened.
  EXPECT_EQ(rows[1].name, "beta");
  EXPECT_TRUE(rows[1].resident);
  EXPECT_EQ(rows[2].name, "gamma");
  EXPECT_EQ(rows[3].name, "mem");
  EXPECT_TRUE(rows[3].pinned);
}

// ---------------------------------------- dirty engines and eviction.

TEST_F(CatalogTest, DirtyEngineIsNeverSilentlyEvicted) {
  // Regression for the silent-data-loss hazard: append to a
  // non-durable disk-backed engine, then put it under LRU pressure.
  // Eviction would discard the append (memory-only), so the catalog
  // must refuse and keep it resident.
  Catalog catalog = MakeCatalog(2);
  ASSERT_TRUE(catalog.Acquire("alpha").ok());
  auto appended = catalog.Append(
      "alpha", TimeSeries(std::vector<double>(24, 0.5), 9));
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(appended.value().total, 11u);
  EXPECT_FALSE(appended.value().durable);

  // beta + gamma push past the cap. alpha is the LRU victim but dirty
  // -> refused (the LRU takes clean beta instead); alpha stays
  // resident with its append intact.
  ASSERT_TRUE(catalog.Acquire("beta").ok());
  ASSERT_TRUE(catalog.Acquire("gamma").ok());
  EXPECT_EQ(catalog.stats().refused_evictions, 1u);
  for (const auto& row : catalog.List()) {
    if (row.name == "alpha") {
      EXPECT_TRUE(row.resident);
      EXPECT_TRUE(row.dirty);
    }
  }
  auto alpha = catalog.Acquire("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha.value()->num_series(), 11u);

  // After an explicit FLUSH the data is on disk and the entry is clean;
  // fresh eviction pressure may now take alpha, and reopening it from
  // disk still finds the append.
  alpha = Status::NotFound("released");
  ASSERT_TRUE(catalog.Flush("alpha").ok());
  ASSERT_TRUE(catalog.Acquire("beta").ok());
  ASSERT_TRUE(catalog.Acquire("gamma").ok());
  for (const auto& row : catalog.List()) {
    if (row.name == "alpha") EXPECT_FALSE(row.resident);  // Evicted now.
  }
  EXPECT_GE(catalog.stats().evictions, 1u);
  auto reloaded = catalog.Acquire("alpha");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value()->num_series(), 11u);
  EXPECT_EQ(reloaded.value()->dataset()[10].label(), 9);
}

TEST_F(CatalogTest, DurableDirtyEngineIsCheckpointedThenEvicted) {
  CatalogOptions options;
  options.data_dir = dir_.string();
  options.max_open_engines = 2;
  options.durable = true;
  options.storage.background_checkpointer = false;
  Catalog catalog{options};

  ASSERT_TRUE(catalog.Acquire("alpha").ok());
  auto appended = catalog.Append(
      "alpha", TimeSeries(std::vector<double>(24, 0.25), 3));
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_TRUE(appended.value().durable);

  // Eviction pressure: the dirty durable engine is checkpointed first,
  // then evicted — never refused, never lossy.
  ASSERT_TRUE(catalog.Acquire("beta").ok());
  ASSERT_TRUE(catalog.Acquire("gamma").ok());
  EXPECT_EQ(catalog.stats().refused_evictions, 0u);
  EXPECT_EQ(catalog.stats().flush_evictions, 1u);
  EXPECT_EQ(catalog.stats().resident, 2u);

  auto reloaded = catalog.Acquire("alpha");
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value()->num_series(), 11u);
  EXPECT_EQ(reloaded.value()->dataset()[10].label(), 3);
  EXPECT_TRUE(reloaded.value()->durable());
}

TEST_F(CatalogTest, DurableRegisterRecoversExistingDataInsteadOfTruncating) {
  CatalogOptions options;
  options.data_dir = dir_.string();
  options.durable = true;
  options.storage.background_checkpointer = false;
  {
    Catalog catalog{options};
    catalog.Register("demo", BuildSmallEngine(90));
    ASSERT_TRUE(
        catalog.Append("demo", TimeSeries(std::vector<double>(24, 0.4), 7))
            .ok());
  }  // Catalog dies; the append lives in demo.onex + demo.wal.

  // A restart re-registers the same demo name with a freshly built
  // engine — that must NOT truncate the durable pair: the recovered
  // state (with the append) wins.
  Catalog restarted{options};
  restarted.Register("demo", BuildSmallEngine(90));
  auto demo = restarted.Acquire("demo");
  ASSERT_TRUE(demo.ok());
  EXPECT_EQ(demo.value()->num_series(), 11u);
  EXPECT_EQ(demo.value()->dataset()[10].label(), 7);
}

TEST_F(CatalogTest, FlushWithoutBackingStoreIsNotSupported) {
  Catalog catalog{CatalogOptions{}};  // No data_dir.
  catalog.Register("mem", BuildSmallEngine(80));
  ASSERT_TRUE(
      catalog.Append("mem", TimeSeries(std::vector<double>(24, 0.1))).ok());
  EXPECT_EQ(catalog.Flush("mem").code(), Status::Code::kNotSupported);
}

TEST_F(CatalogTest, AcquiredEnginesAnswerQueries) {
  Catalog catalog = MakeCatalog(8);
  auto engine = catalog.Acquire("alpha");
  ASSERT_TRUE(engine.ok());
  const auto view = engine.value()->dataset()[2].Subsequence(3, 8);
  std::vector<double> query(view.begin(), view.end());
  auto response = engine.value()->Execute(BestMatchRequest{query, 8}, ExecContext{});
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().matches().size(), 1u);
  // The reloaded base answers like a freshly built one (ONEX search is
  // approximate, so an in-dataset query is close, not necessarily 0).
  Engine twin = BuildSmallEngine(1);
  auto want = twin.Execute(BestMatchRequest{query, 8}, ExecContext{});
  ASSERT_TRUE(want.ok());
  EXPECT_DOUBLE_EQ(response.value().matches()[0].distance,
                   want.value().matches()[0].distance);
}

}  // namespace
}  // namespace server
}  // namespace onex

// Tests for the Q1 range form (FindAllWithin): completeness and
// soundness against a brute-force range scan, the Lemma-2 wholesale
// admission fast path, and parameter validation.

#include <gtest/gtest.h>

#include <set>

#include "core/onex_base.h"
#include "core/query_processor.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "distance/dtw.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

Dataset TestDataset(uint64_t seed = 42) {
  GenOptions gen;
  gen.num_series = 10;
  gen.length = 24;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  return d;
}

OnexBase BuildBase(Dataset d, double st = 0.2) {
  OnexOptions options;
  options.st = st;
  options.lengths = {8, 24, 8};
  auto built = OnexBase::Build(std::move(d), options);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

uint64_t KeyOf(const SubsequenceRef& ref) {
  return (static_cast<uint64_t>(ref.series) << 40) |
         (static_cast<uint64_t>(ref.start) << 16) | ref.length;
}

// Brute-force range scan over one length in the same metric
// (unconstrained DTW, as FindAllWithin specifies).
std::set<uint64_t> BruteRange(const OnexBase& base,
                              std::span<const double> query, double st,
                              size_t length) {
  std::set<uint64_t> hits;
  const Dataset& d = base.dataset();
  const double norm =
      2.0 * static_cast<double>(std::max(query.size(), length));
  const DtwOptions options{-1};
  for (uint32_t p = 0; p < d.size(); ++p) {
    if (d[p].length() < length) continue;
    for (uint32_t j = 0; j + length <= d[p].length(); ++j) {
      const double dist =
          DtwDistance(query, d[p].Subsequence(j, length), options) / norm;
      if (dist <= st) {
        hits.insert(KeyOf({p, j, static_cast<uint32_t>(length)}));
      }
    }
  }
  return hits;
}

TEST(RangeQueryTest, ExactDistancesMatchBruteForceScan) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> query(16);
    for (auto& x : query) x = rng.UniformDouble(0.2, 0.8);
    const double st = 0.05 + 0.03 * trial;
    auto got = processor.FindAllWithin(S(query), st, 16,
                                       /*exact_distances=*/true);
    ASSERT_TRUE(got.ok());
    const auto want = BruteRange(base, S(query), st, 16);
    std::set<uint64_t> got_keys;
    for (const auto& match : got.value()) {
      EXPECT_LE(match.distance, st + 1e-9);
      EXPECT_EQ(match.ref.length, 16u);
      got_keys.insert(KeyOf(match.ref));
    }
    EXPECT_EQ(got_keys, want) << "st=" << st;
  }
}

TEST(RangeQueryTest, ResultsSortedByDistance) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto view = base.dataset()[0].Subsequence(0, 16);
  std::vector<double> query(view.begin(), view.end());
  auto result = processor.FindAllWithin(S(query), 0.15, 16, true);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result.value().size(); ++i) {
    EXPECT_GE(result.value()[i].distance,
              result.value()[i - 1].distance);
  }
}

TEST(RangeQueryTest, Lemma2FastPathFiresAndIsSound) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  // Query group representatives directly: any group whose stored ED
  // radius is within st/2 must be admitted wholesale for its own
  // representative (DTW(q, rep) = 0 <= st/2).
  const GtiEntry* entry = base.EntryFor(16);
  ASSERT_NE(entry, nullptr);
  ASSERT_GT(entry->NumGroups(), 0u);
  const double st = base.options().st;
  QueryStats total;
  uint64_t expected_admissions = 0;
  for (const auto& group : entry->groups) {
    const double radius =
        group.members.empty() ? 0.0 : group.members.back().ed_to_rep;
    QueryStats call;
    auto result = processor.FindAllWithin(
        S(group.representative), st, 16, /*exact_distances=*/true, &call);
    ASSERT_TRUE(result.ok());
    total.Add(call);
    if (radius <= st / 2.0) expected_admissions += group.members.size();
    // Soundness: every returned member is genuinely within st.
    for (const auto& match : result.value()) {
      EXPECT_LE(match.distance, st + 1e-9);
    }
  }
  // Most groups keep their construction radius, so the fast path must
  // have fired at least for those.
  EXPECT_GE(total.members_admitted_by_lemma2, expected_admissions);
  EXPECT_GT(total.members_admitted_by_lemma2, 0u);
}

TEST(RangeQueryTest, FastPathReportsUpperBoundWithoutExactFlag) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const GtiEntry* entry = base.EntryFor(8);
  const double st = base.options().st;
  // Find a group whose stored radius still satisfies the fast-path
  // premise (representative drift can push some beyond st/2).
  const LsiEntry* eligible = nullptr;
  for (const auto& group : entry->groups) {
    if (!group.members.empty() &&
        group.members.back().ed_to_rep <= st / 2.0) {
      eligible = &group;
      break;
    }
  }
  if (eligible == nullptr) GTEST_SKIP() << "no fast-path-eligible group";
  auto result =
      processor.FindAllWithin(S(eligible->representative), st, 8, false);
  ASSERT_TRUE(result.ok());
  // Fast-path members carry distance == st (the Lemma-2 upper bound)
  // and are flagged so callers can tell bounds from real distances.
  bool saw_upper_bound = false;
  for (const auto& match : result.value()) {
    EXPECT_LE(match.distance, st + 1e-12);
    if (match.distance_is_upper_bound) {
      EXPECT_EQ(match.distance, st);
      saw_upper_bound = true;
    }
  }
  EXPECT_TRUE(saw_upper_bound);
}

TEST(RangeQueryTest, ExactDistancesNeverFlaggedAsUpperBounds) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto view = base.dataset()[1].Subsequence(0, 16);
  std::vector<double> query(view.begin(), view.end());
  auto result = processor.FindAllWithin(S(query), base.options().st, 0,
                                        /*exact_distances=*/true);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  for (const auto& match : result.value()) {
    EXPECT_FALSE(match.distance_is_upper_bound);
  }
}

TEST(RangeQueryTest, AllLengthsMode) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto view = base.dataset()[2].Subsequence(0, 16);
  std::vector<double> query(view.begin(), view.end());
  auto result = processor.FindAllWithin(S(query), 0.1, 0, true);
  ASSERT_TRUE(result.ok());
  std::set<size_t> lengths_seen;
  for (const auto& match : result.value()) {
    lengths_seen.insert(match.ref.length);
  }
  EXPECT_GE(lengths_seen.size(), 2u);  // Cross-length hits exist.
}

TEST(RangeQueryTest, TinyThresholdFindsAtMostTheQueryItself) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto view = base.dataset()[4].Subsequence(3, 16);
  std::vector<double> query(view.begin(), view.end());
  auto result = processor.FindAllWithin(S(query), 1e-6, 16, true);
  ASSERT_TRUE(result.ok());
  // The query's own subsequence is a guaranteed hit at distance 0.
  ASSERT_FALSE(result.value().empty());
  EXPECT_LE(result.value()[0].distance, 1e-9);
}

TEST(RangeQueryTest, Validation) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  std::vector<double> query(8, 0.5), empty;
  EXPECT_FALSE(processor.FindAllWithin(S(empty), 0.1, 8).ok());
  EXPECT_FALSE(processor.FindAllWithin(S(query), -0.1, 8).ok());
  EXPECT_FALSE(processor.FindAllWithin(S(query), 0.1, 7).ok());
}

}  // namespace
}  // namespace onex

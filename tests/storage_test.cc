// Tests for the durability subsystem (src/storage/): WAL record round
// trips, torn-tail and corrupt-record tolerance, DurableEngine
// kill-and-recover (every acknowledged append survives process death),
// checkpoint rotation, sequence-number skip on crash-mid-checkpoint,
// the background checkpointer, and an end-to-end wire APPEND/FLUSH
// kill-and-recover through catalog + server.

#include "storage/storage.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/wal.h"

namespace onex {
namespace storage {
namespace {

namespace fs = std::filesystem;

constexpr size_t kSeedSeries = 10;
constexpr size_t kSeriesLength = 24;

Engine BuildSmallEngine(uint64_t seed) {
  GenOptions gen;
  gen.num_series = kSeedSeries;
  gen.length = kSeriesLength;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, kSeriesLength, 8};
  auto built = Engine::Build(std::move(d), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// A recognizable series: value j is a ramp offset by `tag`, so
/// recovered datasets can be checked value-for-value.
TimeSeries TaggedSeries(int tag) {
  std::vector<double> values(kSeriesLength);
  for (size_t j = 0; j < values.size(); ++j) {
    values[j] = 0.01 * static_cast<double>(tag) +
                0.9 * static_cast<double>(j) /
                    static_cast<double>(values.size() - 1);
  }
  return TimeSeries(std::move(values), tag);
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string WalPath(const std::string& name) {
    return WalPathFor(dir_.string(), name);
  }

  /// Chops `bytes` off the end of a file (simulates a torn write).
  void TruncateTail(const std::string& path, uint64_t bytes) {
    const uint64_t size = fs::file_size(path);
    ASSERT_GT(size, bytes);
    fs::resize_file(path, size - bytes);
  }

  /// XORs one byte at `offset` (simulates bitrot / partial overwrite).
  void FlipByte(const std::string& path, uint64_t offset) {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
  }

  fs::path dir_;
};

// ------------------------------------------------------------ WAL unit.

TEST_F(StorageTest, WalRoundTripsRecords) {
  const std::string path = WalPath("w");
  auto writer = WalWriter::Create(path, 42);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  std::vector<TimeSeries> originals = {TaggedSeries(1), TaggedSeries(-7),
                                       TaggedSeries(300)};
  for (const TimeSeries& series : originals) {
    ASSERT_TRUE(writer.value().Append(series).ok());
  }
  ASSERT_TRUE(writer.value().Sync().ok());
  EXPECT_EQ(writer.value().records(), 3u);

  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents.value().snapshot_series, 42u);
  EXPECT_FALSE(contents.value().tail_torn);
  ASSERT_EQ(contents.value().records.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(contents.value().records[i].values(), originals[i].values());
    EXPECT_EQ(contents.value().records[i].label(), originals[i].label());
  }
  EXPECT_EQ(contents.value().valid_bytes, fs::file_size(path));
}

TEST_F(StorageTest, WalTornTailRecoversValidPrefixAndStaysAppendable) {
  const std::string path = WalPath("torn");
  {
    auto writer = WalWriter::Create(path, 0);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(writer.value().Append(TaggedSeries(i)).ok());
    }
    ASSERT_TRUE(writer.value().Sync().ok());
  }
  TruncateTail(path, 5);  // Record 4 loses its last bytes.

  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().tail_torn);
  ASSERT_EQ(contents.value().records.size(), 4u);

  // Appending on top of the valid prefix truncates the torn tail, so
  // the new record is reachable at the next replay.
  auto writer = WalWriter::OpenForAppend(path, contents.value().valid_bytes);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE(writer.value().Append(TaggedSeries(99)).ok());
  ASSERT_TRUE(writer.value().Sync().ok());

  auto reread = ReadWal(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_FALSE(reread.value().tail_torn);
  ASSERT_EQ(reread.value().records.size(), 5u);
  EXPECT_EQ(reread.value().records[4].label(), 99);
}

TEST_F(StorageTest, WalCorruptRecordStopsReplayAtLastValidRecord) {
  const std::string path = WalPath("corrupt");
  uint64_t first_record_end = 0;
  {
    auto writer = WalWriter::Create(path, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value().Append(TaggedSeries(0)).ok());
    first_record_end = writer.value().bytes();
    ASSERT_TRUE(writer.value().Append(TaggedSeries(1)).ok());
    ASSERT_TRUE(writer.value().Append(TaggedSeries(2)).ok());
    ASSERT_TRUE(writer.value().Sync().ok());
  }
  // Corrupt a payload byte of record 1: its CRC fails, and replay must
  // not continue to record 2 (boundaries after unverifiable bytes
  // cannot be trusted).
  FlipByte(path, first_record_end + 16);

  auto contents = ReadWal(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().tail_torn);
  ASSERT_EQ(contents.value().records.size(), 1u);
  EXPECT_EQ(contents.value().records[0].label(), 0);
  EXPECT_EQ(contents.value().valid_bytes, first_record_end);
}

TEST_F(StorageTest, WalHeaderProblemsAreDiagnosed) {
  // Missing file.
  EXPECT_EQ(ReadWal(WalPath("nope")).status().code(),
            Status::Code::kNotFound);

  // Garbage that is long enough to carry a magic: Corruption.
  const std::string garbage = WalPath("garbage");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "this is definitely not a write-ahead log";
  }
  EXPECT_EQ(ReadWal(garbage).status().code(), Status::Code::kCorruption);

  // A file shorter than the header (crash during rotation): empty log,
  // flagged torn, NOT an error — the snapshot alone is consistent.
  const std::string shorty = WalPath("short");
  {
    std::ofstream out(shorty, std::ios::binary);
    out << "OW";
  }
  auto contents = ReadWal(shorty);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents.value().records.empty());
  EXPECT_TRUE(contents.value().tail_torn);
}

// ------------------------------------------- DurableEngine recovery.

TEST_F(StorageTest, KillAndRecoverReplaysEveryAcknowledgedAppend) {
  StorageOptions options;
  options.background_checkpointer = false;  // Pin "crash before checkpoint".
  constexpr int kAppends = 5;
  {
    auto durable = DurableEngine::Create(dir_.string(), "live",
                                         BuildSmallEngine(1), options);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    for (int i = 0; i < kAppends; ++i) {
      ASSERT_TRUE(durable.value()->Append(TaggedSeries(100 + i)).ok());
    }
    EXPECT_EQ(durable.value()->stats().wal_records,
              static_cast<uint64_t>(kAppends));
    // Dropped here WITHOUT a checkpoint: recovery must come from the WAL.
  }

  auto reopened = DurableEngine::Open(dir_.string(), "live", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::shared_ptr<Engine> engine = reopened.value()->engine();
  EXPECT_EQ(engine->num_series(), kSeedSeries + kAppends);
  EXPECT_EQ(reopened.value()->stats().replayed_records,
            static_cast<uint64_t>(kAppends));

  // Value-for-value: the recovered dataset holds exactly what was
  // acknowledged, and the recovered base answers queries over it.
  for (int i = 0; i < kAppends; ++i) {
    const TimeSeries want = TaggedSeries(100 + i);
    const TimeSeries& got = engine->dataset()[kSeedSeries + i];
    EXPECT_EQ(got.values(), want.values());
    EXPECT_EQ(got.label(), want.label());
    auto response = engine->Execute(
        BestMatchRequest{want.values(), kSeriesLength}, ExecContext{});
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().matches().size(), 1u);
  }
}

TEST_F(StorageTest, TornFinalRecordStillRecoversEveryPriorAppend) {
  StorageOptions options;
  options.background_checkpointer = false;
  {
    auto durable = DurableEngine::Create(dir_.string(), "torn",
                                         BuildSmallEngine(2), options);
    ASSERT_TRUE(durable.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(durable.value()->Append(TaggedSeries(200 + i)).ok());
    }
  }
  TruncateTail(WalPath("torn"), 7);  // Tear the last record mid-payload.

  auto reopened = DurableEngine::Open(dir_.string(), "torn", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->engine()->num_series(), kSeedSeries + 3);
  EXPECT_TRUE(reopened.value()->stats().recovered_torn_tail);
  EXPECT_EQ(reopened.value()->stats().replayed_records, 3u);

  // The log remains appendable after tail truncation, and the next
  // recovery sees old and new records alike.
  ASSERT_TRUE(reopened.value()->Append(TaggedSeries(299)).ok());
  reopened = Status::NotFound("dropped");
  auto again = DurableEngine::Open(dir_.string(), "torn", options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->engine()->num_series(), kSeedSeries + 4);
  EXPECT_EQ(again.value()->engine()->dataset()[kSeedSeries + 3].label(), 299);
}

TEST_F(StorageTest, CheckpointRotatesWalAndMakesSnapshotSelfSufficient) {
  StorageOptions options;
  options.background_checkpointer = false;
  {
    auto durable = DurableEngine::Create(dir_.string(), "ckpt",
                                         BuildSmallEngine(3), options);
    ASSERT_TRUE(durable.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(durable.value()->Append(TaggedSeries(300 + i)).ok());
    }
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
    const StorageStats stats = durable.value()->stats();
    EXPECT_EQ(stats.checkpoints, 1u);
    EXPECT_EQ(stats.wal_records, 0u);  // Rotated.
  }
  // Even with the WAL deleted outright, the checkpointed snapshot holds
  // every append.
  fs::remove(WalPath("ckpt"));
  auto reopened = DurableEngine::Open(dir_.string(), "ckpt", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->engine()->num_series(), kSeedSeries + 3);
  EXPECT_EQ(reopened.value()->stats().replayed_records, 0u);
}

TEST_F(StorageTest, RecoverySkipsRecordsAlreadyInTheSnapshot) {
  StorageOptions options;
  options.background_checkpointer = false;
  const std::string wal = WalPath("skip");
  const std::string stale_wal = wal + ".saved";
  {
    auto durable = DurableEngine::Create(dir_.string(), "skip",
                                         BuildSmallEngine(4), options);
    ASSERT_TRUE(durable.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(durable.value()->Append(TaggedSeries(400 + i)).ok());
    }
    fs::copy_file(wal, stale_wal);
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
  }
  // Simulate a crash BETWEEN "snapshot renamed" and "WAL rotated": the
  // new snapshot (13 series) pairs with the old log (3 records against
  // the 10-series snapshot). Replay must skip all 3 — no duplicates.
  fs::remove(wal);
  fs::rename(stale_wal, wal);

  auto reopened = DurableEngine::Open(dir_.string(), "skip", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->engine()->num_series(), kSeedSeries + 3);
  EXPECT_EQ(reopened.value()->stats().skipped_records, 3u);
  EXPECT_EQ(reopened.value()->stats().replayed_records, 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(reopened.value()->engine()->dataset()[kSeedSeries + i].label(),
              400 + i);
  }
}

TEST_F(StorageTest, StaleShortWalIsRotatedNotContinued) {
  // Crash-after-snapshot-rename with an UNSYNCED torn tail can leave a
  // log whose valid records stop short of what the snapshot holds.
  // Continuing that log would hand new appends sequence numbers the
  // snapshot already covers — the next recovery would skip them. Open
  // must rotate instead.
  StorageOptions options;
  options.background_checkpointer = false;
  const std::string wal = WalPath("stale");
  const std::string short_wal = wal + ".short";
  {
    auto durable = DurableEngine::Create(dir_.string(), "stale",
                                         BuildSmallEngine(8), options);
    ASSERT_TRUE(durable.ok());
    ASSERT_TRUE(durable.value()->Append(TaggedSeries(800)).ok());
    ASSERT_TRUE(durable.value()->Append(TaggedSeries(801)).ok());
    fs::copy_file(wal, short_wal);  // 2 records against the 10-snapshot.
    ASSERT_TRUE(durable.value()->Append(TaggedSeries(802)).ok());
    ASSERT_TRUE(durable.value()->Checkpoint().ok());  // Snapshot: 13.
  }
  fs::remove(wal);
  fs::rename(short_wal, wal);  // The stale, too-short log.

  {
    auto reopened = DurableEngine::Open(dir_.string(), "stale", options);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened.value()->engine()->num_series(), kSeedSeries + 3);
    EXPECT_EQ(reopened.value()->stats().replayed_records, 0u);
    // An append after this recovery must survive the NEXT recovery.
    ASSERT_TRUE(reopened.value()->Append(TaggedSeries(803)).ok());
  }
  auto again = DurableEngine::Open(dir_.string(), "stale", options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->engine()->num_series(), kSeedSeries + 4);
  EXPECT_EQ(again.value()->engine()->dataset()[kSeedSeries + 3].label(), 803);
}

TEST_F(StorageTest, GroupCommitBatchSurvivesKill) {
  StorageOptions options;
  options.background_checkpointer = false;
  options.sync_appends = false;  // Batch still syncs once per commit.
  {
    auto durable = DurableEngine::Create(dir_.string(), "batch",
                                         BuildSmallEngine(5), options);
    ASSERT_TRUE(durable.ok());
    std::vector<TimeSeries> batch;
    for (int i = 0; i < 4; ++i) batch.push_back(TaggedSeries(500 + i));
    ASSERT_TRUE(durable.value()->AppendBatch(std::move(batch)).ok());
  }
  auto reopened = DurableEngine::Open(dir_.string(), "batch", options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->engine()->num_series(), kSeedSeries + 4);
}

TEST_F(StorageTest, BackgroundCheckpointerTriggersOnRecordThreshold) {
  StorageOptions options;
  options.checkpoint_wal_records = 3;
  options.checkpoint_wal_bytes = 0;  // Records-only trigger.
  auto durable = DurableEngine::Create(dir_.string(), "bg",
                                       BuildSmallEngine(6), options);
  ASSERT_TRUE(durable.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(durable.value()->Append(TaggedSeries(600 + i)).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (durable.value()->stats().checkpoints == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(durable.value()->stats().checkpoints, 1u);
  EXPECT_LT(durable.value()->stats().wal_records, 3u);
}

// -------------------------------------- end-to-end over the wire.

/// Append over TCP, kill the serving stack, restart it on the same
/// directory, and query what was appended: the full story the ISSUE's
/// acceptance criterion tells.
TEST_F(StorageTest, WireAppendsSurviveServerDeathWithoutFlush) {
  server::CatalogOptions catalog_options;
  catalog_options.data_dir = dir_.string();
  catalog_options.durable = true;
  catalog_options.storage.background_checkpointer = false;

  const TimeSeries first = TaggedSeries(700);
  const TimeSeries second = TaggedSeries(701);

  {
    auto catalog =
        std::make_shared<server::Catalog>(catalog_options);
    catalog->Register("live", BuildSmallEngine(7));
    auto started = server::Server::Start(server::ServerOptions{}, catalog);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    auto server = std::move(started).value();

    auto connected = server::Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(connected.ok());
    server::Client client = std::move(connected).value();

    auto use = client.Roundtrip("use live");
    ASSERT_TRUE(use.ok());
    ASSERT_TRUE(use.value().ok) << use.value().message;
    EXPECT_EQ(use.value().header.at("durable"), "1");

    // APPEND before USE on a fresh session is a structured error.
    auto other = server::Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(other.ok());
    auto unbound = other.value().Roundtrip(
        server::RenderAppendLine(server::AppendRequest{first.values(), 0}));
    ASSERT_TRUE(unbound.ok());
    EXPECT_FALSE(unbound.value().ok);
    EXPECT_EQ(unbound.value().code, server::kNoDatasetCode);

    // Two durable appends; the reply acknowledges index and total.
    auto a1 = client.Roundtrip(server::RenderAppendLine(
        server::AppendRequest{first.values(), first.label()}));
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(a1.value().ok) << a1.value().message;
    EXPECT_EQ(a1.value().header.at("series"),
              std::to_string(kSeedSeries));
    EXPECT_EQ(a1.value().header.at("durable"), "1");
    auto a2 = client.Roundtrip(server::RenderAppendLine(
        server::AppendRequest{second.values(), second.label()}));
    ASSERT_TRUE(a2.ok());
    ASSERT_TRUE(a2.value().ok);
    EXPECT_EQ(a2.value().header.at("total"),
              std::to_string(kSeedSeries + 2));

    // The appended data is immediately queryable over the wire.
    auto hit = client.Execute(QueryRequest(
        BestMatchRequest{first.values(), kSeriesLength}));
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit.value().ok);

    // Deliberately NO flush: the restart below must recover both
    // appends from the WAL alone.
    server->Stop();
  }  // Catalog (and every DurableEngine) dies here. No checkpoint ran.

  {
    auto catalog =
        std::make_shared<server::Catalog>(catalog_options);
    // NOTE: no Register — "live" must come back from snapshot + WAL.
    auto started = server::Server::Start(server::ServerOptions{}, catalog);
    ASSERT_TRUE(started.ok());
    auto server = std::move(started).value();

    auto connected = server::Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(connected.ok());
    server::Client client = std::move(connected).value();
    auto use = client.Roundtrip("use live");
    ASSERT_TRUE(use.ok());
    ASSERT_TRUE(use.value().ok) << use.value().message;
    EXPECT_EQ(use.value().header.at("series"),
              std::to_string(kSeedSeries + 2));

    auto hit = client.Execute(QueryRequest(
        BestMatchRequest{second.values(), kSeriesLength}));
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit.value().ok) << hit.value().code;
    ASSERT_FALSE(hit.value().payload.empty());

    // FLUSH over the wire checkpoints: the engine reports durable and
    // the flush round-trips OK.
    auto flushed = client.Roundtrip("flush");
    ASSERT_TRUE(flushed.ok());
    EXPECT_TRUE(flushed.value().ok) << flushed.value().message;
    server->Stop();
  }

  // After the flush, the snapshot alone carries everything.
  fs::remove(WalPath("live"));
  auto reopened = DurableEngine::Open(dir_.string(), "live",
                                      catalog_options.storage);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->engine()->num_series(), kSeedSeries + 2);
  EXPECT_EQ(reopened.value()->engine()->dataset()[kSeedSeries].values(),
            first.values());
}

// ------------------------------------------------------ delta GC (v8).

TEST_F(StorageTest, DeltaGcRetiresInsideGraceThenSweepsAfterIt) {
  StorageOptions options;
  options.background_checkpointer = false;
  options.max_delta_chain_length = 2;
  options.delta_gc_grace_s = 0.5;
  auto durable = DurableEngine::Create(dir_.string(), "gc",
                                       BuildSmallEngine(3), options);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();

  // Checkpoint past the chain bound so a compaction orphans the chain.
  size_t round = 0;
  while (durable.value()->stats().chain_compactions == 0) {
    ASSERT_LT(round, 8u) << "chain never compacted";
    ASSERT_TRUE(
        durable.value()->Append(TaggedSeries(static_cast<int>(round))).ok());
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
    ++round;
  }

  // Inside the grace window the orphans are RETIRED, not unlinked: the
  // artifact bytes stay servable to a follower holding the old
  // manifest, the pending gauge counts them, and nothing is reclaimed.
  StorageStats stats = durable.value()->stats();
  EXPECT_GE(stats.gc_pending_artifacts, 1u);
  EXPECT_EQ(stats.gc_reclaimed_bytes, 0u);
  EXPECT_TRUE(fs::exists(DeltaPathFor(dir_.string(), "gc", 1)));
  EXPECT_EQ(durable.value()->CollectGarbage(), 0u);
  EXPECT_TRUE(fs::exists(DeltaPathFor(dir_.string(), "gc", 1)));

  // Once the grace elapses the sweep unlinks them and accounts the
  // reclaimed bytes.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_GE(durable.value()->CollectGarbage(), 1u);
  stats = durable.value()->stats();
  EXPECT_EQ(stats.gc_pending_artifacts, 0u);
  EXPECT_GT(stats.gc_reclaimed_bytes, 0u);
  EXPECT_FALSE(fs::exists(DeltaPathFor(dir_.string(), "gc", 1)));
}

TEST_F(StorageTest, DeltaGcZeroGraceKeepsImmediateUnlink) {
  // The historical default: no grace, compaction unlinks on the spot
  // and the GC gauges stay zero.
  StorageOptions options;
  options.background_checkpointer = false;
  options.max_delta_chain_length = 2;
  auto durable = DurableEngine::Create(dir_.string(), "nograce",
                                       BuildSmallEngine(3), options);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();
  size_t round = 0;
  while (durable.value()->stats().chain_compactions == 0) {
    ASSERT_LT(round, 8u);
    ASSERT_TRUE(
        durable.value()->Append(TaggedSeries(static_cast<int>(round))).ok());
    ASSERT_TRUE(durable.value()->Checkpoint().ok());
    ++round;
  }
  const StorageStats stats = durable.value()->stats();
  EXPECT_EQ(stats.gc_pending_artifacts, 0u);
  EXPECT_EQ(stats.gc_reclaimed_bytes, 0u);
  EXPECT_FALSE(fs::exists(DeltaPathFor(dir_.string(), "nograce", 1)));
}

}  // namespace
}  // namespace storage
}  // namespace onex

// Parameterized cross-dataset sweeps of the full pipeline: for every
// (dataset, ST) combination the ONEX answer must be sane, bounded by
// the oracle, and stable across optimization toggles. These sweeps are
// the repository's broadest property net — they exercise group
// construction, both indexes, and the query processor on all six
// evaluation-dataset morphologies.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "baselines/standard_dtw.h"
#include "core/onex_base.h"
#include "core/query_processor.h"
#include "datagen/registry.h"
#include "dataset/normalize.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

class QuerySweep
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {
 protected:
  void SetUp() override {
    const auto [name, st] = GetParam();
    GenOptions gen;
    gen.num_series = 8;
    gen.seed = 42;
    auto made = MakeDatasetByName(name, gen);
    ASSERT_TRUE(made.ok());
    dataset_ = std::move(made).value();
    // Cap length at 32 points for sweep speed.
    if (dataset_.MaxLength() > 32) {
      Dataset cut(dataset_.name());
      for (size_t i = 0; i < dataset_.size(); ++i) {
        const auto view = dataset_[i].Subsequence(0, 32);
        cut.Add(TimeSeries(std::vector<double>(view.begin(), view.end()),
                           dataset_[i].label()));
      }
      dataset_ = std::move(cut);
    }
    MinMaxNormalize(&dataset_);

    OnexOptions options;
    options.st = st;
    options.lengths = {8, 32, 8};
    auto built = OnexBase::Build(dataset_, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    base_ = std::make_unique<OnexBase>(std::move(built).value());
  }

  Dataset dataset_;
  std::unique_ptr<OnexBase> base_;
};

TEST_P(QuerySweep, GroupInvariantsHold) {
  for (size_t length : base_->gti().Lengths()) {
    const GtiEntry* entry = base_->EntryFor(length);
    size_t members = 0;
    for (const auto& group : entry->groups) {
      ASSERT_FALSE(group.members.empty());
      members += group.members.size();
      // Members sorted; stored ED non-negative.
      for (size_t i = 0; i < group.members.size(); ++i) {
        EXPECT_GE(group.members[i].ed_to_rep, 0.0);
        if (i > 0) {
          EXPECT_LE(group.members[i - 1].ed_to_rep,
                    group.members[i].ed_to_rep);
        }
      }
    }
    // Series shorter than the 32-point cap (e.g. ItalyPower's 24) keep
    // their natural length; count against the actual series length.
    EXPECT_EQ(members,
              dataset_.size() * (dataset_.MaxLength() - length + 1));
  }
}

TEST_P(QuerySweep, OnexIsBoundedByOracle) {
  QueryProcessor processor(base_.get());
  LengthSpec lengths{8, 32, 8};
  StandardDtwSearch oracle(&dataset_, lengths);
  Rng rng(31);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<double> query(16);
    for (auto& x : query) x = rng.UniformDouble(0.1, 0.9);
    auto got = processor.FindBestMatch(S(query));
    ASSERT_TRUE(got.ok());
    const SearchResult want = oracle.FindBestMatch(S(query));
    EXPECT_GE(got.value().distance, want.distance - 1e-9);
    // And the match is a real subsequence whose recomputed distance
    // matches the reported one.
    const auto view = got.value().ref.View(base_->dataset());
    EXPECT_EQ(view.size(), got.value().ref.length);
  }
}

TEST_P(QuerySweep, ExactLengthResultHasRequestedLength) {
  QueryProcessor processor(base_.get());
  Rng rng(37);
  for (size_t length : base_->gti().Lengths()) {
    std::vector<double> query(length);
    for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
    auto result = processor.FindBestMatchOfLength(S(query), length);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().ref.length, length);
    EXPECT_TRUE(std::isfinite(result.value().distance));
  }
}

TEST_P(QuerySweep, SpSpaceMarkersOrdered) {
  for (size_t length : base_->gti().Lengths()) {
    const GtiEntry* entry = base_->EntryFor(length);
    EXPECT_GE(entry->st_half, base_->options().st - 1e-12);
    EXPECT_GE(entry->st_final, entry->st_half - 1e-12);
  }
  const auto global = base_->sp_space().Global();
  EXPECT_GE(global.st_final, global.st_half);
}

TEST_P(QuerySweep, KSimilarAgreesWithBestMatch) {
  QueryProcessor processor(base_.get());
  Rng rng(41);
  std::vector<double> query(16);
  for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
  auto top = processor.FindKSimilar(S(query), 3, 16);
  auto best = processor.FindBestMatchOfLength(S(query), 16);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(best.ok());
  ASSERT_FALSE(top.value().empty());
  EXPECT_NEAR(top.value()[0].distance, best.value().distance, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndThresholds, QuerySweep,
    ::testing::Combine(::testing::Values("ItalyPower", "ECG", "Face",
                                         "Wafer", "Symbols", "TwoPattern"),
                       ::testing::Values(0.1, 0.2, 0.4)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, double>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_st" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

}  // namespace
}  // namespace onex

// Tests for the metrics surface grown by protocol v5: Prometheus text
// exposition grammar over RenderPrometheus, LatencyHistogram percentile
// interpolation edges (empty / single-sample / overflow), the TRACE
// block rendering with its cascade invariant, and a v4-session golden-
// bytes regression proving trace-less rendering is byte-identical.

#include "server/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace onex {
namespace server {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Metric name of one sample line (strips labels and the value).
std::string SampleName(const std::string& line) {
  const size_t brace = line.find('{');
  const size_t space = line.find(' ');
  return line.substr(0, std::min(brace, space));
}

// --------------------------------------- histogram interpolation edges

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(99.9), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(LatencyHistogramTest, SingleSampleInterpolatesWithinItsBucket) {
  LatencyHistogram h;
  const double sample = 250e-6;  // Bucket (199.5µs, 251.2µs].
  h.Record(sample);
  // Find the winning bucket's edges the same way Record does.
  size_t bucket = 0;
  while (bucket + 1 < LatencyHistogram::kBuckets &&
         sample > LatencyHistogram::UpperBound(bucket)) {
    ++bucket;
  }
  const double lower = LatencyHistogram::UpperBound(bucket - 1);
  const double upper = LatencyHistogram::UpperBound(bucket);
  // p=50 sits mid-bucket; only p=100 touches the upper edge. The old
  // upper-edge rule returned `upper` for every percentile (~26% high).
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), lower + 0.5 * (upper - lower));
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), upper);
  EXPECT_GT(h.Percentile(50.0), lower);
  EXPECT_LT(h.Percentile(50.0), upper);
}

TEST(LatencyHistogramTest, FirstBucketInterpolatesFromZero) {
  LatencyHistogram h;
  h.Record(0.0);  // Bucket 0: (0, 1µs].
  EXPECT_DOUBLE_EQ(h.Percentile(50.0),
                   0.5 * LatencyHistogram::kFirstUpperBound);
}

TEST(LatencyHistogramTest, OverflowSamplesClampToLastBucket) {
  LatencyHistogram h;
  h.Record(1e9);  // Far past the ~100s top bound.
  const double top =
      LatencyHistogram::UpperBound(LatencyHistogram::kBuckets - 1);
  const double below =
      LatencyHistogram::UpperBound(LatencyHistogram::kBuckets - 2);
  EXPECT_GT(h.Percentile(50.0), below);
  EXPECT_LE(h.Percentile(50.0), top);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), top);
}

TEST(LatencyHistogramTest, PercentilesAreMonotonicAcrossBuckets) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.Record(100e-6);
  for (int i = 0; i < 9; ++i) h.Record(10e-3);
  h.Record(1.0);
  const double p50 = h.Percentile(50.0);
  const double p95 = h.Percentile(95.0);
  const double p99 = h.Percentile(99.0);
  const double p999 = h.Percentile(99.9);
  EXPECT_LT(p50, p95);
  EXPECT_LT(p95, p99);
  EXPECT_LT(p99, p999);
  // The tail sample dominates p99.9: it must land in the 1s bucket.
  EXPECT_GT(p999, 0.5);
}

// ------------------------------------------- Prometheus grammar checks

TEST(PrometheusRenderTest, OutputObeysExpositionGrammar) {
  ServerMetrics metrics;
  metrics.RecordConnection();
  metrics.RecordQuery(QueryKind::kBestMatch, 250e-6, true);
  metrics.RecordQuery(QueryKind::kKSimilar, 1e-3, false);
  CascadeStats cascade;
  cascade.candidates = 100;
  cascade.pruned_kim = 60;
  cascade.pruned_keogh = 25;
  cascade.dtw_abandoned = 5;
  cascade.dtw_completed = 10;
  metrics.RecordQueryBreakdown(50e-6, 200e-6, cascade);
  metrics.RecordSlowQuery();

  GaugeSnapshot gauges;
  gauges.queue_depth = 3;
  gauges.workers_busy = 2;
  gauges.workers_total = 4;
  gauges.checkpoint_age_seconds = 12.5;
  const std::string out = metrics.RenderPrometheus(gauges);

  // Grammar: every sample line's base name must be declared by a # TYPE
  // line (histogram/summary samples match their family's name prefix),
  // and every family has exactly one HELP and one TYPE.
  std::map<std::string, std::string> declared_types;
  std::set<std::string> helped;
  for (const std::string& line : Lines(out)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition output";
    if (line.rfind("# HELP ", 0) == 0) {
      const std::string name =
          line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(helped.insert(name).second) << "duplicate HELP " << name;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const size_t space = line.find(' ', 7);
      const std::string name = line.substr(7, space - 7);
      const std::string type = line.substr(space + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" ||
                  type == "histogram" || type == "summary")
          << line;
      EXPECT_TRUE(declared_types.emplace(name, type).second)
          << "duplicate TYPE " << name;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    std::string name = SampleName(line);
    if (declared_types.count(name) == 0) {
      // _bucket/_sum/_count samples belong to their family name.
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const size_t at = name.rfind(suffix);
        if (at != std::string::npos &&
            at == name.size() - std::string(suffix).size()) {
          name = name.substr(0, at);
          break;
        }
      }
    }
    EXPECT_EQ(declared_types.count(name), 1u)
        << "sample without TYPE declaration: " << line;
  }

  // Counters end in _total (exposition-format naming convention).
  for (const auto& [name, type] : declared_types) {
    if (type == "counter") {
      EXPECT_TRUE(name.size() > 6 &&
                  name.compare(name.size() - 6, 6, "_total") == 0)
          << "counter without _total suffix: " << name;
    }
  }

  // Spot checks: the new surfaces are present with the recorded values.
  EXPECT_NE(out.find("onex_requests_total{kind=\"BestMatch\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("onex_request_errors_total{kind=\"KSimilar\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("onex_cascade_candidates_total 100\n"),
            std::string::npos);
  EXPECT_NE(out.find("onex_slow_queries_total 1\n"), std::string::npos);
  EXPECT_NE(out.find("onex_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(out.find("onex_checkpoint_age_seconds 12.5\n"),
            std::string::npos);
  EXPECT_NE(out.find("quantile=\"0.999\""), std::string::npos);
}

TEST(PrometheusRenderTest, HistogramBucketsAreCumulativeWithInf) {
  ServerMetrics metrics;
  CascadeStats none;
  metrics.RecordQueryBreakdown(10e-6, 100e-6, none);
  metrics.RecordQueryBreakdown(10e-6, 5e-3, none);
  metrics.RecordQueryBreakdown(2e-3, 5e-3, none);
  const std::string out = metrics.RenderPrometheus(GaugeSnapshot{});

  // Within each histogram family the _bucket counts must be
  // monotonically non-decreasing and the +Inf bucket must equal _count.
  for (const char* family : {"onex_queue_wait_seconds", "onex_exec_seconds"}) {
    uint64_t last = 0;
    uint64_t inf = 0;
    uint64_t count = 0;
    bool saw_inf = false;
    for (const std::string& line : Lines(out)) {
      if (line.rfind(std::string(family) + "_bucket{le=\"+Inf\"} ", 0) == 0) {
        inf = std::stoull(line.substr(line.rfind(' ') + 1));
        saw_inf = true;
      } else if (line.rfind(std::string(family) + "_bucket{", 0) == 0) {
        const uint64_t v = std::stoull(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(v, last) << family << " buckets not cumulative: " << line;
        last = v;
      } else if (line.rfind(std::string(family) + "_count ", 0) == 0) {
        count = std::stoull(line.substr(line.rfind(' ') + 1));
      }
    }
    EXPECT_TRUE(saw_inf) << family << " missing le=\"+Inf\" bucket";
    EXPECT_EQ(inf, count) << family;
    EXPECT_EQ(count, 3u) << family;
  }
}

// -------------------------------------------- TRACE block + v4 golden

TEST(TraceBlockTest, TraceLinesCarryStageAndCascadeWithInvariant) {
  QueryResponse response;
  response.kind = QueryKind::kBestMatch;
  response.payload = MatchResult{{QueryMatch{{2, 3, 8}, 0.125, 4, false}}};
  response.latency_seconds = 500e-6;
  response.stats.queue_wait_seconds = 100e-6;
  response.stats.rep_scan_seconds = 200e-6;
  response.stats.member_scan_seconds = 150e-6;
  response.stats.cascade.candidates = 40;
  response.stats.cascade.pruned_kim = 20;
  response.stats.cascade.pruned_keogh = 12;
  response.stats.cascade.dtw_abandoned = 3;
  response.stats.cascade.dtw_completed = 5;
  ASSERT_TRUE(response.stats.cascade.Consistent());

  const std::string out = RenderResponse(response, 7, /*trace=*/true);
  EXPECT_NE(out.find("trace stage queue_wait_us=100 rep_scan_us=200 "
                     "member_scan_us=150 knn_us=0 refine_us=0 exec_us=500\n"),
            std::string::npos)
      << out;
  // seen == kim_pruned + keogh_pruned + dtw_evaluated; dtw_evaluated
  // folds abandoned + completed; ratio = 1 - 8/40.
  EXPECT_NE(out.find("trace cascade seen=40 kim_pruned=20 keogh_pruned=12 "
                     "dtw_evaluated=8 early_abandoned=3 "
                     "pruning_ratio=0.8000\n"),
            std::string::npos)
      << out;
}

TEST(TraceBlockTest, EmptyCascadeRendersZeroRatio) {
  QueryResponse response;
  response.kind = QueryKind::kSeasonal;
  response.payload = SeasonalResult{};
  const std::string out = RenderResponse(response, 0, /*trace=*/true);
  EXPECT_NE(out.find("trace cascade seen=0 kim_pruned=0 keogh_pruned=0 "
                     "dtw_evaluated=0 early_abandoned=0 "
                     "pruning_ratio=0.0000\n"),
            std::string::npos)
      << out;
}

TEST(TraceBlockTest, V4SessionBytesAreUnchangedWithoutTraceAttr) {
  // Golden v4 bytes: a session that never sends trace=1 must see
  // byte-identical replies even when the response carries stage timings
  // and cascade counters internally.
  QueryResponse response;
  response.kind = QueryKind::kBestMatch;
  response.payload = MatchResult{{QueryMatch{{2, 3, 8}, 0.125, 4, false}}};
  response.stats.lengths_scanned = 1;
  response.stats.reps_compared = 2;
  response.stats.queue_wait_seconds = 123e-6;  // Populated but invisible.
  response.stats.cascade.candidates = 99;
  response.stats.cascade.dtw_completed = 99;
  response.latency_seconds = 152e-6;
  const std::string golden =
      "OK BestMatch id=7 matches=1 latency_us=152\n"
      "stats lengths_scanned=1 reps_compared=2 reps_pruned=0 "
      "members_compared=0 lemma2_admitted=0\n"
      "match series=2 start=3 length=8 distance=0.125 group=4 bound=0\n"
      ".\n";
  EXPECT_EQ(RenderResponse(response, 7), golden);
  EXPECT_EQ(RenderResponse(response, 7, /*trace=*/false), golden);
}

TEST(TraceBlockTest, TraceAttributeParsesAndRoundTrips) {
  RequestAttrs attrs;
  auto parsed = ParseRequestLine("trace=1 q1 8 0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8",
                                 &attrs);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(attrs.trace);
  // Excluded from any() on purpose: rendering is the only consumer, so
  // a lone trace=1 must not force ExecContext plumbing.
  EXPECT_FALSE(attrs.any());

  attrs = RequestAttrs{};
  parsed = ParseRequestLine("trace=0 q1 8 0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8",
                            &attrs);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(attrs.trace);

  EXPECT_FALSE(ParseRequestLine("trace=2 q1 8 0.1", &attrs).ok());
  EXPECT_FALSE(ParseRequestLine("trace=1 stats", &attrs).ok());

  RequestAttrs render;
  render.id = 7;
  render.trace = true;
  EXPECT_EQ(RenderRequestLine(QueryRequest(BestMatchRequest{{1.0, 2.0}, 0}),
                              render),
            "id=7 trace=1 q1 any 1,2");
}

TEST(TraceBlockTest, MetricsVerbParses) {
  auto parsed = ParseRequestLine("metrics");
  ASSERT_TRUE(parsed.ok());
  const auto* control = std::get_if<ControlRequest>(&parsed.value());
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->verb, ControlVerb::kMetrics);
  EXPECT_FALSE(ParseRequestLine("metrics now").ok());
}

}  // namespace
}  // namespace server
}  // namespace onex

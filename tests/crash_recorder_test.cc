// Tests for the crash-time flight recorder (src/util/crash_recorder.h).
// Two layers:
//
//   1. WriteCrashDumpForTest runs the handler's dump body (the exact
//      async-signal-safe composition code) into a plain fd, so the JSON
//      shape and the inflight-table capture are asserted in-process.
//   2. A fork()ed child installs the real handler and takes a genuine
//      SIGSEGV: the parent asserts the child died OF the signal (the
//      re-raise contract — a recorder that swallows the crash hides it
//      from the supervisor) and that the dump file it left behind
//      names the query that was in flight.
//
// The fork test runs the production signal path end to end without
// killing the test binary.

#include "util/crash_recorder.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/inflight.h"

namespace onex {
namespace {

std::string DumpToString(int signal_number) {
  char path[] = "/tmp/onex_crash_test_XXXXXX";
  const int fd = ::mkstemp(path);
  EXPECT_GE(fd, 0);
  crash::WriteCrashDumpForTest(fd, signal_number);
  ::lseek(fd, 0, SEEK_SET);
  std::string content;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) content.append(buf, n);
  ::close(fd);
  ::unlink(path);
  return content;
}

TEST(CrashRecorderTest, DumpBodyHasEverySection) {
  const std::string dump = DumpToString(SIGSEGV);
  EXPECT_NE(dump.find("\"signal\":11"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"signal_name\":\"SIGSEGV\""), std::string::npos);
  EXPECT_NE(dump.find("\"pid\":"), std::string::npos);
  EXPECT_NE(dump.find("\"recent_log\":"), std::string::npos);
  EXPECT_NE(dump.find("\"inflight\":"), std::string::npos);
  EXPECT_NE(dump.find("\"trace_tails\":"), std::string::npos);
  EXPECT_NE(dump.find("\"held_locks\":"), std::string::npos);
  // Balanced braces/brackets end-to-end: the writer composes JSON by
  // hand from a signal handler, so the grammar is worth a paranoid eye.
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : dump) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << dump;
}

TEST(CrashRecorderTest, DumpCapturesInflightQueries) {
  const int owner = 0;
  InflightClaim claim(&owner, /*id=*/77, /*session=*/5, /*kind=*/1,
                      "crashset", /*start_ns=*/0, /*deadline_ns=*/-1);
  ASSERT_NE(claim.probe(), nullptr);
  claim.probe()->PublishStage(QueryStage::kKnn);

  const std::string dump = DumpToString(SIGABRT);
  EXPECT_NE(dump.find("\"signal_name\":\"SIGABRT\""), std::string::npos);
  EXPECT_NE(dump.find("\"dataset\":\"crashset\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"id\":77"), std::string::npos);
  EXPECT_NE(dump.find("\"stage\":\"knn\""), std::string::npos);
}

TEST(CrashRecorderTest, InstallFailsOnUnwritableDirectory) {
  EXPECT_FALSE(
      crash::InstallCrashRecorder("/nonexistent/surely/not/here"));
}

TEST(CrashRecorderTest, RealSignalWritesDumpAndReRaises) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("onex_crash_fork_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: arm the recorder, put a query "in flight", and fault.
    // _exit codes mark the failure points a parent can distinguish
    // from the expected signal death.
    if (!crash::InstallCrashRecorder(dir.string())) ::_exit(10);
    static const int owner = 0;
    InflightClaim claim(&owner, 123, 9, 2, "forked", 0, -1);
    if (claim.probe() == nullptr) ::_exit(11);
    claim.probe()->PublishStage(QueryStage::kRepScan);
    ::raise(SIGSEGV);
    ::_exit(12);  // Unreachable if the handler re-raises correctly.
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  // The re-raise contract: the child must die OF SIGSEGV, not exit.
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child exited with " << WEXITSTATUS(status)
      << " instead of dying of the signal";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::filesystem::path dump_path =
      dir / ("onex_crash." + std::to_string(child) + ".json");
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << "no dump at " << dump_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("\"signal\":11"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"dataset\":\"forked\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"id\":123"), std::string::npos);
  EXPECT_NE(dump.find("\"stage\":\"rep_scan\""), std::string::npos);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace onex

// Tests for the cascading lower-bound pruner: exactness of survivors,
// admissibility end-to-end (a cascade scan finds the same best as a
// brute-force scan), and counter accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "distance/cascade.h"
#include "distance/dtw.h"
#include "distance/envelope.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

std::vector<double> RandomVector(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->UniformDouble(0.0, 1.0);
  return v;
}

TEST(CascadeTest, ExactWhenNotPruned) {
  Rng rng(1);
  const auto q = RandomVector(32, &rng);
  const auto c = RandomVector(32, &rng);
  DtwOptions dtw_options{4};
  CascadePruner pruner(dtw_options);
  const Envelope env = ComputeEnvelope(S(c), 4);
  const double d = pruner.Distance(S(q), S(c), &env,
                                   std::numeric_limits<double>::infinity());
  EXPECT_NEAR(d, DtwDistance(S(q), S(c), dtw_options), 1e-9);
  EXPECT_EQ(pruner.stats().candidates, 1u);
  EXPECT_EQ(pruner.stats().dtw_completed, 1u);
}

TEST(CascadeTest, PrunesObviouslyFarCandidate) {
  Rng rng(2);
  const auto q = RandomVector(32, &rng);
  auto c = RandomVector(32, &rng);
  for (auto& x : c) x += 100.0;
  CascadePruner pruner(DtwOptions{4});
  const Envelope env = ComputeEnvelope(S(c), 4);
  const double d = pruner.Distance(S(q), S(c), &env, 0.5);
  EXPECT_TRUE(std::isinf(d));
  EXPECT_EQ(pruner.stats().dtw_completed, 0u);
  EXPECT_EQ(pruner.stats().pruned_kim, 1u);
}

// The make-or-break property: scanning with the cascade yields the same
// minimum as scanning with plain DTW, for any candidate pool.
TEST(CascadeTest, ScanFindsSameBestAsBruteForce) {
  Rng rng(3);
  const size_t kCandidates = 200, kLen = 48;
  const size_t window = 5;
  DtwOptions dtw_options{static_cast<int>(window)};

  for (int repeat = 0; repeat < 5; ++repeat) {
    const auto q = RandomVector(kLen, &rng);
    std::vector<std::vector<double>> pool;
    std::vector<Envelope> envelopes;
    for (size_t i = 0; i < kCandidates; ++i) {
      pool.push_back(RandomVector(kLen, &rng));
      envelopes.push_back(ComputeEnvelope(S(pool.back()), window));
    }

    // Brute force.
    double best_plain = std::numeric_limits<double>::infinity();
    size_t best_plain_idx = 0;
    for (size_t i = 0; i < kCandidates; ++i) {
      const double d = DtwDistance(S(q), S(pool[i]), dtw_options);
      if (d < best_plain) {
        best_plain = d;
        best_plain_idx = i;
      }
    }

    // Cascade scan with a shrinking best-so-far.
    CascadePruner pruner(dtw_options);
    double best_cascade = std::numeric_limits<double>::infinity();
    size_t best_cascade_idx = 0;
    for (size_t i = 0; i < kCandidates; ++i) {
      const double d =
          pruner.Distance(S(q), S(pool[i]), &envelopes[i], best_cascade);
      if (d < best_cascade) {
        best_cascade = d;
        best_cascade_idx = i;
      }
    }

    EXPECT_NEAR(best_cascade, best_plain, 1e-9);
    EXPECT_EQ(best_cascade_idx, best_plain_idx);
    // And the cascade must actually have pruned something on random data.
    const CascadeStats& stats = pruner.stats();
    EXPECT_EQ(stats.candidates, kCandidates);
    EXPECT_GT(stats.pruned_kim + stats.pruned_keogh + stats.dtw_abandoned,
              0u);
  }
}

TEST(CascadeTest, StageTogglesDisableStages) {
  Rng rng(4);
  const auto q = RandomVector(32, &rng);
  auto far = RandomVector(32, &rng);
  for (auto& x : far) x += 100.0;
  const Envelope env = ComputeEnvelope(S(far), 4);

  CascadeOptions no_kim;
  no_kim.use_kim = false;
  CascadePruner pruner(DtwOptions{4}, no_kim);
  pruner.Distance(S(q), S(far), &env, 0.5);
  EXPECT_EQ(pruner.stats().pruned_kim, 0u);
  EXPECT_EQ(pruner.stats().pruned_keogh, 1u);

  CascadeOptions nothing;
  nothing.use_kim = false;
  nothing.use_keogh = false;
  nothing.use_early_abandon = false;
  CascadePruner plain(DtwOptions{4}, nothing);
  const double d = plain.Distance(S(q), S(far), &env, 0.5);
  EXPECT_TRUE(std::isfinite(d));  // Full DTW always computed.
  EXPECT_EQ(plain.stats().dtw_completed, 1u);
}

TEST(CascadeTest, NullEnvelopeSkipsKeogh) {
  Rng rng(5);
  const auto q = RandomVector(16, &rng);
  const auto c = RandomVector(24, &rng);  // Different length.
  CascadePruner pruner(DtwOptions{-1});
  const double d = pruner.Distance(S(q), S(c), nullptr,
                                   std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isfinite(d));
  EXPECT_EQ(pruner.stats().pruned_keogh, 0u);
}

TEST(CascadeTest, StatsAccounting) {
  Rng rng(6);
  CascadePruner pruner(DtwOptions{3});
  const auto q = RandomVector(24, &rng);
  double bsf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 50; ++i) {
    const auto c = RandomVector(24, &rng);
    const Envelope env = ComputeEnvelope(S(c), 3);
    const double d = pruner.Distance(S(q), S(c), &env, bsf);
    bsf = std::min(bsf, d);
  }
  const CascadeStats& stats = pruner.stats();
  EXPECT_EQ(stats.candidates, 50u);
  EXPECT_EQ(stats.candidates,
            stats.pruned_kim + stats.pruned_keogh + stats.dtw_abandoned +
                stats.dtw_completed);
  EXPECT_FALSE(stats.ToString().empty());
  pruner.ResetStats();
  EXPECT_EQ(pruner.stats().candidates, 0u);
}

}  // namespace
}  // namespace onex

// Tests for the tracing core (src/util/trace.h): span nesting depths,
// ring wraparound accounting, Chrome trace_event JSON well-formedness,
// and counter atomicity under concurrent writers. Each test starts from
// trace::Reset() so ring contents are deterministic; recording threads
// are always joined before export (the documented quiescence contract).

#include "util/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace onex {
namespace trace {
namespace {

/// Fresh-state fixture: tracing off, rings rewound, counters zeroed.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    Reset();
  }
  void TearDown() override {
    SetEnabled(false);
    Reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    ONEX_TRACE_SPAN("never");
    ONEX_TRACE_SPAN("records");
  }
  EXPECT_EQ(GetStats().recorded, 0u);
  EXPECT_EQ(GetStats().pushed, 0u);
}

TEST_F(TraceTest, EnableDisableToggleIsObservable) {
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  { ONEX_TRACE_SPAN("one"); }
  SetEnabled(false);
  { ONEX_TRACE_SPAN("two"); }
  EXPECT_EQ(GetStats().recorded, 1u);
}

TEST_F(TraceTest, NestedSpansRecordDepths) {
  SetEnabled(true);
  {
    ONEX_TRACE_SPAN("outer");
    {
      ONEX_TRACE_SPAN("middle");
      { ONEX_TRACE_SPAN("inner"); }
    }
  }
  // Spans are pushed at DESTRUCTION (inner first), carrying the nesting
  // depth captured at entry.
  EXPECT_EQ(GetStats().recorded, 3u);
  std::ostringstream json;
  EXPECT_EQ(WriteChromeTrace(json), 3u);
  const std::string out = json.str();
  EXPECT_NE(out.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"middle\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(out.find("\"depth\":0"), std::string::npos);
  EXPECT_NE(out.find("\"depth\":1"), std::string::npos);
  EXPECT_NE(out.find("\"depth\":2"), std::string::npos);
}

TEST_F(TraceTest, SpanDurationsAreOrderedAndContained) {
  SetEnabled(true);
  {
    ONEX_TRACE_SPAN("parent");
    { ONEX_TRACE_SPAN("child"); }
  }
  // No public event accessor by design (the export IS the API); assert
  // through stats that both landed and through JSON that both parse.
  EXPECT_EQ(GetStats().recorded, 2u);
  std::ostringstream json;
  WriteChromeTrace(json);
  EXPECT_NE(json.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, RingWraparoundKeepsNewestAndCountsDrops) {
  SetEnabled(true);
  const uint64_t pushes = kRingCapacity + 100;
  for (uint64_t i = 0; i < pushes; ++i) {
    ONEX_TRACE_SPAN("wrap");
  }
  const TraceStats stats = GetStats();
  EXPECT_EQ(stats.pushed, pushes);
  EXPECT_EQ(stats.recorded, kRingCapacity);
  EXPECT_EQ(stats.dropped, pushes - kRingCapacity);
  // Export must emit exactly the resident events, not the pushed total.
  std::ostringstream json;
  EXPECT_EQ(WriteChromeTrace(json), kRingCapacity);
}

TEST_F(TraceTest, ChromeTraceJsonIsWellFormed) {
  SetEnabled(true);
  {
    ONEX_TRACE_SPAN("a \"quoted\\name\"");  // Escaping must survive.
    ONEX_TRACE_SPAN("plain");
  }
  static Counter counter("trace_test.events");
  counter.Add(3);

  std::ostringstream json;
  WriteChromeTrace(json);
  const std::string out = json.str();

  // Structural checks: balanced braces/brackets outside strings — a
  // cheap stand-in for a JSON parser the repo doesn't ship.
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (char c : out) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  // The counter rides along as a "C" event.
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.find("trace_test.events"), std::string::npos);
  // The quoted name must appear escaped, never raw.
  EXPECT_NE(out.find("a \\\"quoted\\\\name\\\""), std::string::npos);
}

TEST_F(TraceTest, MultiThreadSpansLandInDistinctRings) {
  SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ONEX_TRACE_SPAN("worker");
      }
    });
  }
  for (auto& t : threads) t.join();
  const TraceStats stats = GetStats();
  // The main thread may have registered a ring in an earlier test of
  // this process; the worker rings alone carry today's events.
  EXPECT_GE(stats.threads, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.recorded, static_cast<uint64_t>(kThreads) *
                                 kSpansPerThread);
}

TEST_F(TraceTest, CountersAreAtomicAcrossThreads) {
  static Counter counter("trace_test.atomic");
  counter.Clear();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(TraceTest, CountersCountEvenWhenTracingDisabled) {
  static Counter counter("trace_test.always_on");
  counter.Clear();
  ASSERT_FALSE(Enabled());
  counter.Add(7);
  EXPECT_EQ(counter.value(), 7u);
}

TEST_F(TraceTest, ResetRewindsRingsAndCounters) {
  SetEnabled(true);
  { ONEX_TRACE_SPAN("gone"); }
  static Counter counter("trace_test.reset");
  counter.Add(5);
  Reset();
  EXPECT_EQ(GetStats().recorded, 0u);
  EXPECT_EQ(GetStats().pushed, 0u);
  EXPECT_EQ(counter.value(), 0u);
}

}  // namespace
}  // namespace trace
}  // namespace onex

// Cancellation / deadline semantics across the stack: engine-level
// (ExecContext interrupting a RangeWithin mid-flight, cancel racing a
// concurrent AppendSeries — run under TSan in CI), protocol-level (v3
// attribute grammar, PART frames, tagged errors), and wire-level
// (async Submit/Cancel handles, CANCEL of a completed id as a
// structured no-op ERR, a v2-style session against the v3 server).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "core/exec_context.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace onex {
namespace {

// Protocol symbols (RequestAttrs, ParseRequestLine, ...) live in
// onex::server; pull them in for the grammar tests below.
using server::ControlRequest;
using server::ControlVerb;
using server::ParseRequestLine;
using server::ParseResponseBlock;
using server::RenderCancelLine;
using server::RenderError;
using server::RenderPartBlock;
using server::RenderRequestLine;
using server::RenderResponse;
using server::RequestAttrs;

/// A base big enough that an exact range query has real work to do.
Engine BuildMarketEngine(size_t stocks = 30, size_t days = 96) {
  GenOptions gen;
  gen.num_series = stocks;
  gen.length = days;
  gen.seed = 11;
  Dataset market = MakeRandomWalk(gen);
  MinMaxNormalize(&market);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 0, 8};
  auto built = Engine::Build(std::move(market), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

std::vector<double> RampSketch(size_t n = 24) {
  std::vector<double> sketch(n);
  for (size_t i = 0; i < n; ++i) {
    sketch[i] = 0.2 + 0.6 * static_cast<double>(i) / (n - 1);
  }
  return sketch;
}

RangeWithinRequest BroadRange() {
  return RangeWithinRequest{RampSketch(), 0.3, /*length=*/0,
                           /*exact_distances=*/true};
}

// ------------------------------------------------- engine-level tests

TEST(ExecContextTest, ExpiredDeadlineReturnsPartialRangeResults) {
  const Engine engine = BuildMarketEngine();

  auto full = engine.Execute(BroadRange(), ExecContext{});
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full.value().partial);
  ASSERT_GT(full.value().matches().size(), 0u);

  ExecContext ctx;
  ctx.deadline = std::chrono::steady_clock::now();  // Already passed.
  ctx.check_every = 4;
  auto partial = engine.Execute(BroadRange(), ctx);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(partial.value().partial);
  EXPECT_EQ(partial.value().interrupt, Status::Code::kDeadlineExceeded);
  // The scan stopped almost immediately, so the partial set is a strict
  // subset of the full answer.
  EXPECT_LT(partial.value().matches().size(), full.value().matches().size());
}

TEST(ExecContextTest, PreCancelledTokenReturnsPartialImmediately) {
  const Engine engine = BuildMarketEngine();
  ExecContext ctx;
  ctx.cancel.Cancel();
  ctx.check_every = 4;
  auto response = engine.Execute(BroadRange(), ctx);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().partial);
  EXPECT_EQ(response.value().interrupt, Status::Code::kCancelled);
}

TEST(ExecContextTest, ArmedContextMatchesInertContextAnswer) {
  // An armed-but-never-firing context (deadline far away, live token)
  // must return the same answer as the inert default context.
  const Engine engine = BuildMarketEngine(12, 48);
  auto plain = engine.Execute(BroadRange(), ExecContext{});
  auto armed = engine.Execute(
      BroadRange(), ExecContext::WithDeadlineAfter(std::chrono::hours(1)));
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(armed.ok());
  EXPECT_FALSE(armed.value().partial);
  ASSERT_EQ(armed.value().matches().size(), plain.value().matches().size());
  for (size_t i = 0; i < plain.value().matches().size(); ++i) {
    EXPECT_EQ(armed.value().matches()[i].distance,
              plain.value().matches()[i].distance);
  }
}

TEST(ExecContextTest, ProgressSinkStreamsBatchesThatCoverTheFullAnswer) {
  const Engine engine = BuildMarketEngine(12, 48);
  ExecContext ctx;
  size_t streamed = 0;
  size_t events = 0;
  double last_fraction = 0.0;
  ctx.progress = [&](const ProgressEvent& event) {
    ++events;
    streamed += event.matches().size();
    EXPECT_FALSE(event.snapshot);  // Range queries append.
    EXPECT_GE(event.work_fraction, last_fraction);
    last_fraction = event.work_fraction;
  };
  auto response = engine.Execute(BroadRange(), ctx);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().partial);
  EXPECT_GT(events, 0u);
  // Every confirmed match was streamed exactly once.
  EXPECT_EQ(streamed, response.value().matches().size());
}

TEST(ExecContextTest, BestMatchProgressSendsSnapshots) {
  const Engine engine = BuildMarketEngine(12, 48);
  ExecContext ctx;
  size_t snapshots = 0;
  ctx.progress = [&](const ProgressEvent& event) {
    EXPECT_TRUE(event.snapshot);
    EXPECT_EQ(event.matches().size(), 1u);
    ++snapshots;
  };
  auto response =
      engine.Execute(BestMatchRequest{RampSketch(), /*length=*/0}, ctx);
  ASSERT_TRUE(response.ok());
  EXPECT_GT(snapshots, 0u);
}

TEST(ExecContextTest, RefineThresholdKeepsPerLengthPartials) {
  const Engine engine = BuildMarketEngine(12, 48);
  auto full = engine.Execute(RefineThresholdRequest{0.1, /*length=*/0}, ExecContext{});
  ASSERT_TRUE(full.ok());
  const size_t all_lengths = full.value().refinements().size();
  ASSERT_GT(all_lengths, 1u);

  ExecContext ctx;
  ctx.deadline = std::chrono::steady_clock::now();
  ctx.check_every = 4;
  auto partial = engine.Execute(RefineThresholdRequest{0.1, 0}, ctx);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial.value().partial);
  EXPECT_LT(partial.value().refinements().size(), all_lengths);
}

/// The TSan target: queries being cancelled while appends mutate the
/// base. Readers hold the shared lock, the appender the exclusive one,
/// and the token is fired from a third thread — TSan verifies no
/// unsynchronized access anywhere in the context plumbing.
TEST(ExecContextTest, CancelRacesConcurrentAppendCleanly) {
  Engine engine = BuildMarketEngine(16, 64);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread appender([&] {
    for (int i = 0; i < 8 && !stop.load(); ++i) {
      std::vector<double> values(64);
      for (size_t j = 0; j < values.size(); ++j) {
        values[j] = 0.5 + 0.4 * std::sin(0.1 * (i + 1) * j);
      }
      if (!engine.AppendSeries(TimeSeries(values, i)).ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        ExecContext ctx;
        ctx.check_every = 8;
        CancelToken token = ctx.cancel;
        std::thread canceller([token, t, i] {
          std::this_thread::sleep_for(
              std::chrono::microseconds(200 * (t + i + 1)));
          token.Cancel();
        });
        auto response = engine.Execute(BroadRange(), ctx);
        canceller.join();
        if (!response.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : queriers) thread.join();
  stop.store(true);
  appender.join();
  EXPECT_EQ(failures.load(), 0);
}

// ----------------------------------------------- protocol-level tests

TEST(ProtocolV3Test, AttributePrefixRoundTrips) {
  RequestAttrs attrs;
  attrs.id = 7;
  attrs.deadline_ms = 250;
  attrs.progress = true;
  const QueryRequest request = RangeWithinRequest{{0.1, 0.5, 0.9}, 0.3, 0,
                                                  false};
  const std::string line = RenderRequestLine(request, attrs);
  EXPECT_EQ(line.rfind("id=7 deadline_ms=250 progress=1 ", 0), 0u);

  RequestAttrs reparsed;
  auto parsed = ParseRequestLine(line, &reparsed);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(reparsed.id, 7u);
  EXPECT_EQ(reparsed.deadline_ms, 250u);
  EXPECT_TRUE(reparsed.progress);
  EXPECT_EQ(RenderRequestLine(std::get<QueryRequest>(parsed.value())),
            RenderRequestLine(request));
}

TEST(ProtocolV3Test, AttributeValidation) {
  RequestAttrs attrs;
  // progress needs an id.
  EXPECT_FALSE(ParseRequestLine("progress=1 q1 any 0.1,0.2", &attrs).ok());
  // id must be a positive integer.
  EXPECT_FALSE(ParseRequestLine("id=0 q1 any 0.1,0.2", &attrs).ok());
  EXPECT_FALSE(ParseRequestLine("id=x q1 any 0.1,0.2", &attrs).ok());
  // Unknown attribute keys are rejected, not dropped.
  EXPECT_FALSE(ParseRequestLine("timeout=5 q1 any 0.1,0.2", &attrs).ok());
  // Attributes on non-query verbs are rejected.
  EXPECT_FALSE(ParseRequestLine("id=3 ping", &attrs).ok());
  // Attributes without an attrs sink are rejected (never silently
  // dropped: a dropped deadline would be worse than an error).
  EXPECT_FALSE(ParseRequestLine("id=3 q1 any 0.1,0.2").ok());
  // A v2 line parses identically with and without the sink.
  EXPECT_TRUE(ParseRequestLine("q1 any 0.1,0.2").ok());
  auto parsed = ParseRequestLine("q1 any 0.1,0.2", &attrs);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(attrs.any());
}

TEST(ProtocolV3Test, CancelLineParsesAndRenders) {
  RequestAttrs attrs;
  auto parsed = ParseRequestLine(RenderCancelLine(42), &attrs);
  ASSERT_TRUE(parsed.ok());
  const auto* control = std::get_if<ControlRequest>(&parsed.value());
  ASSERT_NE(control, nullptr);
  EXPECT_EQ(control->verb, ControlVerb::kCancel);
  EXPECT_EQ(control->argument, "42");
  EXPECT_FALSE(ParseRequestLine("cancel", &attrs).ok());
  EXPECT_FALSE(ParseRequestLine("cancel nope", &attrs).ok());
}

TEST(ProtocolV3Test, PartBlockRendersAndParses) {
  std::vector<QueryMatch> matches(2);
  matches[0].ref = {3, 4, 8};
  matches[0].distance = 0.125;
  matches[1].ref = {5, 6, 8};
  matches[1].distance = 0.25;
  const std::string block = RenderPartBlock(
      QueryKind::kRangeWithin, 9, 2, 0.5, false,
      std::span<const QueryMatch>(matches.data(), matches.size()));

  std::vector<std::string> lines;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  auto parsed = ParseResponseBlock(lines);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().ok);
  EXPECT_TRUE(parsed.value().part);
  EXPECT_EQ(parsed.value().kind, "RangeWithin");
  EXPECT_EQ(parsed.value().id(), 9u);
  EXPECT_EQ(parsed.value().header.at("seq"), "2");
  EXPECT_EQ(parsed.value().header.at("snapshot"), "0");
  EXPECT_EQ(parsed.value().payload.size(), 2u);
}

TEST(ProtocolV3Test, TaggedErrorCarriesIdOutsideTheMessage) {
  const std::string block =
      RenderError(Status::DeadlineExceeded("query deadline exceeded"), 12);
  std::vector<std::string> lines;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  auto parsed = ParseResponseBlock(lines);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().ok);
  EXPECT_EQ(parsed.value().code, "DEADLINE_EXCEEDED");
  EXPECT_EQ(parsed.value().id(), 12u);
  EXPECT_EQ(parsed.value().message, "query deadline exceeded");
}

TEST(ProtocolV3Test, PartialResponseHeaderFlagsSurvive) {
  QueryResponse response;
  response.kind = QueryKind::kRangeWithin;
  response.partial = true;
  response.interrupt = Status::Code::kCancelled;
  const std::string block = RenderResponse(response, 5);
  std::vector<std::string> lines;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  auto parsed = ParseResponseBlock(lines);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ok);
  EXPECT_TRUE(parsed.value().partial());
  EXPECT_EQ(parsed.value().id(), 5u);
  EXPECT_EQ(parsed.value().header.at("interrupt"), "CANCELLED");
}

// --------------------------------------------------- wire-level tests

class CancellationServerTest : public ::testing::Test {
 protected:
  void StartServer(server::ServerOptions options) {
    catalog_ = std::make_shared<server::Catalog>(server::CatalogOptions{});
    catalog_->Register("market", BuildMarketEngine(16, 64));
    auto started = server::Server::Start(std::move(options), catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  server::Client Connect() {
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::shared_ptr<server::Catalog> catalog_;
  std::unique_ptr<server::Server> server_;
};

TEST_F(CancellationServerTest, CancelAbortsInFlightQueryWithPartialReply) {
  // The worker blocks at job start until released, so the CANCEL is
  // guaranteed to land while the query is "running".
  std::mutex mutex;
  std::condition_variable cv;
  bool job_started = false;
  bool release = false;
  server::ServerOptions options;
  options.num_workers = 1;
  options.on_job_start = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    job_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  StartServer(options);

  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use market").ok());

  auto handle = client.Submit(BroadRange());
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return job_started; });
  }
  // Cancel while the worker holds the job.
  EXPECT_TRUE(handle.value().Cancel().ok());
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();

  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  ASSERT_TRUE(final.value().ok) << final.value().message;
  EXPECT_TRUE(final.value().partial());
  EXPECT_EQ(final.value().header.at("interrupt"), "CANCELLED");
  EXPECT_GE(server_->metrics().cancelled(), 1u);
  EXPECT_GE(server_->metrics().partial_results(), 1u);
}

TEST_F(CancellationServerTest, CancelOfCompletedIdIsStructuredNoOpErr) {
  StartServer(server::ServerOptions{});
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use market").ok());

  auto handle = client.Submit(
      QueryRequest(BestMatchRequest{RampSketch(), /*length=*/0}));
  ASSERT_TRUE(handle.ok());
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok());
  ASSERT_TRUE(final.value().ok);

  // Cancel after completion: the structured no-op ERR, surfaced as
  // NotFound by the handle.
  const Status cancel = handle.value().Cancel();
  EXPECT_EQ(cancel.code(), Status::Code::kNotFound);

  // Raw form: an id this session never used.
  auto raw = client.Roundtrip(server::RenderCancelLine(424242));
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_FALSE(raw.value().ok);
  EXPECT_EQ(raw.value().code, "NOT_FOUND");
  EXPECT_EQ(raw.value().id(), 424242u);
}

TEST_F(CancellationServerTest, DeadlineOverWireReturnsPartialFlaggedReply) {
  // Stall the worker past the deadline so the query starts already
  // expired — deterministic partiality without timing games.
  server::ServerOptions options;
  options.num_workers = 1;
  options.on_job_start = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  StartServer(options);
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use market").ok());

  server::Client::SubmitOptions submit;
  submit.deadline_ms = 5;
  auto handle = client.Submit(BroadRange(), submit);
  ASSERT_TRUE(handle.ok());
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok());
  ASSERT_TRUE(final.value().ok) << final.value().message;
  EXPECT_TRUE(final.value().partial());
  EXPECT_EQ(final.value().header.at("interrupt"), "DEADLINE_EXCEEDED");
  EXPECT_GE(server_->metrics().deadline_exceeded(), 1u);
}

TEST_F(CancellationServerTest, ProgressStreamsPartFramesBeforeFinal) {
  StartServer(server::ServerOptions{});
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use market").ok());

  std::atomic<size_t> frames{0};
  std::atomic<size_t> streamed{0};
  server::Client::SubmitOptions submit;
  submit.on_progress = [&](const server::WireResponse& frame) {
    frames.fetch_add(1);
    streamed.fetch_add(frame.payload.size());
  };
  auto handle = client.Submit(BroadRange(), submit);
  ASSERT_TRUE(handle.ok());
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok());
  ASSERT_TRUE(final.value().ok);
  EXPECT_FALSE(final.value().partial());
  EXPECT_GT(frames.load(), 0u);
  EXPECT_GT(streamed.load(), 0u);
  // Streamed hits never exceed the final answer.
  EXPECT_LE(streamed.load(), std::stoull(final.value().header.at("matches")));
}

TEST_F(CancellationServerTest, TaggedQueriesMultiplexOutOfOrder) {
  // One worker: A blocks in execution, B queues behind it. Cancelling A
  // lets both finish; replies arrive tagged and the handles sort it out
  // regardless of order.
  std::mutex mutex;
  std::condition_variable cv;
  bool job_started = false;
  bool release = false;
  bool first_job = true;
  server::ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 4;
  options.on_job_start = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    if (!first_job) return;  // Only the first job blocks.
    first_job = false;
    job_started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  StartServer(options);
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use market").ok());

  auto slow = client.Submit(BroadRange());
  ASSERT_TRUE(slow.ok());
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return job_started; });
  }
  auto fast = client.Submit(
      QueryRequest(BestMatchRequest{RampSketch(), /*length=*/0}));
  ASSERT_TRUE(fast.ok());
  EXPECT_NE(slow.value().id(), fast.value().id());

  ASSERT_TRUE(slow.value().Cancel().ok());
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();

  auto fast_final = fast.value().Wait();
  ASSERT_TRUE(fast_final.ok());
  EXPECT_TRUE(fast_final.value().ok);
  EXPECT_FALSE(fast_final.value().partial());

  auto slow_final = slow.value().Wait();
  ASSERT_TRUE(slow_final.ok());
  ASSERT_TRUE(slow_final.value().ok);
  EXPECT_TRUE(slow_final.value().partial());
}

TEST_F(CancellationServerTest, V2StyleSessionWorksAgainstV3Server) {
  StartServer(server::ServerOptions{});
  const Engine twin = BuildMarketEngine(16, 64);
  server::Client client = Connect();

  // Greeting announces v3; a v2 client just reads the line and goes on.
  EXPECT_EQ(client.greeting(),
            "ONEX/" + std::to_string(server::kWireVersion) + " ready");

  // The entire v2 session shape — control verbs, plain query lines,
  // strictly ordered replies — works untouched.
  auto use = client.Roundtrip("use market");
  ASSERT_TRUE(use.ok());
  ASSERT_TRUE(use.value().ok);
  const QueryRequest request = BestMatchRequest{RampSketch(), 0};
  auto wire = client.Execute(request);
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(wire.value().ok);
  EXPECT_EQ(wire.value().id(), 0u);  // Untagged reply, no v3 tokens.
  EXPECT_FALSE(wire.value().partial());

  auto direct = twin.Execute(request, ExecContext{});
  ASSERT_TRUE(direct.ok());
  const auto fields = server::ParseKeyValues(wire.value().payload[1]);
  EXPECT_EQ(std::stod(fields.at("distance")),
            direct.value().matches()[0].distance);

  auto ping = client.Roundtrip("ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().kind, "Pong");
}

}  // namespace
}  // namespace onex

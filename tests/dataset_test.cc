// Unit tests for the dataset substrate: TimeSeries, Dataset, LengthSpec,
// normalization kernels, and dataset statistics.

#include <gtest/gtest.h>

#include <cmath>

#include "dataset/dataset.h"
#include "dataset/dataset_stats.h"
#include "dataset/length_spec.h"
#include "dataset/normalize.h"
#include "dataset/subsequence.h"
#include "dataset/time_series.h"

namespace onex {
namespace {

Dataset SmallDataset() {
  Dataset d("small");
  d.Add(TimeSeries({0.0, 1.0, 2.0, 3.0}, 1));
  d.Add(TimeSeries({4.0, 5.0, 6.0, 7.0}, 2));
  d.Add(TimeSeries({-1.0, 0.5, 1.5, 9.0}, 1));
  return d;
}

// ------------------------------------------------------------ TimeSeries.

TEST(TimeSeriesTest, BasicAccessors) {
  TimeSeries ts({1.0, 2.0, 3.0}, 5);
  EXPECT_EQ(ts.length(), 3u);
  EXPECT_EQ(ts.label(), 5);
  EXPECT_DOUBLE_EQ(ts[1], 2.0);
  ts[1] = 9.0;
  EXPECT_DOUBLE_EQ(ts[1], 9.0);
}

TEST(TimeSeriesTest, SubsequenceView) {
  TimeSeries ts({1.0, 2.0, 3.0, 4.0, 5.0});
  auto view = ts.Subsequence(1, 3);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[0], 2.0);
  EXPECT_DOUBLE_EQ(view[2], 4.0);
  // Views alias the underlying storage (zero copy).
  ts[2] = 42.0;
  EXPECT_DOUBLE_EQ(view[1], 42.0);
}

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(ts.length(), 0u);
}

// --------------------------------------------------------------- Dataset.

TEST(DatasetTest, SizeAndAccess) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.name(), "small");
  EXPECT_DOUBLE_EQ(d[1][0], 4.0);
}

TEST(DatasetTest, LengthQueries) {
  Dataset d = SmallDataset();
  EXPECT_EQ(d.MinLength(), 4u);
  EXPECT_EQ(d.MaxLength(), 4u);
  EXPECT_TRUE(d.IsFixedLength());
  d.Add(TimeSeries({1.0, 2.0}));
  EXPECT_EQ(d.MinLength(), 2u);
  EXPECT_FALSE(d.IsFixedLength());
  EXPECT_EQ(d.TotalPoints(), 14u);
}

TEST(DatasetTest, ValueRange) {
  Dataset d = SmallDataset();
  const auto [lo, hi] = d.ValueRange();
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 9.0);
}

TEST(DatasetTest, EmptyDatasetDefaults) {
  Dataset d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.MinLength(), 0u);
  const auto [lo, hi] = d.ValueRange();
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 1.0);
}

TEST(DatasetTest, NumSubsequencesMatchesPaperFormula) {
  // The paper (Sec. 1.2): N series of length n have N*n*(n-1)/2
  // subsequences of lengths >= 2.
  Dataset d("formula");
  const size_t N = 7, n = 12;
  for (size_t i = 0; i < N; ++i) {
    d.Add(TimeSeries(std::vector<double>(n, 0.0)));
  }
  EXPECT_EQ(d.NumSubsequences(2, n), N * n * (n - 1) / 2);
}

TEST(DatasetTest, NumSubsequencesRespectsRange) {
  Dataset d("range");
  d.Add(TimeSeries(std::vector<double>(10, 0.0)));
  // Length 4 only: 10 - 4 + 1 = 7 subsequences.
  EXPECT_EQ(d.NumSubsequences(4, 4), 7u);
  // Lengths 9..20 clamp at 10: (10-9+1) + (10-10+1) = 3.
  EXPECT_EQ(d.NumSubsequences(9, 20), 3u);
}

// ---------------------------------------------------------- SubsequenceRef.

TEST(SubsequenceRefTest, ResolvesView) {
  Dataset d = SmallDataset();
  SubsequenceRef ref{2, 1, 3};
  auto view = ref.View(d);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_DOUBLE_EQ(view[0], 0.5);
  EXPECT_DOUBLE_EQ(view[2], 9.0);
}

TEST(SubsequenceRefTest, Equality) {
  SubsequenceRef a{1, 2, 3}, b{1, 2, 3}, c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

// -------------------------------------------------------------- LengthSpec.

TEST(LengthSpecTest, FullDecomposition) {
  LengthSpec spec;  // min 2, max = series length, step 1.
  const auto lengths = spec.LengthsFor(5);
  ASSERT_EQ(lengths.size(), 4u);
  EXPECT_EQ(lengths.front(), 2u);
  EXPECT_EQ(lengths.back(), 5u);
}

TEST(LengthSpecTest, StridedAndClamped) {
  LengthSpec spec{4, 20, 3};
  const auto lengths = spec.LengthsFor(12);  // 4, 7, 10.
  ASSERT_EQ(lengths.size(), 3u);
  EXPECT_EQ(lengths[1], 7u);
  EXPECT_TRUE(spec.Contains(10, 12));
  EXPECT_FALSE(spec.Contains(11, 12));
  EXPECT_FALSE(spec.Contains(4, 3));  // Longer than the series.
}

TEST(LengthSpecTest, MinimumLengthIsTwo) {
  LengthSpec spec{0, 0, 1};
  const auto lengths = spec.LengthsFor(4);
  EXPECT_EQ(lengths.front(), 2u);
}

// -------------------------------------------------------------- Normalize.

TEST(NormalizeTest, MinMaxMapsDatasetToUnitInterval) {
  Dataset d = SmallDataset();
  const auto [lo, hi] = MinMaxNormalize(&d);
  EXPECT_DOUBLE_EQ(lo, -1.0);
  EXPECT_DOUBLE_EQ(hi, 9.0);
  double seen_lo = 1e9, seen_hi = -1e9;
  for (size_t i = 0; i < d.size(); ++i) {
    for (double x : d[i].values()) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
      seen_lo = std::min(seen_lo, x);
      seen_hi = std::max(seen_hi, x);
    }
  }
  EXPECT_DOUBLE_EQ(seen_lo, 0.0);
  EXPECT_DOUBLE_EQ(seen_hi, 1.0);
}

TEST(NormalizeTest, MinMaxPreservesOrderingWithinSeries) {
  Dataset d("mono");
  d.Add(TimeSeries({1.0, 5.0, 3.0}));
  MinMaxNormalize(&d);
  EXPECT_LT(d[0][0], d[0][2]);
  EXPECT_LT(d[0][2], d[0][1]);
}

TEST(NormalizeTest, ConstantDatasetMapsToZero) {
  Dataset d("const");
  d.Add(TimeSeries({2.0, 2.0, 2.0}));
  MinMaxNormalize(&d);
  for (double x : d[0].values()) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(NormalizeTest, PerSeriesVariant) {
  Dataset d("per");
  d.Add(TimeSeries({0.0, 10.0}));
  d.Add(TimeSeries({100.0, 200.0}));
  MinMaxNormalizePerSeries(&d);
  EXPECT_DOUBLE_EQ(d[0][1], 1.0);
  EXPECT_DOUBLE_EQ(d[1][0], 0.0);
  EXPECT_DOUBLE_EQ(d[1][1], 1.0);
}

TEST(NormalizeTest, ZNormalizedMeanZeroStdOne) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0, 10.0};
  const auto z = ZNormalized(std::span<const double>(v.data(), v.size()));
  const auto [mean, stddev] =
      MeanStddev(std::span<const double>(z.data(), z.size()));
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(stddev, 1.0, 1e-12);
}

TEST(NormalizeTest, ZNormalizeConstantIsAllZero) {
  std::vector<double> v = {3.0, 3.0, 3.0};
  ZNormalize(&v);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(NormalizeTest, MeanStddevKnownValues) {
  std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto [mean, stddev] =
      MeanStddev(std::span<const double>(v.data(), v.size()));
  EXPECT_DOUBLE_EQ(mean, 5.0);
  EXPECT_DOUBLE_EQ(stddev, 2.0);
}

// ----------------------------------------------------------- DatasetStats.

TEST(DatasetStatsTest, ComputesSummary) {
  Dataset d = SmallDataset();
  const DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.name, "small");
  EXPECT_EQ(stats.num_series, 3u);
  EXPECT_EQ(stats.min_length, 4u);
  EXPECT_EQ(stats.max_length, 4u);
  EXPECT_EQ(stats.num_subsequences, 3u * 4 * 3 / 2);
  EXPECT_EQ(stats.num_classes, 2u);
  EXPECT_DOUBLE_EQ(stats.value_min, -1.0);
  EXPECT_NE(stats.ToString().find("small"), std::string::npos);
}

}  // namespace
}  // namespace onex

// Tests for OnexBase::Build: stats consistency (Table 4 semantics),
// option validation, and index completeness.

#include <gtest/gtest.h>

#include "core/onex_base.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"

namespace onex {
namespace {

Dataset TestDataset(size_t n = 8, size_t len = 24, uint64_t seed = 42) {
  GenOptions options;
  options.num_series = n;
  options.length = len;
  options.seed = seed;
  Dataset d = MakeItalyPower(options);
  MinMaxNormalize(&d);
  return d;
}

TEST(OnexBaseTest, BuildSucceedsAndIndexesAllLengths) {
  OnexOptions options;
  options.lengths = {4, 24, 4};  // 4, 8, 12, 16, 20, 24.
  auto result = OnexBase::Build(TestDataset(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const OnexBase& base = result.value();
  EXPECT_EQ(base.gti().Lengths().size(), 6u);
  for (size_t len : {4u, 8u, 12u, 16u, 20u, 24u}) {
    ASSERT_NE(base.EntryFor(len), nullptr) << len;
    EXPECT_GT(base.EntryFor(len)->NumGroups(), 0u) << len;
  }
  EXPECT_EQ(base.EntryFor(5), nullptr);
}

TEST(OnexBaseTest, StatsCountEverySubsequence) {
  OnexOptions options;
  options.lengths = {4, 24, 4};
  Dataset d = TestDataset();
  const uint64_t expected =
      d.NumSubsequences(4, 24) -
      // NumSubsequences counts every length in [4,24]; the spec strides
      // by 4, so recompute directly instead.
      0;
  (void)expected;
  uint64_t strided = 0;
  for (size_t len = 4; len <= 24; len += 4) {
    strided += d.size() * (24 - len + 1);
  }
  auto result = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(result.ok());
  const BaseStats& stats = result.value().stats();
  EXPECT_EQ(stats.num_subsequences, strided);
  EXPECT_EQ(stats.num_lengths, 6u);
  EXPECT_GT(stats.num_representatives, 0u);
  EXPECT_LE(stats.num_representatives, stats.num_subsequences);
  EXPECT_GT(stats.build_seconds, 0.0);
  EXPECT_GT(stats.gti_bytes, 0u);
  EXPECT_GT(stats.lsi_bytes, 0u);
  EXPECT_GT(stats.TotalMb(), 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(OnexBaseTest, CompressionImprovesWithLargerSt) {
  Dataset d = TestDataset(10, 24, 3);
  OnexOptions tight;
  tight.st = 0.05;
  tight.lengths = {8, 16, 4};
  OnexOptions loose = tight;
  loose.st = 0.5;
  auto base_tight = OnexBase::Build(d, tight);
  auto base_loose = OnexBase::Build(std::move(d), loose);
  ASSERT_TRUE(base_tight.ok());
  ASSERT_TRUE(base_loose.ok());
  EXPECT_GE(base_tight.value().stats().num_representatives,
            base_loose.value().stats().num_representatives);
}

TEST(OnexBaseTest, SpSpacePopulatedWhenRequested) {
  OnexOptions options;
  options.lengths = {8, 16, 8};
  options.compute_sp_space = true;
  auto result = OnexBase::Build(TestDataset(), options);
  ASSERT_TRUE(result.ok());
  const SpSpace& sp = result.value().sp_space();
  EXPECT_FALSE(sp.empty());
  const MergeThresholds global = sp.Global();
  EXPECT_GE(global.st_final, global.st_half);
  EXPECT_GE(global.st_half, options.st);
}

TEST(OnexBaseTest, SpSpaceSkippedWhenDisabled) {
  OnexOptions options;
  options.lengths = {8, 16, 8};
  options.compute_sp_space = false;
  auto result = OnexBase::Build(TestDataset(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().sp_space().empty());
}

TEST(OnexBaseTest, EmptyDatasetRejected) {
  auto result = OnexBase::Build(Dataset("empty"), OnexOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);
}

TEST(OnexBaseTest, InvalidOptionsRejected) {
  OnexOptions bad_st;
  bad_st.st = -1.0;
  EXPECT_FALSE(OnexBase::Build(TestDataset(), bad_st).ok());

  OnexOptions bad_lengths;
  bad_lengths.lengths = {10, 5, 1};  // max < min.
  EXPECT_FALSE(OnexBase::Build(TestDataset(), bad_lengths).ok());

  OnexOptions bad_min;
  bad_min.lengths = {1, 0, 1};  // Subsequences must have >= 2 points.
  EXPECT_FALSE(OnexBase::Build(TestDataset(), bad_min).ok());
}

TEST(OnexBaseTest, DatasetRetainedForRefResolution) {
  OnexOptions options;
  options.lengths = {8, 8, 1};
  auto result = OnexBase::Build(TestDataset(), options);
  ASSERT_TRUE(result.ok());
  const OnexBase& base = result.value();
  const GtiEntry* entry = base.EntryFor(8);
  ASSERT_NE(entry, nullptr);
  // Every member ref resolves within bounds against the stored dataset.
  for (const auto& group : entry->groups) {
    for (const auto& member : group.members) {
      const auto view = member.ref.View(base.dataset());
      EXPECT_EQ(view.size(), 8u);
    }
  }
}

TEST(OnexBaseTest, DeterministicForSeed) {
  OnexOptions options;
  options.lengths = {8, 16, 8};
  options.seed = 123;
  auto a = OnexBase::Build(TestDataset(), options);
  auto b = OnexBase::Build(TestDataset(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().stats().num_representatives,
            b.value().stats().num_representatives);
}

}  // namespace
}  // namespace onex

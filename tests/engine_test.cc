// Tests for the onex::Engine facade: every QueryRequest kind must
// round-trip through Execute with results identical to the direct
// QueryProcessor / Recommender / ThresholdRefiner calls, ExecuteBatch
// must answer in order under one snapshot, and concurrent Execute /
// AppendSeries traffic must stay well-formed (run the suite with
// -DONEX_SANITIZE=thread to have TSan check the locking).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "core/onex_base.h"
#include "core/query_processor.h"
#include "core/recommender.h"
#include "core/threshold_refiner.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

Dataset TestDataset(size_t n = 10, size_t len = 24, uint64_t seed = 42) {
  GenOptions options;
  options.num_series = n;
  options.length = len;
  options.seed = seed;
  Dataset d = MakeItalyPower(options);
  MinMaxNormalize(&d);
  return d;
}

OnexBase BuildRawBase(uint64_t seed = 42) {
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto built = OnexBase::Build(TestDataset(10, 24, seed), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// An engine and an identical standalone base for parity checks: the
/// build is deterministic, so direct component calls against `base`
/// must agree exactly with Engine::Execute answers.
struct ParityFixture {
  OnexBase base;
  Engine engine;

  ParityFixture()
      : base(BuildRawBase()), engine(Engine::FromBase(BuildRawBase())) {}
};

std::vector<double> QueryFrom(const Dataset& d, uint32_t p, uint32_t j,
                              uint32_t len) {
  const auto view = d[p].Subsequence(j, len);
  return std::vector<double>(view.begin(), view.end());
}

void ExpectSameMatch(const QueryMatch& a, const QueryMatch& b) {
  EXPECT_EQ(a.ref, b.ref);
  EXPECT_EQ(a.group_id, b.group_id);
  EXPECT_EQ(a.distance_is_upper_bound, b.distance_is_upper_bound);
  EXPECT_DOUBLE_EQ(a.distance, b.distance);
}

// ------------------------------------------------ Q1 best match parity.

TEST(EngineTest, BestMatchExactLengthMatchesDirectCall) {
  ParityFixture f;
  QueryProcessor direct(&f.base);
  const auto query = QueryFrom(f.base.dataset(), 2, 3, 8);

  auto response = f.engine.Execute(BestMatchRequest{query, 8}, ExecContext{});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response.value().matches().size(), 1u);
  EXPECT_EQ(response.value().kind, QueryKind::kBestMatch);

  QueryStats direct_stats;
  auto want = direct.FindBestMatchOfLength(S(query), 8, &direct_stats);
  ASSERT_TRUE(want.ok());
  ExpectSameMatch(response.value().matches()[0], want.value());
  // The per-call stats travel with the response and match the direct
  // call's work exactly.
  EXPECT_EQ(response.value().stats.reps_compared, direct_stats.reps_compared);
  EXPECT_EQ(response.value().stats.members_compared,
            direct_stats.members_compared);
  EXPECT_GE(response.value().latency_seconds, 0.0);
}

TEST(EngineTest, BestMatchAnyLengthMatchesDirectCall) {
  ParityFixture f;
  QueryProcessor direct(&f.base);
  const auto query = QueryFrom(f.base.dataset(), 5, 2, 12);

  auto response = f.engine.Execute(BestMatchRequest{query, 0}, ExecContext{});
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().matches().size(), 1u);

  auto want = direct.FindBestMatch(S(query));
  ASSERT_TRUE(want.ok());
  ExpectSameMatch(response.value().matches()[0], want.value());
}

// --------------------------------------------------- kSimilar parity.

TEST(EngineTest, KSimilarMatchesDirectCall) {
  ParityFixture f;
  QueryProcessor direct(&f.base);
  const auto query = QueryFrom(f.base.dataset(), 1, 0, 8);

  auto response = f.engine.Execute(KSimilarRequest{query, 5, 8}, ExecContext{});
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().kind, QueryKind::kKSimilar);

  auto want = direct.FindKSimilar(S(query), 5, 8);
  ASSERT_TRUE(want.ok());
  ASSERT_EQ(response.value().matches().size(), want.value().size());
  for (size_t i = 0; i < want.value().size(); ++i) {
    ExpectSameMatch(response.value().matches()[i], want.value()[i]);
  }
}

// ------------------------------------------------ range-within parity.

TEST(EngineTest, RangeWithinMatchesDirectCall) {
  ParityFixture f;
  QueryProcessor direct(&f.base);
  const auto query = QueryFrom(f.base.dataset(), 0, 0, 16);

  for (bool exact : {false, true}) {
    auto response = f.engine.Execute(
        RangeWithinRequest{query, f.base.options().st, 0, exact}, ExecContext{});
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response.value().kind, QueryKind::kRangeWithin);

    auto want = direct.FindAllWithin(S(query), f.base.options().st, 0, exact);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(response.value().matches().size(), want.value().size());
    for (size_t i = 0; i < want.value().size(); ++i) {
      ExpectSameMatch(response.value().matches()[i], want.value()[i]);
    }
  }
}

// --------------------------------------------------- seasonal parity.

TEST(EngineTest, SeasonalBothModesMatchDirectCalls) {
  ParityFixture f;
  QueryProcessor direct(&f.base);

  auto user = f.engine.Execute(SeasonalRequest{uint32_t{0}, 8}, ExecContext{});
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(user.value().kind, QueryKind::kSeasonal);
  auto want_user = direct.SeasonalSimilarity(0, 8);
  ASSERT_TRUE(want_user.ok());
  EXPECT_EQ(user.value().groups(), want_user.value());

  auto data = f.engine.Execute(SeasonalRequest{std::nullopt, 8}, ExecContext{});
  ASSERT_TRUE(data.ok());
  auto want_data = direct.SimilarGroupsOfLength(8);
  ASSERT_TRUE(want_data.ok());
  EXPECT_EQ(data.value().groups(), want_data.value());
}

// -------------------------------------------------- recommend parity.

TEST(EngineTest, RecommendMatchesDirectCalls) {
  ParityFixture f;
  Recommender direct(&f.base);

  auto one = f.engine.Execute(
      RecommendRequest{SimilarityDegree::kStrict, size_t{0}}, ExecContext{});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().kind, QueryKind::kRecommend);
  ASSERT_EQ(one.value().recommendations().size(), 1u);
  const Recommendation want = direct.Recommend(SimilarityDegree::kStrict, 0);
  EXPECT_EQ(one.value().recommendations()[0].degree, want.degree);
  EXPECT_DOUBLE_EQ(one.value().recommendations()[0].st_low, want.st_low);
  EXPECT_DOUBLE_EQ(one.value().recommendations()[0].st_high, want.st_high);

  auto all = f.engine.Execute(RecommendRequest{std::nullopt, size_t{0}}, ExecContext{});
  ASSERT_TRUE(all.ok());
  const auto want_all = direct.AllDegrees(0);
  ASSERT_EQ(all.value().recommendations().size(), want_all.size());
  for (size_t i = 0; i < want_all.size(); ++i) {
    EXPECT_EQ(all.value().recommendations()[i].degree, want_all[i].degree);
    EXPECT_DOUBLE_EQ(all.value().recommendations()[i].st_low,
                     want_all[i].st_low);
    EXPECT_DOUBLE_EQ(all.value().recommendations()[i].st_high,
                     want_all[i].st_high);
  }
}

// ----------------------------------------------- refinement parity.

TEST(EngineTest, RefineThresholdMatchesDirectCalls) {
  ParityFixture f;
  ThresholdRefiner direct(&f.base);
  const double st_prime = f.base.options().st / 2.0;

  auto one = f.engine.Execute(RefineThresholdRequest{st_prime, 16}, ExecContext{});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().kind, QueryKind::kRefineThreshold);
  ASSERT_EQ(one.value().refinements().size(), 1u);
  auto want = direct.RefineLength(16, st_prime);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(one.value().refinements()[0].length, 16u);
  EXPECT_EQ(one.value().refinements()[0].groups_after,
            want.value().NumGroups());
  EXPECT_EQ(one.value().refinements()[0].groups_before,
            f.base.EntryFor(16)->NumGroups());

  auto all = f.engine.Execute(RefineThresholdRequest{st_prime, 0}, ExecContext{});
  ASSERT_TRUE(all.ok());
  auto want_all = direct.RefineAll(st_prime);
  ASSERT_TRUE(want_all.ok());
  ASSERT_EQ(all.value().refinements().size(),
            want_all.value().entries().size());
  for (const auto& summary : all.value().refinements()) {
    const GtiEntry* refined = want_all.value().Find(summary.length);
    ASSERT_NE(refined, nullptr);
    EXPECT_EQ(summary.groups_after, refined->NumGroups());
  }
}

// --------------------------------------------- errors, batch, naming.

TEST(EngineTest, ErrorsPropagateAsStatuses) {
  Engine engine = Engine::FromBase(BuildRawBase());
  std::vector<double> query(7, 0.5);
  auto bad_length = engine.Execute(BestMatchRequest{query, 7}, ExecContext{});
  ASSERT_FALSE(bad_length.ok());
  EXPECT_EQ(bad_length.status().code(), Status::Code::kNotFound);

  auto empty = engine.Execute(BestMatchRequest{{}, 0}, ExecContext{});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), Status::Code::kInvalidArgument);

  auto bad_st = engine.Execute(RefineThresholdRequest{-0.1, 8}, ExecContext{});
  EXPECT_FALSE(bad_st.ok());
}

TEST(EngineTest, ExecuteBatchAnswersInOrder) {
  Engine engine = Engine::FromBase(BuildRawBase());
  const auto query = QueryFrom(engine.dataset(), 3, 1, 8);
  std::vector<QueryRequest> requests;
  requests.push_back(BestMatchRequest{query, 8});
  requests.push_back(KSimilarRequest{query, 3, 8});
  requests.push_back(BestMatchRequest{query, 7});  // NotFound slot.
  requests.push_back(RecommendRequest{std::nullopt, size_t{0}});

  const auto responses = engine.ExecuteBatch(
      std::span<const QueryRequest>(requests.data(), requests.size()), ExecContext{});
  ASSERT_EQ(responses.size(), 4u);
  ASSERT_TRUE(responses[0].ok());
  EXPECT_EQ(responses[0].value().kind, QueryKind::kBestMatch);
  ASSERT_TRUE(responses[1].ok());
  EXPECT_EQ(responses[1].value().kind, QueryKind::kKSimilar);
  EXPECT_FALSE(responses[2].ok());
  ASSERT_TRUE(responses[3].ok());
  EXPECT_EQ(responses[3].value().recommendations().size(), 3u);

  // Batch and single-shot answers agree.
  auto single = engine.Execute(requests[0], ExecContext{});
  ASSERT_TRUE(single.ok());
  ExpectSameMatch(responses[0].value().matches()[0],
                  single.value().matches()[0]);
}

TEST(EngineTest, KindNamesAreStable) {
  EXPECT_STREQ(ToString(KindOf(BestMatchRequest{})), "BestMatch");
  EXPECT_STREQ(ToString(KindOf(KSimilarRequest{})), "KSimilar");
  EXPECT_STREQ(ToString(KindOf(RangeWithinRequest{})), "RangeWithin");
  EXPECT_STREQ(ToString(KindOf(SeasonalRequest{})), "Seasonal");
  EXPECT_STREQ(ToString(KindOf(RecommendRequest{})), "Recommend");
  EXPECT_STREQ(ToString(KindOf(RefineThresholdRequest{})),
               "RefineThreshold");
}

// ------------------------------------------------------- maintenance.

TEST(EngineTest, AppendSeriesGrowsTheBase) {
  Engine engine = Engine::FromBase(BuildRawBase());
  const size_t before = engine.num_series();
  Rng rng(7);
  std::vector<double> values(24);
  for (auto& x : values) x = rng.UniformDouble(0.0, 1.0);
  ASSERT_TRUE(engine.AppendSeries(TimeSeries(values)).ok());
  EXPECT_EQ(engine.num_series(), before + 1);
  // The appended series is immediately queryable.
  auto response = engine.Execute(BestMatchRequest{values, 24}, ExecContext{});
  ASSERT_TRUE(response.ok());
  EXPECT_LE(response.value().matches()[0].distance, 1e-9);
}

// ------------------------------------- concurrent query-vs-append stress.

TEST(EngineTest, ConcurrentQueriesAndAppendsStaySound) {
  Engine engine = Engine::FromBase(BuildRawBase());
  const size_t series_before = engine.num_series();

  constexpr int kReaders = 4;
  constexpr int kAppends = 6;
  constexpr int kQueriesPerReader = 60;
  std::atomic<int> failures{0};
  std::atomic<uint64_t> queries_answered{0};

  // Bounded loops on both sides: platform rwlocks may prefer readers, so
  // a reader loop gated on writer progress could starve the writer into
  // a livelock. Every thread runs a fixed amount of work and exits; the
  // scheduler interleaves queries and appends within that window.
  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    for (int iter = 0; iter < kQueriesPerReader; ++iter) {
      std::vector<double> query(16);
      for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
      QueryRequest request;
      switch (iter % 3) {
        case 0: request = BestMatchRequest{query, 0}; break;
        case 1: request = KSimilarRequest{query, 3, 16}; break;
        default: request = RangeWithinRequest{query, 0.3, 16, false}; break;
      }
      auto response = engine.Execute(request, ExecContext{});
      if (!response.ok() ||
          (response.value().kind == QueryKind::kBestMatch &&
           (response.value().matches().empty() ||
            !std::isfinite(response.value().matches()[0].distance)))) {
        failures.fetch_add(1);
      }
      queries_answered.fetch_add(1);
      // Periodically leave a gap so the writer can grab the lock even
      // under reader-preferring rwlock policies.
      if (iter % 8 == 7) std::this_thread::yield();
    }
  };

  auto writer = [&] {
    Rng rng(99);
    for (int i = 0; i < kAppends; ++i) {
      std::vector<double> values(24);
      for (auto& x : values) x = rng.UniformDouble(0.0, 1.0);
      if (!engine.AppendSeries(TimeSeries(values)).ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back(reader, static_cast<uint64_t>(r + 1));
  }
  threads.emplace_back(writer);
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.num_series(), series_before + kAppends);
  EXPECT_EQ(queries_answered.load(),
            static_cast<uint64_t>(kReaders) * kQueriesPerReader);

  // The base is intact after the storm: an in-dataset query still comes
  // back at distance ~0.
  const auto probe = QueryFrom(engine.dataset(), 2, 3, 8);
  auto response = engine.Execute(BestMatchRequest{probe, 8}, ExecContext{});
  ASSERT_TRUE(response.ok());
  EXPECT_LE(response.value().matches()[0].distance, 1e-9);
}

// ------------------------------------------------------ build helpers.

TEST(EngineTest, BuildValidatesOptions) {
  OnexOptions bad;
  bad.st = -1.0;
  auto result = Engine::Build(TestDataset(), bad);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kInvalidArgument);

  OnexOptions good;
  good.st = 0.2;
  good.lengths = {8, 24, 8};
  auto engine = Engine::Build(TestDataset(), good);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_GT(engine.value().base_stats().num_representatives, 0u);
}

TEST(EngineTest, SaveAndOpenRoundTrip) {
  Engine engine = Engine::FromBase(BuildRawBase());
  const std::string path = ::testing::TempDir() + "engine_roundtrip.onex";
  ASSERT_TRUE(engine.Save(path).ok());
  auto reopened = Engine::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  const auto query = QueryFrom(engine.dataset(), 4, 2, 8);
  auto a = engine.Execute(BestMatchRequest{query, 8}, ExecContext{});
  auto b = reopened.value().Execute(BestMatchRequest{query, 8},
                                    ExecContext{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameMatch(a.value().matches()[0], b.value().matches()[0]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace onex

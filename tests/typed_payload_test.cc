// The QueryResponse-v2 / protocol-v4 redesign, tested across the stack:
//
//   - compile-time exhaustiveness of the typed payload and progress
//     variants (a new alternative cannot ship without a visitor arm,
//     a shape mapping, and a wire rendering);
//   - engine-level streaming for the NEW shapes: Seasonal queries emit
//     GroupProgress, Recommend queries emit RecommendProgress, and
//     interruption hands back a right-shaped partial payload;
//   - wire-vs-direct parity for the v4 PART GROUP / PART REC frame
//     variants (payload lines byte-identical to final-block rows);
//   - end-to-end: a progress=1 q2 / q3 over TCP receives typed PART
//     frames before the final reply;
//   - v3 byte-compatibility: golden-byte regression over every render
//     path a v3 session can observe, plus a live v3-style session that
//     must never see a v4-only token;
//   - earliest-deadline-first worker dispatch and the deadline_miss
//     metric (ROADMAP item riding along with the redesign).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "api/engine.h"
#include "core/exec_context.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace onex {
namespace {

using server::ParseKeyValues;
using server::ParseResponseBlock;
using server::RenderCancelLine;
using server::RenderError;
using server::RenderPartBlock;
using server::RenderRequestLine;
using server::RenderResponse;
using server::RequestAttrs;
using server::WireResponse;

// ------------------------------------------- compile-time contracts

// The payload and progress variants must stay in lockstep with the
// PayloadShape discriminator and the QueryKind set; these asserts (and
// the exhaustive Visit calls below, which fail to COMPILE if an
// alternative is missing a handler) are the "visitor exhaustiveness"
// guarantee of the redesign.
static_assert(std::variant_size_v<QueryPayload> == 4,
              "QueryPayload gained/lost an alternative — update "
              "PayloadShape, EmptyPayloadOf, RenderResponse, and the "
              "accessors together");
static_assert(std::variant_size_v<ProgressPayload> == 3,
              "ProgressPayload gained/lost an alternative — update the "
              "PART frame variants and every progress visitor");
static_assert(std::variant_size_v<QueryRequest> ==
                  static_cast<size_t>(QueryKind::kRefineThreshold) + 1,
              "QueryKind and QueryRequest diverged");
static_assert(static_cast<size_t>(PayloadShape::kRefine) + 1 ==
                  std::variant_size_v<QueryPayload>,
              "PayloadShape and QueryPayload diverged");

TEST(TypedPayloadTest, ShapeOfAndEmptyPayloadAgreeForEveryKind) {
  for (size_t i = 0; i < std::variant_size_v<QueryRequest>; ++i) {
    const QueryKind kind = static_cast<QueryKind>(i);
    const QueryPayload payload = EmptyPayloadOf(kind);
    // The payload's variant index must equal the shape discriminator.
    EXPECT_EQ(payload.index(), static_cast<size_t>(ShapeOf(kind)))
        << ToString(kind);
  }
  EXPECT_EQ(ShapeOf(QueryKind::kBestMatch), PayloadShape::kMatch);
  EXPECT_EQ(ShapeOf(QueryKind::kKSimilar), PayloadShape::kMatch);
  EXPECT_EQ(ShapeOf(QueryKind::kRangeWithin), PayloadShape::kMatch);
  EXPECT_EQ(ShapeOf(QueryKind::kSeasonal), PayloadShape::kGroup);
  EXPECT_EQ(ShapeOf(QueryKind::kRecommend), PayloadShape::kRecommend);
  EXPECT_EQ(ShapeOf(QueryKind::kRefineThreshold), PayloadShape::kRefine);
}

TEST(TypedPayloadTest, VisitIsExhaustiveAndReachesTheRightAlternative) {
  QueryResponse response;
  response.kind = QueryKind::kSeasonal;
  response.payload = SeasonalResult{{{{0, 1, 8}, {0, 9, 8}}}};
  // One handler per alternative; omitting any of the four would not
  // compile, which is the point.
  const PayloadShape seen = response.Visit(
      [](const MatchResult&) { return PayloadShape::kMatch; },
      [](const SeasonalResult&) { return PayloadShape::kGroup; },
      [](const RecommendResult&) { return PayloadShape::kRecommend; },
      [](const RefineResult&) { return PayloadShape::kRefine; });
  EXPECT_EQ(seen, PayloadShape::kGroup);
  EXPECT_EQ(response.groups().size(), 1u);
  // Shape-checked accessors hard-fail on confusion instead of silently
  // returning an empty parallel vector (the v1 failure mode).
  EXPECT_THROW(response.matches(), std::bad_variant_access);
  EXPECT_THROW(response.recommendations(), std::bad_variant_access);
}

// ------------------------------------------------ engine streaming

/// A dataset where every series has an identical twin, so same-length
/// windows are guaranteed to cluster into multi-member groups — both
/// Q2 modes always have something to return and to stream.
Engine BuildClusteredEngine(size_t series = 8, size_t days = 64) {
  GenOptions gen;
  gen.num_series = series;
  gen.length = days;
  gen.seed = 5;
  Dataset walks = MakeRandomWalk(gen);
  Dataset data("clustered");
  for (size_t i = 0; i < walks.size(); ++i) {
    data.Add(walks[i]);
    data.Add(walks[i]);
  }
  MinMaxNormalize(&data);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 0, 8};
  auto built = Engine::Build(std::move(data), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST(TypedPayloadTest, SeasonalProgressStreamsGroupsCoveringTheAnswer) {
  const Engine engine = BuildClusteredEngine();
  ExecContext ctx;
  size_t events = 0;
  size_t streamed = 0;
  double last_fraction = 0.0;
  ctx.progress = [&](const ProgressEvent& event) {
    ++events;
    streamed += event.groups().size();  // Throws if wrongly shaped.
    EXPECT_FALSE(event.snapshot);       // Group scans append.
    EXPECT_GE(event.work_fraction, last_fraction);
    last_fraction = event.work_fraction;
  };
  auto response = engine.Execute(SeasonalRequest{std::nullopt, 8}, ctx);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response.value().partial);
  ASSERT_GT(response.value().groups().size(), 0u);
  EXPECT_GT(events, 0u);
  // Every group of the final answer was streamed exactly once.
  EXPECT_EQ(streamed, response.value().groups().size());
}

TEST(TypedPayloadTest, InterruptedSeasonalReturnsPartialGroups) {
  const Engine engine = BuildClusteredEngine();
  auto full = engine.Execute(SeasonalRequest{std::nullopt, 8},
                             ExecContext{});
  ASSERT_TRUE(full.ok());
  const size_t all_groups = full.value().groups().size();
  ASSERT_GT(all_groups, 1u);

  ExecContext ctx;
  ctx.check_every = 1;
  CancelToken token = ctx.cancel;
  size_t events = 0;
  ctx.progress = [&](const ProgressEvent& event) {
    (void)event;
    if (++events == 1) token.Cancel();  // Abort after the first group.
  };
  auto partial = engine.Execute(SeasonalRequest{std::nullopt, 8}, ctx);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial.value().partial);
  EXPECT_EQ(partial.value().interrupt, Status::Code::kCancelled);
  // Right-shaped, holding the confirmed prefix of the full answer.
  EXPECT_GE(partial.value().groups().size(), 1u);
  EXPECT_LT(partial.value().groups().size(), all_groups);
  for (size_t i = 0; i < partial.value().groups().size(); ++i) {
    EXPECT_EQ(partial.value().groups()[i], full.value().groups()[i]);
  }
}

TEST(TypedPayloadTest, RecommendProgressStreamsOneRowPerDegree) {
  const Engine engine = BuildClusteredEngine();
  ExecContext ctx;
  std::vector<Recommendation> streamed;
  ctx.progress = [&](const ProgressEvent& event) {
    for (const Recommendation& row : event.rows()) streamed.push_back(row);
    EXPECT_FALSE(event.snapshot);
  };
  auto response =
      engine.Execute(RecommendRequest{std::nullopt, size_t{0}}, ctx);
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().partial);
  ASSERT_EQ(response.value().recommendations().size(), 3u);
  ASSERT_EQ(streamed.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(streamed[i].degree,
              response.value().recommendations()[i].degree);
    EXPECT_DOUBLE_EQ(streamed[i].st_low,
                     response.value().recommendations()[i].st_low);
  }
}

TEST(TypedPayloadTest, InterruptedRecommendReturnsPartialRows) {
  const Engine engine = BuildClusteredEngine();
  ExecContext ctx;
  CancelToken token = ctx.cancel;
  ctx.progress = [&](const ProgressEvent& event) {
    (void)event;
    token.Cancel();  // After the first streamed row.
  };
  auto partial =
      engine.Execute(RecommendRequest{std::nullopt, size_t{0}}, ctx);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial.value().partial);
  EXPECT_EQ(partial.value().interrupt, Status::Code::kCancelled);
  ASSERT_EQ(partial.value().recommendations().size(), 1u);
  EXPECT_EQ(partial.value().recommendations()[0].degree,
            SimilarityDegree::kStrict);
}

TEST(TypedPayloadTest, ImmediatelyInterruptedResponsesAreRightShaped) {
  const Engine engine = BuildClusteredEngine(4, 32);
  ExecContext ctx;
  ctx.cancel.Cancel();
  const QueryRequest requests[] = {
      QueryRequest(BestMatchRequest{{0.1, 0.5}, 0}),
      QueryRequest(SeasonalRequest{std::nullopt, 8}),
      QueryRequest(RecommendRequest{std::nullopt, size_t{0}}),
      QueryRequest(RefineThresholdRequest{0.1, 0}),
  };
  for (const QueryRequest& request : requests) {
    auto response = engine.Execute(request, ctx);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().partial);
    EXPECT_EQ(response.value().payload.index(),
              static_cast<size_t>(ShapeOf(KindOf(request))));
  }
}

// ------------------------------------- wire-vs-direct PART parity

std::vector<std::string> SplitLines(const std::string& block) {
  std::vector<std::string> lines;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Runs `request` with a sink that renders every event as the typed
/// PART block (exactly what the CLI prints and the server streams),
/// parses each block back, and appends the parsed frames to *frames.
void StreamAsFrames(const Engine& engine, const QueryRequest& request,
                    std::vector<WireResponse>* frames,
                    QueryResponse* final_response) {
  ExecContext ctx;
  uint64_t seq = 0;
  const QueryKind kind = KindOf(request);
  ctx.progress = [&](const ProgressEvent& event) {
    auto parsed =
        ParseResponseBlock(SplitLines(RenderPartBlock(kind, 7, seq++,
                                                      event)));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    frames->push_back(std::move(parsed).value());
  };
  auto response = engine.Execute(request, ctx);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  *final_response = std::move(response).value();
}

TEST(PartVariantParityTest, GroupFramesMatchFinalBlockByteForByte) {
  const Engine engine = BuildClusteredEngine();
  QueryResponse final_response;
  std::vector<WireResponse> frames;
  StreamAsFrames(engine, SeasonalRequest{std::nullopt, 8}, &frames,
                 &final_response);
  ASSERT_GT(frames.size(), 0u);

  std::vector<std::string> streamed_lines;
  for (const WireResponse& frame : frames) {
    EXPECT_TRUE(frame.ok);
    EXPECT_TRUE(frame.part);
    EXPECT_EQ(frame.part_shape(), PayloadShape::kGroup);
    EXPECT_EQ(frame.kind, server::kPartGroupToken);
    EXPECT_EQ(frame.id(), 7u);
    EXPECT_EQ(frame.header.at("groups"),
              std::to_string(frame.payload.size()));
    for (const std::string& line : frame.payload) {
      EXPECT_EQ(line.rfind("group ", 0), 0u);
      streamed_lines.push_back(line);
    }
  }
  // The streamed group lines are byte-identical to the final reply's
  // payload rows: one render path, partial or final.
  const auto final_lines = SplitLines(RenderResponse(final_response));
  // final_lines = header, stats, group..., ".".
  ASSERT_EQ(final_lines.size(), streamed_lines.size() + 3);
  for (size_t i = 0; i < streamed_lines.size(); ++i) {
    EXPECT_EQ(streamed_lines[i], final_lines[i + 2]);
  }
}

TEST(PartVariantParityTest, RecFramesMatchFinalBlockByteForByte) {
  const Engine engine = BuildClusteredEngine();
  QueryResponse final_response;
  std::vector<WireResponse> frames;
  StreamAsFrames(engine, RecommendRequest{std::nullopt, size_t{0}}, &frames,
                 &final_response);
  ASSERT_EQ(frames.size(), 3u);

  std::vector<std::string> streamed_lines;
  for (const WireResponse& frame : frames) {
    EXPECT_TRUE(frame.part);
    EXPECT_EQ(frame.part_shape(), PayloadShape::kRecommend);
    EXPECT_EQ(frame.kind, server::kPartRecToken);
    EXPECT_EQ(frame.header.at("rows"), "1");
    for (const std::string& line : frame.payload) {
      EXPECT_EQ(line.rfind("recommend ", 0), 0u);
      streamed_lines.push_back(line);
    }
  }
  const auto final_lines = SplitLines(RenderResponse(final_response));
  ASSERT_EQ(final_lines.size(), streamed_lines.size() + 3);
  for (size_t i = 0; i < streamed_lines.size(); ++i) {
    EXPECT_EQ(streamed_lines[i], final_lines[i + 2]);
  }
}

TEST(PartVariantParityTest, MatchFramesKeepTheV3HeaderSpelling) {
  const Engine engine = BuildClusteredEngine();
  QueryResponse final_response;
  std::vector<WireResponse> frames;
  std::vector<double> sketch(12, 0.5);
  StreamAsFrames(engine, RangeWithinRequest{sketch, 0.3, 0, /*exact=*/true},
                 &frames, &final_response);
  ASSERT_GT(frames.size(), 0u);
  for (const WireResponse& frame : frames) {
    EXPECT_EQ(frame.part_shape(), PayloadShape::kMatch);
    EXPECT_EQ(frame.kind, "RangeWithin");  // Not MATCH: v3 bytes.
  }
}

// -------------------------------------------------- wire end-to-end

class TypedPartServerTest : public ::testing::Test {
 protected:
  void StartServer(server::ServerOptions options) {
    catalog_ = std::make_shared<server::Catalog>(server::CatalogOptions{});
    catalog_->Register("clustered", BuildClusteredEngine());
    auto started = server::Server::Start(std::move(options), catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  server::Client Connect() {
    auto client = server::Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  std::shared_ptr<server::Catalog> catalog_;
  std::unique_ptr<server::Server> server_;
};

TEST_F(TypedPartServerTest, SeasonalProgressStreamsPartGroupFrames) {
  StartServer(server::ServerOptions{});
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use clustered").ok());

  std::mutex mutex;
  std::vector<WireResponse> frames;
  server::Client::SubmitOptions submit;
  submit.on_progress = [&](const WireResponse& frame) {
    std::lock_guard<std::mutex> lock(mutex);
    frames.push_back(frame);
  };
  auto handle =
      client.Submit(QueryRequest(SeasonalRequest{std::nullopt, 8}), submit);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok()) << final.status().ToString();
  ASSERT_TRUE(final.value().ok) << final.value().message;
  EXPECT_FALSE(final.value().partial());
  EXPECT_EQ(final.value().kind, "Seasonal");

  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_GT(frames.size(), 0u);  // Typed frames arrived before the final.
  size_t streamed = 0;
  for (const WireResponse& frame : frames) {
    EXPECT_EQ(frame.part_shape(), PayloadShape::kGroup);
    for (const std::string& line : frame.payload) {
      EXPECT_EQ(line.rfind("group ", 0), 0u);
    }
    streamed += frame.payload.size();
  }
  // Streamed groups never exceed the final answer (the 20ms frame
  // throttle may leave a tail unstreamed; the final reply carries the
  // complete set either way, exactly as v3 match streams behave).
  EXPECT_GE(streamed, 1u);
  EXPECT_LE(streamed, std::stoull(final.value().header.at("groups")));
}

TEST_F(TypedPartServerTest, RecommendProgressStreamsPartRecFrames) {
  StartServer(server::ServerOptions{});
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use clustered").ok());

  std::mutex mutex;
  std::vector<WireResponse> frames;
  server::Client::SubmitOptions submit;
  submit.on_progress = [&](const WireResponse& frame) {
    std::lock_guard<std::mutex> lock(mutex);
    frames.push_back(frame);
  };
  auto handle = client.Submit(
      QueryRequest(RecommendRequest{std::nullopt, size_t{0}}), submit);
  ASSERT_TRUE(handle.ok());
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok());
  ASSERT_TRUE(final.value().ok) << final.value().message;
  EXPECT_EQ(final.value().header.at("rows"), "3");

  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_GT(frames.size(), 0u);
  size_t rows = 0;
  for (const WireResponse& frame : frames) {
    EXPECT_EQ(frame.part_shape(), PayloadShape::kRecommend);
    for (const std::string& line : frame.payload) {
      EXPECT_EQ(line.rfind("recommend ", 0), 0u);
      ++rows;
    }
  }
  // At least the first degree streams ahead of the final; the frame
  // throttle may batch-and-drop the tail (the final carries all 3).
  EXPECT_GE(rows, 1u);
  EXPECT_LE(rows, 3u);
}

// ------------------------------------------ v3 byte compatibility

// Golden bytes for every render path a v3 session observes. These are
// the exact v3 wire bytes; any drift here is a compatibility break, not
// a formatting nit. (The greeting's version token and the `help` text
// are the two deliberate v4 differences; both are asserted separately.)
TEST(V3ByteCompatTest, FinalReplyBlocksRenderV3Bytes) {
  QueryResponse response;
  response.kind = QueryKind::kBestMatch;
  response.payload = MatchResult{{QueryMatch{{2, 3, 8}, 0.125, 4, false}}};
  response.stats.lengths_scanned = 1;
  response.stats.reps_compared = 2;
  response.latency_seconds = 152e-6;
  EXPECT_EQ(RenderResponse(response, 7),
            "OK BestMatch id=7 matches=1 latency_us=152\n"
            "stats lengths_scanned=1 reps_compared=2 reps_pruned=0 "
            "members_compared=0 lemma2_admitted=0\n"
            "match series=2 start=3 length=8 distance=0.125 group=4 "
            "bound=0\n"
            ".\n");

  QueryResponse partial;
  partial.kind = QueryKind::kRangeWithin;
  partial.partial = true;
  partial.interrupt = Status::Code::kCancelled;
  EXPECT_EQ(RenderResponse(partial, 9),
            "OK RangeWithin id=9 matches=0 latency_us=0 partial=1 "
            "interrupt=CANCELLED\n"
            "stats lengths_scanned=0 reps_compared=0 reps_pruned=0 "
            "members_compared=0 lemma2_admitted=0\n"
            ".\n");

  QueryResponse seasonal;
  seasonal.kind = QueryKind::kSeasonal;
  seasonal.payload = SeasonalResult{{{{0, 4, 8}, {1, 8, 8}}}};
  EXPECT_EQ(RenderResponse(seasonal),
            "OK Seasonal groups=1 latency_us=0\n"
            "stats lengths_scanned=0 reps_compared=0 reps_pruned=0 "
            "members_compared=0 lemma2_admitted=0\n"
            "group size=2 refs=0:4:8,1:8:8\n"
            ".\n");
}

TEST(V3ByteCompatTest, MatchPartFramesRenderV3Bytes) {
  const QueryMatch match{{2, 3, 8}, 0.125, 4, true};
  EXPECT_EQ(RenderPartBlock(QueryKind::kRangeWithin, 7, 2, 0.5, false,
                            std::span<const QueryMatch>(&match, 1)),
            "PART RangeWithin id=7 seq=2 frac=0.500 snapshot=0 matches=1\n"
            "match series=2 start=3 length=8 distance=0.125 group=4 "
            "bound=1\n"
            ".\n");
  EXPECT_EQ(RenderPartBlock(QueryKind::kBestMatch, 3, 0, 1.0, true,
                            std::span<const QueryMatch>(&match, 1)),
            "PART BestMatch id=3 seq=0 frac=1.000 snapshot=1 matches=1\n"
            "match series=2 start=3 length=8 distance=0.125 group=4 "
            "bound=1\n"
            ".\n");
}

TEST(V3ByteCompatTest, ErrorAndRequestLinesRenderV3Bytes) {
  EXPECT_EQ(RenderError(Status::DeadlineExceeded("query deadline exceeded"),
                        12),
            "ERR DEADLINE_EXCEEDED id=12 query deadline exceeded\n.\n");
  RequestAttrs attrs;
  attrs.id = 7;
  attrs.deadline_ms = 250;
  attrs.progress = true;
  const QueryRequest request =
      RangeWithinRequest{{0.125, 0.5}, 0.25, 0, false};
  EXPECT_EQ(RenderRequestLine(request, attrs),
            "id=7 deadline_ms=250 progress=1 q1r 0.25 any 0.125,0.5 bound");
  EXPECT_EQ(RenderCancelLine(7), "cancel 7");
  // The greeting's version token is the one deliberate difference a v3
  // client sees at connect time (one-sided negotiation, as v3 did to
  // v2 sessions before).
  EXPECT_EQ(server::Greeting(), "ONEX/8 ready\n");
}

TEST_F(TypedPartServerTest, V3StyleSessionSeesNoV4Tokens) {
  // A live v3-style session: tagged, deadline-bounded, progress-
  // streaming match query plus cancel-after-completion — the full v3
  // feature surface. Every block it receives must be v3 grammar:
  // match-shaped PART frames under the v3 `PART <Kind>` spelling,
  // never a GROUP/REC token.
  StartServer(server::ServerOptions{});
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use clustered").ok());

  std::mutex mutex;
  std::vector<WireResponse> frames;
  server::Client::SubmitOptions submit;
  submit.deadline_ms = 600000;
  submit.on_progress = [&](const WireResponse& frame) {
    std::lock_guard<std::mutex> lock(mutex);
    frames.push_back(frame);
  };
  std::vector<double> sketch(12, 0.5);
  auto handle = client.Submit(
      QueryRequest(RangeWithinRequest{sketch, 0.3, 0, /*exact=*/true}),
      submit);
  ASSERT_TRUE(handle.ok());
  auto final = handle.value().Wait();
  ASSERT_TRUE(final.ok());
  ASSERT_TRUE(final.value().ok) << final.value().message;
  EXPECT_EQ(final.value().kind, "RangeWithin");
  EXPECT_FALSE(final.value().partial());

  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_GT(frames.size(), 0u);
    for (const WireResponse& frame : frames) {
      EXPECT_EQ(frame.kind, "RangeWithin");  // v3 spelling, never MATCH.
      EXPECT_NE(frame.kind, server::kPartGroupToken);
      EXPECT_NE(frame.kind, server::kPartRecToken);
      for (const std::string& line : frame.payload) {
        EXPECT_EQ(line.rfind("match ", 0), 0u);
      }
    }
  }
  // Cancel of a completed id: the structured no-op ERR, unchanged.
  EXPECT_EQ(handle.value().Cancel().code(), Status::Code::kNotFound);
}

// ------------------------------- EDF dispatch and deadline_miss

TEST_F(TypedPartServerTest, WorkersDispatchEarliestDeadlineFirst) {
  // One worker, gated on its first job. While it is held, a far-
  // deadline query is enqueued BEFORE a near-deadline one; under FIFO
  // the far one would finish first, under EDF the near one must.
  std::mutex mutex;
  std::condition_variable cv;
  bool gate_armed = true;
  bool release = false;
  std::atomic<size_t> enqueued{0};
  server::ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 8;
  options.on_job_start = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    if (!gate_armed) return;
    gate_armed = false;
    cv.wait(lock, [&] { return release; });
  };
  options.on_enqueue = [&](size_t) { enqueued.fetch_add(1); };
  StartServer(options);

  server::Client blocker = Connect();
  ASSERT_TRUE(blocker.Roundtrip("use clustered").ok());
  server::Client far_client = Connect();
  ASSERT_TRUE(far_client.Roundtrip("use clustered").ok());
  server::Client near_client = Connect();
  ASSERT_TRUE(near_client.Roundtrip("use clustered").ok());

  const QueryRequest query =
      RangeWithinRequest{std::vector<double>(12, 0.5), 0.3, 0, true};
  auto line_with_deadline = [&](uint64_t ms) {
    RequestAttrs attrs;
    attrs.deadline_ms = ms;
    return RenderRequestLine(query, attrs);
  };

  std::chrono::steady_clock::time_point far_done, near_done;
  std::thread blocker_thread([&] {
    (void)blocker.Roundtrip(RenderRequestLine(query));  // Holds the worker.
  });
  // Wait until the blocker's job is actually in the worker (enqueued and
  // the gate grabbed it), then stage far before near.
  while (enqueued.load() < 1) std::this_thread::yield();
  std::thread far_thread([&] {
    auto reply = far_client.Roundtrip(line_with_deadline(600000));
    EXPECT_TRUE(reply.ok());
    far_done = std::chrono::steady_clock::now();
  });
  while (enqueued.load() < 2) std::this_thread::yield();
  std::thread near_thread([&] {
    auto reply = near_client.Roundtrip(line_with_deadline(60000));
    EXPECT_TRUE(reply.ok());
    near_done = std::chrono::steady_clock::now();
  });
  while (enqueued.load() < 3) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  blocker_thread.join();
  far_thread.join();
  near_thread.join();
  // EDF: the near-deadline query (enqueued second) completed first.
  EXPECT_LT(near_done.time_since_epoch().count(),
            far_done.time_since_epoch().count());
}

TEST_F(TypedPartServerTest, DeadlineLessJobsAgeAheadOfFarDeadlines) {
  // Starvation regression: a deadline-less (v2-style) query must not be
  // bypassed indefinitely by deadline-carrying traffic. Its implicit
  // rank is admission + 500ms, so it outranks a deadline 60s away —
  // under a rank of "infinitely late" the far-deadline query would
  // have won and the untagged session could be starved.
  std::mutex mutex;
  std::condition_variable cv;
  bool gate_armed = true;
  bool release = false;
  std::atomic<size_t> enqueued{0};
  server::ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 8;
  options.on_job_start = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    if (!gate_armed) return;
    gate_armed = false;
    cv.wait(lock, [&] { return release; });
  };
  options.on_enqueue = [&](size_t) { enqueued.fetch_add(1); };
  StartServer(options);

  server::Client blocker = Connect();
  ASSERT_TRUE(blocker.Roundtrip("use clustered").ok());
  server::Client plain_client = Connect();
  ASSERT_TRUE(plain_client.Roundtrip("use clustered").ok());
  server::Client far_client = Connect();
  ASSERT_TRUE(far_client.Roundtrip("use clustered").ok());

  const QueryRequest query =
      RangeWithinRequest{std::vector<double>(12, 0.5), 0.3, 0, true};
  std::chrono::steady_clock::time_point plain_done, far_done;
  std::thread blocker_thread([&] {
    (void)blocker.Roundtrip(RenderRequestLine(query));
  });
  while (enqueued.load() < 1) std::this_thread::yield();
  std::thread plain_thread([&] {
    auto reply = plain_client.Roundtrip(RenderRequestLine(query));
    EXPECT_TRUE(reply.ok());
    plain_done = std::chrono::steady_clock::now();
  });
  while (enqueued.load() < 2) std::this_thread::yield();
  std::thread far_thread([&] {
    RequestAttrs attrs;
    attrs.deadline_ms = 60000;
    auto reply = far_client.Roundtrip(RenderRequestLine(query, attrs));
    EXPECT_TRUE(reply.ok());
    far_done = std::chrono::steady_clock::now();
  });
  while (enqueued.load() < 3) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  blocker_thread.join();
  plain_thread.join();
  far_thread.join();
  // The aged deadline-less query ran before the far-deadline one.
  EXPECT_LT(plain_done.time_since_epoch().count(),
            far_done.time_since_epoch().count());
}

TEST_F(TypedPartServerTest, DeadlineMissesAreCountedAndRendered) {
  server::ServerOptions options;
  options.num_workers = 1;
  options.on_job_start = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  StartServer(options);
  server::Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use clustered").ok());

  RequestAttrs attrs;
  attrs.deadline_ms = 5;
  const QueryRequest query =
      RangeWithinRequest{std::vector<double>(12, 0.5), 0.3, 0, true};
  auto reply = client.Roundtrip(RenderRequestLine(query, attrs));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply.value().ok) << reply.value().message;
  EXPECT_TRUE(reply.value().partial());
  EXPECT_GE(server_->metrics().deadline_miss(), 1u);

  auto stats = client.Roundtrip("stats");
  ASSERT_TRUE(stats.ok());
  bool found = false;
  for (const std::string& line : stats.value().payload) {
    if (line.rfind("server ", 0) == 0) {
      const auto fields = ParseKeyValues(line);
      ASSERT_TRUE(fields.count("deadline_miss"));
      EXPECT_GE(std::stoull(fields.at("deadline_miss")), 1u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace onex

// Tests for query class Q3 (paper Sec. 5.1): similarity-threshold
// recommendations derived from the SP-Space.

#include <gtest/gtest.h>

#include "core/onex_base.h"
#include "core/recommender.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"

namespace onex {
namespace {

OnexBase BuildBase() {
  GenOptions gen;
  gen.num_series = 10;
  gen.length = 24;
  gen.seed = 42;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  OnexOptions options;
  options.lengths = {8, 16, 8};
  auto result = OnexBase::Build(std::move(d), options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(RecommenderTest, DegreesFormOrderedIntervals) {
  OnexBase base = BuildBase();
  Recommender recommender(&base);
  const auto all = recommender.AllDegrees();
  ASSERT_EQ(all.size(), 3u);
  const auto& strict = all[0];
  const auto& medium = all[1];
  const auto& loose = all[2];
  EXPECT_EQ(strict.degree, SimilarityDegree::kStrict);
  EXPECT_DOUBLE_EQ(strict.st_low, 0.0);
  EXPECT_DOUBLE_EQ(strict.st_high, medium.st_low);
  EXPECT_DOUBLE_EQ(medium.st_high, loose.st_low);
  EXPECT_GT(loose.st_high, loose.st_low);
}

TEST(RecommenderTest, LocalRecommendationUsesLengthMarkers) {
  OnexBase base = BuildBase();
  Recommender recommender(&base);
  const auto local = recommender.Recommend(SimilarityDegree::kStrict, 8);
  const auto sp = base.sp_space().Local(8);
  EXPECT_DOUBLE_EQ(local.st_high, sp.st_half);
}

TEST(RecommenderTest, GlobalDominatesLocals) {
  OnexBase base = BuildBase();
  Recommender recommender(&base);
  const auto global = recommender.Recommend(SimilarityDegree::kLoose, 0);
  for (size_t length : base.gti().Lengths()) {
    const auto local = recommender.Recommend(SimilarityDegree::kLoose,
                                             length);
    EXPECT_GE(global.st_low, local.st_low - 1e-12);
  }
}

TEST(RecommenderTest, ClassifyRoundTripsRecommendations) {
  OnexBase base = BuildBase();
  Recommender recommender(&base);
  for (auto degree : {SimilarityDegree::kStrict, SimilarityDegree::kMedium}) {
    const auto rec = recommender.Recommend(degree, 8);
    // A threshold strictly inside the recommended interval classifies
    // back to the same degree.
    const double mid = (rec.st_low + rec.st_high) / 2.0;
    if (rec.st_high > rec.st_low) {
      EXPECT_EQ(recommender.Classify(mid, 8), degree);
    }
  }
}

TEST(RecommenderTest, ToStringMentionsDegreeAndRange) {
  Recommendation rec;
  rec.degree = SimilarityDegree::kStrict;
  rec.st_low = 0.0;
  rec.st_high = 0.6;
  const std::string text = rec.ToString();
  EXPECT_NE(text.find("Strict"), std::string::npos);
  EXPECT_NE(text.find("0.6"), std::string::npos);
}

}  // namespace
}  // namespace onex

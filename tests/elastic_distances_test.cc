// Tests for the alternative elastic measures from the paper's related
// work: LCSS (Vlachos et al.) and ERP (Chen & Ng). ERP's distinguishing
// property — it is a true metric, unlike DTW — is verified by random
// triangle-inequality trials.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "distance/dtw.h"
#include "distance/erp.h"
#include "distance/lcss.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

std::vector<double> RandomVector(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->UniformDouble(0.0, 1.0);
  return v;
}

// ------------------------------------------------------------------ LCSS.

TEST(LcssTest, IdenticalSequencesMatchFully) {
  std::vector<double> a = {0.1, 0.5, 0.9, 0.3};
  EXPECT_EQ(LcssLength(S(a), S(a)), 4u);
  EXPECT_DOUBLE_EQ(LcssDistance(S(a), S(a)), 0.0);
}

TEST(LcssTest, DisjointValueRangesShareNothing) {
  std::vector<double> a = {0.0, 0.1, 0.05};
  std::vector<double> b = {0.9, 0.8, 0.95};
  LcssOptions options;
  options.epsilon = 0.1;
  EXPECT_EQ(LcssLength(S(a), S(b), options), 0u);
  EXPECT_DOUBLE_EQ(LcssDistance(S(a), S(b), options), 1.0);
}

TEST(LcssTest, KnownSubsequence) {
  // b contains a exactly, interleaved with far-away values.
  std::vector<double> a = {0.2, 0.4, 0.6};
  std::vector<double> b = {0.9, 0.2, 0.9, 0.4, 0.9, 0.6, 0.9};
  LcssOptions options;
  options.epsilon = 0.01;
  EXPECT_EQ(LcssLength(S(a), S(b), options), 3u);
  EXPECT_DOUBLE_EQ(LcssDistance(S(a), S(b), options), 0.0);
}

TEST(LcssTest, EpsilonMonotone) {
  Rng rng(3);
  const auto a = RandomVector(30, &rng);
  const auto b = RandomVector(30, &rng);
  size_t prev = 0;
  for (double eps : {0.01, 0.05, 0.1, 0.3, 1.0}) {
    LcssOptions options;
    options.epsilon = eps;
    const size_t len = LcssLength(S(a), S(b), options);
    EXPECT_GE(len, prev);
    prev = len;
  }
  EXPECT_EQ(prev, 30u);  // Epsilon 1.0 on [0,1] data matches everything.
}

TEST(LcssTest, DeltaRestrictsWarping) {
  // Spikes at opposite ends: with delta = 0 only the pointwise-equal
  // zeros match (6 of them); any slack lets the zeros shift past the
  // spikes and matches 7.
  std::vector<double> a = {1, 0, 0, 0, 0, 0, 0, 0};
  std::vector<double> b = {0, 0, 0, 0, 0, 0, 0, 1};
  LcssOptions narrow;
  narrow.epsilon = 0.1;
  narrow.delta = 0;
  LcssOptions wide;
  wide.epsilon = 0.1;
  wide.delta = 3;
  EXPECT_EQ(LcssLength(S(a), S(b), narrow), 6u);
  EXPECT_EQ(LcssLength(S(a), S(b), wide), 7u);
}

TEST(LcssTest, DistanceBounds) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = RandomVector(16, &rng);
    const auto b = RandomVector(24, &rng);
    const double d = LcssDistance(S(a), S(b));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(LcssTest, EmptyInputs) {
  std::vector<double> empty, one = {0.5};
  EXPECT_DOUBLE_EQ(LcssDistance(S(empty), S(empty)), 0.0);
  EXPECT_DOUBLE_EQ(LcssDistance(S(empty), S(one)), 1.0);
  EXPECT_EQ(LcssLength(S(empty), S(one)), 0u);
}

TEST(LcssTest, Symmetry) {
  Rng rng(5);
  const auto a = RandomVector(20, &rng);
  const auto b = RandomVector(15, &rng);
  EXPECT_DOUBLE_EQ(LcssLength(S(a), S(b)), LcssLength(S(b), S(a)));
}

// ------------------------------------------------------------------- ERP.

TEST(ErpTest, IdenticalIsZero) {
  Rng rng(6);
  const auto a = RandomVector(25, &rng);
  EXPECT_DOUBLE_EQ(ErpDistance(S(a), S(a)), 0.0);
}

TEST(ErpTest, KnownSmallCase) {
  // a = (1), b = (1, 2), g = 0: best is match 1-1 (cost 0) plus gap for
  // 2 (cost |2 - 0| = 2).
  std::vector<double> a = {1.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(ErpDistance(S(a), S(b)), 2.0);
}

TEST(ErpTest, AgainstEmptySumsGapPenalties) {
  std::vector<double> a = {1.0, -2.0, 3.0};
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(ErpDistance(S(a), S(empty)), 6.0);
  ErpOptions g1;
  g1.gap_value = 1.0;
  EXPECT_DOUBLE_EQ(ErpDistance(S(a), S(empty), g1), 0.0 + 3.0 + 2.0);
}

TEST(ErpTest, Symmetry) {
  Rng rng(7);
  const auto a = RandomVector(18, &rng);
  const auto b = RandomVector(27, &rng);
  EXPECT_NEAR(ErpDistance(S(a), S(b)), ErpDistance(S(b), S(a)), 1e-12);
}

TEST(ErpTest, TriangleInequalityHolds) {
  // ERP is a metric (unlike DTW) — verify over many random triples,
  // including unequal lengths.
  Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    const auto a = RandomVector(5 + rng.Uniform(20), &rng);
    const auto b = RandomVector(5 + rng.Uniform(20), &rng);
    const auto c = RandomVector(5 + rng.Uniform(20), &rng);
    const double ab = ErpDistance(S(a), S(b));
    const double bc = ErpDistance(S(b), S(c));
    const double ac = ErpDistance(S(a), S(c));
    EXPECT_LE(ac, ab + bc + 1e-9) << "trial " << trial;
  }
}

TEST(ErpTest, GapValueShiftsPenalties) {
  std::vector<double> a = {0.5, 0.5, 0.5};
  std::vector<double> b = {0.5, 0.5};
  // One element of a must gap. With g = 0.5 the gap is free; with g = 0
  // it costs 0.5.
  ErpOptions centered;
  centered.gap_value = 0.5;
  EXPECT_DOUBLE_EQ(ErpDistance(S(a), S(b), centered), 0.0);
  EXPECT_DOUBLE_EQ(ErpDistance(S(a), S(b)), 0.5);
}

TEST(ErpTest, ComparableToDtwOnAlignedData) {
  // On well-aligned sequences both elastic measures should be small;
  // this is a sanity cross-check, not an equivalence claim.
  std::vector<double> a(32), b(32);
  for (size_t i = 0; i < 32; ++i) {
    a[i] = std::sin(0.3 * static_cast<double>(i));
    b[i] = std::sin(0.3 * static_cast<double>(i) + 0.05);
  }
  EXPECT_LT(ErpDistance(S(a), S(b)), 2.0);
  EXPECT_LT(DtwDistance(S(a), S(b)), 1.0);
}

}  // namespace
}  // namespace onex

// End-to-end integration tests: the full paper pipeline (generate ->
// min-max normalize -> build ONEX base -> query) compared against all
// three baselines, exercising every query class on two datasets.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/paa.h"
#include "baselines/standard_dtw.h"
#include "baselines/trillion.h"
#include "core/onex_base.h"
#include "core/query_processor.h"
#include "core/recommender.h"
#include "core/threshold_refiner.h"
#include "datagen/registry.h"
#include "dataset/normalize.h"
#include "distance/dtw.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

class IntegrationTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    GenOptions gen;
    gen.num_series = 8;
    gen.seed = 42;
    auto made = MakeDatasetByName(GetParam(), gen);
    ASSERT_TRUE(made.ok());
    dataset_ = std::move(made).value();
    // Shorten long datasets for test speed: keep first 40 points.
    if (dataset_.MaxLength() > 40) {
      Dataset cut(dataset_.name());
      for (size_t i = 0; i < dataset_.size(); ++i) {
        const auto view = dataset_[i].Subsequence(0, 40);
        cut.Add(TimeSeries(std::vector<double>(view.begin(), view.end()),
                           dataset_[i].label()));
      }
      dataset_ = std::move(cut);
    }
    MinMaxNormalize(&dataset_);

    OnexOptions options;
    options.st = 0.2;
    options.lengths = {8, 40, 8};
    auto built = OnexBase::Build(dataset_, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    base_ = std::make_unique<OnexBase>(std::move(built).value());
  }

  Dataset dataset_;
  std::unique_ptr<OnexBase> base_;
};

TEST_P(IntegrationTest, FullPipelineAnswersAllQueryClasses) {
  QueryProcessor processor(base_.get());

  // Q1 exact, in-dataset query.
  const auto view = dataset_[2].Subsequence(4, 16);
  std::vector<double> query(view.begin(), view.end());
  auto q1 = processor.FindBestMatchOfLength(S(query), 16);
  ASSERT_TRUE(q1.ok());
  EXPECT_LE(q1.value().distance, 1e-9);

  // Q1 any, designed (out-of-dataset) query.
  Rng rng(7);
  std::vector<double> designed(24);
  for (size_t i = 0; i < designed.size(); ++i) {
    designed[i] = 0.5 + 0.3 * std::sin(0.4 * static_cast<double>(i)) +
                  rng.UniformDouble(-0.05, 0.05);
  }
  auto q1_any = processor.FindBestMatch(S(designed));
  ASSERT_TRUE(q1_any.ok());
  EXPECT_TRUE(std::isfinite(q1_any.value().distance));

  // Q2 user-driven and data-driven.
  auto q2 = processor.SeasonalSimilarity(0, 8);
  ASSERT_TRUE(q2.ok());
  auto q2_all = processor.SimilarGroupsOfLength(8);
  ASSERT_TRUE(q2_all.ok());
  EXPECT_FALSE(q2_all.value().empty());

  // Q3 recommendations.
  Recommender recommender(base_.get());
  const auto recs = recommender.AllDegrees();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_LE(recs[0].st_high, recs[1].st_high + 1e-12);

  // Varying-ST refinement.
  ThresholdRefiner refiner(base_.get());
  auto refined = refiner.RefineLength(8, 0.35);
  ASSERT_TRUE(refined.ok());
  EXPECT_LE(refined.value().NumGroups(),
            base_->EntryFor(8)->NumGroups());
}

TEST_P(IntegrationTest, OnexNeverBeatsOracleAndStaysClose) {
  QueryProcessor processor(base_.get());
  LengthSpec lengths{8, 40, 8};
  StandardDtwSearch oracle(&dataset_, lengths);

  Rng rng(13);
  double total_err = 0.0;
  int queries = 0;
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<double> query(16);
    for (auto& x : query) x = rng.UniformDouble(0.2, 0.8);
    auto got = processor.FindBestMatch(S(query));
    const SearchResult want = oracle.FindBestMatch(S(query));
    ASSERT_TRUE(got.ok());
    EXPECT_GE(got.value().distance, want.distance - 1e-9);
    total_err += got.value().distance - want.distance;
    ++queries;
  }
  EXPECT_LE(total_err / queries, 0.05);
}

TEST_P(IntegrationTest, OnexExaminesFarFewerCandidatesThanBaselines) {
  QueryProcessor processor(base_.get());
  LengthSpec lengths{8, 40, 8};
  StandardDtwSearch standard(&dataset_, lengths);

  const auto view = dataset_[1].Subsequence(2, 16);
  std::vector<double> query(view.begin(), view.end());

  QueryStats stats;
  auto onex_result = processor.FindBestMatch(S(query), &stats);
  ASSERT_TRUE(onex_result.ok());
  const uint64_t onex_work =
      stats.reps_compared + stats.reps_pruned + stats.members_compared;

  const SearchResult std_result = standard.FindBestMatch(S(query));
  // The compact R-Space is the paper's speed story: ONEX touches far
  // fewer sequences than the exhaustive scan.
  EXPECT_LT(onex_work, std_result.candidates_examined / 2);
}

TEST_P(IntegrationTest, TrillionAndPaaProduceSameLengthAnswers) {
  TrillionSearch trillion(&dataset_, 0.05);
  LengthSpec lengths{8, 40, 8};
  PaaSearch paa(&dataset_, lengths, 4);

  const auto view = dataset_[3].Subsequence(0, 16);
  std::vector<double> query(view.begin(), view.end());

  const SearchResult t = trillion.FindBestMatch(S(query));
  ASSERT_TRUE(t.found());
  EXPECT_EQ(t.match.length, 16u);

  const SearchResult p = paa.FindBestMatchOfLength(S(query), 16);
  ASSERT_TRUE(p.found());
  EXPECT_EQ(p.match.length, 16u);
}

INSTANTIATE_TEST_SUITE_P(Datasets, IntegrationTest,
                         ::testing::Values("ItalyPower", "ECG", "Wafer"),
                         [](const ::testing::TestParamInfo<const char*>&
                                info) { return info.param; });

// Accuracy metric plumbing used by the experiment harnesses: error =
// d_system - d_oracle in normalized DTW; accuracy = (1 - mean err) * 100.
TEST(AccuracyMetricTest, PerfectSystemScoresHundred) {
  const double err = 0.0;
  EXPECT_DOUBLE_EQ((1.0 - err) * 100.0, 100.0);
}

}  // namespace
}  // namespace onex

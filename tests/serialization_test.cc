// Tests for ONEX base persistence: lossless round-trips (including
// query-identical behaviour after reload), format validation, and
// corruption detection.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/onex_base.h"
#include "core/query_processor.h"
#include "core/serialization.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "util/rng.h"

namespace onex {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

OnexBase BuildTestBase() {
  GenOptions gen;
  gen.num_series = 10;
  gen.length = 24;
  gen.seed = 42;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {6, 24, 6};
  auto result = OnexBase::Build(std::move(d), options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(SerializationTest, RoundTripPreservesStructure) {
  OnexBase original = BuildTestBase();
  const std::string path = TempPath("onex_base_roundtrip.bin");
  ASSERT_TRUE(SaveBase(original, path).ok());

  auto loaded = LoadBase(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const OnexBase& copy = loaded.value();

  EXPECT_EQ(copy.dataset().size(), original.dataset().size());
  EXPECT_EQ(copy.dataset().name(), original.dataset().name());
  EXPECT_EQ(copy.gti().Lengths(), original.gti().Lengths());
  EXPECT_EQ(copy.stats().num_representatives,
            original.stats().num_representatives);
  EXPECT_EQ(copy.stats().num_subsequences,
            original.stats().num_subsequences);
  EXPECT_DOUBLE_EQ(copy.options().st, original.options().st);

  for (size_t length : original.gti().Lengths()) {
    const GtiEntry* a = original.EntryFor(length);
    const GtiEntry* b = copy.EntryFor(length);
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(a->NumGroups(), b->NumGroups());
    EXPECT_DOUBLE_EQ(a->st_half, b->st_half);
    EXPECT_DOUBLE_EQ(a->st_final, b->st_final);
    for (size_t k = 0; k < a->NumGroups(); ++k) {
      EXPECT_EQ(a->groups[k].representative, b->groups[k].representative);
      ASSERT_EQ(a->groups[k].members.size(), b->groups[k].members.size());
      for (size_t m = 0; m < a->groups[k].members.size(); ++m) {
        EXPECT_EQ(a->groups[k].members[m].ref, b->groups[k].members[m].ref);
        EXPECT_DOUBLE_EQ(a->groups[k].members[m].ed_to_rep,
                         b->groups[k].members[m].ed_to_rep);
      }
      // Envelopes are rebuilt, not stored — they must still match.
      EXPECT_EQ(a->groups[k].envelope.lower, b->groups[k].envelope.lower);
      EXPECT_EQ(a->groups[k].envelope.upper, b->groups[k].envelope.upper);
    }
    EXPECT_EQ(a->dc, b->dc);
    EXPECT_EQ(a->sum_sorted, b->sum_sorted);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, ReloadedBaseAnswersQueriesIdentically) {
  OnexBase original = BuildTestBase();
  const std::string path = TempPath("onex_base_query.bin");
  ASSERT_TRUE(SaveBase(original, path).ok());
  auto loaded = LoadBase(path);
  ASSERT_TRUE(loaded.ok());
  OnexBase copy = std::move(loaded).value();

  QueryProcessor p1(&original), p2(&copy);
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> query(12);
    for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
    const std::span<const double> q(query.data(), query.size());
    auto r1 = p1.FindBestMatch(q);
    auto r2 = p2.FindBestMatch(q);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1.value().ref, r2.value().ref);
    EXPECT_DOUBLE_EQ(r1.value().distance, r2.value().distance);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, SpSpaceSurvivesReload) {
  OnexBase original = BuildTestBase();
  const std::string path = TempPath("onex_base_sp.bin");
  ASSERT_TRUE(SaveBase(original, path).ok());
  auto loaded = LoadBase(path);
  ASSERT_TRUE(loaded.ok());
  const auto a = original.sp_space().Global();
  const auto b = loaded.value().sp_space().Global();
  EXPECT_DOUBLE_EQ(a.st_half, b.st_half);
  EXPECT_DOUBLE_EQ(a.st_final, b.st_final);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIOError) {
  auto result = LoadBase("/nonexistent/dir/base.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kIOError);
}

TEST(SerializationTest, BadMagicIsCorruption) {
  const std::string path = TempPath("onex_bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a base";
  }
  auto result = LoadBase(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileIsCorruption) {
  OnexBase original = BuildTestBase();
  const std::string path = TempPath("onex_trunc.bin");
  ASSERT_TRUE(SaveBase(original, path).ok());
  // Truncate to 60% of the size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size * 3 / 5);
  auto result = LoadBase(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializationTest, SaveToBadPathIsIOError) {
  OnexBase base = BuildTestBase();
  EXPECT_EQ(SaveBase(base, "/nonexistent/dir/base.bin").code(),
            Status::Code::kIOError);
}

// ------------------------------------------- fuzz-ish robustness.

/// Random truncations: every prefix of a valid base must come back as
/// a structured error (Corruption), never a crash, hang, or giant
/// allocation — LoadBase parses length prefixes it cannot trust.
TEST(SerializationTest, FuzzTruncationAlwaysReturnsCorruption) {
  OnexBase original = BuildTestBase();
  const std::string path = TempPath("onex_fuzz_trunc.bin");
  const std::string mutated = TempPath("onex_fuzz_trunc_cut.bin");
  ASSERT_TRUE(SaveBase(original, path).ok());
  const uint64_t size = std::filesystem::file_size(path);

  Rng rng(1234);  // Seeded: failures reproduce.
  for (int trial = 0; trial < 48; ++trial) {
    const uint64_t cut = rng.Uniform(size);  // In [0, size).
    std::filesystem::copy_file(
        path, mutated, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(mutated, cut);
    auto result = LoadBase(mutated);
    ASSERT_FALSE(result.ok()) << "cut at " << cut << " of " << size;
    EXPECT_EQ(result.status().code(), Status::Code::kCorruption)
        << "cut at " << cut << ": " << result.status().ToString();
  }
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

/// Random bit flips: a flipped byte may survive (it landed in value
/// data) or must surface as Corruption — but never crash, and never
/// turn a length field into a multi-gigabyte resize (the bounded
/// Reader caps every count by the bytes actually remaining).
TEST(SerializationTest, FuzzBitFlipsNeverCrash) {
  OnexBase original = BuildTestBase();
  const std::string path = TempPath("onex_fuzz_flip.bin");
  const std::string mutated = TempPath("onex_fuzz_flip_mut.bin");
  ASSERT_TRUE(SaveBase(original, path).ok());
  const uint64_t size = std::filesystem::file_size(path);

  Rng rng(5678);
  int corruptions = 0;
  for (int trial = 0; trial < 64; ++trial) {
    const uint64_t offset = rng.Uniform(size);
    const int bit = static_cast<int>(rng.Uniform(8));
    std::filesystem::copy_file(
        path, mutated, std::filesystem::copy_options::overwrite_existing);
    {
      std::fstream f(mutated,
                     std::ios::binary | std::ios::in | std::ios::out);
      ASSERT_TRUE(f.is_open());
      f.seekg(static_cast<std::streamoff>(offset));
      char byte = 0;
      f.read(&byte, 1);
      byte = static_cast<char>(byte ^ (1 << bit));
      f.seekp(static_cast<std::streamoff>(offset));
      f.write(&byte, 1);
    }
    auto result = LoadBase(mutated);  // Must return, whatever happens.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), Status::Code::kCorruption)
          << "flip at " << offset << " bit " << bit << ": "
          << result.status().ToString();
      ++corruptions;
    }
  }
  // Structural bytes dominate value bytes enough that at least some
  // flips must have been caught (sanity check that the loop bites).
  EXPECT_GT(corruptions, 0);
  std::remove(path.c_str());
  std::remove(mutated.c_str());
}

/// A length prefix rewritten to a huge value must be rejected by the
/// remaining-bytes bound, not handed to resize() (std::bad_alloc).
TEST(SerializationTest, HugeLengthPrefixIsCorruptionNotBadAlloc) {
  OnexBase original = BuildTestBase();
  const std::string path = TempPath("onex_fuzz_huge.bin");
  ASSERT_TRUE(SaveBase(original, path).ok());
  {
    // The dataset name length (u64 right after magic+version) becomes
    // 2^31: Str must refuse before allocating.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const uint64_t huge = 1ull << 31;
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  auto result = LoadBase(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Positive control: correct locking that MUST compile under
// -Werror=thread-safety. If this fails, the compile-fail siblings are
// failing for the wrong reason (broken include path or flags), not
// because the analysis caught their violations.

#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    onex::MutexLock lock(mutex_);
    ++value_;
  }

  int Get() const {
    onex::MutexLock lock(mutex_);
    return value_;
  }

  void IncrementBy(int n) {
    mutex_.Lock();
    AddLocked(n);
    mutex_.Unlock();
  }

 private:
  void AddLocked(int n) REQUIRES(mutex_) { value_ += n; }

  mutable onex::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

class Registry {
 public:
  int Read() const {
    onex::ReaderMutexLock lock(mutex_);
    return value_;
  }

  void Write(int v) {
    onex::WriterMutexLock lock(mutex_);
    value_ = v;
  }

 private:
  mutable onex::SharedMutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  counter.IncrementBy(2);
  Registry registry;
  registry.Write(counter.Get());
  return registry.Read();
}

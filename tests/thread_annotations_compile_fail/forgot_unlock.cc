// Copyright 2026 The ONEX Reproduction Authors.
// MUST NOT COMPILE: returns with the mutex still held
// (-Werror=thread-safety: mutex is still held at the end of function).

#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() {
    mutex_.Lock();
    ++value_;
    // Violation: no Unlock() on this path.
  }

 private:
  onex::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}

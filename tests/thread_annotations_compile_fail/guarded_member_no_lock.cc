// Copyright 2026 The ONEX Reproduction Authors.
// MUST NOT COMPILE: writes a GUARDED_BY member without holding its
// mutex (-Werror=thread-safety: writing variable requires holding
// mutex exclusively).

#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() { ++value_; }  // Violation: mutex_ not held.

 private:
  onex::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}

// Copyright 2026 The ONEX Reproduction Authors.
// MUST NOT COMPILE: writes a GUARDED_BY member while holding only a
// SHARED (reader) lock on its SharedMutex (-Werror=thread-safety:
// writing variable requires holding mutex exclusively).

#include "util/mutex.h"

namespace {

class Registry {
 public:
  void Write(int v) {
    onex::ReaderMutexLock lock(mutex_);
    value_ = v;  // Violation: a write needs the exclusive hold.
  }

 private:
  mutable onex::SharedMutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Registry registry;
  registry.Write(1);
  return 0;
}

// Copyright 2026 The ONEX Reproduction Authors.
// MUST NOT COMPILE: calls a REQUIRES(mutex) helper without holding the
// mutex (-Werror=thread-safety: calling function requires holding
// mutex exclusively).

#include "util/mutex.h"

namespace {

class Counter {
 public:
  void Increment() { AddLocked(1); }  // Violation: mutex_ not held.

 private:
  void AddLocked(int n) REQUIRES(mutex_) { value_ += n; }

  onex::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return 0;
}

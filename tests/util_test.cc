// Unit tests for the util substrate: Status/Result, Rng, RandomizeInPlace,
// stats accumulators, UnionFind, MonotonicDeque, Flags, TableWriter.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/flags.h"
#include "util/monotonic_deque.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/union_find.h"

namespace onex {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("cannot open foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIOError);
  EXPECT_EQ(s.ToString(), "IOError: cannot open foo");
}

TEST(StatusTest, AllNamedConstructorsProduceDistinctCodes) {
  std::set<Status::Code> codes = {
      Status::InvalidArgument("x").code(), Status::NotFound("x").code(),
      Status::IOError("x").code(),         Status::Corruption("x").code(),
      Status::OutOfRange("x").code(),      Status::NotSupported("x").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

// ------------------------------------------------------------------- Rng.

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(5);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RandomizeInPlaceTest, ProducesPermutation) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(3);
  RandomizeInPlace(&v, &rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RandomizeInPlaceTest, ActuallyShuffles) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Rng rng(3);
  RandomizeInPlace(&v, &rng);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 20);
}

TEST(RandomizeInPlaceTest, HandlesDegenerateSizes) {
  Rng rng(1);
  std::vector<int> empty;
  RandomizeInPlace(&empty, &rng);  // Must not crash.
  std::vector<int> one = {42};
  RandomizeInPlace(&one, &rng);
  EXPECT_EQ(one[0], 42);
}

// ----------------------------------------------------------------- Stats.

TEST(RunningStatsTest, MatchesNaiveComputation) {
  const std::vector<double> xs = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  RunningStats stats;
  for (double x : xs) stats.Add(x);
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / xs.size();
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), ss / (xs.size() - 1), 1e-12);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), 7.25);
  EXPECT_NEAR(stats.sum(), sum, 1e-12);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(9);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian();
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(SampleSetTest, PercentilesOnKnownData) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.Add(static_cast<double>(i));
  EXPECT_NEAR(set.Median(), 50.5, 1e-9);
  EXPECT_NEAR(set.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(set.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(set.mean(), 50.5, 1e-9);
  EXPECT_EQ(set.Min(), 1.0);
  EXPECT_EQ(set.Max(), 100.0);
}

TEST(SampleSetTest, SingleSample) {
  SampleSet set;
  set.Add(3.0);
  EXPECT_EQ(set.Median(), 3.0);
  EXPECT_EQ(set.Percentile(10), 3.0);
}

// ------------------------------------------------------------- UnionFind.

TEST(UnionFindTest, StartsFullyDisconnected) {
  UnionFind uf(5);
  EXPECT_EQ(uf.components(), 5u);
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionReducesComponents) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.components(), 3u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(1, 2));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.components(), 2u);
}

TEST(UnionFindTest, RedundantUnionReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.components(), 2u);
}

TEST(UnionFindTest, ChainMergesToOne) {
  UnionFind uf(100);
  for (size_t i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.components(), 1u);
  EXPECT_TRUE(uf.Connected(0, 99));
}

// -------------------------------------------------------- MonotonicDeque.

TEST(MonotonicDequeTest, PushPopBothEnds) {
  MonotonicDeque dq(8);
  EXPECT_TRUE(dq.Empty());
  dq.PushBack(1);
  dq.PushBack(2);
  dq.PushBack(3);
  EXPECT_EQ(dq.Size(), 3u);
  EXPECT_EQ(dq.Front(), 1u);
  EXPECT_EQ(dq.Back(), 3u);
  dq.PopFront();
  EXPECT_EQ(dq.Front(), 2u);
  dq.PopBack();
  EXPECT_EQ(dq.Back(), 2u);
  EXPECT_EQ(dq.Size(), 1u);
}

TEST(MonotonicDequeTest, WrapsAroundRingBuffer) {
  MonotonicDeque dq(4);
  for (int round = 0; round < 10; ++round) {
    dq.PushBack(static_cast<size_t>(round));
    dq.PushBack(static_cast<size_t>(round + 100));
    EXPECT_EQ(dq.Front(), static_cast<size_t>(round));
    dq.PopFront();
    dq.PopFront();
    EXPECT_TRUE(dq.Empty());
  }
}

// ----------------------------------------------------------------- Timer.

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_GE(timer.ElapsedNanos(), 0);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

// ----------------------------------------------------------------- Flags.

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha=3",  "--beta", "hello",
                        "--gamma",   "--delta=2.5", "--flag"};
  Flags flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetString("beta", ""), "hello");
  EXPECT_TRUE(flags.Has("gamma"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("delta", 0.0), 2.5);
  EXPECT_TRUE(flags.GetBool("flag", false));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, BoolValues) {
  const char* argv[] = {"prog", "--yes=true", "--no=false", "--one=1"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_TRUE(flags.GetBool("yes", false));
  EXPECT_FALSE(flags.GetBool("no", true));
  EXPECT_TRUE(flags.GetBool("one", false));
}

// ----------------------------------------------------------------- Table.

TEST(TableWriterTest, RendersAlignedColumns) {
  TableWriter table("Demo");
  table.SetHeader({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"bb", "22222"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(TableWriterTest, NumberFormatting) {
  EXPECT_EQ(TableWriter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::Num(2.0, 0), "2");
  EXPECT_EQ(TableWriter::Sci(4.83e9, 2), "4.83e+09");
}

TEST(TableWriterTest, CsvRendering) {
  TableWriter table("ignored");
  table.SetHeader({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"with,comma", "with\"quote"});
  const std::string csv = table.RenderCsv();
  EXPECT_EQ(csv,
            "a,b\n"
            "1,2\n"
            "\"with,comma\",\"with\"\"quote\"\n");
}

TEST(SeriesWriterTest, CsvRendering) {
  SeriesWriter series("ignored");
  series.SetXLabel("st");
  series.AddSeries("y");
  series.AddPoint(0.5, {1.25});
  const std::string csv = series.RenderCsv();
  EXPECT_NE(csv.find("st,y"), std::string::npos);
  EXPECT_NE(csv.find("0.5,1.25"), std::string::npos);
}

TEST(SeriesWriterTest, RendersSeries) {
  SeriesWriter series("Fig");
  series.SetXLabel("st");
  series.AddSeries("a");
  series.AddSeries("b");
  series.AddPoint(0.1, {1.0, 2.0});
  series.AddPoint(0.2, {3.0, 4.0});
  const std::string out = series.Render();
  EXPECT_NE(out.find("st"), std::string::npos);
  EXPECT_NE(out.find("0.2"), std::string::npos);
}

}  // namespace
}  // namespace onex

// Tests for the shared wire grammar (src/server/protocol.h): every
// QueryRequest kind must survive RenderRequestLine -> ParseRequestLine
// bit-exactly, reply blocks must round-trip through ParseResponseBlock,
// and malformed input must come back as InvalidArgument with a message
// (never crash, never silently widen a query).

#include "server/protocol.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace onex {
namespace server {
namespace {

QueryRequest RoundTrip(const QueryRequest& request) {
  const std::string line = RenderRequestLine(request);
  auto parsed = ParseRequestLine(line);
  EXPECT_TRUE(parsed.ok()) << line << " -> " << parsed.status().ToString();
  const auto* query = std::get_if<QueryRequest>(&parsed.value());
  EXPECT_NE(query, nullptr) << line;
  return *query;
}

// ------------------------------------------- request round trips (x6).

TEST(ProtocolTest, BestMatchRoundTrips) {
  const BestMatchRequest original{{0.25, -1.5, 3e-7, 0.1}, 16};
  const auto back = std::get<BestMatchRequest>(RoundTrip(original));
  EXPECT_EQ(back.query, original.query);  // %.17g is bit-exact.
  EXPECT_EQ(back.length, original.length);

  const auto any = std::get<BestMatchRequest>(
      RoundTrip(BestMatchRequest{{1.0, 2.0}, 0}));
  EXPECT_EQ(any.length, 0u);
}

TEST(ProtocolTest, KSimilarRoundTrips) {
  const KSimilarRequest original{{0.5, 0.25, 0.125}, 7, 8};
  const auto back = std::get<KSimilarRequest>(RoundTrip(original));
  EXPECT_EQ(back.query, original.query);
  EXPECT_EQ(back.k, original.k);
  EXPECT_EQ(back.length, original.length);
}

TEST(ProtocolTest, RangeWithinRoundTrips) {
  const RangeWithinRequest exact{{0.1, 0.9}, 0.15, 0, true};
  const auto back = std::get<RangeWithinRequest>(RoundTrip(exact));
  EXPECT_EQ(back.query, exact.query);
  EXPECT_DOUBLE_EQ(back.st, exact.st);
  EXPECT_EQ(back.length, 0u);
  EXPECT_TRUE(back.exact_distances);

  // The "bound" modifier flips exact_distances off and round-trips too.
  const RangeWithinRequest bound{{0.1}, 0.3, 12, false};
  const auto back2 = std::get<RangeWithinRequest>(RoundTrip(bound));
  EXPECT_FALSE(back2.exact_distances);
  EXPECT_EQ(back2.length, 12u);
}

TEST(ProtocolTest, SeasonalRoundTrips) {
  const auto user = std::get<SeasonalRequest>(
      RoundTrip(SeasonalRequest{uint32_t{5}, 12}));
  ASSERT_TRUE(user.series_id.has_value());
  EXPECT_EQ(*user.series_id, 5u);
  EXPECT_EQ(user.length, 12u);

  const auto data =
      std::get<SeasonalRequest>(RoundTrip(SeasonalRequest{std::nullopt, 8}));
  EXPECT_FALSE(data.series_id.has_value());
  EXPECT_EQ(data.length, 8u);
}

TEST(ProtocolTest, RecommendRoundTrips) {
  const auto one = std::get<RecommendRequest>(
      RoundTrip(RecommendRequest{SimilarityDegree::kLoose, 16}));
  ASSERT_TRUE(one.degree.has_value());
  EXPECT_EQ(*one.degree, SimilarityDegree::kLoose);
  EXPECT_EQ(one.length, 16u);

  const auto all = std::get<RecommendRequest>(
      RoundTrip(RecommendRequest{std::nullopt, 0}));
  EXPECT_FALSE(all.degree.has_value());
  EXPECT_EQ(all.length, 0u);
}

TEST(ProtocolTest, RefineThresholdRoundTrips) {
  const auto one = std::get<RefineThresholdRequest>(
      RoundTrip(RefineThresholdRequest{0.12345678901234567, 24}));
  EXPECT_DOUBLE_EQ(one.st_prime, 0.12345678901234567);
  EXPECT_EQ(one.length, 24u);

  const auto all = std::get<RefineThresholdRequest>(
      RoundTrip(RefineThresholdRequest{0.3, 0}));
  EXPECT_EQ(all.length, 0u);
}

// -------------------------------------------------- grammar niceties.

TEST(ProtocolTest, VerbsAreCaseInsensitive) {
  auto parsed = ParseRequestLine("Q1 ANY 0.1,0.2");
  ASSERT_TRUE(parsed.ok());
  const auto& q = std::get<BestMatchRequest>(
      std::get<QueryRequest>(parsed.value()));
  EXPECT_EQ(q.length, 0u);
  EXPECT_EQ(q.query.size(), 2u);

  auto control = ParseRequestLine("PING");
  ASSERT_TRUE(control.ok());
  EXPECT_EQ(std::get<ControlRequest>(control.value()).verb,
            ControlVerb::kPing);
}

TEST(ProtocolTest, ControlVerbsParse) {
  auto use = ParseRequestLine("use ecg");
  ASSERT_TRUE(use.ok());
  const auto& u = std::get<ControlRequest>(use.value());
  EXPECT_EQ(u.verb, ControlVerb::kUse);
  EXPECT_EQ(u.argument, "ecg");

  for (const auto& [line, verb] :
       std::vector<std::pair<std::string, ControlVerb>>{
           {"list", ControlVerb::kList},
           {"stats", ControlVerb::kStats},
           {"help", ControlVerb::kHelp},
           {"quit", ControlVerb::kQuit},
           {"exit", ControlVerb::kQuit},
           {"flush", ControlVerb::kFlush}}) {
    auto parsed = ParseRequestLine(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(std::get<ControlRequest>(parsed.value()).verb, verb) << line;
  }
}

// ------------------------------------- APPEND/FLUSH mutation verbs.

TEST(ProtocolTest, AppendRoundTrips) {
  // Wire-vs-direct parity at the grammar layer: the line a client
  // renders parses back into the identical mutation (%.17g values,
  // label included), so the server appends exactly what was sent.
  const AppendRequest original{{0.25, -1.5, 3e-7, 0.125}, -4};
  auto parsed = ParseRequestLine(RenderAppendLine(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto* back = std::get_if<AppendRequest>(&parsed.value());
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->values, original.values);
  EXPECT_EQ(back->label, original.label);

  // Label 0 is the default and omitted from the rendered line.
  const AppendRequest unlabeled{{1.0, 2.0}, 0};
  EXPECT_EQ(RenderAppendLine(unlabeled), "append 1,2");
  auto reparsed = ParseRequestLine("append 1,2");
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(std::get<AppendRequest>(reparsed.value()).label, 0);
  EXPECT_EQ(std::get<AppendRequest>(reparsed.value()).values,
            unlabeled.values);
}

TEST(ProtocolTest, AppendAndFlushRejectMalformedLines) {
  for (const std::string& line : {
           "append",               // no values
           "append ,",             // empty list
           "append 1,2,",          // trailing comma (truncated list)
           "append 1;2",           // wrong separator
           "append 1,2 x",         // non-numeric label
           "append 1,2 4294967296",  // label out of int range
           "append 1,2 3 extra",   // too many operands
           "flush now",            // flush takes no operands
       }) {
    auto parsed = ParseRequestLine(line);
    EXPECT_FALSE(parsed.ok()) << line;
    EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument) << line;
    EXPECT_FALSE(parsed.status().message().empty()) << line;
  }
}

TEST(ProtocolTest, MalformedInputIsRejectedWithMessages) {
  const std::vector<std::string> bad = {
      "",                        // empty
      "   ",                     // blank
      "frobnicate 1 2",          // unknown verb
      "q1",                      // missing operands
      "q1 8",                    // missing values
      "q1 eight 0.1,0.2",        // non-numeric length
      "q1 -3 0.1",               // negative length
      "q1 8 a,b,c",              // non-numeric values
      "q1 8 ,",                  // empty values
      "q1 8 0.1;0.2,0.3",        // trailing garbage inside an item
      "q1 8 0.1, 0.2,0.3",       // space split the list: extra token
      "q1 8 0.1,0.2,",           // trailing comma (truncated list)
      "q1k 3 8 0.1,0.2 extra",   // unconsumed trailing operand
      "q2 all 8 9",              // unconsumed trailing operand
      "q3 S 8 9",                // unconsumed trailing operand
      "refine 0.1 8 9",          // unconsumed trailing operand
      "ping now",                // control verb with an operand
      "list all",                // control verb with an operand
      "use a b",                 // control verb with two operands
      "q1k 0 8 0.1",             // k = 0
      "q1k many 8 0.1",          // non-numeric k
      "q1r nan..x 8 0.1",        // malformed threshold
      "q1r -0.5 8 0.1",          // negative threshold
      "q1r 0.2 8 0.1 exactly",   // unknown modifier
      "q2 all",                  // missing length
      "q2 first 8",              // non-numeric series
      "q3 XL",                   // unknown degree
      "refine 0.1",              // missing length
      "use",                     // missing dataset
  };
  for (const std::string& line : bad) {
    auto parsed = ParseRequestLine(line);
    EXPECT_FALSE(parsed.ok()) << "accepted: '" << line << "'";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), Status::Code::kInvalidArgument);
      EXPECT_FALSE(parsed.status().message().empty()) << line;
    }
  }
}

// ----------------------------------------------------- reply blocks.

std::vector<std::string> SplitLines(const std::string& block) {
  std::vector<std::string> lines;
  std::istringstream in(block);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(ProtocolTest, ResponseBlockRoundTrips) {
  QueryResponse response;
  response.kind = QueryKind::kKSimilar;
  response.payload = MatchResult{
      {QueryMatch{{2, 3, 8}, 0.012345678901234567, 4, false},
       QueryMatch{{7, 0, 8}, 0.25, 1, true}}};
  response.stats.lengths_scanned = 1;
  response.stats.reps_compared = 12;
  response.latency_seconds = 0.000152;

  const std::string block = RenderResponse(response);
  EXPECT_EQ(block.substr(block.size() - 3), "\n.\n");

  auto parsed = ParseResponseBlock(SplitLines(block));
  ASSERT_TRUE(parsed.ok());
  const WireResponse& wire = parsed.value();
  EXPECT_TRUE(wire.ok);
  EXPECT_EQ(wire.kind, "KSimilar");
  EXPECT_EQ(wire.header.at("matches"), "2");
  EXPECT_EQ(wire.header.at("latency_us"), "152");
  ASSERT_EQ(wire.payload.size(), 3u);  // stats + 2 matches.

  const auto stats = ParseKeyValues(wire.payload[0]);
  EXPECT_EQ(stats.at("reps_compared"), "12");
  const auto match0 = ParseKeyValues(wire.payload[1]);
  EXPECT_EQ(match0.at("series"), "2");
  EXPECT_EQ(match0.at("bound"), "0");
  EXPECT_DOUBLE_EQ(std::stod(match0.at("distance")), 0.012345678901234567);
  const auto match1 = ParseKeyValues(wire.payload[2]);
  EXPECT_EQ(match1.at("bound"), "1");
}

TEST(ProtocolTest, SeasonalRecommendRefineBlocksRender) {
  QueryResponse seasonal;
  seasonal.kind = QueryKind::kSeasonal;
  seasonal.payload = SeasonalResult{{{{0, 4, 8}, {1, 8, 8}}, {{2, 0, 8}}}};
  const auto lines = SplitLines(RenderResponse(seasonal));
  EXPECT_EQ(lines[0].rfind("OK Seasonal groups=2", 0), 0u);
  EXPECT_EQ(lines[2], "group size=2 refs=0:4:8,1:8:8");
  EXPECT_EQ(lines[3], "group size=1 refs=2:0:8");

  QueryResponse recommend;
  recommend.kind = QueryKind::kRecommend;
  recommend.payload =
      RecommendResult{{Recommendation{SimilarityDegree::kStrict, 0.0, 0.05}}};
  const auto rec_lines = SplitLines(RenderResponse(recommend));
  const auto rec = ParseKeyValues(rec_lines[2]);
  EXPECT_EQ(rec.at("degree"), "S");
  EXPECT_DOUBLE_EQ(std::stod(rec.at("high")), 0.05);

  QueryResponse refine;
  refine.kind = QueryKind::kRefineThreshold;
  refine.payload = RefineResult{{RefineSummary{16, 10, 14}}};
  const auto ref_lines = SplitLines(RenderResponse(refine));
  const auto ref = ParseKeyValues(ref_lines[2]);
  EXPECT_EQ(ref.at("length"), "16");
  EXPECT_EQ(ref.at("before"), "10");
  EXPECT_EQ(ref.at("after"), "14");
}

TEST(ProtocolTest, ErrorBlocksCarryCodeAndMessage) {
  const std::string block =
      RenderError(Status::NotFound("length 7 was not constructed"));
  auto parsed = ParseResponseBlock(SplitLines(block));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().ok);
  EXPECT_EQ(parsed.value().code, "NOT_FOUND");
  EXPECT_EQ(parsed.value().message, "length 7 was not constructed");

  const std::string shed = RenderErrorBlock(kOverloadedCode, "queue full");
  auto shed_parsed = ParseResponseBlock(SplitLines(shed));
  ASSERT_TRUE(shed_parsed.ok());
  EXPECT_EQ(shed_parsed.value().code, "OVERLOADED");

  // Newlines in messages cannot break framing.
  const std::string hostile =
      RenderErrorBlock("INVALID_ARGUMENT", "line one\nline two");
  EXPECT_EQ(SplitLines(hostile).size(), 2u);  // header + terminator only.
}

TEST(ProtocolTest, GreetingAnnouncesVersion) {
  EXPECT_EQ(Greeting(), "ONEX/8 ready\n");
  auto parsed = ParseResponseBlock(SplitLines(RenderHelp()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ok);
  EXPECT_EQ(parsed.value().kind, "Help");
  EXPECT_GT(parsed.value().payload.size(), 4u);
}

TEST(ProtocolTest, ParseResponseBlockRejectsGarbage) {
  EXPECT_FALSE(ParseResponseBlock({}).ok());
  EXPECT_FALSE(ParseResponseBlock({"HELLO world"}).ok());
  EXPECT_FALSE(ParseResponseBlock({""}).ok());
}

}  // namespace
}  // namespace server
}  // namespace onex

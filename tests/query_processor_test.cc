// Tests for the online query processor (paper Sec. 5, Algorithm 2):
// Q1 exact/any-length similarity, k-similar retrieval, Q2 seasonal
// similarity in both modes, optimization-toggle consistency, and
// accuracy against the Standard-DTW gold standard.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/standard_dtw.h"
#include "core/onex_base.h"
#include "core/query_processor.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

Dataset TestDataset(size_t n = 10, size_t len = 24, uint64_t seed = 42) {
  GenOptions options;
  options.num_series = n;
  options.length = len;
  options.seed = seed;
  Dataset d = MakeItalyPower(options);
  MinMaxNormalize(&d);
  return d;
}

OnexBase BuildBase(Dataset d, double st = 0.2,
                   LengthSpec lengths = {4, 24, 4}) {
  OnexOptions options;
  options.st = st;
  options.lengths = lengths;
  auto result = OnexBase::Build(std::move(d), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<double> Materialize(const Dataset& d, uint32_t p, uint32_t j,
                                uint32_t len) {
  const auto view = d[p].Subsequence(j, len);
  return std::vector<double>(view.begin(), view.end());
}

// ------------------------------------------------------------ Q1 exact.

TEST(QueryProcessorTest, InDatasetQueryFoundNearExactly) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto query = Materialize(base.dataset(), 2, 3, 8);
  auto result = processor.FindBestMatchOfLength(S(query), 8);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The query is literally in the base; ONEX searches only the best
  // group, so it must come back at (or extremely near) distance zero.
  EXPECT_LE(result.value().distance, 1e-9);
  EXPECT_EQ(result.value().ref.length, 8u);
}

TEST(QueryProcessorTest, UnindexedLengthIsNotFound) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  std::vector<double> query(7, 0.5);
  auto result = processor.FindBestMatchOfLength(S(query), 7);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
}

TEST(QueryProcessorTest, EmptyQueryRejected) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  std::vector<double> empty;
  EXPECT_FALSE(processor.FindBestMatchOfLength(S(empty), 8).ok());
  EXPECT_FALSE(processor.FindBestMatch(S(empty)).ok());
}

// -------------------------------------------------------------- Q1 any.

TEST(QueryProcessorTest, AnyLengthFindsInDatasetQuery) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto query = Materialize(base.dataset(), 5, 2, 12);
  auto result = processor.FindBestMatch(S(query));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().distance, 1e-9);
}

TEST(QueryProcessorTest, AnyLengthHandlesQueryLengthNotIndexed) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  // Length 10 is not indexed (spec strides by 4); the search must still
  // produce a cross-length answer.
  std::vector<double> query(10);
  Rng rng(9);
  for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
  auto result = processor.FindBestMatch(S(query));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result.value().distance));
  EXPECT_NE(result.value().ref.length, 10u);
}

TEST(QueryProcessorTest, AnyAtLeastAsGoodAsExactWithoutEarlyStop) {
  QueryOptions qopts;
  qopts.stop_within_st_half = false;  // Full sweep over lengths.
  OnexBase base = BuildBase(TestDataset(12, 24, 5));
  QueryProcessor processor(&base, qopts);
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> query(12);
    for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
    auto any = processor.FindBestMatch(S(query));
    auto exact = processor.FindBestMatchOfLength(S(query), 12);
    ASSERT_TRUE(any.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LE(any.value().distance, exact.value().distance + 1e-9);
  }
}

// --------------------------------------------------- Optimization toggles.

TEST(QueryProcessorTest, CascadeTogglesPreserveTheAnswer) {
  OnexBase base = BuildBase(TestDataset(10, 24, 7));
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> query(16);
    for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);

    QueryOptions all_on;
    QueryOptions all_off;
    all_off.use_cascade = false;
    all_off.use_median_order = false;
    all_off.use_value_targeted_scan = false;
    all_off.use_early_abandon = false;
    QueryOptions no_cascade;
    no_cascade.use_cascade = false;

    QueryProcessor p1(&base, all_on);
    QueryProcessor p2(&base, all_off);
    QueryProcessor p3(&base, no_cascade);
    auto r1 = p1.FindBestMatchOfLength(S(query), 16);
    auto r2 = p2.FindBestMatchOfLength(S(query), 16);
    auto r3 = p3.FindBestMatchOfLength(S(query), 16);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_TRUE(r3.ok());
    // Pruning is admissible and the scans are exhaustive within the
    // chosen group, so the distances must agree no matter the toggles.
    EXPECT_NEAR(r1.value().distance, r2.value().distance, 1e-9);
    EXPECT_NEAR(r1.value().distance, r3.value().distance, 1e-9);
  }
}

TEST(QueryProcessorTest, PruningReducesWork) {
  OnexBase base = BuildBase(TestDataset(12, 24, 19));
  std::vector<double> query(16);
  Rng rng(17);
  for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);

  QueryProcessor pruned(&base);
  QueryStats pruned_stats;
  pruned.FindBestMatchOfLength(S(query), 16, &pruned_stats);
  QueryOptions off;
  off.use_cascade = false;
  off.use_early_abandon = false;
  QueryProcessor plain(&base, off);
  QueryStats plain_stats;
  plain.FindBestMatchOfLength(S(query), 16, &plain_stats);
  // Same candidates, but the pruned run must complete fewer full DTWs
  // (reps_compared counts non-pruned representative comparisons).
  EXPECT_LE(pruned_stats.reps_compared, plain_stats.reps_compared);
  EXPECT_GT(plain_stats.reps_compared, 0u);
}

// ------------------------------------------------- Accuracy vs oracle.

TEST(QueryProcessorTest, AccuracyCloseToStandardDtw) {
  Dataset d = TestDataset(10, 24, 23);
  LengthSpec lengths{6, 24, 6};
  OnexBase base = BuildBase(d, 0.2, lengths);
  StandardDtwSearch oracle(&base.dataset(), lengths);
  QueryProcessor processor(&base);

  Rng rng(29);
  double total_error = 0.0;
  const int kQueries = 10;
  for (int q = 0; q < kQueries; ++q) {
    std::vector<double> query(12);
    for (auto& x : query) x = rng.UniformDouble(0.2, 0.8);
    auto onex_result = processor.FindBestMatch(S(query));
    const SearchResult oracle_result = oracle.FindBestMatch(S(query));
    ASSERT_TRUE(onex_result.ok());
    // ONEX can never beat the exhaustive oracle...
    EXPECT_GE(onex_result.value().distance, oracle_result.distance - 1e-9);
    total_error += onex_result.value().distance - oracle_result.distance;
  }
  // ...but the paper reports ~97-99% accuracy; at this scale the mean
  // absolute error in normalized DTW must stay small.
  EXPECT_LE(total_error / kQueries, 0.05);
}

// ------------------------------------------------------------- kSimilar.

TEST(QueryProcessorTest, KSimilarSortedAndBounded) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto query = Materialize(base.dataset(), 1, 0, 8);
  auto result = processor.FindKSimilar(S(query), 5, 8);
  ASSERT_TRUE(result.ok());
  const auto& matches = result.value();
  ASSERT_FALSE(matches.empty());
  EXPECT_LE(matches.size(), 5u);
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i].distance, matches[i - 1].distance);
  }
  // Best of the k equals the single best match of that length.
  auto single = processor.FindBestMatchOfLength(S(query), 8);
  ASSERT_TRUE(single.ok());
  EXPECT_NEAR(matches[0].distance, single.value().distance, 1e-9);
}

TEST(QueryProcessorTest, KSimilarAnyLength) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  const auto query = Materialize(base.dataset(), 1, 0, 8);
  auto result = processor.FindKSimilar(S(query), 3);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().empty());
}

TEST(QueryProcessorTest, KSimilarValidation) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  std::vector<double> query(8, 0.5);
  EXPECT_FALSE(processor.FindKSimilar(S(query), 0, 8).ok());
  EXPECT_FALSE(processor.FindKSimilar(S(query), 3, 7).ok());
}

// ------------------------------------------------------------- Seasonal.

TEST(QueryProcessorTest, SeasonalSimilarityFindsRecurringPattern) {
  // A series that repeats the same motif four times must exhibit
  // recurring similarity at the motif length.
  Dataset d("seasonal");
  std::vector<double> series;
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 8; ++i) {
      series.push_back(0.5 + 0.4 * std::sin(2.0 * M_PI * i / 8.0));
    }
  }
  d.Add(TimeSeries(series, 1));
  // A second series of unrelated noise.
  Rng rng(31);
  std::vector<double> noise(32);
  for (auto& x : noise) x = rng.UniformDouble(0.0, 1.0);
  d.Add(TimeSeries(noise, 2));

  OnexBase base = BuildBase(std::move(d), 0.2, LengthSpec{8, 8, 1});
  QueryProcessor processor(&base);
  auto result = processor.SeasonalSimilarity(0, 8);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().empty());
  size_t recurring = 0;
  for (const auto& group : result.value()) {
    EXPECT_GE(group.size(), 2u);
    for (const auto& ref : group) {
      EXPECT_EQ(ref.series, 0u);
      EXPECT_EQ(ref.length, 8u);
    }
    recurring += group.size();
  }
  // The four aligned motif occurrences (offsets 0, 8, 16, 24) are
  // near-identical, so at least those must recur together.
  EXPECT_GE(recurring, 4u);
}

TEST(QueryProcessorTest, SeasonalValidation) {
  OnexBase base = BuildBase(TestDataset());
  QueryProcessor processor(&base);
  EXPECT_FALSE(processor.SeasonalSimilarity(999, 8).ok());
  EXPECT_FALSE(processor.SeasonalSimilarity(0, 7).ok());
}

TEST(QueryProcessorTest, DataDrivenSeasonalReturnsMultiMemberGroups) {
  OnexBase base = BuildBase(TestDataset(12, 24, 37));
  QueryProcessor processor(&base);
  auto result = processor.SimilarGroupsOfLength(8);
  ASSERT_TRUE(result.ok());
  for (const auto& group : result.value()) {
    EXPECT_GE(group.size(), 2u);
    for (const auto& ref : group) EXPECT_EQ(ref.length, 8u);
  }
  EXPECT_FALSE(processor.SimilarGroupsOfLength(7).ok());
}

// ----------------------------------------------------------------- Stats.

TEST(QueryProcessorTest, PerCallStatsReportEachCallsWork) {
  OnexBase base = BuildBase(TestDataset());
  const QueryProcessor processor(&base);  // Query methods are const.
  std::vector<double> query(8, 0.5);
  QueryStats call;
  auto result = processor.FindBestMatchOfLength(S(query), 8, &call);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(call.reps_compared + call.reps_pruned, 0u);
  EXPECT_GT(call.members_compared, 0u);
  EXPECT_EQ(call.lengths_scanned, 1u);
  EXPECT_FALSE(call.ToString().empty());
  // A second identical call returns fresh counters, not a running sum.
  QueryStats second;
  (void)processor.FindBestMatchOfLength(S(query), 8, &second);
  EXPECT_EQ(second.lengths_scanned, call.lengths_scanned);
  EXPECT_EQ(second.members_compared, call.members_compared);
  // Callers wanting totals aggregate explicitly.
  QueryStats total;
  total.Add(call);
  total.Add(second);
  EXPECT_EQ(total.members_compared, 2 * call.members_compared);
  total.Reset();
  EXPECT_EQ(total.members_compared, 0u);
}

TEST(QueryProcessorTest, NullStatsOutParamIsAccepted) {
  OnexBase base = BuildBase(TestDataset());
  const QueryProcessor processor(&base);
  std::vector<double> query(8, 0.5);
  // Counters are simply discarded; the result is unaffected.
  auto with = processor.FindBestMatchOfLength(S(query), 8);
  QueryStats call;
  auto without = processor.FindBestMatchOfLength(S(query), 8, &call);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_DOUBLE_EQ(with.value().distance, without.value().distance);
}

}  // namespace
}  // namespace onex

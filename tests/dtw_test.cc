// Tests for the DTW kernels (paper Defs. 3 and 6): hand-computed values,
// a full-matrix reference implementation, warping-path validity, band and
// early-abandon semantics, and normalized-DTW scaling — with TEST_P
// sweeps over lengths and seeds.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "distance/dtw.h"
#include "distance/euclidean.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

std::vector<double> RandomVector(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->UniformDouble(0.0, 1.0);
  return v;
}

// Unconstrained reference DTW: full O(n*m) matrix, squared point costs,
// sqrt at the end (paper Def. 3). Deliberately simple and obviously
// correct; the production kernel must agree with it.
double ReferenceDtw(const std::vector<double>& a,
                    const std::vector<double>& b) {
  const size_t n = a.size(), m = b.size();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(n + 1,
                                      std::vector<double>(m + 1, inf));
  dp[0][0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const double d = a[i - 1] - b[j - 1];
      dp[i][j] = d * d + std::min({dp[i - 1][j - 1], dp[i - 1][j],
                                   dp[i][j - 1]});
    }
  }
  return std::sqrt(dp[n][m]);
}

// ------------------------------------------------------- Known values.

TEST(DtwTest, IdenticalSeriesIsZero) {
  std::vector<double> a = {1.0, 2.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(S(a), S(a)), 0.0);
}

TEST(DtwTest, HandComputedTinyCase) {
  // a = (0, 1), b = (0, 0, 1): optimal path matches 0->0, 0->0, 1->1,
  // total squared cost 0.
  std::vector<double> a = {0.0, 1.0};
  std::vector<double> b = {0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(S(a), S(b)), 0.0);
}

TEST(DtwTest, HandComputedNonZeroCase) {
  // a = (0, 2), b = (1,): path must match both points of a to b's single
  // point: cost = 1 + 1 = 2, distance sqrt(2).
  std::vector<double> a = {0.0, 2.0};
  std::vector<double> b = {1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(S(a), S(b)), std::sqrt(2.0));
}

TEST(DtwTest, ShiftedSpikeAlignsPerfectly) {
  // The same spike at different offsets: unconstrained DTW is 0 because
  // the flat prefix/suffix stretches — exactly what ED cannot do.
  std::vector<double> a = {0, 0, 0, 1, 0, 0, 0, 0};
  std::vector<double> b = {0, 0, 0, 0, 0, 1, 0, 0};
  EXPECT_DOUBLE_EQ(DtwDistance(S(a), S(b)), 0.0);
  EXPECT_GT(EuclideanDistance(S(a), S(b)), 1.0);
}

TEST(DtwTest, DtwNeverExceedsEdOnEqualLengths) {
  // The diagonal path is always available, so DTW <= ED (same squared
  // cost accumulation).
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = RandomVector(30, &rng);
    const auto b = RandomVector(30, &rng);
    EXPECT_LE(DtwDistance(S(a), S(b)),
              EuclideanDistance(S(a), S(b)) + 1e-9);
  }
}

TEST(DtwTest, SymmetricForEqualLengths) {
  Rng rng(8);
  const auto a = RandomVector(40, &rng);
  const auto b = RandomVector(40, &rng);
  EXPECT_NEAR(DtwDistance(S(a), S(b)), DtwDistance(S(b), S(a)), 1e-9);
}

TEST(DtwTest, EmptyInputs) {
  std::vector<double> empty, one = {1.0};
  EXPECT_DOUBLE_EQ(DtwDistance(S(empty), S(empty)), 0.0);
  EXPECT_TRUE(std::isinf(DtwDistance(S(empty), S(one))));
}

// -------------------------------------- Agreement with reference DTW.

class DtwReferenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(DtwReferenceTest, MatchesFullMatrixReference) {
  const auto [n, m, seed] = GetParam();
  Rng rng(seed);
  const auto a = RandomVector(n, &rng);
  const auto b = RandomVector(m, &rng);
  EXPECT_NEAR(DtwDistance(S(a), S(b)), ReferenceDtw(a, b), 1e-9);
}

TEST_P(DtwReferenceTest, SquaredIsSquareOfDistance) {
  const auto [n, m, seed] = GetParam();
  Rng rng(seed + 1);
  const auto a = RandomVector(n, &rng);
  const auto b = RandomVector(m, &rng);
  const double d = DtwDistance(S(a), S(b));
  EXPECT_NEAR(SquaredDtw(S(a), S(b)), d * d, 1e-9);
}

TEST_P(DtwReferenceTest, NormalizedDividesByTwiceMaxLength) {
  const auto [n, m, seed] = GetParam();
  Rng rng(seed + 2);
  const auto a = RandomVector(n, &rng);
  const auto b = RandomVector(m, &rng);
  const double expected =
      DtwDistance(S(a), S(b)) / (2.0 * static_cast<double>(std::max(n, m)));
  EXPECT_NEAR(NormalizedDtw(S(a), S(b)), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DtwReferenceTest,
    ::testing::Values(std::make_tuple(5, 5, 1), std::make_tuple(12, 7, 2),
                      std::make_tuple(7, 12, 3), std::make_tuple(1, 9, 4),
                      std::make_tuple(33, 33, 5), std::make_tuple(64, 48, 6),
                      std::make_tuple(2, 2, 7), std::make_tuple(100, 90, 8)));

// ------------------------------------------------------------- Banding.

TEST(DtwBandTest, WindowZeroEqualsEuclideanOnEqualLengths) {
  Rng rng(9);
  const auto a = RandomVector(25, &rng);
  const auto b = RandomVector(25, &rng);
  DtwOptions options{0};
  EXPECT_NEAR(DtwDistance(S(a), S(b), options),
              EuclideanDistance(S(a), S(b)), 1e-9);
}

TEST(DtwBandTest, WideningWindowIsMonotoneNonIncreasing) {
  Rng rng(10);
  const auto a = RandomVector(50, &rng);
  const auto b = RandomVector(50, &rng);
  double prev = std::numeric_limits<double>::infinity();
  for (int w : {0, 1, 2, 4, 8, 16, 50}) {
    DtwOptions options{w};
    const double d = DtwDistance(S(a), S(b), options);
    EXPECT_LE(d, prev + 1e-9) << "window " << w;
    prev = d;
  }
}

TEST(DtwBandTest, LargeWindowEqualsUnconstrained) {
  Rng rng(11);
  const auto a = RandomVector(40, &rng);
  const auto b = RandomVector(40, &rng);
  DtwOptions wide{40};
  EXPECT_NEAR(DtwDistance(S(a), S(b), wide), DtwDistance(S(a), S(b)), 1e-9);
}

TEST(DtwBandTest, UnequalLengthsWindowStaysFeasible) {
  // Window smaller than the length difference must still produce a
  // finite result (effective window = max(w, |n-m|)).
  Rng rng(12);
  const auto a = RandomVector(30, &rng);
  const auto b = RandomVector(10, &rng);
  DtwOptions options{1};
  EXPECT_TRUE(std::isfinite(DtwDistance(S(a), S(b), options)));
}

TEST(DtwBandTest, FromRatioComputesPoints) {
  const DtwOptions options = DtwOptions::FromRatio(0.1, 200, 100);
  EXPECT_EQ(options.window, 20);
  const DtwOptions unconstrained = DtwOptions::FromRatio(-1.0, 200, 100);
  EXPECT_LT(unconstrained.window, 0);
}

// ------------------------------------------------------ Early abandon.

TEST(DtwEarlyAbandonTest, ExactWhenUnderThreshold) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = RandomVector(40, &rng);
    const auto b = RandomVector(40, &rng);
    const double exact = DtwDistance(S(a), S(b));
    EXPECT_NEAR(DtwEarlyAbandon(S(a), S(b), exact + 1e-6), exact, 1e-9);
  }
}

TEST(DtwEarlyAbandonTest, InfWhenThresholdBelowDistance) {
  Rng rng(14);
  const auto a = RandomVector(40, &rng);
  auto b = RandomVector(40, &rng);
  for (auto& x : b) x += 5.0;
  const double exact = DtwDistance(S(a), S(b));
  EXPECT_TRUE(std::isinf(DtwEarlyAbandon(S(a), S(b), exact * 0.5)));
}

TEST(DtwEarlyAbandonTest, NegativeThresholdAlwaysInf) {
  std::vector<double> a = {1.0, 2.0};
  EXPECT_TRUE(std::isinf(DtwEarlyAbandon(S(a), S(a), -1.0)));
}

TEST(DtwEarlyAbandonTest, CbVariantExactWithZeroBounds) {
  Rng rng(15);
  const auto a = RandomVector(30, &rng);
  const auto b = RandomVector(30, &rng);
  std::vector<double> cb(31, 0.0);
  const double exact = DtwDistance(S(a), S(b));
  EXPECT_NEAR(DtwEarlyAbandonCb(S(a), S(b), S(cb), exact + 1e-6, {}),
              exact, 1e-9);
}

// -------------------------------------------------------------- Paths.

class DtwPathTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(DtwPathTest, PathIsValidWarpingPath) {
  const auto [n, m, seed] = GetParam();
  Rng rng(seed);
  const auto a = RandomVector(n, &rng);
  const auto b = RandomVector(m, &rng);
  std::vector<std::pair<uint32_t, uint32_t>> path;
  const double d = DtwWithPath(S(a), S(b), &path);

  // Endpoints (paper Sec. 2: p1 = (1,1), pT = (n,m)).
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front().first, 0u);
  EXPECT_EQ(path.front().second, 0u);
  EXPECT_EQ(path.back().first, n - 1);
  EXPECT_EQ(path.back().second, m - 1);

  // Monotone, continuous steps.
  for (size_t t = 1; t < path.size(); ++t) {
    const int di = static_cast<int>(path[t].first) -
                   static_cast<int>(path[t - 1].first);
    const int dj = static_cast<int>(path[t].second) -
                   static_cast<int>(path[t - 1].second);
    EXPECT_GE(di, 0);
    EXPECT_GE(dj, 0);
    EXPECT_LE(di, 1);
    EXPECT_LE(dj, 1);
    EXPECT_GE(di + dj, 1);
  }

  // Path length bounds: max(n,m) <= T <= n + m - 1.
  EXPECT_GE(path.size(), std::max(n, m));
  EXPECT_LE(path.size(), n + m - 1);

  // The path's weight (Def. 3) equals the reported distance.
  double weight_sq = 0.0;
  for (const auto& [i, j] : path) {
    const double diff = a[i] - b[j];
    weight_sq += diff * diff;
  }
  EXPECT_NEAR(std::sqrt(weight_sq), d, 1e-9);

  // And it matches the rolling-row kernel.
  EXPECT_NEAR(d, DtwDistance(S(a), S(b)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DtwPathTest,
    ::testing::Values(std::make_tuple(4, 4, 21), std::make_tuple(10, 6, 22),
                      std::make_tuple(6, 10, 23), std::make_tuple(1, 5, 24),
                      std::make_tuple(32, 32, 25),
                      std::make_tuple(50, 20, 26)));

}  // namespace
}  // namespace onex

// Tests for the two post-paper knobs: multi-group search
// (QueryOptions::groups_to_search) and Lloyd refinement passes
// (OnexOptions::refinement_passes). Both must preserve every invariant
// and move accuracy monotonically toward the oracle.

#include <gtest/gtest.h>

#include <set>

#include "baselines/standard_dtw.h"
#include "core/group_builder.h"
#include "core/onex_base.h"
#include "core/query_processor.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

Dataset TestDataset(uint64_t seed = 42) {
  GenOptions gen;
  gen.num_series = 10;
  gen.length = 24;
  gen.seed = seed;
  Dataset d = MakeItalyPower(gen);
  MinMaxNormalize(&d);
  return d;
}

uint64_t KeyOf(const SubsequenceRef& ref) {
  return (static_cast<uint64_t>(ref.series) << 40) |
         (static_cast<uint64_t>(ref.start) << 16) | ref.length;
}

// -------------------------------------------------- Multi-group search.

TEST(MultiGroupSearchTest, NeverWorseThanSingleGroup) {
  Dataset d = TestDataset();
  OnexOptions options;
  options.lengths = {8, 24, 8};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  OnexBase base = std::move(built).value();

  QueryOptions one;
  QueryOptions three;
  three.groups_to_search = 3;
  three.stop_within_st_half = false;
  one.stop_within_st_half = false;
  QueryProcessor p1(&base, one);
  QueryProcessor p3(&base, three);

  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> query(16);
    for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
    auto r1 = p1.FindBestMatch(S(query));
    auto r3 = p3.FindBestMatch(S(query));
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r3.ok());
    EXPECT_LE(r3.value().distance, r1.value().distance + 1e-9);
  }
}

TEST(MultiGroupSearchTest, ApproachesOracleWithMoreGroups) {
  Dataset d = TestDataset(7);
  LengthSpec lengths{8, 24, 8};
  OnexOptions options;
  options.lengths = lengths;
  auto built = OnexBase::Build(d, options);
  ASSERT_TRUE(built.ok());
  OnexBase base = std::move(built).value();
  StandardDtwSearch oracle(&d, lengths);

  Rng rng(11);
  double err1 = 0.0, err4 = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> query(16);
    for (auto& x : query) x = rng.UniformDouble(0.1, 0.9);
    const double opt = oracle.FindBestMatch(S(query)).distance;
    QueryOptions q1_opts;
    q1_opts.stop_within_st_half = false;
    QueryOptions q4_opts = q1_opts;
    q4_opts.groups_to_search = 4;
    QueryProcessor p1(&base, q1_opts), p4(&base, q4_opts);
    err1 += p1.FindBestMatch(S(query)).value().distance - opt;
    err4 += p4.FindBestMatch(S(query)).value().distance - opt;
  }
  EXPECT_LE(err4, err1 + 1e-9);
  EXPECT_GE(err1, 0.0);
  EXPECT_GE(err4, 0.0);
}

TEST(MultiGroupSearchTest, MoreGroupsThanExistIsSafe) {
  Dataset d = TestDataset();
  OnexOptions options;
  options.lengths = {8, 8, 1};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  QueryOptions huge;
  huge.groups_to_search = 10000;
  QueryProcessor processor(&built.value(), huge);
  std::vector<double> query(8, 0.5);
  auto result = processor.FindBestMatchOfLength(S(query), 8);
  ASSERT_TRUE(result.ok());
  // All groups searched -> this equals the exhaustive scan over the
  // whole length: best possible answer for the length.
  EXPECT_TRUE(std::isfinite(result.value().distance));
}

// -------------------------------------------------- Lloyd refinement.

TEST(RefinementTest, PreservesCoverageAndRadius) {
  Dataset d = TestDataset(3);
  Rng rng(1);
  const size_t length = 8;
  const double st = 0.2;
  auto groups = BuildGroupsForLength(d, length, st, &rng);
  std::multiset<uint64_t> before;
  for (const auto& g : groups) {
    for (const auto& ref : g.members()) before.insert(KeyOf(ref));
  }
  const auto refined = RefineGroupsOnce(d, groups, length, st);
  std::multiset<uint64_t> after;
  for (const auto& g : refined) {
    for (const auto& ref : g.members()) after.insert(KeyOf(ref));
  }
  EXPECT_EQ(before, after);
}

TEST(RefinementTest, ReducesMeanDistanceToRepresentative) {
  Dataset d = TestDataset(13);
  OnexOptions plain;
  plain.lengths = {8, 16, 8};
  OnexOptions refined = plain;
  refined.refinement_passes = 2;
  auto base_plain = OnexBase::Build(d, plain);
  auto base_refined = OnexBase::Build(d, refined);
  ASSERT_TRUE(base_plain.ok());
  ASSERT_TRUE(base_refined.ok());

  auto mean_ed = [](const OnexBase& base) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t length : base.gti().Lengths()) {
      for (const auto& group : base.EntryFor(length)->groups) {
        for (const auto& member : group.members) {
          sum += member.ed_to_rep;
          ++count;
        }
      }
    }
    return sum / static_cast<double>(count);
  };
  // Lloyd passes must not loosen the clustering; tightening is the
  // typical outcome.
  EXPECT_LE(mean_ed(base_refined.value()),
            mean_ed(base_plain.value()) * 1.05);
}

TEST(RefinementTest, BaseWithRefinementStillAnswersExactly) {
  Dataset d = TestDataset(17);
  OnexOptions options;
  options.lengths = {8, 24, 8};
  options.refinement_passes = 3;
  auto built = OnexBase::Build(d, options);
  ASSERT_TRUE(built.ok());
  QueryProcessor processor(&built.value());
  const auto view = d[2].Subsequence(4, 8);
  std::vector<double> query(view.begin(), view.end());
  auto result = processor.FindBestMatchOfLength(S(query), 8);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().distance, 0.02);
}

TEST(RefinementTest, ZeroPassesIsPaperBehaviour) {
  Dataset d = TestDataset(19);
  OnexOptions a;
  a.lengths = {8, 16, 8};
  OnexOptions b = a;
  b.refinement_passes = 0;
  auto base_a = OnexBase::Build(d, a);
  auto base_b = OnexBase::Build(d, b);
  ASSERT_TRUE(base_a.ok());
  ASSERT_TRUE(base_b.ok());
  EXPECT_EQ(base_a.value().stats().num_representatives,
            base_b.value().stats().num_representatives);
}

}  // namespace
}  // namespace onex

// Tests for the in-flight query registry (src/core/inflight.h): slot
// claim/release lifecycle with epoch parity, owner-filtered snapshots,
// saturation behavior (nullptr, never blocking), dataset-name
// truncation, RAII claim moves, and — the one that matters — parity
// between a probe's mirrored cascade counters and the QueryStats the
// query itself returns: Engine::Execute's final mirror publish makes
// them EXACTLY equal at rest, so INSPECT and TRACE can never tell a
// different story about a finished query.

#include "core/inflight.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/exec_context.h"
#include "datagen/registry.h"
#include "dataset/normalize.h"

namespace onex {
namespace {

/// Every test releases what it claims: the registry is process-global,
/// so leaked claims would bleed into sibling tests.
class InflightRegistryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    EXPECT_EQ(InflightRegistry::Global().ActiveCount(nullptr), 0u);
  }
};

TEST_F(InflightRegistryTest, ClaimPublishesIdentityAndReleaseFrees) {
  auto& registry = InflightRegistry::Global();
  const int owner = 0;
  InflightProbe* probe =
      registry.Claim(&owner, /*id=*/42, /*session=*/7, /*kind=*/3, "ecg",
                     /*start_ns=*/1000, /*deadline_ns=*/5000);
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->epoch.load() % 2, 1u) << "active slots have odd epochs";
  EXPECT_EQ(registry.ActiveCount(&owner), 1u);

  const InflightRow row = DecodeProbe(*probe);
  EXPECT_EQ(row.id, 42u);
  EXPECT_EQ(row.session, 7u);
  EXPECT_EQ(row.kind, 3u);
  EXPECT_EQ(row.stage, QueryStage::kQueued);
  EXPECT_EQ(row.start_ns, 1000u);
  EXPECT_EQ(row.deadline_ns, 5000);
  EXPECT_EQ(row.dataset, "ecg");
  EXPECT_FALSE(row.stalled);

  registry.Release(probe);
  EXPECT_EQ(probe->epoch.load() % 2, 0u);
  EXPECT_EQ(registry.ActiveCount(&owner), 0u);
}

TEST_F(InflightRegistryTest, SnapshotFiltersByOwnerAndNullSeesAll) {
  auto& registry = InflightRegistry::Global();
  const int server_a = 0;
  const int server_b = 0;
  InflightProbe* pa =
      registry.Claim(&server_a, 1, 1, 0, "alpha", 0, -1);
  InflightProbe* pb =
      registry.Claim(&server_b, 2, 2, 0, "beta", 0, -1);
  ASSERT_NE(pa, nullptr);
  ASSERT_NE(pb, nullptr);

  const auto only_a = registry.Snapshot(&server_a);
  ASSERT_EQ(only_a.size(), 1u);
  EXPECT_EQ(only_a[0].dataset, "alpha");

  // The crash dump passes nullptr: every live query, whoever owns it.
  EXPECT_EQ(registry.Snapshot(nullptr).size(), 2u);
  EXPECT_EQ(registry.ActiveCount(nullptr), 2u);

  registry.Release(pa);
  registry.Release(pb);
}

TEST_F(InflightRegistryTest, SaturationReturnsNullInsteadOfBlocking) {
  auto& registry = InflightRegistry::Global();
  const int owner = 0;
  std::vector<InflightProbe*> claimed;
  for (size_t i = 0; i < InflightRegistry::kCapacity; ++i) {
    InflightProbe* p = registry.Claim(&owner, i, 0, 0, "sat", 0, -1);
    ASSERT_NE(p, nullptr) << "slot " << i;
    claimed.push_back(p);
  }
  // The 129th query runs unobserved — a missing INSPECT row is a far
  // better failure mode than a worker blocked on observability.
  EXPECT_EQ(registry.Claim(&owner, 999, 0, 0, "sat", 0, -1), nullptr);
  for (InflightProbe* p : claimed) registry.Release(p);
}

TEST_F(InflightRegistryTest, LongDatasetNameIsTruncatedNotOverrun) {
  auto& registry = InflightRegistry::Global();
  const int owner = 0;
  const std::string long_name(3 * InflightProbe::kDatasetCap, 'x');
  InflightProbe* probe =
      registry.Claim(&owner, 1, 1, 0, long_name, 0, -1);
  ASSERT_NE(probe, nullptr);
  const InflightRow row = DecodeProbe(*probe);
  EXPECT_EQ(row.dataset.size(), InflightProbe::kDatasetCap - 1);
  EXPECT_EQ(row.dataset, long_name.substr(0, InflightProbe::kDatasetCap - 1));
  registry.Release(probe);
}

TEST_F(InflightRegistryTest, RaiiClaimMovesWithoutDoubleRelease) {
  const int owner = 0;
  {
    InflightClaim claim(&owner, 1, 1, 0, "raii", 0, -1);
    ASSERT_NE(claim.probe(), nullptr);
    InflightClaim moved = std::move(claim);
    EXPECT_EQ(claim.probe(), nullptr);
    ASSERT_NE(moved.probe(), nullptr);
    EXPECT_EQ(InflightRegistry::Global().ActiveCount(&owner), 1u);
    // Move-assign over an empty claim; release happens once, at the
    // final holder's destruction.
    InflightClaim sink;
    sink = std::move(moved);
    EXPECT_EQ(InflightRegistry::Global().ActiveCount(&owner), 1u);
  }
  EXPECT_EQ(InflightRegistry::Global().ActiveCount(&owner), 0u);
}

TEST_F(InflightRegistryTest, StagePublishScopeRestoresOnExit) {
  const int owner = 0;
  InflightClaim claim(&owner, 1, 1, 0, "stage", 0, -1);
  ASSERT_NE(claim.probe(), nullptr);
  EXPECT_EQ(claim.probe()->CurrentStage(), QueryStage::kQueued);
  {
    InflightStageScope outer(claim.probe(), QueryStage::kRepScan);
    EXPECT_EQ(claim.probe()->CurrentStage(), QueryStage::kRepScan);
    {
      InflightStageScope inner(claim.probe(), QueryStage::kKnn);
      EXPECT_EQ(claim.probe()->CurrentStage(), QueryStage::kKnn);
    }
    EXPECT_EQ(claim.probe()->CurrentStage(), QueryStage::kRepScan);
  }
  EXPECT_EQ(claim.probe()->CurrentStage(), QueryStage::kQueued);
}

// ------------------------------------------- live-mirror parity

Engine BuildSmallEngine() {
  GenOptions gen;
  gen.num_series = 12;
  gen.length = 32;
  gen.seed = 17;
  auto made = MakeDatasetByName("ECG", gen);
  EXPECT_TRUE(made.ok());
  Dataset dataset = std::move(made).value();
  MinMaxNormalize(&dataset);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 32, 8};
  auto built = Engine::Build(std::move(dataset), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST_F(InflightRegistryTest, ProbeCountersMatchQueryStatsExactly) {
  Engine engine = BuildSmallEngine();
  const auto view = engine.dataset()[0].Subsequence(0, 16);

  const int owner = 0;
  InflightClaim claim(&owner, 5, 9, 1, "parity", 0, -1);
  ASSERT_NE(claim.probe(), nullptr);

  ExecContext ctx;
  ctx.probe = claim.probe();
  KSimilarRequest request;
  request.query.assign(view.begin(), view.end());
  request.length = 0;  // any-length: exercises the full LB cascade
  request.k = 3;
  auto response = engine.Execute(QueryRequest(request), ctx);
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // Engine::Execute ends with a final mirror publish, so at rest the
  // probe and the response tell the SAME cascade story — not
  // "eventually consistent", equal.
  const CascadeStats& stats = response.value().stats.cascade;
  const InflightRow row = DecodeProbe(*claim.probe());
  EXPECT_EQ(row.candidates, stats.candidates);
  EXPECT_EQ(row.pruned_kim, stats.pruned_kim);
  EXPECT_EQ(row.pruned_keogh, stats.pruned_keogh);
  EXPECT_EQ(row.dtw_abandoned, stats.dtw_abandoned);
  EXPECT_EQ(row.dtw_completed, stats.dtw_completed);
  // And the query actually looked at something, or parity is vacuous.
  EXPECT_GT(row.candidates, 0u);
}

TEST_F(InflightRegistryTest, ProbeFreeExecutionIsUnchanged) {
  Engine engine = BuildSmallEngine();
  const auto view = engine.dataset()[0].Subsequence(0, 16);
  KSimilarRequest request;
  request.query.assign(view.begin(), view.end());
  request.length = 0;
  request.k = 3;

  ExecContext with_probe_ctx;
  const int owner = 0;
  InflightClaim claim(&owner, 1, 1, 1, "twin", 0, -1);
  with_probe_ctx.probe = claim.probe();
  auto with_probe = engine.Execute(QueryRequest(request), with_probe_ctx);
  auto without = engine.Execute(QueryRequest(request), ExecContext{});
  ASSERT_TRUE(with_probe.ok());
  ASSERT_TRUE(without.ok());

  // The mirror observes; it must never steer. Same matches, same
  // cascade arithmetic, probe or no probe.
  const auto& a = std::get<MatchResult>(with_probe.value().payload);
  const auto& b = std::get<MatchResult>(without.value().payload);
  ASSERT_EQ(a.matches.size(), b.matches.size());
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].ref.series, b.matches[i].ref.series);
    EXPECT_DOUBLE_EQ(a.matches[i].distance, b.matches[i].distance);
  }
  EXPECT_EQ(with_probe.value().stats.cascade.candidates,
            without.value().stats.cascade.candidates);
  EXPECT_EQ(with_probe.value().stats.cascade.dtw_completed,
            without.value().stats.cascade.dtw_completed);
}

}  // namespace
}  // namespace onex

// Server-level tests for the v6 operational introspection tier:
// INSPECT shows a live query's row (with its stage) while the query
// runs; HEALTH separates liveness from readiness and flips readiness
// on a sticky WAL-write failure, a queue saturated past the degrade
// threshold (BEFORE shedding starts), and a watchdog-stalled worker;
// the stall watchdog flags a wedged job exactly once and feeds the
// onex_watchdog_stalls_total counter; and a v5-vocabulary session sees
// no v6 token anywhere in its replies — the introspection tier is a
// strict superset, invisible until asked for.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "datagen/registry.h"
#include "dataset/normalize.h"
#include "server/catalog.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"

namespace onex {
namespace server {
namespace {

Engine BuildEngine(size_t n, uint64_t seed) {
  GenOptions gen;
  gen.num_series = n;
  gen.length = 24;
  gen.seed = seed;
  auto made = MakeDatasetByName("ECG", gen);
  EXPECT_TRUE(made.ok());
  Dataset d = std::move(made).value();
  MinMaxNormalize(&d);
  OnexOptions options;
  options.st = 0.2;
  options.lengths = {8, 24, 8};
  auto built = Engine::Build(std::move(d), options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

/// A latch the on_job_start hook parks on: workers block inside their
/// claimed job (probe active, stage=queue) until the test releases
/// them — a deterministic "query in flight right now".
class JobGate {
 public:
  void Block() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++blocked_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }
  void WaitForBlocked(size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return blocked_ >= n; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t blocked_ = 0;
  bool open_ = false;
};

class IntrospectionTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options,
                   CatalogOptions catalog_options = CatalogOptions{}) {
    catalog_ = std::make_shared<Catalog>(catalog_options);
    if (catalog_options.data_dir.empty()) {
      catalog_->Register("ecg", BuildEngine(12, 7));
    }
    auto started = Server::Start(std::move(options), catalog_);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  static std::string QueryLine() {
    return "q1k 3 any 0.1,0.4,0.9,0.3,0.6,0.2,0.8,0.5";
  }

  std::shared_ptr<Catalog> catalog_;
  std::unique_ptr<Server> server_;
};

TEST_F(IntrospectionTest, InspectShowsLiveQueryRowWithStage) {
  auto gate = std::make_shared<JobGate>();
  ServerOptions options;
  options.num_workers = 1;
  options.stall_ms = 0;  // No watchdog noise in this test.
  options.on_job_start = [gate] { gate->Block(); };
  StartServer(std::move(options));

  Client runner = Connect();
  ASSERT_TRUE(runner.Roundtrip("use ecg").ok());
  auto handle = runner.Submit(
      QueryRequest(KSimilarRequest{{0.1, 0.4, 0.9, 0.3, 0.6, 0.2}, 3, 0}),
      Client::SubmitOptions{});
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  gate->WaitForBlocked(1);  // The worker holds the job, probe claimed.

  Client inspector = Connect();
  auto reply = inspector.Roundtrip("inspect");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().kind, "Inspect");
  EXPECT_EQ(reply.value().header.at("queries"), "1");
  EXPECT_EQ(reply.value().header.at("workers_busy"), "1");
  EXPECT_EQ(reply.value().header.at("workers_total"), "1");
  EXPECT_EQ(reply.value().header.at("stalled_workers"), "0");

  // Exactly one live `query` row, naming what the worker is holding.
  std::vector<std::string> query_rows;
  for (const std::string& line : reply.value().payload) {
    if (line.rfind("query ", 0) == 0) query_rows.push_back(line);
  }
  ASSERT_EQ(query_rows.size(), 1u) << "payload:\n" << reply.value().payload.size();
  const auto row = ParseKeyValues(query_rows[0]);
  EXPECT_EQ(row.at("kind"), "KSimilar");
  EXPECT_EQ(row.at("dataset"), "ecg");
  EXPECT_EQ(row.at("stage"), "queue");  // Parked before Execute began.
  EXPECT_EQ(row.at("stalled"), "0");
  EXPECT_EQ(row.at("deadline_remaining_us"), "none");
  EXPECT_NE(row.at("id"), "0") << "tagged submit carries its wire id";

  // Catalog + session rows ride along.
  bool saw_catalog = false;
  for (const std::string& line : reply.value().payload) {
    if (line.rfind("catalog name=ecg", 0) == 0) saw_catalog = true;
  }
  EXPECT_TRUE(saw_catalog);

  gate->Open();
  auto result = handle.value().Wait();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Drained: the same verb now reports an idle server.
  auto after = inspector.Roundtrip("inspect");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().header.at("queries"), "0");
  EXPECT_EQ(after.value().header.at("workers_busy"), "0");
}

TEST_F(IntrospectionTest, HealthIsReadyOnAnIdleServer) {
  ServerOptions options;
  options.stall_ms = 0;
  StartServer(std::move(options));
  Client client = Connect();
  auto reply = client.Roundtrip("health");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value().kind, "Health");
  EXPECT_EQ(reply.value().header.at("live"), "1");
  EXPECT_EQ(reply.value().header.at("ready"), "1");
  // All four gates present and passing.
  std::map<std::string, std::string> checks;
  for (const std::string& line : reply.value().payload) {
    const auto kv = ParseKeyValues(line);
    if (kv.count("name")) checks[kv.at("name")] = kv.at("ok");
  }
  EXPECT_EQ(checks.size(), 4u);
  for (const char* name :
       {"wal_writable", "checkpoint_age", "queue", "workers"}) {
    ASSERT_TRUE(checks.count(name)) << name;
    EXPECT_EQ(checks.at(name), "1") << name;
  }
}

TEST_F(IntrospectionTest, HealthDegradesOnSaturatedQueueBeforeShedding) {
  auto gate = std::make_shared<JobGate>();
  ServerOptions options;
  options.num_workers = 1;
  options.max_queue = 5;  // degrade_at = 4, shed_at = 5.
  options.stall_ms = 0;
  options.on_job_start = [gate] { gate->Block(); };
  StartServer(std::move(options));

  Client runner = Connect();
  ASSERT_TRUE(runner.Roundtrip("use ecg").ok());
  std::vector<Client::Handle> handles;
  // 1 running (blocked in the gate) + 4 queued = depth 4 = degrade_at.
  for (int i = 0; i < 5; ++i) {
    auto handle = runner.Submit(
        QueryRequest(KSimilarRequest{{0.1, 0.4, 0.9, 0.3, 0.6, 0.2}, 3, 0}),
        Client::SubmitOptions{});
    ASSERT_TRUE(handle.ok()) << i << ": " << handle.status().ToString();
    handles.push_back(std::move(handle).value());
  }
  gate->WaitForBlocked(1);

  // Submit only confirms the lines were WRITTEN; the session thread
  // enqueues them asynchronously. Wait until the queue really holds
  // the four waiting jobs before judging readiness.
  Client prober = Connect();
  for (int i = 0; i < 500; ++i) {
    auto inspect = prober.Roundtrip("inspect");
    ASSERT_TRUE(inspect.ok());
    if (inspect.value().header.at("queue_depth") == "4") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  auto reply = prober.Roundtrip("health");
  ASSERT_TRUE(reply.ok());
  // Degraded — but NOT shedding yet: the whole point of the early
  // readiness gate is that a router can drain the node while it still
  // answers. A 6th query would be the first one at risk.
  EXPECT_EQ(reply.value().header.at("live"), "1");
  EXPECT_EQ(reply.value().header.at("ready"), "0");
  bool queue_failed = false;
  for (const std::string& line : reply.value().payload) {
    const auto kv = ParseKeyValues(line);
    if (kv.count("name") && kv.at("name") == "queue") {
      queue_failed = kv.at("ok") == "0";
      EXPECT_EQ(kv.at("depth"), "4");
      EXPECT_EQ(kv.at("degrade_at"), "4");
      EXPECT_EQ(kv.at("shed_at"), "5");
    }
  }
  EXPECT_TRUE(queue_failed);

  gate->Open();
  for (auto& handle : handles) ASSERT_TRUE(handle.Wait().ok());
  auto after = prober.Roundtrip("health");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().header.at("ready"), "1") << "recovers when drained";
}

TEST_F(IntrospectionTest, HealthFailsWhenWalBecomesUnwritable) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("onex_introspection_wal_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  // Shared (not by-ref): the catalog outlives this test body, and its
  // teardown must never chase a dead stack slot.
  auto inject = std::make_shared<std::atomic<bool>>(false);
  CatalogOptions catalog_options;
  catalog_options.data_dir = dir.string();
  catalog_options.durable = true;
  catalog_options.storage.background_checkpointer = false;
  catalog_options.storage.wal_fault_injection = [inject]() {
    return inject->load() ? Status::IOError("injected WAL failure")
                          : Status::OK();
  };

  ServerOptions options;
  options.stall_ms = 0;
  StartServer(std::move(options), catalog_options);
  catalog_->Register("ecg", BuildEngine(10, 3));

  Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use ecg").ok());

  // Healthy while the WAL accepts appends...
  auto appended = catalog_->Append(
      "ecg", TimeSeries(std::vector<double>(24, 0.5), 1));
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  auto before = client.Roundtrip("health");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().header.at("ready"), "1");

  // ...then the disk "fails": the append errors, the flag sticks, and
  // readiness drops while liveness stays up.
  inject->store(true);
  EXPECT_FALSE(
      catalog_->Append("ecg", TimeSeries(std::vector<double>(24, 0.5), 1))
          .ok());
  auto during = client.Roundtrip("health");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during.value().header.at("live"), "1");
  EXPECT_EQ(during.value().header.at("ready"), "0");
  bool wal_failed = false;
  for (const std::string& line : during.value().payload) {
    const auto kv = ParseKeyValues(line);
    if (kv.count("name") && kv.at("name") == "wal_writable") {
      wal_failed = kv.at("ok") == "0";
    }
  }
  EXPECT_TRUE(wal_failed);

  // A successful append clears the sticky flag: the disk came back.
  inject->store(false);
  ASSERT_TRUE(
      catalog_->Append("ecg", TimeSeries(std::vector<double>(24, 0.5), 1))
          .ok());
  auto after = client.Roundtrip("health");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().header.at("ready"), "1");

  server_->Stop();
  std::filesystem::remove_all(dir);
}

TEST_F(IntrospectionTest, WatchdogFlagsStalledWorkerOnce) {
  auto gate = std::make_shared<JobGate>();
  ServerOptions options;
  options.num_workers = 1;
  options.stall_ms = 40;           // A blocked job stalls fast...
  options.watchdog_period_ms = 10;  // ...and the watchdog looks often.
  options.on_job_start = [gate] { gate->Block(); };
  StartServer(std::move(options));

  Client runner = Connect();
  ASSERT_TRUE(runner.Roundtrip("use ecg").ok());
  auto handle = runner.Submit(
      QueryRequest(KSimilarRequest{{0.1, 0.4, 0.9, 0.3, 0.6, 0.2}, 3, 0}),
      Client::SubmitOptions{});
  ASSERT_TRUE(handle.ok());
  gate->WaitForBlocked(1);

  // Poll until the watchdog notices (bounded: ~100 periods).
  Client prober = Connect();
  bool stalled_seen = false;
  for (int i = 0; i < 200 && !stalled_seen; ++i) {
    auto health = prober.Roundtrip("health");
    ASSERT_TRUE(health.ok());
    for (const std::string& line : health.value().payload) {
      const auto kv = ParseKeyValues(line);
      if (kv.count("name") && kv.at("name") == "workers" &&
          kv.at("ok") == "0") {
        EXPECT_EQ(kv.at("stalled"), "1");
        stalled_seen = true;
      }
    }
    if (!stalled_seen) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(stalled_seen) << "watchdog never flagged the wedged worker";

  // The INSPECT row carries the flag too.
  auto inspect = prober.Roundtrip("inspect");
  ASSERT_TRUE(inspect.ok());
  EXPECT_EQ(inspect.value().header.at("stalled_workers"), "1");
  bool row_stalled = false;
  for (const std::string& line : inspect.value().payload) {
    if (line.rfind("query ", 0) == 0) {
      row_stalled = ParseKeyValues(line).at("stalled") == "1";
    }
  }
  EXPECT_TRUE(row_stalled);

  gate->Open();
  ASSERT_TRUE(handle.value().Wait().ok());

  // The latch counts each stalled job exactly once, and the gauge
  // clears when the job finishes (the counter does not).
  auto metrics = prober.Roundtrip("metrics");
  ASSERT_TRUE(metrics.ok());
  bool counter_seen = false;
  bool gauge_zero = false;
  for (const std::string& line : metrics.value().payload) {
    if (line == "onex_watchdog_stalls_total 1") counter_seen = true;
    if (line == "onex_stalled_workers 0") gauge_zero = true;
  }
  EXPECT_TRUE(counter_seen) << "expected onex_watchdog_stalls_total 1";
  EXPECT_TRUE(gauge_zero) << "gauge must clear once the job completes";

  auto health = prober.Roundtrip("health");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().header.at("ready"), "1");
}

TEST_F(IntrospectionTest, V5VocabularySessionSeesNoV6Tokens) {
  // A client that only ever speaks the v5 vocabulary must get replies
  // with no v6 token in them — INSPECT/HEALTH are additive verbs, and
  // nothing leaks into query, stats, list, ping, or metrics-free
  // traffic. (The greeting version bump is the protocol's documented
  // superset signal; everything else is byte-compatible.)
  ServerOptions options;
  StartServer(std::move(options));
  Client client = Connect();
  ASSERT_TRUE(client.Roundtrip("use ecg").ok());

  const std::vector<std::string> v5_lines = {
      QueryLine(), "stats", "list", "ping",
      "trace=1 " + QueryLine(),
  };
  for (const std::string& line : v5_lines) {
    auto reply = client.Roundtrip(line);
    ASSERT_TRUE(reply.ok()) << line << ": " << reply.status().ToString();
    std::string all = reply.value().kind;
    for (const auto& [key, value] : reply.value().header) {
      all += " " + key + "=" + value;
    }
    for (const std::string& payload_line : reply.value().payload) {
      all += "\n" + payload_line;
    }
    for (const char* token :
         {"Inspect", "Health", "stalled", "watchdog", "wal_writable",
          "degrade_at", "deadline_remaining_us"}) {
      EXPECT_EQ(all.find(token), std::string::npos)
          << "v6 token '" << token << "' leaked into reply for: " << line
          << "\n" << all;
    }
  }

  // And `help` DOES advertise the new verbs — discoverability is the
  // one sanctioned leak.
  auto help = client.Roundtrip("help");
  ASSERT_TRUE(help.ok());
  std::string help_text;
  for (const std::string& payload_line : help.value().payload) {
    help_text += payload_line + "\n";
  }
  EXPECT_NE(help_text.find("inspect"), std::string::npos);
  EXPECT_NE(help_text.find("health"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace onex

// Tests for the three comparator engines: Standard-DTW (gold standard),
// PAA/PDTW, and the Trillion (UCR-suite) re-implementation. Trillion is
// validated against a plain brute-force z-normalized scan — the two must
// agree exactly on small data, proving the pruning cascade is admissible.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "baselines/paa.h"
#include "baselines/standard_dtw.h"
#include "baselines/trillion.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"
#include "distance/dtw.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

Dataset TestDataset(size_t n_series = 12, size_t length = 40,
                    uint64_t seed = 42) {
  GenOptions options;
  options.num_series = n_series;
  options.length = length;
  options.seed = seed;
  Dataset d = MakeEcg(options);
  MinMaxNormalize(&d);
  return d;
}

// ---------------------------------------------------------- StandardDTW.

TEST(StandardDtwTest, FindsExactCopyWithZeroDistance) {
  Dataset d = TestDataset();
  LengthSpec lengths{8, 0, 4};
  StandardDtwSearch search(&d, lengths);
  // Promote an actual subsequence to query (paper methodology part 1).
  const auto query_view = d[3].Subsequence(5, 16);
  std::vector<double> query(query_view.begin(), query_view.end());
  const SearchResult result = search.FindBestMatch(S(query));
  ASSERT_TRUE(result.found());
  EXPECT_NEAR(result.distance, 0.0, 1e-12);
}

TEST(StandardDtwTest, ExactLengthRestrictsCandidates) {
  Dataset d = TestDataset();
  LengthSpec lengths{8, 0, 4};
  StandardDtwSearch search(&d, lengths);
  const auto query_view = d[2].Subsequence(0, 12);
  std::vector<double> query(query_view.begin(), query_view.end());
  const SearchResult result = search.FindBestMatchOfLength(S(query), 12);
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.match.length, 12u);
  EXPECT_NEAR(result.distance, 0.0, 1e-12);
  // Candidate count: N * (n - len + 1) = 12 * 29.
  EXPECT_EQ(result.candidates_examined, 12u * 29u);
}

TEST(StandardDtwTest, AnyLengthIsAtLeastAsGoodAsEveryExactLength) {
  Dataset d = TestDataset(8, 32, 7);
  LengthSpec lengths{8, 0, 8};  // Lengths 8, 16, 24, 32.
  StandardDtwSearch search(&d, lengths);
  Rng rng(1);
  std::vector<double> query(20);
  for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
  const SearchResult any = search.FindBestMatch(S(query));
  ASSERT_TRUE(any.found());
  for (size_t len : {8u, 16u, 24u, 32u}) {
    const SearchResult exact = search.FindBestMatchOfLength(S(query), len);
    EXPECT_LE(any.distance, exact.distance + 1e-12) << "len " << len;
  }
}

TEST(StandardDtwTest, ReturnsNormalizedDtw) {
  Dataset d("two");
  d.Add(TimeSeries({0.0, 0.0, 0.0, 0.0}, 1));
  LengthSpec lengths{4, 4, 1};
  StandardDtwSearch search(&d, lengths);
  std::vector<double> query = {1.0, 1.0, 1.0, 1.0};
  const SearchResult result = search.FindBestMatch(S(query));
  // Raw DTW = sqrt(4) = 2 on the diagonal; normalized = 2 / (2*4) = 0.25.
  EXPECT_NEAR(result.distance, 0.25, 1e-12);
}

// ------------------------------------------------------------------ PAA.

TEST(PaaTest, ReduceAverages) {
  std::vector<double> v = {1.0, 3.0, 5.0, 7.0, 9.0, 11.0};
  const auto reduced = PaaReduce(S(v), 2);
  ASSERT_EQ(reduced.size(), 3u);
  EXPECT_DOUBLE_EQ(reduced[0], 2.0);
  EXPECT_DOUBLE_EQ(reduced[1], 6.0);
  EXPECT_DOUBLE_EQ(reduced[2], 10.0);
}

TEST(PaaTest, ReduceRaggedTail) {
  std::vector<double> v = {2.0, 4.0, 6.0, 8.0, 10.0};
  const auto reduced = PaaReduce(S(v), 2);
  ASSERT_EQ(reduced.size(), 3u);
  EXPECT_DOUBLE_EQ(reduced[2], 10.0);  // Lone tail frame.
}

TEST(PaaTest, FrameOneIsIdentity) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  const auto reduced = PaaReduce(S(v), 1);
  EXPECT_EQ(reduced, v);
}

TEST(PaaTest, FrameLargerThanInputGivesSinglePoint) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  const auto reduced = PaaReduce(S(v), 10);
  ASSERT_EQ(reduced.size(), 1u);
  EXPECT_DOUBLE_EQ(reduced[0], 2.0);
}

TEST(PaaTest, PdtwIsDtwOnReductions) {
  Rng rng(3);
  std::vector<double> a(32), b(32);
  for (auto& x : a) x = rng.UniformDouble(0, 1);
  for (auto& x : b) x = rng.UniformDouble(0, 1);
  const auto ra = PaaReduce(S(a), 4);
  const auto rb = PaaReduce(S(b), 4);
  EXPECT_NEAR(PdtwDistance(S(a), S(b), 4), DtwDistance(S(ra), S(rb)), 1e-12);
}

TEST(PaaTest, SearchFindsPlausibleMatch) {
  Dataset d = TestDataset();
  LengthSpec lengths{8, 0, 8};
  PaaSearch search(&d, lengths, 4);
  const auto query_view = d[5].Subsequence(3, 16);
  std::vector<double> query(query_view.begin(), query_view.end());
  const SearchResult result = search.FindBestMatch(S(query));
  ASSERT_TRUE(result.found());
  // PAA is approximate, but an exact copy reduces to an exact copy, so
  // reduced-space distance 0 must be found.
  EXPECT_NEAR(result.distance, 0.0, 1e-12);
}

TEST(PaaTest, ExactLengthVariant) {
  Dataset d = TestDataset(6, 24, 9);
  LengthSpec lengths{6, 0, 6};
  PaaSearch search(&d, lengths, 3);
  Rng rng(5);
  std::vector<double> query(12);
  for (auto& x : query) x = rng.UniformDouble(0, 1);
  const SearchResult result = search.FindBestMatchOfLength(S(query), 12);
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.match.length, 12u);
}

// ------------------------------------------------------------- Trillion.

// Plain brute-force z-normalized same-length scan: the reference that
// the pruned UCR-suite implementation must match exactly.
SearchResult BruteForceZNorm(const Dataset& d, std::span<const double> query,
                             double window_ratio) {
  SearchResult best;
  const size_t m = query.size();
  const auto zq = ZNormalized(query);
  const DtwOptions options = DtwOptions::FromRatio(window_ratio, m, m);
  double best_raw = std::numeric_limits<double>::infinity();
  for (uint32_t p = 0; p < d.size(); ++p) {
    if (d[p].length() < m) continue;
    for (uint32_t j = 0; j + m <= d[p].length(); ++j) {
      const auto zc = ZNormalized(d[p].Subsequence(j, m));
      const double dist = DtwDistance(S(zq), S(zc), options);
      if (dist < best_raw) {
        best_raw = dist;
        best.match = {p, j, static_cast<uint32_t>(m)};
      }
    }
  }
  if (best_raw != std::numeric_limits<double>::infinity()) {
    best.distance = best_raw / (2.0 * static_cast<double>(m));
  }
  return best;
}

TEST(TrillionTest, MatchesBruteForceZNormScan) {
  Dataset d = TestDataset(10, 36, 17);
  TrillionSearch trillion(&d, 0.1);
  Rng rng(23);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> query(16);
    for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
    const SearchResult got = trillion.FindBestMatch(S(query));
    const SearchResult want = BruteForceZNorm(d, S(query), 0.1);
    ASSERT_TRUE(got.found());
    EXPECT_NEAR(got.distance, want.distance, 1e-9) << "trial " << trial;
    EXPECT_EQ(got.match.series, want.match.series);
    EXPECT_EQ(got.match.start, want.match.start);
  }
}

TEST(TrillionTest, FindsInDatasetQueryNearZero) {
  Dataset d = TestDataset(8, 48, 29);
  TrillionSearch trillion(&d, 0.05);
  const auto query_view = d[4].Subsequence(10, 20);
  std::vector<double> query(query_view.begin(), query_view.end());
  const SearchResult result = trillion.FindBestMatch(S(query));
  ASSERT_TRUE(result.found());
  EXPECT_NEAR(result.distance, 0.0, 1e-9);
  EXPECT_EQ(result.match.series, 4u);
  EXPECT_EQ(result.match.start, 10u);
}

TEST(TrillionTest, OnlySameLengthMatches) {
  Dataset d = TestDataset();
  TrillionSearch trillion(&d);
  std::vector<double> query(14, 0.5);
  query[3] = 0.9;
  query[9] = 0.1;
  query[11] = 0.8;
  const SearchResult result = trillion.FindBestMatch(S(query));
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.match.length, 14u);
}

TEST(TrillionTest, PruningCountersAccount) {
  Dataset d = TestDataset(10, 40, 31);
  TrillionSearch trillion(&d, 0.05);
  std::vector<double> query(20);
  Rng rng(37);
  for (auto& x : query) x = rng.UniformDouble(0.0, 1.0);
  trillion.FindBestMatch(S(query));
  const TrillionStats& stats = trillion.stats();
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_EQ(stats.candidates,
            stats.pruned_kim + stats.pruned_keogh_query +
                stats.pruned_keogh_data + stats.dtw_abandoned +
                stats.dtw_completed);
  EXPECT_FALSE(stats.ToString().empty());
  trillion.ResetStats();
  EXPECT_EQ(trillion.stats().candidates, 0u);
}

TEST(TrillionTest, TooShortQueryNotFound) {
  Dataset d = TestDataset();
  TrillionSearch trillion(&d);
  std::vector<double> query = {0.1, 0.9};
  EXPECT_FALSE(trillion.FindBestMatch(S(query)).found());
}

TEST(TrillionTest, SkipsSeriesShorterThanQuery) {
  Dataset d("mixed");
  d.Add(TimeSeries({0.1, 0.2, 0.3}, 1));  // Too short.
  d.Add(TimeSeries({0.5, 0.1, 0.9, 0.2, 0.7, 0.3, 0.8, 0.4}, 1));
  TrillionSearch trillion(&d, 0.2);
  std::vector<double> query = {0.5, 0.2, 0.8, 0.1, 0.7};
  const SearchResult result = trillion.FindBestMatch(S(query));
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.match.series, 1u);
}

}  // namespace
}  // namespace onex

// Tests for the varying-ST refiner (paper Sec. 5.2, Algorithm 2.C):
// identity at ST' = ST, splits for smaller thresholds, Dc-guided
// cascading merges for larger ones, and member conservation throughout.

#include <gtest/gtest.h>

#include <set>

#include "core/onex_base.h"
#include "core/query_processor.h"
#include "core/threshold_refiner.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"

namespace onex {
namespace {

Dataset TestDataset(size_t n = 10, uint64_t seed = 42) {
  GenOptions options;
  options.num_series = n;
  options.length = 24;
  options.seed = seed;
  Dataset d = MakeItalyPower(options);
  MinMaxNormalize(&d);
  return d;
}

OnexBase BuildBase(double st = 0.2) {
  OnexOptions options;
  options.st = st;
  options.lengths = {8, 16, 8};
  auto result = OnexBase::Build(TestDataset(), options);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

uint64_t KeyOf(const SubsequenceRef& ref) {
  return (static_cast<uint64_t>(ref.series) << 40) |
         (static_cast<uint64_t>(ref.start) << 16) | ref.length;
}

std::multiset<uint64_t> MemberKeys(const GtiEntry& entry) {
  std::multiset<uint64_t> keys;
  for (const auto& group : entry.groups) {
    for (const auto& member : group.members) keys.insert(KeyOf(member.ref));
  }
  return keys;
}

TEST(ThresholdRefinerTest, SameThresholdReturnsIdenticalStructure) {
  OnexBase base = BuildBase(0.2);
  ThresholdRefiner refiner(&base);
  auto refined = refiner.RefineLength(8, 0.2);
  ASSERT_TRUE(refined.ok());
  const GtiEntry* original = base.EntryFor(8);
  EXPECT_EQ(refined.value().NumGroups(), original->NumGroups());
  EXPECT_EQ(MemberKeys(refined.value()), MemberKeys(*original));
}

TEST(ThresholdRefinerTest, SplitPreservesMembersAndAddsGroups) {
  OnexBase base = BuildBase(0.3);
  ThresholdRefiner refiner(&base);
  const GtiEntry* original = base.EntryFor(8);
  auto refined = refiner.RefineLength(8, 0.1);
  ASSERT_TRUE(refined.ok());
  EXPECT_GE(refined.value().NumGroups(), original->NumGroups());
  EXPECT_EQ(MemberKeys(refined.value()), MemberKeys(*original));
}

TEST(ThresholdRefinerTest, SplitGroupsAreSubsetsOfOriginals) {
  OnexBase base = BuildBase(0.3);
  ThresholdRefiner refiner(&base);
  const GtiEntry* original = base.EntryFor(8);
  auto refined = refiner.RefineLength(8, 0.1);
  ASSERT_TRUE(refined.ok());
  // Build member -> original group map.
  std::map<uint64_t, size_t> origin;
  for (size_t k = 0; k < original->groups.size(); ++k) {
    for (const auto& member : original->groups[k].members) {
      origin[KeyOf(member.ref)] = k;
    }
  }
  // Each refined group must draw all members from one original group
  // (splitting never mixes groups).
  for (const auto& group : refined.value().groups) {
    ASSERT_FALSE(group.members.empty());
    const size_t expected = origin.at(KeyOf(group.members[0].ref));
    for (const auto& member : group.members) {
      EXPECT_EQ(origin.at(KeyOf(member.ref)), expected);
    }
  }
}

TEST(ThresholdRefinerTest, MergePreservesMembersAndRemovesGroups) {
  OnexBase base = BuildBase(0.1);
  ThresholdRefiner refiner(&base);
  const GtiEntry* original = base.EntryFor(8);
  auto refined = refiner.RefineLength(8, 0.3);
  ASSERT_TRUE(refined.ok());
  EXPECT_LE(refined.value().NumGroups(), original->NumGroups());
  EXPECT_EQ(MemberKeys(refined.value()), MemberKeys(*original));
}

TEST(ThresholdRefinerTest, HugeThresholdMergesToOneGroup) {
  OnexBase base = BuildBase(0.1);
  ThresholdRefiner refiner(&base);
  // Normalized ED between representatives is <= 1 on [0,1] data, so a
  // merge budget > 1 collapses everything.
  auto refined = refiner.RefineLength(8, 2.0);
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined.value().NumGroups(), 1u);
}

TEST(ThresholdRefinerTest, MergedGroupsRespectDcCondition) {
  OnexBase base = BuildBase(0.1);
  ThresholdRefiner refiner(&base);
  const double st_prime = 0.25;
  auto refined = refiner.RefineLength(8, st_prime);
  ASSERT_TRUE(refined.ok());
  // After the cascade completes, no surviving pair may still satisfy the
  // merge condition Dc <= ST' - ST.
  const GtiEntry& entry = refined.value();
  const double budget = st_prime - base.options().st;
  for (size_t k = 0; k < entry.NumGroups(); ++k) {
    for (size_t l = k + 1; l < entry.NumGroups(); ++l) {
      EXPECT_GT(entry.Dc(k, l), budget);
    }
  }
}

TEST(ThresholdRefinerTest, RefineAllCoversEveryLength) {
  OnexBase base = BuildBase(0.2);
  ThresholdRefiner refiner(&base);
  auto refined = refiner.RefineAll(0.4);
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(refined.value().Lengths(), base.gti().Lengths());
}

TEST(ThresholdRefinerTest, Validation) {
  OnexBase base = BuildBase(0.2);
  ThresholdRefiner refiner(&base);
  EXPECT_FALSE(refiner.RefineLength(8, -0.1).ok());
  EXPECT_FALSE(refiner.RefineLength(999, 0.3).ok());
  EXPECT_FALSE(refiner.RefineAll(0.0).ok());
}

TEST(ThresholdRefinerTest, RefinedBaseAnswersQueries) {
  // The ST' view must be a drop-in OnexBase: queries under the new
  // threshold run against the refined groups.
  OnexBase base = BuildBase(0.15);
  ThresholdRefiner refiner(&base);
  auto refined = refiner.RefinedBase(0.3);
  ASSERT_TRUE(refined.ok()) << refined.status().ToString();
  OnexBase view = std::move(refined).value();
  EXPECT_DOUBLE_EQ(view.options().st, 0.3);
  EXPECT_EQ(view.gti().Lengths(), base.gti().Lengths());
  EXPECT_LE(view.stats().num_representatives,
            base.stats().num_representatives);
  EXPECT_EQ(view.stats().num_subsequences,
            base.stats().num_subsequences);

  QueryProcessor processor(&view);
  const auto fragment = view.dataset()[1].Subsequence(2, 8);
  std::vector<double> query(fragment.begin(), fragment.end());
  auto match = processor.FindBestMatchOfLength(
      std::span<const double>(query.data(), query.size()), 8);
  ASSERT_TRUE(match.ok());
  EXPECT_LE(match.value().distance, 0.05);
}

TEST(ThresholdRefinerTest, RefinedBaseValidation) {
  OnexBase base = BuildBase(0.2);
  ThresholdRefiner refiner(&base);
  EXPECT_FALSE(refiner.RefinedBase(0.0).ok());
}

TEST(ThresholdRefinerTest, RefinedEntryIsSearchable) {
  // The refined GtiEntry must be structurally complete: sorted members,
  // Dc matrix, sum-sorted array — i.e., a drop-in for query processing.
  OnexBase base = BuildBase(0.2);
  ThresholdRefiner refiner(&base);
  auto refined = refiner.RefineLength(8, 0.35);
  ASSERT_TRUE(refined.ok());
  const GtiEntry& entry = refined.value();
  EXPECT_EQ(entry.length, 8u);
  EXPECT_EQ(entry.sum_sorted.size(), entry.NumGroups());
  EXPECT_EQ(entry.dc.size(), entry.NumGroups() * entry.NumGroups());
  for (const auto& group : entry.groups) {
    EXPECT_EQ(group.envelope.size(), 8u);
    for (size_t i = 1; i < group.members.size(); ++i) {
      EXPECT_LE(group.members[i - 1].ed_to_rep, group.members[i].ed_to_rep);
    }
  }
}

}  // namespace
}  // namespace onex

// Sanity tests for the process gauges (src/util/process_stats.h): the
// /proc-backed fields must be live numbers on Linux (CI) and never
// crash anywhere, CPU time must be monotone across a busy loop, and
// uptime must advance with the wall.

#include "util/process_stats.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

namespace onex {
namespace {

TEST(ProcessStatsTest, SampleReportsLiveValues) {
  const ProcessStats stats = SampleProcessStats();
  EXPECT_GE(stats.uptime_seconds, 0.0);
  EXPECT_GE(stats.cpu_user_seconds, 0.0);
  EXPECT_GE(stats.cpu_sys_seconds, 0.0);
#ifdef __linux__
  // A running test binary certainly has memory, fds, and a thread.
  EXPECT_GT(stats.rss_bytes, 0u);
  EXPECT_GT(stats.open_fds, 0);
  EXPECT_GE(stats.threads, 1);
#endif
}

TEST(ProcessStatsTest, UptimeAndCpuAdvance) {
  const ProcessStats before = SampleProcessStats();
  // Burn a little CPU (the optimizer must not delete the loop).
  volatile double sink = 0.0;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 1; i < 1000; ++i) sink = sink + 1.0 / i;
  }
  const ProcessStats after = SampleProcessStats();
  EXPECT_GT(after.uptime_seconds, before.uptime_seconds);
  EXPECT_GE(after.cpu_user_seconds, before.cpu_user_seconds);
  EXPECT_GE(after.cpu_user_seconds + after.cpu_sys_seconds, 0.0);
}

TEST(ProcessStatsTest, OpenFdCountTracksNewDescriptors) {
#ifdef __linux__
  const ProcessStats before = SampleProcessStats();
  std::vector<FILE*> files;
  for (int i = 0; i < 8; ++i) {
    FILE* f = std::fopen("/dev/null", "r");
    ASSERT_NE(f, nullptr);
    files.push_back(f);
  }
  const ProcessStats during = SampleProcessStats();
  EXPECT_GE(during.open_fds, before.open_fds + 8);
  for (FILE* f : files) std::fclose(f);
  const ProcessStats after = SampleProcessStats();
  EXPECT_LT(after.open_fds, during.open_fds);
#endif
}

}  // namespace
}  // namespace onex

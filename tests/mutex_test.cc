// Copyright 2026 The ONEX Reproduction Authors.
// Tests for the annotated mutex wrappers (util/mutex.h): scoped guards,
// CondVar wait loops, and — when lock-order checking is compiled in
// (sanitizer builds; -DONEX_LOCK_ORDER_CHECKS=1) — the runtime rank
// hierarchy: acquiring out of rank order or recursively must abort
// with a diagnostic naming both locks.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace onex {
namespace {

TEST(MutexTest, GuardsExcludeEachOther) {
  Mutex mu(LockRank::kLeaf, "test.counter");
  int value = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mu);
        ++value;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(value, 4000);
}

TEST(MutexTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu(LockRank::kLeaf, "test.shared");
  int value = 41;
  {
    WriterMutexLock lock(mu);
    ++value;
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(mu);
      EXPECT_EQ(value, 42);
    });
  }
  for (std::thread& reader : readers) reader.join();
}

TEST(MutexTest, CondVarWaitLoopSeesNotifiedPredicate) {
  Mutex mu(LockRank::kLeaf, "test.cv");
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  notifier.join();
  // The wait's unlock/relock must leave the rank bookkeeping intact:
  // a nested acquisition after the wait still works.
  Mutex inner(LockRank::kLeaf, "test.cv.other");
  MutexLock outer(mu);
  (void)inner;
}

TEST(MutexTest, AscendingRanksNest) {
  Mutex outer(LockRank::kCatalog, "test.outer");
  SharedMutex mid(LockRank::kEngine, "test.mid");
  Mutex inner(LockRank::kMetrics, "test.inner");
  MutexLock a(outer);
  ReaderMutexLock b(mid);
  MutexLock c(inner);
  mid.AssertReaderHeld();
  outer.AssertHeld();
}

#if ONEX_LOCK_ORDER_CHECKS

using MutexDeathTest = ::testing::Test;

TEST(MutexDeathTest, RankInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex engine(LockRank::kEngine, "death.engine");
        Mutex catalog(LockRank::kCatalog, "death.catalog");
        MutexLock a(engine);
        MutexLock b(catalog);  // kCatalog < kEngine: inversion.
      },
      "lock-order violation");
}

TEST(MutexDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kLeaf, "death.recursive");
        mu.Lock();
        mu.Lock();
      },
      "recursive acquisition");
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kLeaf, "death.unheld");
        mu.AssertHeld();
      },
      "not held");
}

TEST(MutexTest, SameRankConflictsAcrossDistinctMutexes) {
  // Two kLeaf mutexes may not nest — same rank is not "strictly
  // greater". Documented consequence: give nested locks real ranks.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex first(LockRank::kLeaf, "death.first");
        Mutex second(LockRank::kLeaf, "death.second");
        MutexLock a(first);
        MutexLock b(second);
      },
      "lock-order violation");
}

#endif  // ONEX_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace onex

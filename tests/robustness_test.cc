// Robustness / failure-injection tests: degenerate datasets (constant,
// single-series, minimum-length), extreme option values, and adversarial
// queries must never crash and must degrade predictably.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/trillion.h"
#include "core/onex_base.h"
#include "core/query_processor.h"
#include "core/threshold_refiner.h"
#include "dataset/normalize.h"
#include "distance/dtw.h"
#include "util/rng.h"
#include "util/sparkline.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

TEST(RobustnessTest, ConstantDatasetCollapsesToOneGroupPerLength) {
  // All-identical, zero-variance data: min-max maps to 0, every
  // subsequence of a length is identical -> exactly one group.
  Dataset d("const");
  for (int i = 0; i < 5; ++i) {
    d.Add(TimeSeries(std::vector<double>(16, 3.0), 1));
  }
  MinMaxNormalize(&d);
  OnexOptions options;
  options.lengths = {4, 16, 4};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  for (size_t length : built.value().gti().Lengths()) {
    EXPECT_EQ(built.value().EntryFor(length)->NumGroups(), 1u)
        << "length " << length;
  }
  // Querying constants returns distance 0.
  QueryProcessor processor(&built.value());
  std::vector<double> query(8, 0.0);
  auto match = processor.FindBestMatch(S(query));
  ASSERT_TRUE(match.ok());
  EXPECT_DOUBLE_EQ(match.value().distance, 0.0);
}

TEST(RobustnessTest, SingleSeriesDataset) {
  Dataset d("single");
  Rng rng(1);
  std::vector<double> values(32);
  for (auto& x : values) x = rng.UniformDouble(0.0, 1.0);
  d.Add(TimeSeries(values, 1));
  OnexOptions options;
  options.lengths = {8, 32, 8};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  QueryProcessor processor(&built.value());
  std::vector<double> query(values.begin(), values.begin() + 16);
  auto match = processor.FindBestMatchOfLength(S(query), 16);
  ASSERT_TRUE(match.ok());
  EXPECT_LE(match.value().distance, 1e-9);
}

TEST(RobustnessTest, MinimumLengthSeries) {
  // Length-2 series: the smallest the system accepts.
  Dataset d("tiny");
  d.Add(TimeSeries({0.0, 1.0}, 1));
  d.Add(TimeSeries({1.0, 0.0}, 2));
  OnexOptions options;
  options.lengths = {2, 2, 1};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  QueryProcessor processor(&built.value());
  std::vector<double> query = {0.1, 0.9};
  auto match = processor.FindBestMatchOfLength(S(query), 2);
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(std::isfinite(match.value().distance));
}

TEST(RobustnessTest, QueryLongerThanEverySeries) {
  Dataset d("short");
  Rng rng(2);
  for (int i = 0; i < 4; ++i) {
    std::vector<double> v(16);
    for (auto& x : v) x = rng.UniformDouble(0.0, 1.0);
    d.Add(TimeSeries(v, 1));
  }
  OnexOptions options;
  options.lengths = {4, 16, 4};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  QueryProcessor processor(&built.value());
  std::vector<double> long_query(64, 0.5);
  // Cross-length DTW handles the length mismatch; a finite answer must
  // come back.
  auto match = processor.FindBestMatch(S(long_query));
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(std::isfinite(match.value().distance));
}

TEST(RobustnessTest, ExtremeThresholds) {
  Dataset d("extreme");
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    std::vector<double> v(16);
    for (auto& x : v) x = rng.UniformDouble(0.0, 1.0);
    d.Add(TimeSeries(v, 1));
  }
  // Microscopic ST: every subsequence becomes its own group.
  OnexOptions tiny;
  tiny.st = 1e-9;
  tiny.lengths = {8, 16, 8};
  auto tiny_base = OnexBase::Build(d, tiny);
  ASSERT_TRUE(tiny_base.ok());
  EXPECT_EQ(tiny_base.value().stats().num_representatives,
            tiny_base.value().stats().num_subsequences);
  // Gigantic ST: one group per length.
  OnexOptions huge;
  huge.st = 100.0;
  huge.lengths = {8, 16, 8};
  auto huge_base = OnexBase::Build(d, huge);
  ASSERT_TRUE(huge_base.ok());
  EXPECT_EQ(huge_base.value().stats().num_representatives, 2u);
}

TEST(RobustnessTest, UnconstrainedWindowOption) {
  Dataset d("unconstrained");
  Rng rng(4);
  for (int i = 0; i < 4; ++i) {
    std::vector<double> v(16);
    for (auto& x : v) x = rng.UniformDouble(0.0, 1.0);
    d.Add(TimeSeries(v, 1));
  }
  OnexOptions options;
  options.window_ratio = -1.0;  // No band anywhere.
  options.lengths = {8, 16, 8};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  QueryProcessor processor(&built.value());
  std::vector<double> query(12, 0.3);
  auto match = processor.FindBestMatch(S(query));
  ASSERT_TRUE(match.ok());
}

TEST(RobustnessTest, RefinerOnDegenerateBase) {
  Dataset d("refine-degenerate");
  d.Add(TimeSeries(std::vector<double>(8, 0.5), 1));
  OnexOptions options;
  options.lengths = {4, 8, 4};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  ThresholdRefiner refiner(&built.value());
  // Single group per length: splits and merges must both be no-ops that
  // preserve the member count.
  for (double st_prime : {0.01, 0.2, 0.9}) {
    auto refined = refiner.RefineLength(4, st_prime);
    ASSERT_TRUE(refined.ok()) << st_prime;
    size_t members = 0;
    for (const auto& g : refined.value().groups) members += g.size();
    EXPECT_EQ(members, 5u);  // 8 - 4 + 1.
  }
}

TEST(RobustnessTest, TrillionOnConstantData) {
  // Zero-variance windows make z-normalization degenerate; the searcher
  // must neither crash nor divide by zero.
  Dataset d("flat");
  d.Add(TimeSeries(std::vector<double>(32, 1.0), 1));
  d.Add(TimeSeries(std::vector<double>(32, 1.0), 1));
  TrillionSearch trillion(&d, 0.1);
  std::vector<double> query(8, 1.0);
  const SearchResult result = trillion.FindBestMatch(S(query));
  EXPECT_TRUE(result.found());
  EXPECT_TRUE(std::isfinite(result.distance));
}

TEST(RobustnessTest, SparklineEdgeCases) {
  std::vector<double> empty;
  EXPECT_EQ(Sparkline(S(empty)), "");
  std::vector<double> constant(10, 2.0);
  const std::string flat = Sparkline(S(constant));
  EXPECT_FALSE(flat.empty());
  std::vector<double> ramp = {0.0, 0.5, 1.0};
  const std::string r = Sparkline(S(ramp));
  EXPECT_FALSE(r.empty());
  // Width resampling produces the requested number of glyphs (each
  // block is 3 UTF-8 bytes).
  std::vector<double> many(100);
  for (size_t i = 0; i < many.size(); ++i) {
    many[i] = std::sin(0.2 * static_cast<double>(i));
  }
  EXPECT_EQ(Sparkline(S(many), 20).size(), 20u * 3u);
  EXPECT_NE(SparklineLabeled(S(many), 20).find('\n'), std::string::npos);
}

TEST(RobustnessTest, AppendToDegenerateBaseThenQuery) {
  Dataset d("grow");
  d.Add(TimeSeries(std::vector<double>(16, 0.2), 1));
  OnexOptions options;
  options.lengths = {8, 16, 8};
  auto built = OnexBase::Build(std::move(d), options);
  ASSERT_TRUE(built.ok());
  OnexBase base = std::move(built).value();
  Rng rng(5);
  for (int i = 0; i < 3; ++i) {
    std::vector<double> v(16);
    for (auto& x : v) x = rng.UniformDouble(0.0, 1.0);
    ASSERT_TRUE(base.AppendSeries(TimeSeries(v, 2)).ok());
  }
  QueryProcessor processor(&base);
  std::vector<double> query(8, 0.2);
  auto match = processor.FindBestMatch(S(query));
  ASSERT_TRUE(match.ok());
  EXPECT_LE(match.value().distance, 1e-9);
}

}  // namespace
}  // namespace onex

// Tests for the Euclidean distance kernels (paper Defs. 2 and 5).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "distance/euclidean.h"
#include "util/rng.h"

namespace onex {
namespace {

std::vector<double> RandomVector(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->UniformDouble(0.0, 1.0);
  return v;
}

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

TEST(EuclideanTest, KnownValue) {
  std::vector<double> a = {0.0, 0.0}, b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(S(a), S(b)), 25.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance(S(a), S(b)), 5.0);
}

TEST(EuclideanTest, IdentityOfIndiscernibles) {
  Rng rng(1);
  const auto a = RandomVector(50, &rng);
  EXPECT_DOUBLE_EQ(EuclideanDistance(S(a), S(a)), 0.0);
}

TEST(EuclideanTest, Symmetry) {
  Rng rng(2);
  const auto a = RandomVector(33, &rng);
  const auto b = RandomVector(33, &rng);
  EXPECT_DOUBLE_EQ(EuclideanDistance(S(a), S(b)),
                   EuclideanDistance(S(b), S(a)));
}

TEST(EuclideanTest, TriangleInequality) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = RandomVector(20, &rng);
    const auto b = RandomVector(20, &rng);
    const auto c = RandomVector(20, &rng);
    EXPECT_LE(EuclideanDistance(S(a), S(c)),
              EuclideanDistance(S(a), S(b)) +
                  EuclideanDistance(S(b), S(c)) + 1e-12);
  }
}

TEST(EuclideanTest, NormalizedDividesBySqrtN) {
  std::vector<double> a = {0.0, 0.0, 0.0, 0.0};
  std::vector<double> b = {1.0, 1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(S(a), S(b)), 2.0);
  EXPECT_DOUBLE_EQ(NormalizedEuclidean(S(a), S(b)), 1.0);
}

TEST(EuclideanTest, NormalizedIsScaleInvariantInLength) {
  // Constant offset d at every point: normalized ED is d for any length.
  for (size_t n : {4u, 16u, 256u}) {
    std::vector<double> a(n, 0.2), b(n, 0.7);
    EXPECT_NEAR(NormalizedEuclidean(S(a), S(b)), 0.5, 1e-12);
  }
}

TEST(EuclideanEarlyAbandonTest, ExactWhenUnderThreshold) {
  Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = RandomVector(64, &rng);
    const auto b = RandomVector(64, &rng);
    const double exact = EuclideanDistance(S(a), S(b));
    const double ea = EuclideanEarlyAbandon(S(a), S(b), exact + 0.1);
    EXPECT_NEAR(ea, exact, 1e-12);
  }
}

TEST(EuclideanEarlyAbandonTest, InfWhenOverThreshold) {
  Rng rng(5);
  const auto a = RandomVector(64, &rng);
  auto b = RandomVector(64, &rng);
  for (auto& x : b) x += 10.0;  // Force a large distance.
  const double d = EuclideanEarlyAbandon(S(a), S(b), 1.0);
  EXPECT_TRUE(std::isinf(d));
}

TEST(EuclideanEarlyAbandonTest, SquaredVariantThresholdSemantics) {
  std::vector<double> a = {0.0, 0.0}, b = {1.0, 1.0};  // Squared ED = 2.
  EXPECT_DOUBLE_EQ(SquaredEuclideanEarlyAbandon(S(a), S(b), 2.0), 2.0);
  EXPECT_TRUE(std::isinf(SquaredEuclideanEarlyAbandon(S(a), S(b), 1.9)));
}

TEST(EuclideanTest, EmptyInputsAreZero) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(SquaredEuclidean(S(empty), S(empty)), 0.0);
}

}  // namespace
}  // namespace onex

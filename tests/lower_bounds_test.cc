// Admissibility and tightness tests for the envelope and the LB_Kim /
// LB_Keogh lower bounds — the machinery behind the paper's Sec. 5.3
// pruning cascade. The central property: no bound may ever exceed the
// true (banded) DTW, or pruning would drop true best matches.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>
#include <vector>

#include "distance/dtw.h"
#include "distance/envelope.h"
#include "distance/lb_keogh.h"
#include "distance/lb_kim.h"
#include "util/rng.h"

namespace onex {
namespace {

std::span<const double> S(const std::vector<double>& v) {
  return std::span<const double>(v.data(), v.size());
}

std::vector<double> RandomVector(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->UniformDouble(0.0, 1.0);
  return v;
}

// ---------------------------------------------------------------- Envelope.

TEST(EnvelopeTest, MatchesBruteForceMinMax) {
  Rng rng(1);
  const auto v = RandomVector(100, &rng);
  for (size_t window : {0u, 1u, 5u, 20u, 100u}) {
    const Envelope env = ComputeEnvelope(S(v), window);
    ASSERT_EQ(env.size(), v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      const size_t lo = i >= window ? i - window : 0;
      const size_t hi = std::min(v.size() - 1, i + window);
      double mn = v[lo], mx = v[lo];
      for (size_t k = lo; k <= hi; ++k) {
        mn = std::min(mn, v[k]);
        mx = std::max(mx, v[k]);
      }
      EXPECT_DOUBLE_EQ(env.lower[i], mn) << "window " << window << " i " << i;
      EXPECT_DOUBLE_EQ(env.upper[i], mx) << "window " << window << " i " << i;
    }
  }
}

TEST(EnvelopeTest, ContainsTheSeries) {
  Rng rng(2);
  const auto v = RandomVector(64, &rng);
  const Envelope env = ComputeEnvelope(S(v), 7);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(env.lower[i], v[i]);
    EXPECT_GE(env.upper[i], v[i]);
  }
}

TEST(EnvelopeTest, WindowZeroIsTheSeriesItself) {
  Rng rng(3);
  const auto v = RandomVector(32, &rng);
  const Envelope env = ComputeEnvelope(S(v), 0);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(env.lower[i], v[i]);
    EXPECT_DOUBLE_EQ(env.upper[i], v[i]);
  }
}

TEST(EnvelopeTest, EmptySeries) {
  const Envelope env = ComputeEnvelope({}, 5);
  EXPECT_TRUE(env.empty());
  EXPECT_EQ(env.MemoryBytes(), 0u);
}

TEST(EnvelopeTest, WiderWindowWidensEnvelope) {
  Rng rng(4);
  const auto v = RandomVector(64, &rng);
  const Envelope narrow = ComputeEnvelope(S(v), 2);
  const Envelope wide = ComputeEnvelope(S(v), 10);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(wide.lower[i], narrow.lower[i]);
    EXPECT_GE(wide.upper[i], narrow.upper[i]);
  }
}

// ------------------------------------------------- Admissibility sweeps.

class LowerBoundSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(LowerBoundSweep, LbKimNeverExceedsDtw) {
  const auto [n, m, seed] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomVector(n, &rng);
    const auto b = RandomVector(m, &rng);
    const double dtw = DtwDistance(S(a), S(b));
    EXPECT_LE(LbKim(S(a), S(b)), dtw + 1e-9);
  }
}

TEST_P(LowerBoundSweep, LbKimFlNeverExceedsDtw) {
  const auto [n, m, seed] = GetParam();
  if (n < 3 || m < 3) return;
  Rng rng(seed + 100);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = RandomVector(n, &rng);
    const auto b = RandomVector(m, &rng);
    const double dtw = DtwDistance(S(a), S(b));
    EXPECT_LE(LbKimFl(S(a), S(b)), dtw + 1e-9);
  }
}

TEST_P(LowerBoundSweep, LbKeoghNeverExceedsBandedDtw) {
  const auto [n, m, seed] = GetParam();
  if (n != m) return;  // LB_Keogh requires equal lengths.
  Rng rng(seed + 200);
  for (size_t window : {1u, 3u, 8u}) {
    const auto a = RandomVector(n, &rng);
    const auto b = RandomVector(n, &rng);
    const Envelope env_b = ComputeEnvelope(S(b), window);
    const double lb = LbKeogh(S(a), env_b);
    DtwOptions options{static_cast<int>(window)};
    const double dtw = DtwDistance(S(a), S(b), options);
    EXPECT_LE(lb, dtw + 1e-9) << "window " << window;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LowerBoundSweep,
    ::testing::Values(std::make_tuple(8, 8, 1), std::make_tuple(32, 32, 2),
                      std::make_tuple(64, 64, 3), std::make_tuple(16, 24, 4),
                      std::make_tuple(24, 16, 5), std::make_tuple(4, 4, 6),
                      std::make_tuple(128, 128, 7),
                      std::make_tuple(5, 50, 8)));

// ------------------------------------------------------ LB_Keogh details.

TEST(LbKeoghTest, ZeroWhenQueryInsideEnvelope) {
  Rng rng(10);
  const auto b = RandomVector(32, &rng);
  const Envelope env = ComputeEnvelope(S(b), 3);
  // The candidate itself lies inside its own envelope.
  EXPECT_DOUBLE_EQ(LbKeogh(S(b), env), 0.0);
}

TEST(LbKeoghTest, EarlyAbandonMatchesExact) {
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = RandomVector(48, &rng);
    const auto b = RandomVector(48, &rng);
    const Envelope env = ComputeEnvelope(S(b), 4);
    const double exact = LbKeogh(S(a), env);
    EXPECT_NEAR(LbKeoghEarlyAbandon(S(a), env, exact + 1e-6), exact, 1e-9);
    if (exact > 0.01) {
      EXPECT_TRUE(
          std::isinf(LbKeoghEarlyAbandon(S(a), env, exact * 0.5)));
    }
  }
}

TEST(LbKeoghTest, ContributionsSumToSquaredBound) {
  Rng rng(12);
  const auto a = RandomVector(40, &rng);
  const auto b = RandomVector(40, &rng);
  const Envelope env = ComputeEnvelope(S(b), 5);
  std::vector<double> contributions;
  const double lb = LbKeoghWithContributions(S(a), env, &contributions);
  ASSERT_EQ(contributions.size(), a.size());
  double sum = 0.0;
  for (double c : contributions) {
    EXPECT_GE(c, 0.0);
    sum += c;
  }
  EXPECT_NEAR(std::sqrt(sum), lb, 1e-9);
}

TEST(LbKeoghTest, CumulativeBoundIsReversedPrefixSum) {
  const std::vector<double> contributions = {1.0, 2.0, 3.0, 4.0};
  const auto cb = CumulativeBound(S(contributions));
  ASSERT_EQ(cb.size(), 5u);
  EXPECT_DOUBLE_EQ(cb[0], 10.0);
  EXPECT_DOUBLE_EQ(cb[1], 9.0);
  EXPECT_DOUBLE_EQ(cb[3], 4.0);
  EXPECT_DOUBLE_EQ(cb[4], 0.0);
}

TEST(LbKeoghTest, OrderedVariantMatchesUnordered) {
  Rng rng(13);
  const auto a = RandomVector(32, &rng);
  const auto b = RandomVector(32, &rng);
  const Envelope env = ComputeEnvelope(S(b), 3);
  std::vector<size_t> order(a.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = order.size() - 1 - i;
  const double exact = LbKeogh(S(a), env);
  EXPECT_NEAR(
      LbKeoghOrdered(S(a), env, std::span<const size_t>(order), exact + 1.0),
      exact, 1e-9);
}

// CB-pruned DTW must stay exact when fed admissible bounds.
TEST(LbKeoghTest, CbPrunedDtwIsExactWithRealContributions) {
  Rng rng(14);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = RandomVector(40, &rng);
    const auto b = RandomVector(40, &rng);
    const size_t window = 4;
    const Envelope env_b = ComputeEnvelope(S(b), window);
    std::vector<double> contributions;
    LbKeoghWithContributions(S(a), env_b, &contributions);
    const auto cb = CumulativeBound(S(contributions));
    DtwOptions options{static_cast<int>(window)};
    const double exact = DtwDistance(S(a), S(b), options);
    const double pruned = DtwEarlyAbandonCb(
        S(a), S(b), std::span<const double>(cb.data(), cb.size()),
        exact + 1e-6, options);
    EXPECT_NEAR(pruned, exact, 1e-9);
  }
}

// ----------------------------------------------------------- LB_Kim edge.

TEST(LbKimTest, ExactOnSinglePointSeries) {
  std::vector<double> a = {3.0}, b = {1.0};
  // Single elements: DTW = |3-1| = 2 and LB_Kim reaches it.
  EXPECT_DOUBLE_EQ(LbKim(S(a), S(b)), 2.0);
  EXPECT_DOUBLE_EQ(DtwDistance(S(a), S(b)), 2.0);
}

TEST(LbKimTest, UsesMinMaxFeatures) {
  // Identical endpoints but wildly different ranges: the min/max feature
  // must kick in.
  std::vector<double> a = {0.0, 10.0, 0.0};
  std::vector<double> b = {0.0, 0.1, 0.0};
  EXPECT_GE(LbKim(S(a), S(b)), 9.9 - 1e-9);
}

TEST(LbKimTest, ZeroForIdenticalSeries) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(LbKim(S(a), S(a)), 0.0);
}

}  // namespace
}  // namespace onex

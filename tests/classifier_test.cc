// Tests for the 1-NN classifier built on the ONEX base: label recovery
// on separable synthetic classes, agreement with the brute-force
// reference, and error paths.

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/onex_base.h"
#include "datagen/generators.h"
#include "dataset/normalize.h"

namespace onex {
namespace {

struct Split {
  Dataset train;
  Dataset test;
};

Split MakeSplit(size_t train_n, size_t test_n, size_t length) {
  GenOptions train_gen;
  train_gen.num_series = train_n;
  train_gen.length = length;
  train_gen.seed = 1;
  GenOptions test_gen = train_gen;
  test_gen.num_series = test_n;
  test_gen.seed = 2;
  Split split{MakeTwoPatterns(train_gen), MakeTwoPatterns(test_gen)};
  MinMaxNormalize(&split.train);
  MinMaxNormalize(&split.test);
  return split;
}

OnexBase BuildWholeSeriesBase(Dataset train, size_t length) {
  OnexOptions options;
  options.st = 0.25;
  options.lengths = {length, length, 1};
  auto built = OnexBase::Build(std::move(train), options);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

TEST(ClassifierTest, RecoversSeparableClasses) {
  Split split = MakeSplit(48, 24, 64);
  OnexBase base = BuildWholeSeriesBase(std::move(split.train), 64);
  NearestNeighborClassifier classifier(&base);
  auto accuracy = classifier.Evaluate(split.test);
  ASSERT_TRUE(accuracy.ok()) << accuracy.status().ToString();
  // TwoPatterns classes are separable by shape; 1-NN-DTW should score
  // far above the 25% random-guess floor.
  EXPECT_GT(accuracy.value(), 0.6);
}

TEST(ClassifierTest, BruteForceAtLeastAsAccurate) {
  Split split = MakeSplit(32, 16, 64);
  OnexBase base = BuildWholeSeriesBase(std::move(split.train), 64);
  NearestNeighborClassifier classifier(&base);
  auto onex_acc = classifier.Evaluate(split.test, false);
  auto brute_acc = classifier.Evaluate(split.test, true);
  ASSERT_TRUE(onex_acc.ok());
  ASSERT_TRUE(brute_acc.ok());
  // ONEX retrieval is approximate; it may tie but should be close.
  EXPECT_GE(onex_acc.value(), brute_acc.value() - 0.25);
}

TEST(ClassifierTest, ProvenanceIsConsistent) {
  Split split = MakeSplit(24, 4, 64);
  OnexBase base = BuildWholeSeriesBase(std::move(split.train), 64);
  NearestNeighborClassifier classifier(&base);
  for (size_t i = 0; i < split.test.size(); ++i) {
    auto result = classifier.Classify(split.test[i].View());
    ASSERT_TRUE(result.ok());
    const Classification& c = result.value();
    ASSERT_LT(c.neighbor, base.dataset().size());
    EXPECT_EQ(c.label, base.dataset()[c.neighbor].label());
    EXPECT_GE(c.distance, 0.0);
  }
}

TEST(ClassifierTest, TrainingSeriesClassifyAsThemselves) {
  Split split = MakeSplit(24, 1, 64);
  OnexBase base = BuildWholeSeriesBase(split.train, 64);
  NearestNeighborClassifier classifier(&base);
  // A training series queried back is its own nearest neighbor (or an
  // identical twin with the same label a warped hair away).
  for (size_t i = 0; i < 5; ++i) {
    auto result = classifier.Classify(split.train[i].View());
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result.value().distance, 0.02);
  }
}

TEST(ClassifierTest, ErrorPaths) {
  Split split = MakeSplit(12, 2, 64);
  OnexBase base = BuildWholeSeriesBase(std::move(split.train), 64);
  NearestNeighborClassifier classifier(&base);
  std::vector<double> empty;
  EXPECT_FALSE(classifier
                   .Classify(std::span<const double>(empty.data(), 0))
                   .ok());
  EXPECT_FALSE(classifier.Evaluate(Dataset("empty")).ok());
}

TEST(ClassifierTest, BruteForceMatchesItselfExactly) {
  Split split = MakeSplit(16, 1, 64);
  OnexBase base = BuildWholeSeriesBase(split.train, 64);
  NearestNeighborClassifier classifier(&base);
  auto result = classifier.ClassifyBruteForce(split.train[3].View());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().neighbor, 3u);
  EXPECT_NEAR(result.value().distance, 0.0, 1e-12);
}

}  // namespace
}  // namespace onex

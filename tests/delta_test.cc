// Tests for the onepass binary delta codec (storage/delta.h): lossless
// round-trips through in-place reconstruction across the update shapes
// checkpoints produce (append, mutate, shrink, rewrite), compression
// on append-shaped updates (the incremental-checkpoint case), header
// introspection, and seeded fuzz hardening — every truncation point
// and single-bit flip of a real delta must come back as Corruption,
// never a crash or a silently wrong reconstruction.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "storage/delta.h"
#include "util/rng.h"

namespace onex {
namespace storage {
namespace {

/// Deterministic pseudo-random bytes (seeded: failures reproduce).
std::string RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string out(n, '\0');
  for (auto& c : out) {
    c = static_cast<char>(rng.Uniform(256));
  }
  return out;
}

/// Encode, apply in place, and require byte-identity with `new_bytes`.
/// Returns the delta for further inspection.
std::string RoundTrip(const std::string& old_bytes,
                      const std::string& new_bytes) {
  const std::string delta = EncodeDelta(old_bytes, new_bytes);
  std::string buffer = old_bytes;
  const Status applied = ApplyDeltaInPlace(&buffer, delta);
  EXPECT_TRUE(applied.ok()) << applied.ToString();
  EXPECT_EQ(buffer, new_bytes);
  return delta;
}

TEST(DeltaTest, IdenticalBuffersEncodeTiny) {
  const std::string bytes = RandomBytes(64 * 1024, 1);
  const std::string delta = RoundTrip(bytes, bytes);
  // One COPY command + header: far below the input size.
  EXPECT_LT(delta.size(), 100u);
  auto info = InspectDelta(delta);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().copy_bytes, bytes.size());
  EXPECT_EQ(info.value().add_bytes, 0u);
}

TEST(DeltaTest, AppendShapedUpdateCompresses) {
  // The incremental-checkpoint shape: old content intact, new bytes at
  // the end. The delta must be ~the appended suffix, not the snapshot.
  const std::string old_bytes = RandomBytes(256 * 1024, 2);
  const std::string suffix = RandomBytes(4 * 1024, 3);
  const std::string new_bytes = old_bytes + suffix;
  const std::string delta = RoundTrip(old_bytes, new_bytes);
  EXPECT_LT(delta.size(), suffix.size() + 200);
}

TEST(DeltaTest, MidBufferInsertShiftsContentRight) {
  // Insert in the middle: everything after the insertion point shifts
  // right (src < target), exactly what decreasing-target in-place
  // application exists for. Both halves must come from COPYs.
  const std::string old_bytes = RandomBytes(128 * 1024, 4);
  const std::string inserted = RandomBytes(512, 5);
  const std::string new_bytes = old_bytes.substr(0, 40 * 1024) + inserted +
                                old_bytes.substr(40 * 1024);
  const std::string delta = RoundTrip(old_bytes, new_bytes);
  auto info = InspectDelta(delta);
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info.value().copy_bytes, old_bytes.size() - 1024);
  EXPECT_LT(delta.size(), 4 * 1024u);
}

TEST(DeltaTest, MutatedRegionCarriedAsAdd) {
  std::string old_bytes = RandomBytes(64 * 1024, 6);
  std::string new_bytes = old_bytes;
  for (size_t i = 10 * 1024; i < 11 * 1024; ++i) {
    new_bytes[i] = static_cast<char>(new_bytes[i] ^ 0x5a);
  }
  const std::string delta = RoundTrip(old_bytes, new_bytes);
  EXPECT_LT(delta.size(), 3 * 1024u);
}

TEST(DeltaTest, ShrinkingUpdateRoundTrips) {
  const std::string old_bytes = RandomBytes(96 * 1024, 7);
  const std::string new_bytes = old_bytes.substr(0, 32 * 1024);
  RoundTrip(old_bytes, new_bytes);
}

TEST(DeltaTest, TotalRewriteFallsBackToAdd) {
  const std::string old_bytes = RandomBytes(16 * 1024, 8);
  const std::string new_bytes = RandomBytes(16 * 1024, 9);
  const std::string delta = RoundTrip(old_bytes, new_bytes);
  auto info = InspectDelta(delta);
  ASSERT_TRUE(info.ok());
  // Unrelated random content: essentially everything ships literally.
  EXPECT_GT(info.value().add_bytes, new_bytes.size() / 2);
}

TEST(DeltaTest, EmptyOldAndEmptyNew) {
  RoundTrip("", RandomBytes(1000, 10));  // Bootstrap: no previous version.
  RoundTrip(RandomBytes(1000, 11), "");  // Collapse to empty.
  RoundTrip("", "");
}

TEST(DeltaTest, SmallBuffersBelowBlockSize) {
  RoundTrip("abc", "abcd");
  RoundTrip("abcd", "abc");
  RoundTrip("x", "y");
}

TEST(DeltaTest, InspectReportsSizes) {
  const std::string old_bytes = RandomBytes(10 * 1024, 12);
  const std::string new_bytes = old_bytes + RandomBytes(100, 13);
  auto info = InspectDelta(EncodeDelta(old_bytes, new_bytes));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info.value().old_size, old_bytes.size());
  EXPECT_EQ(info.value().new_size, new_bytes.size());
  EXPECT_EQ(info.value().copy_bytes + info.value().add_bytes, new_bytes.size());
}

TEST(DeltaTest, ApplyRejectsWrongBase) {
  const std::string old_bytes = RandomBytes(8 * 1024, 14);
  const std::string new_bytes = old_bytes + "tail";
  const std::string delta = EncodeDelta(old_bytes, new_bytes);

  std::string wrong_size = old_bytes.substr(1);
  EXPECT_FALSE(ApplyDeltaInPlace(&wrong_size, delta).ok());

  std::string wrong_bytes = old_bytes;
  wrong_bytes[100] = static_cast<char>(wrong_bytes[100] ^ 1);
  const Status applied = ApplyDeltaInPlace(&wrong_bytes, delta);
  EXPECT_FALSE(applied.ok());
  EXPECT_EQ(applied.code(), Status::Code::kCorruption);
}

TEST(DeltaTest, GarbageIsRejected) {
  EXPECT_FALSE(InspectDelta("").ok());
  EXPECT_FALSE(InspectDelta("ODLT").ok());
  EXPECT_FALSE(InspectDelta(RandomBytes(200, 15)).ok());
  std::string buffer = "anything";
  EXPECT_FALSE(ApplyDeltaInPlace(&buffer, RandomBytes(200, 16)).ok());
}

// ------------------------------------------------------------- fuzzing.
// Same treatment LoadBase got in PR 3: a real artifact, then every
// prefix truncation and a sweep of single-bit flips. Every mutation
// must either fail parse/apply with Corruption or — if the flip lands
// in ADD literal bytes and somehow passes — be caught by the
// reconstruction CRC. No crash, no silent wrong answer.

TEST(DeltaTest, FuzzTruncationAtEveryBoundary) {
  const std::string old_bytes = RandomBytes(4 * 1024, 17);
  std::string new_bytes = old_bytes + RandomBytes(256, 18);
  new_bytes[512] = static_cast<char>(new_bytes[512] ^ 0xff);
  const std::string delta = EncodeDelta(old_bytes, new_bytes);

  for (size_t cut = 0; cut < delta.size(); ++cut) {
    const std::string_view truncated(delta.data(), cut);
    EXPECT_FALSE(InspectDelta(truncated).ok()) << "cut=" << cut;
    std::string buffer = old_bytes;
    const Status applied = ApplyDeltaInPlace(&buffer, truncated);
    ASSERT_FALSE(applied.ok()) << "cut=" << cut;
    EXPECT_EQ(applied.code(), Status::Code::kCorruption) << "cut=" << cut;
  }
}

TEST(DeltaTest, FuzzSingleBitFlips) {
  const std::string old_bytes = RandomBytes(2 * 1024, 19);
  const std::string new_bytes =
      old_bytes.substr(0, 1024) + RandomBytes(64, 20) + old_bytes.substr(1024);
  const std::string delta = EncodeDelta(old_bytes, new_bytes);

  Rng rng(21);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t byte = static_cast<size_t>(rng.Uniform(delta.size()));
    const int bit = static_cast<int>(rng.Uniform(8));
    std::string mutated = delta;
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));

    std::string buffer = old_bytes;
    const Status applied = ApplyDeltaInPlace(&buffer, mutated);
    if (applied.ok()) {
      // A flip that still applies cleanly must have reconstructed the
      // exact new bytes (e.g. a flip inside ignored probe padding is
      // impossible in this format — so really: must never happen
      // unless the mutation undid itself).
      EXPECT_EQ(buffer, new_bytes) << "byte=" << byte << " bit=" << bit;
    } else {
      EXPECT_EQ(applied.code(), Status::Code::kCorruption)
          << "byte=" << byte << " bit=" << bit;
    }
  }
}

}  // namespace
}  // namespace storage
}  // namespace onex

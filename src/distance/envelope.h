// Copyright 2026 The ONEX Reproduction Authors.
// Warping envelopes for LB_Keogh (paper Sec. 4.3: the LSI stores one
// envelope per group representative). Computed with Lemire's streaming
// min/max algorithm in O(n) regardless of window size.

#ifndef ONEX_DISTANCE_ENVELOPE_H_
#define ONEX_DISTANCE_ENVELOPE_H_

#include <span>
#include <vector>

namespace onex {

/// Pointwise band around a series: lower[i] = min of the series in
/// [i - window, i + window], upper[i] = max over the same range.
struct Envelope {
  std::vector<double> lower;
  std::vector<double> upper;

  size_t size() const { return lower.size(); }
  bool empty() const { return lower.empty(); }

  /// Heap bytes held by the envelope (index sizing, paper Table 4).
  size_t MemoryBytes() const {
    return (lower.capacity() + upper.capacity()) * sizeof(double);
  }
};

/// Builds the envelope of `series` for band half-width `window` (clamped
/// to the series length). window = 0 degenerates to the series itself.
Envelope ComputeEnvelope(std::span<const double> series, size_t window);

}  // namespace onex

#endif  // ONEX_DISTANCE_ENVELOPE_H_

#include "distance/erp.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace onex {

double ErpDistance(std::span<const double> a, std::span<const double> b,
                   const ErpOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  const double g = options.gap_value;
  // Row 0: everything in b gapped.
  std::vector<double> prev(m + 1, 0.0), cur(m + 1, 0.0);
  for (size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + std::abs(b[j - 1] - g);
  }
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = prev[0] + std::abs(a[i - 1] - g);  // Everything in a gapped.
    for (size_t j = 1; j <= m; ++j) {
      const double gap_b = prev[j] + std::abs(a[i - 1] - g);
      const double gap_a = cur[j - 1] + std::abs(b[j - 1] - g);
      const double match = prev[j - 1] + std::abs(a[i - 1] - b[j - 1]);
      cur[j] = std::min({gap_b, gap_a, match});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace onex

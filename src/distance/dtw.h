// Copyright 2026 The ONEX Reproduction Authors.
// Dynamic Time Warping (paper Defs. 3 and 6). The paper's formulation
// accumulates squared point costs along the warping path and reports the
// square root of the minimum total, so DTW(X, X) = 0 and DTW reduces to
// ED on the diagonal path. Supports unequal lengths, an optional
// Sakoe-Chiba band, early abandoning against a best-so-far, and a
// path-reporting variant used by tests.

#ifndef ONEX_DISTANCE_DTW_H_
#define ONEX_DISTANCE_DTW_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace onex {

/// Band constraint for DTW. A negative window means unconstrained; a
/// non-negative window w restricts |i - j| <= max(w, |n - m|), the classic
/// generalization that keeps the corner-to-corner path feasible for
/// unequal lengths.
struct DtwOptions {
  int window = -1;

  /// Builds options from a window expressed as a fraction of the longer
  /// series (UCR-suite convention), e.g. ratio = 0.1 on length 200 -> 20.
  static DtwOptions FromRatio(double ratio, size_t n, size_t m);
};

/// DTW distance per Def. 3: sqrt of the minimal sum of squared point
/// costs over all warping paths. O(n*m) time, O(min(n,m)) space.
double DtwDistance(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options = {});

/// Squared DTW (no final sqrt); the natural unit for internal pruning.
double SquaredDtw(std::span<const double> a, std::span<const double> b,
                  const DtwOptions& options = {});

/// Normalized DTW per Def. 6: DTW(X, Y) / (2 * max(n, m)).
double NormalizedDtw(std::span<const double> a, std::span<const double> b,
                     const DtwOptions& options = {});

/// Early-abandoning DTW: returns +infinity as soon as every cell of a DP
/// row exceeds `threshold` (an unsquared distance); otherwise the exact
/// DTW distance. Equivalent to DtwDistance when the result <= threshold.
double DtwEarlyAbandon(std::span<const double> a, std::span<const double> b,
                       double threshold, const DtwOptions& options = {});

/// Early-abandoning DTW that additionally prunes cells using a cumulative
/// lower bound `cb` (UCR-suite style): cb[i] must lower-bound the squared
/// cost contribution of aligning points i..n-1 of `a`. Pass an empty span
/// to disable. Used by the Trillion baseline.
double DtwEarlyAbandonCb(std::span<const double> a, std::span<const double> b,
                         std::span<const double> cb, double threshold,
                         const DtwOptions& options = {});

/// Full DTW that also reports one optimal warping path as (i, j) pairs
/// from (0,0) to (n-1, m-1). O(n*m) memory; for tests and examples only.
double DtwWithPath(std::span<const double> a, std::span<const double> b,
                   std::vector<std::pair<uint32_t, uint32_t>>* path,
                   const DtwOptions& options = {});

}  // namespace onex

#endif  // ONEX_DISTANCE_DTW_H_

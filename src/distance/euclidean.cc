#include "distance/euclidean.h"

#include <cassert>
#include <cmath>

namespace onex {

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

double NormalizedEuclidean(std::span<const double> a,
                           std::span<const double> b) {
  assert(!a.empty());
  return EuclideanDistance(a, b) / std::sqrt(static_cast<double>(a.size()));
}

double SquaredEuclideanEarlyAbandon(std::span<const double> a,
                                    std::span<const double> b,
                                    double threshold_sq) {
  assert(a.size() == b.size());
  double sum = 0.0;
  // Check the abandon condition every 8 points: the branch is cheap but
  // not free, and partial sums only grow.
  constexpr size_t kCheckStride = 8;
  size_t i = 0;
  while (i < a.size()) {
    const size_t stop = std::min(a.size(), i + kCheckStride);
    for (; i < stop; ++i) {
      const double d = a[i] - b[i];
      sum += d * d;
    }
    if (sum > threshold_sq) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return sum;
}

double EuclideanEarlyAbandon(std::span<const double> a,
                             std::span<const double> b, double threshold) {
  const double sq = SquaredEuclideanEarlyAbandon(a, b, threshold * threshold);
  return std::isinf(sq) ? sq : std::sqrt(sq);
}

}  // namespace onex

#include "distance/lb_keogh.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double PointContribution(double q, double lower, double upper) {
  if (q > upper) {
    const double d = q - upper;
    return d * d;
  }
  if (q < lower) {
    const double d = lower - q;
    return d * d;
  }
  return 0.0;
}

}  // namespace

double LbKeogh(std::span<const double> query, const Envelope& envelope) {
  assert(query.size() == envelope.size());
  double sum = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    sum += PointContribution(query[i], envelope.lower[i], envelope.upper[i]);
  }
  return std::sqrt(sum);
}

double LbKeoghEarlyAbandon(std::span<const double> query,
                           const Envelope& envelope, double threshold) {
  assert(query.size() == envelope.size());
  const double threshold_sq = threshold * threshold;
  double sum = 0.0;
  constexpr size_t kCheckStride = 16;
  size_t i = 0;
  while (i < query.size()) {
    const size_t stop = std::min(query.size(), i + kCheckStride);
    for (; i < stop; ++i) {
      sum += PointContribution(query[i], envelope.lower[i], envelope.upper[i]);
    }
    if (sum > threshold_sq) return kInf;
  }
  return std::sqrt(sum);
}

double LbKeoghWithContributions(std::span<const double> query,
                                const Envelope& envelope,
                                std::vector<double>* contributions) {
  assert(query.size() == envelope.size());
  contributions->resize(query.size());
  double sum = 0.0;
  for (size_t i = 0; i < query.size(); ++i) {
    const double c =
        PointContribution(query[i], envelope.lower[i], envelope.upper[i]);
    (*contributions)[i] = c;
    sum += c;
  }
  return std::sqrt(sum);
}

std::vector<double> CumulativeBound(std::span<const double> contributions) {
  std::vector<double> cb(contributions.size() + 1, 0.0);
  for (size_t i = contributions.size(); i-- > 0;) {
    cb[i] = cb[i + 1] + contributions[i];
  }
  return cb;
}

double LbKeoghOrdered(std::span<const double> query, const Envelope& envelope,
                      std::span<const size_t> order, double threshold) {
  assert(query.size() == envelope.size());
  const double threshold_sq = threshold * threshold;
  double sum = 0.0;
  size_t steps = 0;
  for (size_t idx : order) {
    sum += PointContribution(query[idx], envelope.lower[idx],
                             envelope.upper[idx]);
    if (++steps % 16 == 0 && sum > threshold_sq) return kInf;
  }
  return sum > threshold_sq ? kInf : std::sqrt(sum);
}

}  // namespace onex

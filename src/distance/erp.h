// Copyright 2026 The ONEX Reproduction Authors.
// Edit distance with Real Penalty (Chen & Ng [6], "on the marriage of
// Lp-norms and edit distance" — the paper's title riffs on it). ERP is
// an elastic measure like DTW but, unlike DTW, a true metric: gaps are
// penalized against a fixed reference value g, which restores the
// triangle inequality.

#ifndef ONEX_DISTANCE_ERP_H_
#define ONEX_DISTANCE_ERP_H_

#include <span>

namespace onex {

/// ERP options; `gap_value` is the reference value g (0 is standard for
/// normalized data).
struct ErpOptions {
  double gap_value = 0.0;
};

/// ERP distance with L1 point costs:
///   erp(i, j) = min(erp(i-1, j)   + |a_i - g|,        // gap in b
///                   erp(i, j-1)   + |b_j - g|,        // gap in a
///                   erp(i-1, j-1) + |a_i - b_j|).     // match
/// O(n*m) time, O(m) space. ERP(X, X) = 0 and the triangle inequality
/// holds for any fixed g.
double ErpDistance(std::span<const double> a, std::span<const double> b,
                   const ErpOptions& options = {});

}  // namespace onex

#endif  // ONEX_DISTANCE_ERP_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Euclidean distance kernels (paper Defs. 2 and 5). The normalized form
// ED/sqrt(n) is the distance ONEX clusters with: Algorithm 1 compares raw
// ED against sqrt(L)*ST/2, which is exactly NormalizedEd <= ST/2.

#ifndef ONEX_DISTANCE_EUCLIDEAN_H_
#define ONEX_DISTANCE_EUCLIDEAN_H_

#include <limits>
#include <span>

namespace onex {

/// Squared Euclidean distance. Requires a.size() == b.size().
double SquaredEuclidean(std::span<const double> a, std::span<const double> b);

/// Euclidean distance ED(X, Y) (Def. 2). Requires equal lengths.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Normalized Euclidean distance ED(X, Y)/sqrt(n) (Def. 5).
double NormalizedEuclidean(std::span<const double> a,
                           std::span<const double> b);

/// Early-abandoning squared ED: returns +infinity as soon as the partial
/// sum exceeds `threshold_sq` (a squared distance). Exact otherwise.
double SquaredEuclideanEarlyAbandon(std::span<const double> a,
                                    std::span<const double> b,
                                    double threshold_sq);

/// Early-abandoning ED: +infinity if ED would exceed `threshold`.
double EuclideanEarlyAbandon(std::span<const double> a,
                             std::span<const double> b, double threshold);

}  // namespace onex

#endif  // ONEX_DISTANCE_EUCLIDEAN_H_

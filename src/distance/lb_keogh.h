// Copyright 2026 The ONEX Reproduction Authors.
// LB_Keogh lower bound on DTW (paper Sec. 4.3/5.3, [18], [22]): the
// distance from a query to the warping envelope of a candidate lower
// bounds the banded DTW between them. Stages 2-3 of the pruning cascade;
// also produces the per-point contributions that power the cumulative
// bound (cb) pruning inside early-abandoning DTW.

#ifndef ONEX_DISTANCE_LB_KEOGH_H_
#define ONEX_DISTANCE_LB_KEOGH_H_

#include <span>
#include <vector>

#include "distance/envelope.h"

namespace onex {

/// LB_Keogh(query, envelope(candidate)): sqrt of the summed squared
/// excursions of `query` outside the envelope. Requires query.size() ==
/// envelope.size(). Admissible for DTW with the window the envelope was
/// built with (and any larger window between equal-length series).
double LbKeogh(std::span<const double> query, const Envelope& envelope);

/// Early-abandoning variant: returns +infinity once the partial sum
/// exceeds threshold (unsquared).
double LbKeoghEarlyAbandon(std::span<const double> query,
                           const Envelope& envelope, double threshold);

/// Variant that also writes the squared per-point contribution into
/// `contributions[i]` (resized to query length). Feed these, reversed and
/// cumulatively summed, into DtwEarlyAbandonCb.
double LbKeoghWithContributions(std::span<const double> query,
                                const Envelope& envelope,
                                std::vector<double>* contributions);

/// Builds the reversed cumulative bound cb from per-point contributions:
/// cb[i] = sum of contributions[i..n-1]; cb has length n + 1 with
/// cb[n] = 0.
std::vector<double> CumulativeBound(std::span<const double> contributions);

/// Ordered early-abandoning LB_Keogh: visits points in the given order
/// (typically descending |z-normalized query|, the UCR-suite reordering
/// optimization) so large contributions accumulate first.
double LbKeoghOrdered(std::span<const double> query, const Envelope& envelope,
                      std::span<const size_t> order, double threshold);

}  // namespace onex

#endif  // ONEX_DISTANCE_LB_KEOGH_H_

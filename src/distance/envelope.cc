#include "distance/envelope.h"

#include <algorithm>

#include "util/monotonic_deque.h"

namespace onex {

Envelope ComputeEnvelope(std::span<const double> series, size_t window) {
  const size_t n = series.size();
  Envelope env;
  env.lower.resize(n);
  env.upper.resize(n);
  if (n == 0) return env;
  window = std::min(window, n);

  // Lemire's algorithm: one max-deque and one min-deque of indices whose
  // values are kept monotonically decreasing / increasing. Each index is
  // pushed and popped at most once -> O(n) total.
  MonotonicDeque max_dq(2 * window + 2);
  MonotonicDeque min_dq(2 * window + 2);
  // Position i's window is [i - window, i + window]. We sweep the "incoming"
  // index k = i + window; outputs lag by `window`.
  for (size_t k = 0; k < n + window; ++k) {
    if (k < n) {
      while (!max_dq.Empty() && series[max_dq.Back()] <= series[k]) {
        max_dq.PopBack();
      }
      max_dq.PushBack(k);
      while (!min_dq.Empty() && series[min_dq.Back()] >= series[k]) {
        min_dq.PopBack();
      }
      min_dq.PushBack(k);
    }
    if (k >= window) {
      const size_t i = k - window;
      if (i >= n) break;
      // Evict indices that fell out of [i - window, i + window].
      while (!max_dq.Empty() &&
             max_dq.Front() + window < i) {
        max_dq.PopFront();
      }
      while (!min_dq.Empty() &&
             min_dq.Front() + window < i) {
        min_dq.PopFront();
      }
      env.upper[i] = series[max_dq.Front()];
      env.lower[i] = series[min_dq.Front()];
    }
  }
  return env;
}

}  // namespace onex

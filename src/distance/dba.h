// Copyright 2026 The ONEX Reproduction Authors.
// DTW Barycenter Averaging (DBA), Petitjean et al. [21] — the
// alternative cluster-representative scheme the paper's related work
// contrasts with ONEX's point-wise average (Def. 7): each iteration
// aligns every member to the current barycenter with DTW and replaces
// each barycenter point by the mean of the member points warped onto
// it. Converges to a local optimum of the sum of squared DTW distances.
//
// ONEX deliberately does NOT use DBA (it clusters with ED and averages
// point-wise, keeping construction cheap); this module exists so the
// ablation bench can quantify that design choice.

#ifndef ONEX_DISTANCE_DBA_H_
#define ONEX_DISTANCE_DBA_H_

#include <span>
#include <vector>

#include "distance/dtw.h"

namespace onex {

/// DBA knobs.
struct DbaOptions {
  size_t max_iterations = 10;  ///< Refinement rounds.
  /// Stop early when the barycenter moves less than this (max absolute
  /// pointwise change) between rounds.
  double convergence_epsilon = 1e-6;
  DtwOptions dtw;              ///< Band used for the alignments.
};

/// Computes the DBA barycenter of `members` (all non-empty, any equal
/// length; the barycenter keeps the length of `initial`). `initial`
/// seeds the iteration — the point-wise mean is the conventional seed.
/// Returns `initial` unchanged when `members` is empty.
std::vector<double> DbaBarycenter(
    const std::vector<std::span<const double>>& members,
    std::span<const double> initial, const DbaOptions& options = {});

/// Convenience: sum of squared DTW distances from `center` to all
/// members — the objective DBA descends; used by tests and the
/// representative ablation.
double SumSquaredDtw(const std::vector<std::span<const double>>& members,
                     std::span<const double> center,
                     const DtwOptions& options = {});

}  // namespace onex

#endif  // ONEX_DISTANCE_DBA_H_

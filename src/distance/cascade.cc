#include "distance/cascade.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "distance/lb_kim.h"
#include "distance/lb_keogh.h"

namespace onex {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

std::string CascadeStats::ToString() const {
  std::ostringstream out;
  out << "candidates=" << candidates << " pruned_kim=" << pruned_kim
      << " pruned_keogh=" << pruned_keogh
      << " dtw_abandoned=" << dtw_abandoned
      << " dtw_completed=" << dtw_completed;
  return out.str();
}

double CascadePruner::Distance(std::span<const double> query,
                               std::span<const double> candidate,
                               const Envelope* envelope, double best_so_far) {
  // Every increment mirrors into the optional external sink so callers
  // can accumulate per-query counters without polling stats() deltas.
  auto bump = [this](uint64_t CascadeStats::* field) {
    ++(stats_.*field);
    if (sink_ != nullptr) ++(sink_->*field);
  };
  bump(&CascadeStats::candidates);
  if (options_.use_kim) {
    if (LbKim(query, candidate) > best_so_far) {
      bump(&CascadeStats::pruned_kim);
      return kInf;
    }
  }
  if (options_.use_keogh && envelope != nullptr &&
      envelope->size() == query.size()) {
    if (LbKeoghEarlyAbandon(query, *envelope, best_so_far) > best_so_far) {
      bump(&CascadeStats::pruned_keogh);
      return kInf;
    }
  }
  double d;
  if (options_.use_early_abandon) {
    d = DtwEarlyAbandon(query, candidate, best_so_far, dtw_options_);
    if (std::isinf(d)) {
      bump(&CascadeStats::dtw_abandoned);
      return kInf;
    }
  } else {
    d = DtwDistance(query, candidate, dtw_options_);
  }
  bump(&CascadeStats::dtw_completed);
  return d;
}

}  // namespace onex

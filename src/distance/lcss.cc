#include "distance/lcss.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace onex {

size_t LcssLength(std::span<const double> a, std::span<const double> b,
                  const LcssOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 0;
  // Rolling two-row LCS DP with the (epsilon, delta) match predicate.
  std::vector<size_t> prev(m + 1, 0), cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      const bool within_delta =
          options.delta < 0 ||
          (i > j ? i - j : j - i) <= static_cast<size_t>(options.delta);
      if (within_delta &&
          std::abs(a[i - 1] - b[j - 1]) <= options.epsilon) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LcssDistance(std::span<const double> a, std::span<const double> b,
                    const LcssOptions& options) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) return 1.0;
  const double lcss = static_cast<double>(LcssLength(a, b, options));
  const double shorter =
      static_cast<double>(std::min(a.size(), b.size()));
  return 1.0 - lcss / shorter;
}

}  // namespace onex

#include "distance/dba.h"

#include <algorithm>
#include <cmath>

namespace onex {

std::vector<double> DbaBarycenter(
    const std::vector<std::span<const double>>& members,
    std::span<const double> initial, const DbaOptions& options) {
  std::vector<double> center(initial.begin(), initial.end());
  if (members.empty() || center.empty()) return center;

  std::vector<double> sums(center.size());
  std::vector<size_t> counts(center.size());
  std::vector<std::pair<uint32_t, uint32_t>> path;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    // Align every member to the current barycenter; accumulate the
    // member values warped onto each barycenter point.
    for (const auto& member : members) {
      DtwWithPath(std::span<const double>(center.data(), center.size()),
                  member, &path, options.dtw);
      for (const auto& [ci, mi] : path) {
        sums[ci] += member[mi];
        counts[ci] += 1;
      }
    }
    double max_change = 0.0;
    for (size_t i = 0; i < center.size(); ++i) {
      if (counts[i] == 0) continue;  // Unreached under the band; keep.
      const double updated = sums[i] / static_cast<double>(counts[i]);
      max_change = std::max(max_change, std::abs(updated - center[i]));
      center[i] = updated;
    }
    if (max_change < options.convergence_epsilon) break;
  }
  return center;
}

double SumSquaredDtw(const std::vector<std::span<const double>>& members,
                     std::span<const double> center,
                     const DtwOptions& options) {
  double total = 0.0;
  for (const auto& member : members) {
    const double d = DtwDistance(center, member, options);
    total += d * d;
  }
  return total;
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Longest Common Subsequence similarity for time series (Vlachos et
// al. [29], discussed in the paper's related work as the third of the
// classic elastic measures next to DTW and ERP). Two points match when
// they are within `epsilon` in value and within `delta` positions in
// time; the distance is 1 - LCSS / min(n, m).

#ifndef ONEX_DISTANCE_LCSS_H_
#define ONEX_DISTANCE_LCSS_H_

#include <cstddef>
#include <span>

namespace onex {

/// Matching tolerances for LCSS.
struct LcssOptions {
  double epsilon = 0.1;  ///< Max value difference for a point match.
  /// Max index offset for a match; negative = unconstrained.
  int delta = -1;
};

/// Length of the longest common subsequence under the tolerances.
/// O(n*m) time, O(min window) space.
size_t LcssLength(std::span<const double> a, std::span<const double> b,
                  const LcssOptions& options = {});

/// LCSS distance: 1 - LCSS/min(n, m), in [0, 1]. Identical sequences
/// score 0; sequences with no matching points score 1. Either input
/// empty yields 1 (or 0 when both are empty).
double LcssDistance(std::span<const double> a, std::span<const double> b,
                    const LcssOptions& options = {});

}  // namespace onex

#endif  // ONEX_DISTANCE_LCSS_H_

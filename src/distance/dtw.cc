#include "distance/dtw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Effective band half-width: at least |n - m| so the corner-to-corner
// path stays feasible; SIZE_MAX means unconstrained.
size_t EffectiveWindow(const DtwOptions& options, size_t n, size_t m) {
  if (options.window < 0) return std::numeric_limits<size_t>::max();
  const size_t diff = n > m ? n - m : m - n;
  return std::max(static_cast<size_t>(options.window), diff);
}

// Shared DP core. Returns the squared DTW, or +inf when early abandoning
// is enabled (threshold_sq < inf) and every reachable cell of some row
// (plus its cumulative bound) exceeds threshold_sq. `cb` may be empty.
double SquaredDtwCore(std::span<const double> a, std::span<const double> b,
                      std::span<const double> cb, double threshold_sq,
                      const DtwOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  const size_t w = EffectiveWindow(options, n, m);

  // Two rolling rows, 1-based over j with sentinel column 0.
  thread_local std::vector<double> prev_storage, cur_storage;
  prev_storage.assign(m + 1, kInf);
  cur_storage.assign(m + 1, kInf);
  double* prev = prev_storage.data();
  double* cur = cur_storage.data();
  prev[0] = 0.0;  // D(-1, -1) = 0 lives at prev[0].

  for (size_t i = 0; i < n; ++i) {
    const size_t j_lo = i > w ? i - w : 0;
    // Saturating i + w: w may be SIZE_MAX (unconstrained).
    const size_t j_hi = (w >= m || i + w >= m) ? m - 1 : i + w;
    cur[0] = kInf;
    // Cells just left and right of the band must read as +inf; the band
    // shifts by at most one column per row, so one sentinel each side
    // clears all staleness left by row reuse.
    if (j_lo > 0) cur[j_lo] = kInf;
    if (j_hi + 2 <= m) cur[j_hi + 2] = kInf;
    double row_min = kInf;
    const double ai = a[i];
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double d = ai - b[j];
      const double cost = d * d;
      const double best_prev =
          std::min({prev[j], prev[j + 1], cur[j]});
      const double value = best_prev == kInf ? kInf : cost + best_prev;
      cur[j + 1] = value;
      row_min = std::min(row_min, value);
    }
    if (threshold_sq < kInf) {
      // UCR-suite cumulative-bound pruning: everything still to come
      // costs at least cb[i + 1].
      const double future = (!cb.empty() && i + 1 < cb.size()) ? cb[i + 1]
                                                               : 0.0;
      if (row_min + future > threshold_sq) return kInf;
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace

DtwOptions DtwOptions::FromRatio(double ratio, size_t n, size_t m) {
  DtwOptions options;
  if (ratio < 0) {
    options.window = -1;
  } else {
    const size_t longest = std::max(n, m);
    options.window =
        static_cast<int>(std::ceil(ratio * static_cast<double>(longest)));
  }
  return options;
}

double SquaredDtw(std::span<const double> a, std::span<const double> b,
                  const DtwOptions& options) {
  return SquaredDtwCore(a, b, {}, kInf, options);
}

double DtwDistance(std::span<const double> a, std::span<const double> b,
                   const DtwOptions& options) {
  return std::sqrt(SquaredDtw(a, b, options));
}

double NormalizedDtw(std::span<const double> a, std::span<const double> b,
                     const DtwOptions& options) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return DtwDistance(a, b, options) / (2.0 * static_cast<double>(longest));
}

double DtwEarlyAbandon(std::span<const double> a, std::span<const double> b,
                       double threshold, const DtwOptions& options) {
  if (threshold < 0) return kInf;
  const double sq =
      SquaredDtwCore(a, b, {}, threshold * threshold, options);
  return std::isinf(sq) ? kInf : std::sqrt(sq);
}

double DtwEarlyAbandonCb(std::span<const double> a, std::span<const double> b,
                         std::span<const double> cb, double threshold,
                         const DtwOptions& options) {
  if (threshold < 0) return kInf;
  const double sq =
      SquaredDtwCore(a, b, cb, threshold * threshold, options);
  return std::isinf(sq) ? kInf : std::sqrt(sq);
}

double DtwWithPath(std::span<const double> a, std::span<const double> b,
                   std::vector<std::pair<uint32_t, uint32_t>>* path,
                   const DtwOptions& options) {
  const size_t n = a.size();
  const size_t m = b.size();
  path->clear();
  if (n == 0 || m == 0) return n == m ? 0.0 : kInf;
  const size_t w = EffectiveWindow(options, n, m);

  // Full matrix (1-based) with backpointers; test/example use only.
  std::vector<double> dp((n + 1) * (m + 1), kInf);
  std::vector<uint8_t> back(n * m, 0);  // 0 = diag, 1 = up, 2 = left.
  auto at = [m](size_t i, size_t j) { return i * (m + 1) + j; };
  dp[at(0, 0)] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    const size_t j_lo = i > w ? i - w : 1;
    const size_t j_hi = (w >= m || i + w >= m) ? m : i + w;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double cost = d * d;
      const double diag = dp[at(i - 1, j - 1)];
      const double up = dp[at(i - 1, j)];
      const double left = dp[at(i, j - 1)];
      double best = diag;
      uint8_t dir = 0;
      if (up < best) {
        best = up;
        dir = 1;
      }
      if (left < best) {
        best = left;
        dir = 2;
      }
      if (best == kInf) continue;
      dp[at(i, j)] = cost + best;
      back[(i - 1) * m + (j - 1)] = dir;
    }
  }
  // Recover the path by walking backpointers from (n, m).
  size_t i = n, j = m;
  while (i >= 1 && j >= 1) {
    path->emplace_back(static_cast<uint32_t>(i - 1),
                       static_cast<uint32_t>(j - 1));
    const uint8_t dir = back[(i - 1) * m + (j - 1)];
    if (dir == 0) {
      --i;
      --j;
    } else if (dir == 1) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(path->begin(), path->end());
  return std::sqrt(dp[at(n, m)]);
}

}  // namespace onex

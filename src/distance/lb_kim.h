// Copyright 2026 The ONEX Reproduction Authors.
// LB_Kim-style constant-time lower bounds on DTW. Stage 1 of the
// cascading-lower-bound pruning the paper adopts from the UCR suite
// (Sec. 5.3, [11], [22]).

#ifndef ONEX_DISTANCE_LB_KIM_H_
#define ONEX_DISTANCE_LB_KIM_H_

#include <span>

namespace onex {

/// Classic 4-feature LB_Kim: any warping path matches first with first
/// and last with last, and the global min/max of one series must align
/// with *some* point of the other. Valid for unequal lengths and any
/// window. O(n) (dominated by the min/max scan).
double LbKim(std::span<const double> a, std::span<const double> b);

/// UCR-suite LB_Kim_FL on z-normalized data: uses the first/last points
/// plus their two neighbours (the min/max features are near-useless after
/// z-normalization, so they are skipped). O(1). Requires sizes >= 3.
double LbKimFl(std::span<const double> a, std::span<const double> b);

}  // namespace onex

#endif  // ONEX_DISTANCE_LB_KIM_H_

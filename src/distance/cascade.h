// Copyright 2026 The ONEX Reproduction Authors.
// Cascading lower-bound pruner (paper Sec. 5.3, adopted from [11], [22]):
// candidates pass through LB_Kim (O(1)-ish) then LB_Keogh (O(n)) before
// the O(n^2) early-abandoning DTW is paid. Keeps counters so the
// ablation bench can report per-stage pruning rates.

#ifndef ONEX_DISTANCE_CASCADE_H_
#define ONEX_DISTANCE_CASCADE_H_

#include <cstdint>
#include <span>
#include <string>

#include "distance/dtw.h"
#include "distance/envelope.h"

namespace onex {

/// Per-stage counters accumulated across Distance() calls.
struct CascadeStats {
  uint64_t candidates = 0;      ///< Total candidates examined.
  uint64_t pruned_kim = 0;      ///< Dropped by LB_Kim.
  uint64_t pruned_keogh = 0;    ///< Dropped by LB_Keogh.
  uint64_t dtw_abandoned = 0;   ///< DTW started but abandoned early.
  uint64_t dtw_completed = 0;   ///< Full DTW evaluations.

  void Reset() { *this = CascadeStats(); }

  /// Merges another accumulation into this one (per-query counters roll
  /// up into the server-wide totals this way).
  void Add(const CascadeStats& other) {
    candidates += other.candidates;
    pruned_kim += other.pruned_kim;
    pruned_keogh += other.pruned_keogh;
    dtw_abandoned += other.dtw_abandoned;
    dtw_completed += other.dtw_completed;
  }

  /// Every candidate is accounted to exactly one terminal stage.
  /// (dtw_abandoned + dtw_completed is the wire's `dtw_evaluated`.)
  bool Consistent() const {
    return candidates ==
           pruned_kim + pruned_keogh + dtw_abandoned + dtw_completed;
  }

  std::string ToString() const;
};

/// Stage toggles (all on by default); the ablation bench switches these.
struct CascadeOptions {
  bool use_kim = true;
  bool use_keogh = true;
  bool use_early_abandon = true;
};

/// Evaluates DTW(query, candidate) only when no lower bound exceeds
/// `best_so_far`. Returns +infinity when pruned or abandoned, else the
/// exact DTW under `dtw_options`.
class CascadePruner {
 public:
  /// `sink`, when set, receives every increment the internal stats()
  /// accumulator does — callers tee the per-stage counters into a
  /// per-query QueryStats without polling between calls.
  explicit CascadePruner(DtwOptions dtw_options,
                         CascadeOptions cascade_options = {},
                         CascadeStats* sink = nullptr)
      : dtw_options_(dtw_options), options_(cascade_options), sink_(sink) {}

  /// `envelope` is the candidate-side envelope matching query length;
  /// pass nullptr when unavailable (e.g. cross-length comparisons), which
  /// skips the LB_Keogh stage.
  double Distance(std::span<const double> query,
                  std::span<const double> candidate,
                  const Envelope* envelope, double best_so_far);

  const CascadeStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  DtwOptions dtw_options_;
  CascadeOptions options_;
  CascadeStats stats_;
  CascadeStats* sink_ = nullptr;
};

}  // namespace onex

#endif  // ONEX_DISTANCE_CASCADE_H_

#include "distance/lb_kim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace onex {

double LbKim(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) return 0.0;
  // First and last points are on every warping path, and they are
  // distinct path elements when max(n, m) >= 2, so their squared costs
  // both contribute to the path weight (Def. 3).
  const double d_first = a.front() - b.front();
  const double d_last = a.back() - b.back();
  double bound_sq = d_first * d_first;
  if (a.size() >= 2 || b.size() >= 2) bound_sq += d_last * d_last;

  // Min/max features: the global extremum of one series aligns with some
  // point of the other, bounding one path cost from below.
  const auto [a_min_it, a_max_it] = std::minmax_element(a.begin(), a.end());
  const auto [b_min_it, b_max_it] = std::minmax_element(b.begin(), b.end());
  const double d_min = *a_min_it - *b_min_it;
  const double d_max = *a_max_it - *b_max_it;
  const double feature_sq =
      std::max(d_min * d_min, d_max * d_max);
  return std::sqrt(std::max(bound_sq, feature_sq));
}

double LbKimFl(std::span<const double> a, std::span<const double> b) {
  assert(a.size() >= 3 && b.size() >= 3);
  const size_t n = a.size();
  const size_t m = b.size();
  // Front pair: points 0 and 1 of each series. The path's first element
  // is (0,0); its second touches (0,1), (1,0) or (1,1).
  const double d00 = a[0] - b[0];
  double lb = d00 * d00;
  const double c01 = (a[0] - b[1]) * (a[0] - b[1]);
  const double c10 = (a[1] - b[0]) * (a[1] - b[0]);
  const double c11 = (a[1] - b[1]) * (a[1] - b[1]);
  lb += std::min({c01, c10, c11});
  // Back pair, symmetric. The back neighbour term is only admissible
  // when the minimal path length max(n, m) is >= 4; on a length-3
  // diagonal the second and second-to-last path elements coincide and
  // adding both would double-count.
  const double dnn = a[n - 1] - b[m - 1];
  lb += dnn * dnn;
  if (std::max(n, m) >= 4) {
    const double e01 = (a[n - 1] - b[m - 2]) * (a[n - 1] - b[m - 2]);
    const double e10 = (a[n - 2] - b[m - 1]) * (a[n - 2] - b[m - 1]);
    const double e11 = (a[n - 2] - b[m - 2]) * (a[n - 2] - b[m - 2]);
    lb += std::min({e01, e10, e11});
  }
  return std::sqrt(lb);
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Terminal sparklines: render a time series as a row of Unicode block
// characters so the interactive tools can *show* shapes, not just
// coordinates — ONEX is an exploration system and the examples should
// feel like one.

#ifndef ONEX_UTIL_SPARKLINE_H_
#define ONEX_UTIL_SPARKLINE_H_

#include <span>
#include <string>

namespace onex {

/// Renders `series` as UTF-8 block characters (▁▂▃▄▅▆▇█), resampled to
/// `width` columns (0 = one column per point). A constant series
/// renders at the lowest level; an empty one renders empty.
std::string Sparkline(std::span<const double> series, size_t width = 0);

/// Two-row variant with min/max labels, e.g.
///   0.87 ┤ ▂▃▅██▆▃▁
///   0.12 ┘
std::string SparklineLabeled(std::span<const double> series,
                             size_t width = 0);

}  // namespace onex

#endif  // ONEX_UTIL_SPARKLINE_H_

#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace onex {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleSet::Percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleSet::Min() const {
  return samples_.empty() ? 0.0
                          : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::Max() const {
  return samples_.empty() ? 0.0
                          : *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace onex

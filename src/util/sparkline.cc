#include "util/sparkline.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace onex {
namespace {

const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

std::vector<double> ResampleForWidth(std::span<const double> series,
                                     size_t width) {
  if (width == 0 || width >= series.size()) {
    return std::vector<double>(series.begin(), series.end());
  }
  // Average consecutive buckets so narrow renders keep the gist.
  std::vector<double> out(width);
  for (size_t i = 0; i < width; ++i) {
    const size_t lo = i * series.size() / width;
    const size_t hi = std::max(lo + 1, (i + 1) * series.size() / width);
    double sum = 0.0;
    for (size_t k = lo; k < hi && k < series.size(); ++k) sum += series[k];
    out[i] = sum / static_cast<double>(hi - lo);
  }
  return out;
}

}  // namespace

std::string Sparkline(std::span<const double> series, size_t width) {
  if (series.empty()) return "";
  const auto points = ResampleForWidth(series, width);
  const auto [lo_it, hi_it] =
      std::minmax_element(points.begin(), points.end());
  const double lo = *lo_it, hi = *hi_it;
  const double span = hi - lo;
  std::string out;
  out.reserve(points.size() * 3);
  for (double x : points) {
    const int level =
        span > 0.0
            ? std::min(7, static_cast<int>((x - lo) / span * 8.0))
            : 0;
    out += kBlocks[level];
  }
  return out;
}

std::string SparklineLabeled(std::span<const double> series, size_t width) {
  if (series.empty()) return "";
  const auto [lo_it, hi_it] =
      std::minmax_element(series.begin(), series.end());
  char buf[64];
  std::string out;
  std::snprintf(buf, sizeof(buf), "%8.3f ┤ ", *hi_it);
  out += buf;
  out += Sparkline(series, width);
  out += '\n';
  std::snprintf(buf, sizeof(buf), "%8.3f ┘", *lo_it);
  out += buf;
  return out;
}

}  // namespace onex

#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace onex {

void TableWriter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TableWriter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TableWriter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TableWriter::Sci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string TableWriter::Render() const {
  // Compute column widths over header and all rows.
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> width(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < columns; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      out << cell << std::string(width[c] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < columns; ++c) total += width[c] + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TableWriter::Print() const {
  std::fputs(Render().c_str(), stdout);
  std::fputc('\n', stdout);
}

namespace {

std::string CsvField(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string CsvRow(const std::vector<std::string>& row) {
  std::string line;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += ',';
    line += CsvField(row[i]);
  }
  line += '\n';
  return line;
}

}  // namespace

std::string TableWriter::RenderCsv() const {
  std::string out;
  if (!header_.empty()) out += CsvRow(header_);
  for (const auto& row : rows_) out += CsvRow(row);
  return out;
}

void SeriesWriter::AddPoint(double x, const std::vector<double>& ys) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", x);
  AddPoint(std::string(buf), ys);
}

void SeriesWriter::AddPoint(const std::string& x,
                            const std::vector<double>& ys) {
  xs_.push_back(x);
  rows_.push_back(ys);
}

std::string SeriesWriter::Render() const {
  TableWriter table(title_);
  std::vector<std::string> header;
  header.push_back(x_label_);
  for (const auto& name : names_) header.push_back(name);
  table.SetHeader(std::move(header));
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(xs_[i]);
    for (double y : rows_[i]) row.push_back(TableWriter::Num(y, 6));
    table.AddRow(std::move(row));
  }
  return table.Render();
}

std::string SeriesWriter::RenderCsv() const {
  TableWriter table(title_);
  std::vector<std::string> header;
  header.push_back(x_label_);
  for (const auto& name : names_) header.push_back(name);
  table.SetHeader(std::move(header));
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(xs_[i]);
    for (double y : rows_[i]) row.push_back(TableWriter::Num(y, 9));
    table.AddRow(std::move(row));
  }
  return table.RenderCsv();
}

void SeriesWriter::Print() const {
  std::fputs(Render().c_str(), stdout);
  std::fputc('\n', stdout);
}

}  // namespace onex

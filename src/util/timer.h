// Copyright 2026 The ONEX Reproduction Authors.
// Monotonic wall-clock timing used by every experiment harness.

#ifndef ONEX_UTIL_TIMER_H_
#define ONEX_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace onex {

/// Stopwatch over std::chrono::steady_clock. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since construction or last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed nanoseconds as an integer tick count.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds into `*sink` on destruction. The
/// per-stage query timings (QueryStats) are accumulated with this: two
/// clock reads per scope, used at call/group granularity only — never
/// per candidate.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  Timer timer_;
};

}  // namespace onex

#endif  // ONEX_UTIL_TIMER_H_

// Copyright 2026 The ONEX Reproduction Authors.

#include "util/process_stats.h"

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace onex {
namespace {

// Pinned at static-initialization time, which for a serving binary is
// close enough to exec() for an uptime gauge.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

uint64_t ReadRssBytes() {
  // /proc/self/statm field 2 is resident pages.
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<uint64_t>(page > 0 ? page : 4096);
}

int64_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int64_t count = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  // The opendir itself holds one descriptor; don't count it.
  return count > 0 ? count - 1 : count;
}

int64_t ReadThreadCount() {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int64_t threads = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long long value = 0;
    if (std::sscanf(line, "Threads: %lld", &value) == 1) {
      threads = value;
      break;
    }
  }
  std::fclose(f);
  return threads;
}

}  // namespace

ProcessStats SampleProcessStats() {
  ProcessStats stats;
  stats.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    g_process_start)
          .count();
  stats.rss_bytes = ReadRssBytes();
  stats.open_fds = CountOpenFds();
  stats.threads = ReadThreadCount();
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    stats.cpu_user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                             static_cast<double>(usage.ru_utime.tv_usec) / 1e6;
    stats.cpu_sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                            static_cast<double>(usage.ru_stime.tv_usec) / 1e6;
  }
  return stats;
}

}  // namespace onex

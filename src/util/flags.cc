#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace onex {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace onex

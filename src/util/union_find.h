// Copyright 2026 The ONEX Reproduction Authors.
// Disjoint-set forest with union by rank and path halving. Used by the
// SP-Space (paper Sec. 4.2) to simulate group merges under increasing
// similarity thresholds: groups k and l merge once ST' - ST >= Dc(k, l),
// so sweeping Dc edges in sorted order (Kruskal-style) yields the exact
// thresholds at which half / all groups have merged.

#ifndef ONEX_UTIL_UNION_FIND_H_
#define ONEX_UTIL_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace onex {

/// Disjoint-set forest over the integers [0, n).
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0), components_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Representative of x's component (with path halving).
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the components of a and b. Returns true if they were distinct.
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --components_;
    return true;
  }

  /// True when a and b are in the same component.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  /// Number of remaining components.
  size_t components() const { return components_; }

  /// Total number of elements.
  size_t size() const { return parent_.size(); }

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t components_;
};

}  // namespace onex

#endif  // ONEX_UTIL_UNION_FIND_H_

// Copyright 2026 The ONEX Reproduction Authors.

#include "util/crash_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>

#include "core/inflight.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/sigsafe.h"
#include "util/trace.h"

namespace onex {
namespace crash {

namespace {

// Everything the handler touches is pre-sized at Install time: the
// path lives in a fixed buffer (no std::string in a signal context),
// the altstack is allocated once and leaked.
constexpr size_t kPathCap = 512;
char g_dump_path[kPathCap] = {0};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_dumped{false};

constexpr uint64_t kTraceTailSpans = 64;  ///< Newest spans per ring.

const char* SignalName(int signal_number) {
  switch (signal_number) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGABRT:
      return "SIGABRT";
    case SIGBUS:
      return "SIGBUS";
  }
  return "SIG?";
}

/// The dump body — shared by the real handler and the test hook.
/// Async-signal-safe: every section writer below is documented so.
void WriteDump(int fd, int signal_number, const void* fault_addr) {
  using sigsafe::WriteHex;
  using sigsafe::WriteStr;
  using sigsafe::WriteU64;
  WriteStr(fd, "{\"signal\":");
  WriteU64(fd, static_cast<uint64_t>(signal_number));
  WriteStr(fd, ",\"signal_name\":\"");
  WriteStr(fd, SignalName(signal_number));
  WriteStr(fd, "\",\"fault_addr\":\"");
  WriteHex(fd, reinterpret_cast<uint64_t>(fault_addr));
  WriteStr(fd, "\",\"pid\":");
  WriteU64(fd, static_cast<uint64_t>(::getpid()));
  WriteStr(fd, ",\"recent_log\":");
  DumpRecentLogSigSafe(fd);
  WriteStr(fd, ",\"inflight\":");
  InflightRegistry::Global().DumpSigSafe(fd);
  WriteStr(fd, ",\"trace_tails\":");
  trace::DumpRingTailsSigSafe(fd, kTraceTailSpans);
  WriteStr(fd, ",\"held_locks\":");
  lock_debug::DumpHeldStacksSigSafe(fd);
  WriteStr(fd, "}\n");
}

void Handler(int signal_number, siginfo_t* info, void* /*ucontext*/) {
  // First fatal signal claims the dump; concurrent faults on other
  // threads re-raise immediately (the file must not interleave).
  bool expected = false;
  if (g_dumped.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd >= 0) {
      WriteDump(fd, signal_number,
                info != nullptr ? info->si_addr : nullptr);
      ::close(fd);
    }
  }
  // SA_RESETHAND restored the default disposition at handler entry;
  // re-raising now terminates with the true signal (core dump, wait
  // status) as if the recorder had never been there.
  ::raise(signal_number);
}

}  // namespace

bool InstallCrashRecorder(const std::string& dump_dir) {
  // Compose "<dir>/onex_crash.<pid>.json" into the static buffer now;
  // the handler must never format a path.
  std::string path = dump_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += "onex_crash." + std::to_string(::getpid()) + ".json";
  if (path.size() >= kPathCap) {
    LogMessage(LogLevel::kWarn,
               "crash recorder: dump path too long: " + path);
    return false;
  }
  // Prove writability up front — a recorder that fails only at crash
  // time is worse than none.
  const int probe =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (probe < 0) {
    LogMessage(LogLevel::kWarn, "crash recorder: cannot write '" + path +
                                    "': " + std::strerror(errno));
    return false;
  }
  ::close(probe);
  ::unlink(path.c_str());  // Leave no empty dump behind.
  std::memcpy(g_dump_path, path.c_str(), path.size() + 1);

  if (!g_installed.exchange(true, std::memory_order_acq_rel)) {
    // A dedicated altstack lets the handler run after a stack
    // overflow — the most common SIGSEGV in native servers.
    // Fixed 64 KiB, not SIGSTKSZ: since glibc 2.34 SIGSTKSZ is a
    // sysconf call, not a constant, and the handler's frame budget is
    // known (no recursion, no large locals).
    constexpr size_t kAltStackBytes = 64 * 1024;
    static stack_t altstack;
    static char altstack_mem[kAltStackBytes];
    altstack.ss_sp = altstack_mem;
    altstack.ss_size = sizeof(altstack_mem);
    altstack.ss_flags = 0;
    if (::sigaltstack(&altstack, nullptr) != 0) {
      LogMessage(LogLevel::kWarn,
                 std::string("crash recorder: sigaltstack failed: ") +
                     std::strerror(errno));
      // Continue without the altstack: still useful for non-overflow
      // faults.
    }
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = Handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_SIGINFO | SA_ONSTACK | SA_RESETHAND;
    for (const int sig : {SIGSEGV, SIGABRT, SIGBUS}) {
      if (::sigaction(sig, &action, nullptr) != 0) {
        LogMessage(LogLevel::kWarn,
                   std::string("crash recorder: sigaction failed for ") +
                       SignalName(sig) + ": " + std::strerror(errno));
        return false;
      }
    }
  }
  LogMessage(LogLevel::kInfo,
             "crash recorder armed, dump path " + path);
  return true;
}

std::string CrashDumpPath() { return g_dump_path; }

void WriteCrashDumpForTest(int fd, int signal_number) {
  WriteDump(fd, signal_number, nullptr);
}

}  // namespace crash
}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Process-level resource gauges for the METRICS exposition: uptime,
// resident set size, open file descriptors, CPU time split user/sys,
// and thread count. Sampled on demand (one /proc read per METRICS
// call, nothing resident) — the sampling cost lands on the curious
// client, not the query path.

#ifndef ONEX_UTIL_PROCESS_STATS_H_
#define ONEX_UTIL_PROCESS_STATS_H_

#include <cstdint>

namespace onex {

struct ProcessStats {
  double uptime_seconds = 0.0;   ///< Since process start (steady clock).
  uint64_t rss_bytes = 0;        ///< Resident set size; 0 if unreadable.
  int64_t open_fds = -1;         ///< Open descriptors; -1 if unreadable.
  double cpu_user_seconds = 0.0;  ///< getrusage ru_utime.
  double cpu_sys_seconds = 0.0;   ///< getrusage ru_stime.
  int64_t threads = -1;          ///< Kernel thread count; -1 if unreadable.
};

/// Samples the current process. Linux reads /proc/self; elsewhere the
/// /proc-backed fields degrade to their "unreadable" sentinels while
/// uptime and CPU (POSIX getrusage) still work.
ProcessStats SampleProcessStats();

}  // namespace onex

#endif  // ONEX_UTIL_PROCESS_STATS_H_

#include "util/crc32.h"

#include <array>

namespace onex {
namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* bytes, size_t n) {
  static const std::array<uint32_t, 256> table = MakeTable();
  const auto* p = static_cast<const unsigned char*>(bytes);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(const void* bytes, size_t n) {
  return Crc32Update(0, bytes, n);
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Annotated mutex wrappers: the only locking primitives the serving
// stack uses. Three things the std primitives don't give us:
//
//   1. Clang Thread Safety Analysis capabilities (thread_annotations.h)
//      — GUARDED_BY members and REQUIRES helpers are proved at compile
//      time under -Werror=thread-safety (the `thread-safety` CI job).
//   2. A lock-order hierarchy (LockRank): every mutex is constructed
//      with its rank, and debug-checked builds
//      (ONEX_LOCK_ORDER_CHECKS) abort with both lock names when a
//      thread acquires out of rank order — turning a potential
//      deadlock into a deterministic crash at the acquisition site.
//   3. AssertHeld()/AssertReaderHeld(): the sound escape hatch for
//      code that receives a lock across an untyped boundary (a
//      std::function callback run under Engine::Exclusive, a virtual
//      AppendSink call) — it informs the analysis AND verifies at
//      runtime when checking is compiled in.
//
// The deployment-wide rank order (outermost first) is LockRank below;
// README "Concurrency & locking model" narrates it. Acquiring a lock
// whose rank is <= any rank already held by the thread is a hierarchy
// violation — including re-acquiring the same mutex.
//
// Checking is compiled in when ONEX_LOCK_ORDER_CHECKS is defined to 1
// (the default for sanitizer builds — see CMakeLists) and costs a
// thread-local push/pop per acquisition; without it the wrappers are
// zero-overhead shims over the std primitives.

#ifndef ONEX_UTIL_MUTEX_H_
#define ONEX_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

#ifndef ONEX_LOCK_ORDER_CHECKS
#define ONEX_LOCK_ORDER_CHECKS 0
#endif

namespace onex {

/// The lock-order hierarchy, outermost (acquired first) to innermost.
/// A thread may only acquire a mutex of STRICTLY GREATER rank than
/// every mutex it already holds. Ranks are spaced so future layers can
/// slot in between without renumbering the world.
///
/// The order encodes the real call chains of the serving stack:
///   - the catalog opens/evicts engines (and checkpoints dirty durable
///     victims) under its registry mutex, so catalog < checkpoint <
///     engine;
///   - an engine append (writer lock held) write-ahead logs through
///     the AppendSink into the WAL and pokes the checkpointer, so
///     engine < storage-cp;
///   - a query streams PART frames to the session socket from inside
///     Engine::Execute (reader lock held), so engine < session-write;
///   - metrics are recorded everywhere and call nothing, so metrics is
///     the innermost (leaf) rank.
/// Client-side locks live in their own (higher) band: a client runs in
/// the same process only in tests, and its threads never hold server
/// locks.
enum class LockRank : int {
  kServerSessions = 10,    ///< Server::sessions_mutex_
  kServerWatchdog = 12,    ///< Server::watchdog_mutex_
  kServerQueue = 15,       ///< Server::queue_mutex_
  kCatalog = 20,           ///< Catalog::mutex_
  kStorageCheckpoint = 30, ///< DurableEngine::checkpoint_mutex_
  kEngine = 40,            ///< Engine::rw_mutex_
  kStorageCp = 50,         ///< DurableEngine::cp_mutex_
  // Router band: below the session ranks (a merge callback holds its
  // op mutex while sending the merged frame downstream) and below the
  // client band (router threads submit upstream legs — Client locks —
  // while holding router state).
  kRouterTable = 44,       ///< router::RoutingTable::mutex_
  kRouterUpstream = 46,    ///< router::UpstreamPool link mutex
  kRouterMerge = 48,       ///< router::ScatterOp::mutex
  kSessionWrite = 52,      ///< Server::Session::write_mutex
  kSessionState = 54,      ///< Server::Session::mutex
  kMetrics = 60,           ///< ServerMetrics::mutex_
  kClientDemuxStart = 70,  ///< Client::demux_mutex_
  kClientSend = 72,        ///< Client::Demux::send_mutex
  kClientDemuxState = 74,  ///< Client::Demux::mutex
  kClientHandle = 76,      ///< Client::Handle::State::mutex
  kClientPending = 78,     ///< Client::Demux::Pending::mutex
  kLeaf = 100,             ///< Default: must be innermost everywhere.
};

namespace lock_debug {

/// Records an acquisition; aborts (with both lock names and the held
/// stack) when `rank` is not strictly greater than every held rank.
void PushHeld(const void* mutex, LockRank rank, const char* name);
/// Records a release.
void PopHeld(const void* mutex);
/// True when the calling thread recorded `mutex` as held.
bool Holds(const void* mutex);
/// Aborts unless the calling thread holds `mutex` (AssertHeld body).
void CheckHeld(const void* mutex, const char* name);

/// Crash-time export: every tracked thread's held-lock stack as a JSON
/// array onto `fd` ("[]" when lock-order checking never ran — stacks
/// are only populated when ONEX_LOCK_ORDER_CHECKS builds call
/// PushHeld). Async-signal-safe; reads of other threads' stacks are
/// torn-tolerant, which a flight recorder accepts and a debugger
/// would not.
void DumpHeldStacksSigSafe(int fd);

}  // namespace lock_debug

/// Annotated std::mutex. Use MutexLock to hold it scoped; Lock/Unlock
/// exist for the rare hand-over-hand pattern. The lowercase
/// lock/unlock BasicLockable surface exists for CondVar's internals
/// only and is invisible to the analysis on purpose — annotated code
/// must go through the capital-letter API or a scoped guard.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf, const char* name = "mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { LockImpl(); }
  void Unlock() RELEASE() { UnlockImpl(); }

  /// Tells the analysis the lock is held; verifies it at runtime when
  /// lock-order checking is compiled in. For callback boundaries.
  void AssertHeld() const ASSERT_CAPABILITY() {
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::CheckHeld(this, name_);
#endif
  }

  // BasicLockable for std::condition_variable_any (CondVar). Keeps the
  // rank bookkeeping consistent across a wait's unlock/relock without
  // exposing an annotated path the analysis would misread inside std
  // headers.
  void lock() NO_THREAD_SAFETY_ANALYSIS { LockImpl(); }
  void unlock() NO_THREAD_SAFETY_ANALYSIS { UnlockImpl(); }

 private:
  void LockImpl() {
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::PushHeld(this, rank_, name_);
#endif
    mu_.lock();
  }
  void UnlockImpl() {
    mu_.unlock();
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::PopHeld(this);
#endif
  }

  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Annotated std::shared_mutex (the Engine's reader/writer split).
/// Shared and exclusive holds occupy the same rank slot — a reader
/// acquiring a second lock obeys the same hierarchy as a writer.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kLeaf,
                       const char* name = "shared_mutex")
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::PushHeld(this, rank_, name_);
#endif
    mu_.lock();
  }
  void Unlock() RELEASE() {
    mu_.unlock();
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::PopHeld(this);
#endif
  }
  void LockShared() ACQUIRE_SHARED() {
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::PushHeld(this, rank_, name_);
#endif
    mu_.lock_shared();
  }
  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::PopHeld(this);
#endif
  }

  /// See Mutex::AssertHeld. The runtime check cannot tell shared from
  /// exclusive holds apart; the analysis can, and does.
  void AssertHeld() const ASSERT_CAPABILITY() {
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::CheckHeld(this, name_);
#endif
  }
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY() {
#if ONEX_LOCK_ORDER_CHECKS
    lock_debug::CheckHeld(this, name_);
#endif
  }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// Scoped exclusive hold of a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive (writer) hold of a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.UnlockShared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable over an annotated Mutex. No predicate overloads
/// on purpose: a `while (!pred) cv.Wait(mu);` loop keeps the predicate
/// body inside the caller, where the analysis can see the lock is held
/// — a predicate lambda would be analyzed as an unlocked function.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before
  /// returning. Caller must hold `mu` (and re-checks its predicate in
  /// a loop — spurious wakeups happen).
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Wait with a deadline; kTimeout when it passed without a notify.
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }
  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace onex

#endif  // ONEX_UTIL_MUTEX_H_

#include "util/logging.h"

#include "util/sigsafe.h"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace onex {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// JSON sink state. A plain std::mutex (not util/mutex) on purpose: the
// logger must be callable from ANY locking context — including lock-
// rank violation reports themselves — so it cannot participate in the
// rank hierarchy.
std::mutex g_json_mutex;
std::FILE* g_json_file = nullptr;  // nullptr = stderr.

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

/// UTC wall-clock timestamp, millisecond precision:
/// 2026-08-08T12:34:56.789Z
std::string IsoTimestamp() {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm tm{};
  gmtime_r(&ts.tv_sec, &tm);
  char buf[40];
  const size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03ldZ", ts.tv_nsec / 1000000);
  return buf;
}

/// Writes one complete line to the JSON sink in a single fwrite so
/// concurrent writers never interleave mid-line.
void WriteJsonSink(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_json_mutex);
  std::FILE* out = g_json_file != nullptr ? g_json_file : stderr;
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

// ------------------------------------------------ recent-log ring
//
// Flight-recorder buffer behind the logger: fixed slots, claimed with a
// fetch_add on the head (no lock anywhere), slot length published with
// a release store AFTER the bytes. Statically allocated so the crash
// handler can walk it without touching the heap. A writer lapping the
// ring while the handler reads produces a torn slot — acceptable; the
// dump escapes whatever bytes it finds.

struct LogRingSlot {
  char text[onex::internal::kLogRingSlotBytes];
  std::atomic<uint32_t> len{0};
  std::atomic<uint64_t> seq{0};  ///< Claim ticket, for ordering the dump.
};

LogRingSlot g_log_ring[onex::internal::kLogRingSlots];
std::atomic<uint64_t> g_log_ring_head{0};

void RecordToRing(const char* data, size_t len) {
  const uint64_t ticket = g_log_ring_head.fetch_add(1,
                                                    std::memory_order_relaxed);
  LogRingSlot& slot = g_log_ring[ticket % onex::internal::kLogRingSlots];
  const size_t n = len < sizeof(slot.text) ? len : sizeof(slot.text);
  slot.len.store(0, std::memory_order_release);  // Invalidate while torn.
  std::memcpy(slot.text, data, n);
  slot.seq.store(ticket + 1, std::memory_order_relaxed);
  slot.len.store(static_cast<uint32_t>(n), std::memory_order_release);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }

LogLevel GetLogLevel() { return g_level.load(); }

std::optional<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

bool InitLogLevelFromEnv() {
  const char* env = std::getenv("ONEX_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return true;
  const auto level = ParseLogLevel(env);
  if (!level) {
    LogMessage(LogLevel::kWarn,
               std::string("ONEX_LOG_LEVEL='") + env +
                   "' is not a level (debug|info|warn|error) — ignored");
    return false;
  }
  SetLogLevel(*level);
  return true;
}

bool SetJsonLogPath(const std::string& path) {
  std::FILE* file = nullptr;
  if (!path.empty()) {
    file = std::fopen(path.c_str(), "a");
    if (file == nullptr) {
      LogMessage(LogLevel::kWarn, "cannot open JSON log sink '" + path +
                                      "': " + std::strerror(errno));
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(g_json_mutex);
  if (g_json_file != nullptr) std::fclose(g_json_file);
  g_json_file = file;
  return true;
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[onex %s] %s\n", LevelName(level), message.c_str());
  {
    // Flight-recorder copy: "[LEVEL] message", truncated to slot size.
    std::string ring_line = "[";
    ring_line += LevelName(level);
    ring_line += "] ";
    ring_line += message;
    RecordToRing(ring_line.data(), ring_line.size());
  }
  // Mirror anomalies into the machine-readable stream — but only when a
  // file sink is configured; without one the stderr line above already
  // carries the information and a duplicate JSON copy is noise.
  if (static_cast<int>(level) >= static_cast<int>(LogLevel::kWarn)) {
    bool mirror;
    {
      std::lock_guard<std::mutex> lock(g_json_mutex);
      mirror = g_json_file != nullptr;
    }
    if (mirror) {
      std::string line = "{\"ts\":";
      internal::AppendJsonEscaped(&line, IsoTimestamp());
      line += ",\"level\":";
      internal::AppendJsonEscaped(&line, LevelName(level));
      line += ",\"msg\":";
      internal::AppendJsonEscaped(&line, message);
      line += "}\n";
      WriteJsonSink(line);
    }
  }
}

JsonLogLine::JsonLogLine(LogLevel level, const std::string& event)
    : enabled_(static_cast<int>(level) >= static_cast<int>(g_level.load())) {
  if (!enabled_) return;
  buf_ = "{\"ts\":";
  internal::AppendJsonEscaped(&buf_, IsoTimestamp());
  buf_ += ",\"level\":";
  internal::AppendJsonEscaped(&buf_, LevelName(level));
  buf_ += ",\"event\":";
  internal::AppendJsonEscaped(&buf_, event);
}

JsonLogLine& JsonLogLine::Str(const std::string& key,
                              const std::string& value) {
  if (!enabled_) return *this;
  buf_ += ',';
  internal::AppendJsonEscaped(&buf_, key);
  buf_ += ':';
  internal::AppendJsonEscaped(&buf_, value);
  return *this;
}

JsonLogLine& JsonLogLine::Num(const std::string& key, double value) {
  if (!enabled_) return *this;
  char num[32];
  std::snprintf(num, sizeof(num), "%.6g", value);
  buf_ += ',';
  internal::AppendJsonEscaped(&buf_, key);
  buf_ += ':';
  buf_ += num;
  return *this;
}

JsonLogLine& JsonLogLine::Int(const std::string& key, uint64_t value) {
  if (!enabled_) return *this;
  buf_ += ',';
  internal::AppendJsonEscaped(&buf_, key);
  buf_ += ':';
  buf_ += std::to_string(value);
  return *this;
}

JsonLogLine& JsonLogLine::Bool(const std::string& key, bool value) {
  if (!enabled_) return *this;
  buf_ += ',';
  internal::AppendJsonEscaped(&buf_, key);
  buf_ += ':';
  buf_ += value ? "true" : "false";
  return *this;
}

void JsonLogLine::Write() {
  if (!enabled_ || written_) return;
  written_ = true;
  buf_ += "}\n";
  // Structured events go into the flight-recorder ring too (without the
  // trailing newline — the dump renders one slot per array element).
  RecordToRing(buf_.data(), buf_.size() - 1);
  WriteJsonSink(buf_);
}

void DumpRecentLogSigSafe(int fd) {
  // Oldest surviving ticket first. head is the NEXT ticket; the ring
  // holds at most kLogRingSlots entries behind it.
  const uint64_t head = g_log_ring_head.load(std::memory_order_relaxed);
  const uint64_t window =
      head < onex::internal::kLogRingSlots ? head
                                           : onex::internal::kLogRingSlots;
  sigsafe::WriteStr(fd, "[");
  bool first = true;
  for (uint64_t ticket = head - window; ticket < head; ++ticket) {
    const LogRingSlot& slot =
        g_log_ring[ticket % onex::internal::kLogRingSlots];
    const uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0) continue;  // Never written, or mid-write.
    if (slot.seq.load(std::memory_order_relaxed) != ticket + 1) {
      continue;  // Lapped by a newer writer since we computed `head`.
    }
    if (!first) sigsafe::WriteStr(fd, ",");
    first = false;
    sigsafe::WriteStr(fd, "\"");
    const size_t n = len < onex::internal::kLogRingSlotBytes
                         ? len
                         : onex::internal::kLogRingSlotBytes;
    sigsafe::WriteJsonEscaped(fd, slot.text, n);
    sigsafe::WriteStr(fd, "\"");
  }
  sigsafe::WriteStr(fd, "]");
}

namespace internal {

void AppendJsonEscaped(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':  *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += esc;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace internal
}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Deterministic, seedable PRNG (xoshiro256++) plus the RANDOMIZE-IN-PLACE
// (Fisher–Yates, CLRS) shuffle that Algorithm 1 of the paper uses to remove
// data-order bias before group construction.

#ifndef ONEX_UTIL_RNG_H_
#define ONEX_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace onex {

/// xoshiro256++ generator. Deterministic across platforms for a given seed,
/// unlike std::mt19937 paired with std::uniform_* distributions.
class Rng {
 public:
  /// Seeds the state via splitmix64 so that nearby seeds diverge.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    // Debiased multiply-shift (Lemire). The retry loop is entered rarely.
    while (true) {
      uint64_t x = Next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      uint64_t lo = static_cast<uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box–Muller; caches the second variate of each pair.
  double NextGaussian() {
    if (have_cached_gaussian_) {
      have_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Gaussian with explicit mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// RANDOMIZE-IN-PLACE from CLRS: uniformly random permutation of `items`.
/// Paper Algorithm 1 applies this to the subsequence list of each length.
template <typename T>
void RandomizeInPlace(std::vector<T>* items, Rng* rng) {
  if (items->size() < 2) return;
  for (size_t i = items->size() - 1; i > 0; --i) {
    size_t j = static_cast<size_t>(rng->Uniform(i + 1));
    using std::swap;
    swap((*items)[i], (*items)[j]);
  }
}

}  // namespace onex

#endif  // ONEX_UTIL_RNG_H_

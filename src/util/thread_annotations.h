// Copyright 2026 The ONEX Reproduction Authors.
// Clang Thread Safety Analysis macros: compile-time proof that every
// access to a guarded member happens under its lock, on every path —
// not just the interleavings a TSan run happens to execute. The serving
// stack's locking discipline (see README "Concurrency & locking model")
// is written in these annotations and enforced by the `thread-safety`
// CI job, which builds all of src/ under clang with
// -Werror=thread-safety.
//
// Under compilers without the attributes (gcc), every macro expands to
// nothing — the annotations are documentation there, and the clang CI
// job is the proof.
//
// Conventions for new code:
//   - Every mutable member shared between threads is GUARDED_BY (or
//     PT_GUARDED_BY for the pointee of a stable smart pointer) one of
//     the annotated onex::Mutex / onex::SharedMutex wrappers
//     (util/mutex.h) — never a raw std primitive.
//   - Private helpers that assume the lock is held are named
//     `*Locked()` and annotated REQUIRES(mutex) /
//     REQUIRES_SHARED(mutex).
//   - Code that receives the lock through an untyped boundary (a
//     std::function callback run under the lock, a virtual call) calls
//     mutex.AssertHeld() first — which both informs the analysis and,
//     with lock-order checking compiled in, verifies at runtime.
//   - NO_THREAD_SAFETY_ANALYSIS is a last resort and always carries a
//     comment naming the external contract that makes it sound.

#ifndef ONEX_UTIL_THREAD_ANNOTATIONS_H_
#define ONEX_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define ONEX_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ONEX_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define CAPABILITY(x) ONEX_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY ONEX_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only with capability `x` held
/// (exclusively for writes, at least shared for reads).
#define GUARDED_BY(x) ONEX_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose POINTEE is protected by `x` (the pointer itself
/// may be read freely — right for a stable unique_ptr allocated at
/// construction).
#define PT_GUARDED_BY(x) ONEX_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares lock-order edges checked by the analysis.
#define ACQUIRED_BEFORE(...) ONEX_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) ONEX_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function precondition: caller must hold the capability (exclusively
/// / at least shared). The `*Locked()` helper annotation.
#define REQUIRES(...) \
  ONEX_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  ONEX_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) ONEX_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  ONEX_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (generic RELEASE also releases a
/// shared hold — what a scoped guard's destructor wants).
#define RELEASE(...) ONEX_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  ONEX_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  ONEX_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `b`.
#define TRY_ACQUIRE(...) \
  ONEX_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  ONEX_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock
/// guard on public entry points that take the lock themselves).
#define EXCLUDES(...) ONEX_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held; tells the analysis
/// so on the fall-through path. The escape hatch for callbacks run
/// under a lock acquired on the other side of a std::function.
#define ASSERT_CAPABILITY(...) \
  ONEX_THREAD_ANNOTATION__(assert_capability(__VA_ARGS__))
#define ASSERT_SHARED_CAPABILITY(...) \
  ONEX_THREAD_ANNOTATION__(assert_shared_capability(__VA_ARGS__))

/// Function returns a reference to the capability named (lets an
/// accessor stand in for a private mutex in annotations).
#define RETURN_CAPABILITY(x) ONEX_THREAD_ANNOTATION__(lock_returned(x))

/// Disables the analysis for one function. Always pair with a comment
/// naming the contract that makes the unchecked access sound.
#define NO_THREAD_SAFETY_ANALYSIS \
  ONEX_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // ONEX_UTIL_THREAD_ANNOTATIONS_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Minimal leveled logger writing to stderr. Library code logs sparingly
// (construction progress at INFO, anomalies at WARN); benches may raise the
// threshold to keep output machine-parsable.
//
// Structured output: alongside the human-readable stderr lines there is
// an optional JSON-lines sink (SetJsonLogPath). When enabled, WARN-and-
// above text logs are mirrored into it as timestamped JSON objects, and
// callers can emit fully structured events through JsonLogLine — the
// server's slow-query log rides on this. Each line is one self-contained
// JSON object: `{"ts":"<ISO8601>","level":"WARN","event":...,<fields>}`.
//
// The threshold comes from SetLogLevel, the ONEX_LOG_LEVEL environment
// variable (InitLogLevelFromEnv), or a binary's --log-level flag.

#ifndef ONEX_UTIL_LOGGING_H_
#define ONEX_UTIL_LOGGING_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

namespace onex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// "debug" / "info" / "warn" / "error" (case-insensitive); nullopt for
/// anything else.
std::optional<LogLevel> ParseLogLevel(const std::string& name);

/// Applies ONEX_LOG_LEVEL from the environment when set and valid;
/// returns false (and warns) when set to an unparsable value.
bool InitLogLevelFromEnv();

/// Routes JSON-lines output to `path` (append mode, one write per
/// line). An empty path reverts to stderr — the default. Returns false
/// when the file cannot be opened (the previous sink stays in effect).
bool SetJsonLogPath(const std::string& path);

/// Emits one formatted line to stderr if `level` passes the threshold.
/// WARN and above are mirrored to the JSON sink (when one is set) as
/// `{"ts":...,"level":...,"msg":...}` so operational anomalies and the
/// slow-query log land in the same machine-readable stream.
void LogMessage(LogLevel level, const std::string& message);

/// Every line that passes the threshold (stderr or JSON sink) is also
/// copied into a fixed-size in-memory ring — the flight recorder's
/// "what was the process saying just before it died" section. Lock-free
/// claim (fetch_add on the head) + per-slot release-published length;
/// a slot being overwritten during a crash dump yields a torn line,
/// which the dump JSON-escapes rather than trusts.
///
/// DumpRecentLogSigSafe emits the ring's surviving lines (oldest
/// first) as a JSON array of strings onto `fd`. Async-signal-safe.
void DumpRecentLogSigSafe(int fd);

namespace internal {
/// Ring geometry, exported for the logging test.
inline constexpr size_t kLogRingSlots = 256;
inline constexpr size_t kLogRingSlotBytes = 240;
}  // namespace internal

/// One structured JSON log line, emitted on Write() (or destruction).
/// Field order is insertion order; `ts` and `level` are prepended
/// automatically. Dropped entirely when `level` is below the threshold,
/// so building one is cheap in the common (fast-query) case.
///
///   JsonLogLine(LogLevel::kWarn, "slow_query")
///       .Str("kind", "q1").Num("total_ms", 812.4).Write();
class JsonLogLine {
 public:
  JsonLogLine(LogLevel level, const std::string& event);
  ~JsonLogLine() { Write(); }
  JsonLogLine(const JsonLogLine&) = delete;
  JsonLogLine& operator=(const JsonLogLine&) = delete;

  JsonLogLine& Str(const std::string& key, const std::string& value);
  JsonLogLine& Num(const std::string& key, double value);
  JsonLogLine& Int(const std::string& key, uint64_t value);
  JsonLogLine& Bool(const std::string& key, bool value);

  /// Emits the line to the JSON sink. Idempotent; a second call (or the
  /// destructor after an explicit Write) is a no-op.
  void Write();

 private:
  bool enabled_;
  bool written_ = false;
  std::string buf_;
};

namespace internal {

/// Appends a JSON string literal (quotes + escapes) to `out`.
void AppendJsonEscaped(std::string* out, const std::string& value);

/// Stream-style collector that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace onex

#define ONEX_LOG_DEBUG ::onex::internal::LogStream(::onex::LogLevel::kDebug)
#define ONEX_LOG_INFO ::onex::internal::LogStream(::onex::LogLevel::kInfo)
#define ONEX_LOG_WARN ::onex::internal::LogStream(::onex::LogLevel::kWarn)
#define ONEX_LOG_ERROR ::onex::internal::LogStream(::onex::LogLevel::kError)

#endif  // ONEX_UTIL_LOGGING_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Minimal leveled logger writing to stderr. Library code logs sparingly
// (construction progress at INFO, anomalies at WARN); benches may raise the
// threshold to keep output machine-parsable.

#ifndef ONEX_UTIL_LOGGING_H_
#define ONEX_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace onex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace onex

#define ONEX_LOG_DEBUG ::onex::internal::LogStream(::onex::LogLevel::kDebug)
#define ONEX_LOG_INFO ::onex::internal::LogStream(::onex::LogLevel::kInfo)
#define ONEX_LOG_WARN ::onex::internal::LogStream(::onex::LogLevel::kWarn)
#define ONEX_LOG_ERROR ::onex::internal::LogStream(::onex::LogLevel::kError)

#endif  // ONEX_UTIL_LOGGING_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Fixed-capacity monotonic index deque: the core of Lemire's streaming
// min/max algorithm that computes LB_Keogh envelopes in O(n) (distance
// substrate, envelope.cc).

#ifndef ONEX_UTIL_MONOTONIC_DEQUE_H_
#define ONEX_UTIL_MONOTONIC_DEQUE_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace onex {

/// Ring-buffer deque of indices with O(1) push/pop at both ends.
/// Capacity is fixed at construction; callers guarantee it is never
/// exceeded (for envelopes, capacity = 2 * window + 2 suffices).
class MonotonicDeque {
 public:
  explicit MonotonicDeque(size_t capacity)
      : buffer_(capacity + 1), capacity_(capacity + 1) {}

  bool Empty() const { return head_ == tail_; }

  size_t Size() const {
    return (tail_ + capacity_ - head_) % capacity_;
  }

  void PushBack(size_t index) {
    buffer_[tail_] = index;
    tail_ = (tail_ + 1) % capacity_;
    assert(tail_ != head_ && "MonotonicDeque overflow");
  }

  void PopBack() {
    assert(!Empty());
    tail_ = (tail_ + capacity_ - 1) % capacity_;
  }

  void PopFront() {
    assert(!Empty());
    head_ = (head_ + 1) % capacity_;
  }

  size_t Front() const {
    assert(!Empty());
    return buffer_[head_];
  }

  size_t Back() const {
    assert(!Empty());
    return buffer_[(tail_ + capacity_ - 1) % capacity_];
  }

  void Clear() { head_ = tail_ = 0; }

 private:
  std::vector<size_t> buffer_;
  size_t capacity_;
  size_t head_ = 0;
  size_t tail_ = 0;
};

}  // namespace onex

#endif  // ONEX_UTIL_MONOTONIC_DEQUE_H_

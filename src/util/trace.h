// Copyright 2026 The ONEX Reproduction Authors.
// Zero-dependency tracing core: RAII spans over steady-clock time,
// recorded into lock-free per-thread ring buffers, plus a registry of
// named monotonic counters — exported together as Chrome trace_event
// JSON (chrome://tracing, Perfetto) via WriteChromeTrace.
//
// Cost model: when tracing is disabled (the default), a Span is one
// relaxed atomic load and a branch; a Counter::Add is one relaxed
// fetch_add. Enabled, a span adds two steady_clock reads and one store
// into a fixed-size ring. Nothing allocates on the hot path and no
// lock is ever taken while recording — the registry mutex is touched
// only on a thread's FIRST span (ring registration) and during export.
//
// Concurrency: each ring has exactly one writer (its owning thread);
// the head index is published with release stores so an exporter
// reading at quiescence (threads joined, or server stopped) sees every
// event. Exporting while writers are live is safe (no UB on the index;
// slots are read as plain data) but may observe a torn in-flight
// event; callers export after Stop()/join, as onex_server does.
//
// Rings deliberately outlive their threads: a worker that exits before
// export must not take its events with it. Reset() (tests) rewinds
// every ring and zeroes counters without invalidating thread-local
// pointers.

#ifndef ONEX_UTIL_TRACE_H_
#define ONEX_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

namespace onex {
namespace trace {

/// Turns recording on/off globally. Off, spans and counter reads still
/// work (counters always count; spans become a load+branch no-op).
void SetEnabled(bool enabled);
bool Enabled();

/// One completed span. `name` must be a string literal (stored by
/// pointer; the exporter reads it long after the span ends).
struct SpanEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;     ///< Steady-clock ns since process start.
  uint64_t duration_ns = 0;
  uint32_t tid = 0;          ///< Sequential trace thread id (1-based).
  uint32_t depth = 0;        ///< Nesting depth at entry (0 = top level).
};

/// Per-thread event ring: fixed capacity, single writer, wraparound
/// overwrites the oldest events (pushed() keeps the true total so
/// tests and the exporter can report drops).
inline constexpr uint64_t kRingCapacity = 4096;

/// RAII span. Records [construction, destruction) into the calling
/// thread's ring iff tracing was enabled at construction.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
  bool active_;
};

#define ONEX_TRACE_CONCAT_INNER(a, b) a##b
#define ONEX_TRACE_CONCAT(a, b) ONEX_TRACE_CONCAT_INNER(a, b)
/// Scoped span covering the rest of the enclosing block.
#define ONEX_TRACE_SPAN(name) \
  ::onex::trace::Span ONEX_TRACE_CONCAT(onex_trace_span_, __LINE__)(name)

/// Named monotonic counter. Construct as a function-local static (the
/// registry keeps a pointer forever); Add() is a relaxed fetch_add and
/// is safe from any thread, signal-handler-free code only.
class Counter {
 public:
  explicit Counter(const char* name);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const char* name() const { return name_; }

  /// Tests only: rewinds to zero (Reset() calls this for every
  /// registered counter).
  void Clear() { value_.store(0, std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time totals across all rings (tests, --trace-out summary).
struct TraceStats {
  uint64_t threads = 0;   ///< Rings registered (threads that ever span'd).
  uint64_t recorded = 0;  ///< Events currently resident in rings.
  uint64_t pushed = 0;    ///< Events ever pushed (>= recorded on wrap).
  uint64_t dropped = 0;   ///< pushed - recorded: overwritten by wraparound.
  uint64_t counters = 0;  ///< Registered counters.
};
TraceStats GetStats();

/// Chrome trace_event JSON ("X" complete events, ts/dur in
/// microseconds) for every resident span plus one metadata-style
/// counter event per registered counter. Stable output: events sorted
/// by (start, tid). Returns the number of span events written.
uint64_t WriteChromeTrace(std::ostream& out);

/// WriteChromeTrace to a file path. IOError semantics via return:
/// false when the file cannot be opened or the write fails.
bool WriteChromeTraceFile(const std::string& path);

/// Tests: rewind every ring and zero every counter. Not thread-safe
/// against concurrent recording; call at quiescence.
void Reset();

/// Crash-time export: emits the newest `max_per_ring` resident spans of
/// every ring as a JSON array onto `fd`, without the registry mutex —
/// the rings are reached through a lock-free intrusive list built at
/// registration. Async-signal-safe (write(2) only); live writers may
/// tear the newest slot of their ring, nothing worse.
void DumpRingTailsSigSafe(int fd, uint64_t max_per_ring);

}  // namespace trace
}  // namespace onex

#endif  // ONEX_UTIL_TRACE_H_

// Copyright 2026 The ONEX Reproduction Authors.
// RocksDB-style Status / Result error handling. The library never throws;
// fallible operations (I/O, configuration validation) return Status or
// Result<T>, hot paths use assertions only.

#ifndef ONEX_UTIL_STATUS_H_
#define ONEX_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace onex {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  /// Error categories. Kept deliberately small; the message carries detail.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kIOError,
    kCorruption,
    kOutOfRange,
    kNotSupported,
    /// The caller's CancelToken fired while the operation was running.
    kCancelled,
    /// The caller's ExecContext deadline passed mid-operation.
    kDeadlineExceeded,
  };

  /// Default-constructed Status is OK.
  Status() = default;

  /// Named constructors, mirroring rocksdb::Status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  /// True for the two interruption codes an ExecContext can raise —
  /// the "stopped early, partial results may exist" family, as opposed
  /// to genuine failures.
  bool interrupted() const {
    return code_ == Code::kCancelled || code_ == Code::kDeadlineExceeded;
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }

  /// Human-readable description, e.g. "IOError: cannot open foo.tsv".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string prefix;
    switch (code_) {
      case Code::kInvalidArgument: prefix = "InvalidArgument"; break;
      case Code::kNotFound:        prefix = "NotFound"; break;
      case Code::kIOError:         prefix = "IOError"; break;
      case Code::kCorruption:      prefix = "Corruption"; break;
      case Code::kOutOfRange:      prefix = "OutOfRange"; break;
      case Code::kNotSupported:    prefix = "NotSupported"; break;
      case Code::kCancelled:       prefix = "Cancelled"; break;
      case Code::kDeadlineExceeded: prefix = "DeadlineExceeded"; break;
      case Code::kOk:              prefix = "OK"; break;
    }
    return message_.empty() ? prefix : prefix + ": " + message_;
  }

  const std::string& message() const { return message_; }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// A value or an error. Minimal expected<T, Status> for C++20 without
/// std::expected. Access to value() requires ok().
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_t;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status: `return Status::IOError(...)`.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result from Status requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or a fallback when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace onex

#endif  // ONEX_UTIL_STATUS_H_

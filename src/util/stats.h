// Copyright 2026 The ONEX Reproduction Authors.
// Streaming statistics accumulators used by the bench harnesses to report
// averaged timings and accuracies, matching the paper's "averaged over
// multiple runs" methodology (Sec. 6.2).

#ifndef ONEX_UTIL_STATS_H_
#define ONEX_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace onex {

/// Welford-style running mean / variance plus min and max.
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples to answer percentile queries; used where the
/// harnesses report medians or tail behaviour.
class SampleSet {
 public:
  void Add(double x) { samples_.push_back(x); }

  size_t count() const { return samples_.size(); }
  double mean() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double Min() const;
  double Max() const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace onex

#endif  // ONEX_UTIL_STATS_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Async-signal-safe output helpers for the crash-time flight recorder.
// Everything here is restricted to the POSIX async-signal-safe surface:
// write(2) only — no allocation, no locks, no stdio, no formatting
// library. The dump sections (recent-log ring, in-flight table, trace
// tails, held-lock stacks) live next to their data structures; this
// header is the shared vocabulary they emit JSON with.
//
// All writers ignore short writes' residue beyond retrying EINTR: a
// crash dump that loses its tail to a full disk is still better than a
// handler that loops forever inside a dying process.

#ifndef ONEX_UTIL_SIGSAFE_H_
#define ONEX_UTIL_SIGSAFE_H_

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>

namespace onex {
namespace sigsafe {

/// write(2) with EINTR retry. Returns false once the fd stops accepting
/// bytes (callers keep emitting; subsequent writes fail fast).
inline bool WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

inline size_t StrLen(const char* s) {
  size_t n = 0;
  while (s[n] != '\0') ++n;
  return n;
}

/// NUL-terminated literal/buffer.
inline void WriteStr(int fd, const char* s) { WriteAll(fd, s, StrLen(s)); }

/// Unsigned decimal, no allocation (21 bytes covers 2^64).
inline void WriteU64(int fd, uint64_t v) {
  char buf[21];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  WriteAll(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

inline void WriteI64(int fd, int64_t v) {
  if (v < 0) {
    WriteStr(fd, "-");
    // Negate via unsigned arithmetic so INT64_MIN does not overflow.
    WriteU64(fd, ~static_cast<uint64_t>(v) + 1);
  } else {
    WriteU64(fd, static_cast<uint64_t>(v));
  }
}

/// 0x-prefixed lower-case hex (pointer-sized values in fault reports).
inline void WriteHex(int fd, uint64_t v) {
  char buf[18];
  char* p = buf + sizeof(buf);
  do {
    const int digit = static_cast<int>(v & 0xF);
    *--p = static_cast<char>(digit < 10 ? '0' + digit : 'a' + digit - 10);
    v >>= 4;
  } while (v != 0);
  WriteStr(fd, "0x");
  WriteAll(fd, p, static_cast<size_t>(buf + sizeof(buf) - p));
}

/// JSON string body (no surrounding quotes): escapes the two mandatory
/// classes (quote, backslash) plus control bytes as \u00XX, so torn or
/// binary ring slots can never break the dump's parseability.
inline void WriteJsonEscaped(int fd, const char* s, size_t len) {
  size_t start = 0;
  for (size_t i = 0; i < len; ++i) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '"' || c == '\\' || c < 0x20) {
      if (i > start) WriteAll(fd, s + start, i - start);
      if (c == '"') {
        WriteStr(fd, "\\\"");
      } else if (c == '\\') {
        WriteStr(fd, "\\\\");
      } else if (c == '\n') {
        WriteStr(fd, "\\n");
      } else {
        static const char kHex[] = "0123456789abcdef";
        char esc[6] = {'\\', 'u', '0', '0', kHex[c >> 4], kHex[c & 0xF]};
        WriteAll(fd, esc, sizeof(esc));
      }
      start = i + 1;
    }
  }
  if (len > start) WriteAll(fd, s + start, len - start);
}

}  // namespace sigsafe
}  // namespace onex

#endif  // ONEX_UTIL_SIGSAFE_H_

// Copyright 2026 The ONEX Reproduction Authors.
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
// guarding every write-ahead-log record (src/storage/wal.h). Table-driven,
// one byte per step; fast enough for WAL payloads (appends are rare next
// to queries) without pulling in hardware intrinsics.

#ifndef ONEX_UTIL_CRC32_H_
#define ONEX_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace onex {

/// CRC-32 of `bytes[0..n)`. Equals zlib's crc32(0, bytes, n).
uint32_t Crc32(const void* bytes, size_t n);

/// Incremental form: feeds `bytes[0..n)` into a running checksum, so a
/// record's header and payload can be checksummed without concatenation.
/// Start from 0: Crc32Update(Crc32Update(0, a, na), b, nb) ==
/// Crc32(concat(a, b)).
uint32_t Crc32Update(uint32_t crc, const void* bytes, size_t n);

}  // namespace onex

#endif  // ONEX_UTIL_CRC32_H_

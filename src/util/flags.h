// Copyright 2026 The ONEX Reproduction Authors.
// Tiny command-line flag parser for the bench/ and examples/ binaries.
// Supports --name=value and --name value forms plus boolean --name.

#ifndef ONEX_UTIL_FLAGS_H_
#define ONEX_UTIL_FLAGS_H_

#include <map>
#include <string>

namespace onex {

/// Parsed command line. Unknown flags are retained (benches share a pool
/// of common flags); positional arguments are ignored by design.
class Flags {
 public:
  /// Parses argv. Flags look like --key=value, --key value, or --key.
  Flags(int argc, char** argv);

  /// True if --name was present (with or without a value).
  bool Has(const std::string& name) const;

  /// Typed getters with defaults.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace onex

#endif  // ONEX_UTIL_FLAGS_H_

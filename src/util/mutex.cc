// Copyright 2026 The ONEX Reproduction Authors.
// Lock-order hierarchy checking (util/mutex.h). Per-thread bookkeeping
// of held annotated mutexes; a rank inversion aborts immediately with
// both lock names and the thread's full held stack — a deterministic
// crash at the acquisition site instead of a probabilistic deadlock in
// production.

#include "util/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace onex {
namespace lock_debug {

namespace {

/// One thread's held annotated locks, acquisition order. Fixed-size:
/// the deepest legal chain today is four (session -> catalog ->
/// checkpoint -> engine -> storage-cp); 16 leaves headroom. Entries
/// past capacity are counted but not tracked (never aborts on depth).
struct HeldStack {
  static constexpr int kCapacity = 16;
  struct Entry {
    const void* mutex;
    LockRank rank;
    const char* name;
  };
  Entry entries[kCapacity];
  int size = 0;
  int overflow = 0;
};

thread_local HeldStack tls_held;

[[noreturn]] void Die(const char* what, const char* name, LockRank rank) {
  std::fprintf(stderr,
               "onex lock-order violation: %s '%s' (rank %d); held locks "
               "(acquisition order):\n",
               what, name, static_cast<int>(rank));
  for (int i = 0; i < tls_held.size; ++i) {
    std::fprintf(stderr, "  [%d] '%s' (rank %d)\n", i,
                 tls_held.entries[i].name,
                 static_cast<int>(tls_held.entries[i].rank));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void PushHeld(const void* mutex, LockRank rank, const char* name) {
  HeldStack& held = tls_held;
  for (int i = 0; i < held.size; ++i) {
    if (held.entries[i].mutex == mutex) {
      Die("recursive acquisition of", name, rank);
    }
    if (held.entries[i].rank >= rank) {
      std::fprintf(stderr,
                   "onex lock-order violation: acquiring '%s' (rank %d) "
                   "while holding '%s' (rank %d) — hierarchy requires "
                   "strictly increasing ranks\n",
                   name, static_cast<int>(rank), held.entries[i].name,
                   static_cast<int>(held.entries[i].rank));
      Die("acquiring", name, rank);
    }
  }
  if (held.size >= HeldStack::kCapacity) {
    ++held.overflow;
    return;
  }
  held.entries[held.size++] = {mutex, rank, name};
}

void PopHeld(const void* mutex) {
  HeldStack& held = tls_held;
  // Releases are almost always LIFO; scan backwards for the rare
  // hand-over-hand pattern.
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.entries[i].mutex != mutex) continue;
    for (int j = i; j + 1 < held.size; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.size;
    return;
  }
  if (held.overflow > 0) --held.overflow;  // Untracked past capacity.
}

bool Holds(const void* mutex) {
  const HeldStack& held = tls_held;
  for (int i = 0; i < held.size; ++i) {
    if (held.entries[i].mutex == mutex) return true;
  }
  return false;
}

void CheckHeld(const void* mutex, const char* name) {
  if (Holds(mutex)) return;
  // A shared_mutex held SHARED by many threads records per-thread, so
  // this is exact: the calling thread itself did not acquire it.
  std::fprintf(stderr,
               "onex lock assertion failed: '%s' is not held by the "
               "calling thread\n",
               name);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lock_debug
}  // namespace onex

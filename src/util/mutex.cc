// Copyright 2026 The ONEX Reproduction Authors.
// Lock-order hierarchy checking (util/mutex.h). Per-thread bookkeeping
// of held annotated mutexes; a rank inversion aborts immediately with
// both lock names and the thread's full held stack — a deterministic
// crash at the acquisition site instead of a probabilistic deadlock in
// production.

#include "util/mutex.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/sigsafe.h"

#if defined(__linux__)
#include <sys/syscall.h>
#endif

namespace onex {
namespace lock_debug {

namespace {

/// One thread's held annotated locks, acquisition order. Fixed-size:
/// the deepest legal chain today is four (session -> catalog ->
/// checkpoint -> engine -> storage-cp); 16 leaves headroom. Entries
/// past capacity are counted but not tracked (never aborts on depth).
struct HeldStack {
  static constexpr int kCapacity = 16;
  struct Entry {
    const void* mutex;
    LockRank rank;
    const char* name;
  };
  Entry entries[kCapacity];
  int size = 0;
  int overflow = 0;
  uint64_t tid = 0;  ///< Kernel thread id, recorded at registration.
};

// Held stacks are heap-allocated, LEAKED, and threaded onto a fixed
// lock-free table so the crash-time flight recorder can print what
// every thread held at the moment of death. Leaking is load-bearing
// twice over: an exited thread's stack must stay readable (the handler
// may fire during teardown), and thread_local storage itself would be
// reclaimed by the runtime. The owning thread is the only writer;
// handler reads are torn-tolerant (sizes clamped, names are literals).
constexpr size_t kMaxTrackedThreads = 256;
std::atomic<HeldStack*> g_stacks[kMaxTrackedThreads];
std::atomic<size_t> g_stack_count{0};

uint64_t CurrentTid() {
#if defined(__linux__)
  return static_cast<uint64_t>(::syscall(SYS_gettid));
#else
  return static_cast<uint64_t>(::getpid());
#endif
}

HeldStack* CreateRegisteredStack() {
  HeldStack* stack = new HeldStack();  // Leaked by design (see above).
  stack->tid = CurrentTid();
  const size_t index = g_stack_count.fetch_add(1, std::memory_order_relaxed);
  if (index < kMaxTrackedThreads) {
    g_stacks[index].store(stack, std::memory_order_release);
  }
  return stack;
}

HeldStack& Held() {
  thread_local HeldStack* stack = CreateRegisteredStack();
  return *stack;
}

[[noreturn]] void Die(const char* what, const char* name, LockRank rank) {
  const HeldStack& held = Held();
  std::fprintf(stderr,
               "onex lock-order violation: %s '%s' (rank %d); held locks "
               "(acquisition order):\n",
               what, name, static_cast<int>(rank));
  for (int i = 0; i < held.size; ++i) {
    std::fprintf(stderr, "  [%d] '%s' (rank %d)\n", i,
                 held.entries[i].name,
                 static_cast<int>(held.entries[i].rank));
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void PushHeld(const void* mutex, LockRank rank, const char* name) {
  HeldStack& held = Held();
  for (int i = 0; i < held.size; ++i) {
    if (held.entries[i].mutex == mutex) {
      Die("recursive acquisition of", name, rank);
    }
    if (held.entries[i].rank >= rank) {
      std::fprintf(stderr,
                   "onex lock-order violation: acquiring '%s' (rank %d) "
                   "while holding '%s' (rank %d) — hierarchy requires "
                   "strictly increasing ranks\n",
                   name, static_cast<int>(rank), held.entries[i].name,
                   static_cast<int>(held.entries[i].rank));
      Die("acquiring", name, rank);
    }
  }
  if (held.size >= HeldStack::kCapacity) {
    ++held.overflow;
    return;
  }
  held.entries[held.size++] = {mutex, rank, name};
}

void PopHeld(const void* mutex) {
  HeldStack& held = Held();
  // Releases are almost always LIFO; scan backwards for the rare
  // hand-over-hand pattern.
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.entries[i].mutex != mutex) continue;
    for (int j = i; j + 1 < held.size; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.size;
    return;
  }
  if (held.overflow > 0) --held.overflow;  // Untracked past capacity.
}

bool Holds(const void* mutex) {
  const HeldStack& held = Held();
  for (int i = 0; i < held.size; ++i) {
    if (held.entries[i].mutex == mutex) return true;
  }
  return false;
}

void DumpHeldStacksSigSafe(int fd) {
  using sigsafe::WriteStr;
  using sigsafe::WriteU64;
  WriteStr(fd, "[");
  size_t count = g_stack_count.load(std::memory_order_acquire);
  if (count > kMaxTrackedThreads) count = kMaxTrackedThreads;
  bool first_stack = true;
  for (size_t i = 0; i < count; ++i) {
    const HeldStack* stack = g_stacks[i].load(std::memory_order_acquire);
    if (stack == nullptr) continue;
    // Torn-tolerant read of another thread's bookkeeping: clamp the
    // size, and skip threads holding nothing (the common case).
    int size = stack->size;
    if (size < 0) size = 0;
    if (size > HeldStack::kCapacity) size = HeldStack::kCapacity;
    if (size == 0) continue;
    if (!first_stack) WriteStr(fd, ",");
    first_stack = false;
    WriteStr(fd, "{\"tid\":");
    WriteU64(fd, stack->tid);
    WriteStr(fd, ",\"locks\":[");
    for (int j = 0; j < size; ++j) {
      const char* name = stack->entries[j].name;
      if (j > 0) WriteStr(fd, ",");
      WriteStr(fd, "{\"name\":\"");
      if (name != nullptr) {
        sigsafe::WriteJsonEscaped(fd, name, sigsafe::StrLen(name));
      }
      WriteStr(fd, "\",\"rank\":");
      WriteU64(fd, static_cast<uint64_t>(stack->entries[j].rank));
      WriteStr(fd, "}");
    }
    WriteStr(fd, "]}");
  }
  WriteStr(fd, "]");
}

void CheckHeld(const void* mutex, const char* name) {
  if (Holds(mutex)) return;
  // A shared_mutex held SHARED by many threads records per-thread, so
  // this is exact: the calling thread itself did not acquire it.
  std::fprintf(stderr,
               "onex lock assertion failed: '%s' is not held by the "
               "calling thread\n",
               name);
  std::fflush(stderr);
  std::abort();
}

}  // namespace lock_debug
}  // namespace onex

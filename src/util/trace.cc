// Copyright 2026 The ONEX Reproduction Authors.
// Tracing core implementation. See trace.h for the cost/concurrency
// contract. The only lock here is the registry mutex, ranked kLeaf so
// a thread's first span may fire while any other lock in the system is
// held (spans wrap engine scans, WAL appends, checkpoint bodies).

#include "util/trace.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "util/mutex.h"
#include "util/sigsafe.h"
#include "util/thread_annotations.h"

namespace onex {
namespace trace {

namespace {

std::atomic<bool> g_enabled{false};

/// Steady-clock ns since the first call (process-lifetime epoch keeps
/// exported timestamps small and chrome://tracing happy).
uint64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

struct Ring {
  std::array<SpanEvent, kRingCapacity> slots;
  /// Total events ever pushed; the live slot is head % kRingCapacity.
  /// Release on store / acquire on load publishes completed slots to a
  /// quiescent exporter.
  std::atomic<uint64_t> head{0};
  uint32_t tid = 0;
  /// Lock-free intrusive list for the crash handler: the registry mutex
  /// cannot be taken from a signal context, so rings are ALSO threaded
  /// onto an atomic singly-linked list at registration time.
  Ring* next = nullptr;
};

std::atomic<Ring*> g_ring_list_head{nullptr};

void PushRingList(Ring* ring) {
  Ring* head = g_ring_list_head.load(std::memory_order_relaxed);
  do {
    ring->next = head;
  } while (!g_ring_list_head.compare_exchange_weak(
      head, ring, std::memory_order_release, std::memory_order_relaxed));
}

/// Registry of every ring and counter ever created. Rings are never
/// destroyed (threads exit; their events must not), so raw pointers
/// handed to thread-locals stay valid for the process lifetime.
struct Registry {
  Mutex mutex{LockRank::kLeaf, "trace.registry"};
  std::vector<std::unique_ptr<Ring>> rings GUARDED_BY(mutex);
  std::vector<Counter*> counters GUARDED_BY(mutex);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives threads.
  return *registry;
}

struct ThreadState {
  Ring* ring = nullptr;
  uint32_t depth = 0;
};

ThreadState& LocalState() {
  thread_local ThreadState state;
  if (state.ring == nullptr) {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mutex);
    auto ring = std::make_unique<Ring>();
    ring->tid = static_cast<uint32_t>(registry.rings.size() + 1);
    state.ring = ring.get();
    PushRingList(ring.get());
    registry.rings.push_back(std::move(ring));
  }
  return state;
}

void Push(Ring* ring, const SpanEvent& event) {
  const uint64_t head = ring->head.load(std::memory_order_relaxed);
  ring->slots[head % kRingCapacity] = event;
  ring->head.store(head + 1, std::memory_order_release);
}

/// JSON string escaping for span/counter names. Names are literals in
/// practice, but the exporter must emit valid JSON regardless.
void AppendJsonString(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

void SetEnabled(bool enabled) {
  if (enabled) NowNs();  // Pin the epoch before the first span.
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

Span::Span(const char* name)
    : name_(name), start_ns_(0), active_(Enabled()) {
  if (!active_) return;
  start_ns_ = NowNs();
  ++LocalState().depth;
}

Span::~Span() {
  if (!active_) return;
  ThreadState& state = LocalState();
  --state.depth;
  SpanEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = NowNs() - start_ns_;
  event.tid = state.ring->tid;
  event.depth = state.depth;
  Push(state.ring, event);
}

Counter::Counter(const char* name) : name_(name) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  registry.counters.push_back(this);
}

TraceStats GetStats() {
  TraceStats stats;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  stats.threads = registry.rings.size();
  stats.counters = registry.counters.size();
  for (const auto& ring : registry.rings) {
    const uint64_t pushed = ring->head.load(std::memory_order_acquire);
    stats.pushed += pushed;
    stats.recorded += std::min(pushed, kRingCapacity);
  }
  stats.dropped = stats.pushed - stats.recorded;
  return stats;
}

uint64_t WriteChromeTrace(std::ostream& out) {
  std::vector<SpanEvent> events;
  std::vector<std::pair<const char*, uint64_t>> counters;
  {
    Registry& registry = GetRegistry();
    MutexLock lock(registry.mutex);
    for (const auto& ring : registry.rings) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t count = std::min(head, kRingCapacity);
      for (uint64_t i = head - count; i < head; ++i) {
        events.push_back(ring->slots[i % kRingCapacity]);
      }
    }
    for (const Counter* counter : registry.counters) {
      counters.emplace_back(counter->name(), counter->value());
    }
  }
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.tid < b.tid;
            });

  std::string json;
  json.reserve(events.size() * 96 + 256);
  json += "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const SpanEvent& event : events) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":";
    AppendJsonString(&json, event.name != nullptr ? event.name : "?");
    // Chrome trace ts/dur are microseconds; fractional keeps ns detail.
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"X\",\"cat\":\"onex\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%" PRIu32
                  "}}",
                  event.tid, static_cast<double>(event.start_ns) / 1000.0,
                  static_cast<double>(event.duration_ns) / 1000.0,
                  event.depth);
    json += buf;
  }
  for (const auto& [name, value] : counters) {
    if (!first) json += ',';
    first = false;
    json += "{\"name\":";
    AppendJsonString(&json, name);
    std::snprintf(buf, sizeof(buf),
                  ",\"ph\":\"C\",\"cat\":\"onex\",\"pid\":1,\"tid\":0,"
                  "\"ts\":0,\"args\":{\"value\":%" PRIu64 "}}",
                  value);
    json += buf;
  }
  json += "]}";
  out << json;
  return events.size();
}

bool WriteChromeTraceFile(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  WriteChromeTrace(out);
  out.flush();
  return static_cast<bool>(out);
}

void Reset() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mutex);
  for (auto& ring : registry.rings) {
    ring->head.store(0, std::memory_order_release);
  }
  for (Counter* counter : registry.counters) counter->Clear();
}

void DumpRingTailsSigSafe(int fd, uint64_t max_per_ring) {
  using sigsafe::WriteStr;
  using sigsafe::WriteU64;
  WriteStr(fd, "[");
  bool first_ring = true;
  // Walk the lock-free list only — rings are never freed, so every
  // pointer on it is valid even while the process is dying.
  for (Ring* ring = g_ring_list_head.load(std::memory_order_acquire);
       ring != nullptr; ring = ring->next) {
    const uint64_t head = ring->head.load(std::memory_order_relaxed);
    uint64_t count = head < kRingCapacity ? head : kRingCapacity;
    if (count > max_per_ring) count = max_per_ring;
    if (count == 0) continue;
    if (!first_ring) WriteStr(fd, ",");
    first_ring = false;
    WriteStr(fd, "{\"tid\":");
    WriteU64(fd, ring->tid);
    WriteStr(fd, ",\"spans\":[");
    bool first_span = true;
    for (uint64_t i = head - count; i < head; ++i) {
      // Plain reads of slot data: the owning thread may be mid-write on
      // the newest slot; name pointers are string literals so even a
      // torn slot dereferences safely (worst case the wrong literal).
      const SpanEvent& event = ring->slots[i % kRingCapacity];
      if (event.name == nullptr) continue;
      if (!first_span) WriteStr(fd, ",");
      first_span = false;
      WriteStr(fd, "{\"name\":\"");
      sigsafe::WriteJsonEscaped(fd, event.name,
                                sigsafe::StrLen(event.name));
      WriteStr(fd, "\",\"start_ns\":");
      WriteU64(fd, event.start_ns);
      WriteStr(fd, ",\"dur_ns\":");
      WriteU64(fd, event.duration_ns);
      WriteStr(fd, ",\"depth\":");
      WriteU64(fd, event.depth);
      WriteStr(fd, "}");
    }
    WriteStr(fd, "]}");
  }
  WriteStr(fd, "]");
}

}  // namespace trace
}  // namespace onex

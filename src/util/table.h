// Copyright 2026 The ONEX Reproduction Authors.
// Aligned text tables and CSV-style series output for the bench harnesses.
// Each harness prints the same rows/series as the paper's table or figure,
// so results are eyeballable against the original.

#ifndef ONEX_UTIL_TABLE_H_
#define ONEX_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace onex {

/// Collects rows of string cells and renders them as an aligned table.
class TableWriter {
 public:
  /// `title` is printed above the table, e.g. "Table 3: Accuracy ...".
  explicit TableWriter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; cell counts may differ from the header (padded).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double value, int precision = 3);

  /// Scientific notation, e.g. "4.83e9" — used for subsequence counts.
  static std::string Sci(double value, int precision = 2);

  /// Renders the aligned table to a string.
  std::string Render() const;

  /// Renders as RFC-4180-ish CSV (header row first, fields quoted when
  /// they contain commas/quotes). The title is not emitted.
  std::string RenderCsv() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Figure-style output: one named series of (x, y) points, printed as
/// aligned columns. Harnesses emit one SeriesWriter per plotted line.
class SeriesWriter {
 public:
  explicit SeriesWriter(std::string title) : title_(std::move(title)) {}

  /// Adds a named series; all series share the same x values.
  void SetXLabel(std::string label) { x_label_ = std::move(label); }
  void AddSeries(std::string name) { names_.push_back(std::move(name)); }

  /// Appends one x row with a y value per series (order = AddSeries order).
  void AddPoint(double x, const std::vector<double>& ys);
  /// Variant with a string-valued x (e.g. dataset names).
  void AddPoint(const std::string& x, const std::vector<double>& ys);

  std::string Render() const;
  /// CSV form: x column then one column per series.
  std::string RenderCsv() const;
  void Print() const;

 private:
  std::string title_;
  std::string x_label_ = "x";
  std::vector<std::string> names_;
  std::vector<std::string> xs_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace onex

#endif  // ONEX_UTIL_TABLE_H_

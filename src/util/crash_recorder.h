// Copyright 2026 The ONEX Reproduction Authors.
// Crash-time flight recorder: a SIGSEGV/SIGABRT/SIGBUS handler that
// dumps the process's always-on observability rings to a pre-named
// JSON file, then re-raises so the default disposition (core dump,
// nonzero exit) still happens. The dump is assembled entirely from
// statically-reachable lock-free structures —
//
//   recent_log   — the bounded ring behind the levelled logger
//   inflight     — the InflightRegistry's live query table
//   trace_tails  — the newest spans of every per-thread trace ring
//   held_locks   — per-thread lock-rank stacks (ONEX_LOCK_ORDER_CHECKS)
//
// — so the handler body is async-signal-safe: open/write/close and
// raw atomic loads, no locks, no heap, no stdio. Everything variable
// (the dump path, the altstack) is allocated at Install time.
//
// One dump per process life: the first fatal signal wins (atomic
// claim); nested faults inside the handler fall through to the default
// disposition because installation is SA_RESETHAND.

#ifndef ONEX_UTIL_CRASH_RECORDER_H_
#define ONEX_UTIL_CRASH_RECORDER_H_

#include <string>

namespace onex {
namespace crash {

/// Installs the handler, dumping to `<dump_dir>/onex_crash.<pid>.json`.
/// Returns false (and logs a WARN) when the directory is not writable
/// or the altstack cannot be allocated; the process then runs without a
/// flight recorder, which is degraded but never fatal. Calling again
/// re-points the dump path (tests).
bool InstallCrashRecorder(const std::string& dump_dir);

/// The exact file the next crash would write, empty when not installed.
std::string CrashDumpPath();

/// Test hook: runs the handler's dump body (no signal involved) into
/// `fd`. Exercises the exact code path the real handler takes.
void WriteCrashDumpForTest(int fd, int signal_number);

}  // namespace crash
}  // namespace onex

#endif  // ONEX_UTIL_CRASH_RECORDER_H_

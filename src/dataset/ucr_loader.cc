#include "dataset/ucr_loader.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace onex {
namespace {

// Splits on commas and/or whitespace; empty tokens are dropped.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool ParseDouble(const std::string& token, double* out) {
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  // NaN/Inf poison every distance downstream; reject them at the door.
  return end != nullptr && *end == '\0' && end != token.c_str() &&
         std::isfinite(*out);
}

}  // namespace

Result<Dataset> ParseUcrContent(const std::string& content,
                                const std::string& name) {
  Dataset dataset(name);
  std::istringstream in(content);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto tokens = Tokenize(line);
    if (tokens.empty()) continue;
    double label_value = 0.0;
    if (!ParseDouble(tokens[0], &label_value)) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": bad label '" + tokens[0] + "'");
    }
    std::vector<double> values;
    values.reserve(tokens.size() - 1);
    for (size_t i = 1; i < tokens.size(); ++i) {
      double v = 0.0;
      if (!ParseDouble(tokens[i], &v)) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bad value '" + tokens[i] + "'");
      }
      values.push_back(v);
    }
    if (values.empty()) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": series with no values");
    }
    dataset.Add(TimeSeries(std::move(values), static_cast<int>(label_value)));
  }
  if (dataset.empty()) {
    return Status::Corruption("no series found in '" + name + "'");
  }
  return dataset;
}

Result<Dataset> LoadUcrFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  // Derive a dataset name from the file name (basename sans extension).
  std::string name = path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return ParseUcrContent(buffer.str(), name);
}

Status SaveUcrFile(const Dataset& dataset, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    return Status::IOError("cannot create '" + path + "'");
  }
  for (size_t i = 0; i < dataset.size(); ++i) {
    const TimeSeries& s = dataset[i];
    file << s.label();
    char buf[32];
    for (double v : s.values()) {
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      file << ',' << buf;
    }
    file << '\n';
  }
  if (!file) {
    return Status::IOError("write failed for '" + path + "'");
  }
  return Status::OK();
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Reader/writer for the UCR Time Series Archive text format: one series
// per line, first field the integer class label, remaining fields the
// values, separated by commas or whitespace. The paper's evaluation
// datasets all ship in this format; our synthetic generators write it so
// the loader is exercised end to end.

#ifndef ONEX_DATASET_UCR_LOADER_H_
#define ONEX_DATASET_UCR_LOADER_H_

#include <string>

#include "dataset/dataset.h"
#include "util/status.h"

namespace onex {

/// Parses a UCR-format file. Lines may be comma- or whitespace-separated;
/// blank lines are skipped. Fails with Corruption on non-numeric fields
/// and IOError when the file cannot be read.
Result<Dataset> LoadUcrFile(const std::string& path);

/// Parses UCR-format content from a string (used by tests).
Result<Dataset> ParseUcrContent(const std::string& content,
                                const std::string& name);

/// Writes `dataset` in comma-separated UCR format. Existing files are
/// overwritten.
Status SaveUcrFile(const Dataset& dataset, const std::string& path);

}  // namespace onex

#endif  // ONEX_DATASET_UCR_LOADER_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Normalization kernels. The paper (Sec. 6.1) min-max normalizes every
// dataset so all values fall in [0, 1] before building the ONEX base:
// x <- (x - min) / (max - min), with min/max taken over the whole dataset.
// The Trillion baseline additionally z-normalizes candidate windows, which
// is inherent to the UCR-suite algorithm it reproduces.

#ifndef ONEX_DATASET_NORMALIZE_H_
#define ONEX_DATASET_NORMALIZE_H_

#include <span>
#include <vector>

#include "dataset/dataset.h"

namespace onex {

/// In-place dataset-level min-max normalization (paper Sec. 6.1). When the
/// dataset is constant (max == min) all values map to 0. Returns the
/// (min, max) pair that was used, enabling denormalization.
std::pair<double, double> MinMaxNormalize(Dataset* dataset);

/// In-place min-max normalization of one vector with explicit bounds.
void MinMaxNormalize(std::vector<double>* values, double min, double max);

/// Per-series min-max variant (each series mapped to [0,1] independently).
/// Not used by the main pipeline but exposed for the examples that compare
/// normalization policies.
void MinMaxNormalizePerSeries(Dataset* dataset);

/// Returns the z-normalized copy of `values` (mean 0, stddev 1). A constant
/// input returns all zeros. Used by the Trillion baseline.
std::vector<double> ZNormalized(std::span<const double> values);

/// In-place z-normalization.
void ZNormalize(std::vector<double>* values);

/// Mean and population standard deviation of `values` in one pass.
std::pair<double, double> MeanStddev(std::span<const double> values);

}  // namespace onex

#endif  // ONEX_DATASET_NORMALIZE_H_

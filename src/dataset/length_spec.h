// Copyright 2026 The ONEX Reproduction Authors.
// The candidate-length universe shared by every engine. The paper
// decomposes each series into subsequences of *all* lengths (Sec. 3.1);
// at scale the benches stride the lengths, and all engines are driven by
// the same LengthSpec so comparisons stay apples-to-apples.

#ifndef ONEX_DATASET_LENGTH_SPEC_H_
#define ONEX_DATASET_LENGTH_SPEC_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace onex {

/// Lengths {min_length, min_length + step, ...} <= max_length. A
/// max_length of 0 means "up to the dataset's series length".
struct LengthSpec {
  size_t min_length = 2;
  size_t max_length = 0;
  size_t step = 1;

  /// Enumerates the concrete lengths for a series of length n.
  std::vector<size_t> LengthsFor(size_t n) const {
    std::vector<size_t> lengths;
    const size_t hi = max_length == 0 ? n : std::min(max_length, n);
    for (size_t len = std::max<size_t>(2, min_length); len <= hi;
         len += std::max<size_t>(1, step)) {
      lengths.push_back(len);
    }
    return lengths;
  }

  /// True if `len` is one of the lengths generated for a series of
  /// length n.
  bool Contains(size_t len, size_t n) const {
    const size_t lo = std::max<size_t>(2, min_length);
    const size_t hi = max_length == 0 ? n : std::min(max_length, n);
    if (len < lo || len > hi) return false;
    return (len - lo) % std::max<size_t>(1, step) == 0;
  }
};

}  // namespace onex

#endif  // ONEX_DATASET_LENGTH_SPEC_H_

#include "dataset/normalize.h"

#include <cmath>

namespace onex {

std::pair<double, double> MinMaxNormalize(Dataset* dataset) {
  const auto [lo, hi] = dataset->ValueRange();
  const double span = hi - lo;
  for (size_t i = 0; i < dataset->size(); ++i) {
    for (double& x : (*dataset)[i].mutable_values()) {
      x = span > 0.0 ? (x - lo) / span : 0.0;
    }
  }
  return {lo, hi};
}

void MinMaxNormalize(std::vector<double>* values, double min, double max) {
  const double span = max - min;
  for (double& x : *values) {
    x = span > 0.0 ? (x - min) / span : 0.0;
  }
}

void MinMaxNormalizePerSeries(Dataset* dataset) {
  for (size_t i = 0; i < dataset->size(); ++i) {
    auto& values = (*dataset)[i].mutable_values();
    if (values.empty()) continue;
    double lo = values[0], hi = values[0];
    for (double x : values) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    MinMaxNormalize(&values, lo, hi);
  }
}

std::pair<double, double> MeanStddev(std::span<const double> values) {
  if (values.empty()) return {0.0, 0.0};
  double sum = 0.0, sum_sq = 0.0;
  for (double x : values) {
    sum += x;
    sum_sq += x * x;
  }
  const double n = static_cast<double>(values.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - mean * mean);
  return {mean, std::sqrt(var)};
}

std::vector<double> ZNormalized(std::span<const double> values) {
  const auto [mean, stddev] = MeanStddev(values);
  std::vector<double> out(values.size());
  if (stddev <= 1e-12) return out;  // Constant input: all zeros.
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - mean) / stddev;
  }
  return out;
}

void ZNormalize(std::vector<double>* values) {
  auto normalized =
      ZNormalized(std::span<const double>(values->data(), values->size()));
  *values = std::move(normalized);
}

}  // namespace onex

#include "dataset/dataset_stats.h"

#include <set>
#include <sstream>

namespace onex {

std::string DatasetStats::ToString() const {
  std::ostringstream out;
  out << name << ": N=" << num_series << " n=[" << min_length << ","
      << max_length << "] subsequences=" << num_subsequences << " range=["
      << value_min << "," << value_max << "] classes=" << num_classes;
  return out.str();
}

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name();
  stats.num_series = dataset.size();
  stats.min_length = dataset.MinLength();
  stats.max_length = dataset.MaxLength();
  stats.num_subsequences =
      dataset.NumSubsequences(2, dataset.MaxLength());
  const auto [lo, hi] = dataset.ValueRange();
  stats.value_min = lo;
  stats.value_max = hi;
  std::set<int> labels;
  for (size_t i = 0; i < dataset.size(); ++i) labels.insert(dataset[i].label());
  stats.num_classes = labels.size();
  return stats;
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// The fundamental value type of the library: a time series X = (x1..xn) of
// real values (paper Sec. 2), optionally carrying a class label as found in
// UCR archive files.

#ifndef ONEX_DATASET_TIME_SERIES_H_
#define ONEX_DATASET_TIME_SERIES_H_

#include <span>
#include <string>
#include <vector>

namespace onex {

/// One time series: an ordered sequence of real values plus an optional
/// integer class label (UCR datasets are labeled; the label plays no role
/// in similarity search and is retained only for data-generation fidelity
/// and dataset statistics).
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::vector<double> values, int label = 0)
      : values_(std::move(values)), label_(label) {}

  size_t length() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  int label() const { return label_; }
  void set_label(int label) { label_ = label; }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Contiguous view over the whole series.
  std::span<const double> View() const {
    return std::span<const double>(values_.data(), values_.size());
  }

  /// Contiguous view over the subsequence of `length` starting at `start`.
  /// This is the paper's (X)^i_j with i = length, j = start (0-based here).
  std::span<const double> Subsequence(size_t start, size_t length) const {
    return std::span<const double>(values_.data() + start, length);
  }

 private:
  std::vector<double> values_;
  int label_ = 0;
};

}  // namespace onex

#endif  // ONEX_DATASET_TIME_SERIES_H_

#include "dataset/dataset.h"

#include <algorithm>
#include <limits>

namespace onex {

size_t Dataset::MinLength() const {
  size_t m = std::numeric_limits<size_t>::max();
  for (const auto& s : series_) m = std::min(m, s.length());
  return series_.empty() ? 0 : m;
}

size_t Dataset::MaxLength() const {
  size_t m = 0;
  for (const auto& s : series_) m = std::max(m, s.length());
  return m;
}

bool Dataset::IsFixedLength() const {
  if (series_.empty()) return true;
  const size_t n = series_.front().length();
  for (const auto& s : series_) {
    if (s.length() != n) return false;
  }
  return true;
}

size_t Dataset::TotalPoints() const {
  size_t total = 0;
  for (const auto& s : series_) total += s.length();
  return total;
}

std::pair<double, double> Dataset::ValueRange() const {
  if (series_.empty()) return {0.0, 1.0};
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series_) {
    for (double x : s.values()) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
  }
  return {lo, hi};
}

uint64_t Dataset::NumSubsequences(size_t min_len, size_t max_len) const {
  uint64_t total = 0;
  for (const auto& s : series_) {
    const size_t n = s.length();
    const size_t hi = std::min(max_len, n);
    for (size_t len = min_len; len <= hi; ++len) {
      total += static_cast<uint64_t>(n - len + 1);
    }
  }
  return total;
}

}  // namespace onex

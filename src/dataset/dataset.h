// Copyright 2026 The ONEX Reproduction Authors.
// A dataset D = {X1..XN} (paper Sec. 2): an owned collection of time
// series with a name, the unit every engine (ONEX, Standard-DTW, PAA,
// Trillion) is built over.

#ifndef ONEX_DATASET_DATASET_H_
#define ONEX_DATASET_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/time_series.h"

namespace onex {

/// Owned collection of time series. Series may have heterogeneous lengths
/// (the paper's motivating scenario mixes reporting intervals), though the
/// UCR-style datasets used in the evaluation are fixed-length.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t size() const { return series_.size(); }
  bool empty() const { return series_.empty(); }

  const TimeSeries& operator[](size_t i) const { return series_[i]; }
  TimeSeries& operator[](size_t i) { return series_[i]; }

  void Add(TimeSeries series) { series_.push_back(std::move(series)); }
  void Reserve(size_t n) { series_.reserve(n); }
  void Clear() { series_.clear(); }

  const std::vector<TimeSeries>& series() const { return series_; }

  /// Length of the shortest / longest series (0 for an empty dataset).
  size_t MinLength() const;
  size_t MaxLength() const;

  /// True when every series has the same length.
  bool IsFixedLength() const;

  /// Total number of points across all series.
  size_t TotalPoints() const;

  /// Global minimum / maximum value across all series; used by the
  /// paper's min-max normalization (Sec. 6.1). Returns {0, 1} when empty.
  std::pair<double, double> ValueRange() const;

  /// Number of subsequences of lengths in [min_len, max_len] over all
  /// series. With the full range [2, n] this reproduces the paper's
  /// N*n*(n-1)/2 cardinality figure (Sec. 1.2, Table 4).
  uint64_t NumSubsequences(size_t min_len, size_t max_len) const;

 private:
  std::string name_;
  std::vector<TimeSeries> series_;
};

}  // namespace onex

#endif  // ONEX_DATASET_DATASET_H_

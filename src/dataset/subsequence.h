// Copyright 2026 The ONEX Reproduction Authors.
// Zero-copy reference to a subsequence (Xp)^i_j (paper Def. 1): series
// index p, start position j, length i. 16 bytes; millions of these are
// created during ONEX base construction so compactness matters.

#ifndef ONEX_DATASET_SUBSEQUENCE_H_
#define ONEX_DATASET_SUBSEQUENCE_H_

#include <cstdint>
#include <span>

#include "dataset/dataset.h"

namespace onex {

/// Identifies one subsequence of one series in a dataset. The dataset is
/// passed explicitly to resolve the view, keeping the ref trivially
/// copyable and hashable.
struct SubsequenceRef {
  uint32_t series = 0;  ///< p: index of the parent series in the dataset.
  uint32_t start = 0;   ///< j: 0-based start offset within the series.
  uint32_t length = 0;  ///< i: number of points.

  /// Resolves the actual values. The caller guarantees `d` is the dataset
  /// this ref was created from and that the ref is in bounds.
  std::span<const double> View(const Dataset& d) const {
    return d[series].Subsequence(start, length);
  }

  friend bool operator==(const SubsequenceRef& a, const SubsequenceRef& b) {
    return a.series == b.series && a.start == b.start && a.length == b.length;
  }
};

}  // namespace onex

#endif  // ONEX_DATASET_SUBSEQUENCE_H_

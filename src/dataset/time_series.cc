#include "dataset/time_series.h"

// TimeSeries is header-only today; this translation unit anchors the
// library target and reserves space for future out-of-line members.

// Copyright 2026 The ONEX Reproduction Authors.
// Dataset statistics in the shape the paper reports them (Sec. 1.2 and
// Table 4): series count, length, subsequence cardinality, value range.

#ifndef ONEX_DATASET_DATASET_STATS_H_
#define ONEX_DATASET_DATASET_STATS_H_

#include <cstdint>
#include <string>

#include "dataset/dataset.h"

namespace onex {

/// Summary of one dataset, computable in a single pass.
struct DatasetStats {
  std::string name;
  size_t num_series = 0;
  size_t min_length = 0;
  size_t max_length = 0;
  /// Nn(n-1)/2 over all lengths >= 2 (the paper's cardinality figure).
  uint64_t num_subsequences = 0;
  double value_min = 0.0;
  double value_max = 0.0;
  size_t num_classes = 0;

  /// Renders a single human-readable line.
  std::string ToString() const;
};

/// Computes the stats for `dataset`.
DatasetStats ComputeStats(const Dataset& dataset);

}  // namespace onex

#endif  // ONEX_DATASET_DATASET_STATS_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Router-side METRICS registry, mirroring ServerMetrics' pattern: a
// leaf mutex over plain counters plus a Prometheus text renderer. The
// router exposes its own exposition on the same wire verb, so the
// operational tier (PR 7–8) extends unchanged to the new hop.

#ifndef ONEX_ROUTER_ROUTER_METRICS_H_
#define ONEX_ROUTER_ROUTER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "router/routing_table.h"
#include "server/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace onex {
namespace router {

class RouterMetrics {
 public:
  explicit RouterMetrics(size_t num_upstreams);

  /// One downstream query admitted for routing.
  void RecordRequest();
  /// One scattered query fanning out over `legs` upstream datasets.
  void RecordScatter(size_t legs);
  /// One request leg sent to upstream `i` in its probed role.
  void RecordUpstreamRequest(size_t i, bool follower);
  /// One mid-query re-submit to another replica.
  void RecordFailover();
  /// One downstream CANCEL fanned out to `legs` upstream legs.
  void RecordCancelFanout(size_t legs);
  /// Wall time from admission to the merged final block.
  void RecordMergeLatency(double seconds);

  // Point-in-time reads for tests and the INSPECT/STATS surfaces.
  uint64_t requests() const;
  uint64_t failovers() const;
  uint64_t upstream_requests(size_t i, bool follower) const;

  /// Prometheus text exposition: router families + per-upstream health
  /// gauges from the routing-table snapshot + process gauges. Lintable
  /// by scripts/check_metrics.sh --router.
  std::string RenderPrometheus(
      const std::vector<UpstreamSnapshot>& upstreams) const;

 private:
  struct PerUpstream {
    uint64_t leader_requests = 0;
    uint64_t follower_requests = 0;
  };

  mutable Mutex mutex_{LockRank::kMetrics, "router.metrics_mutex"};
  uint64_t requests_ GUARDED_BY(mutex_) = 0;
  uint64_t scatter_queries_ GUARDED_BY(mutex_) = 0;
  uint64_t scatter_legs_ GUARDED_BY(mutex_) = 0;
  uint64_t failovers_ GUARDED_BY(mutex_) = 0;
  uint64_t cancel_fanout_ GUARDED_BY(mutex_) = 0;
  std::vector<PerUpstream> upstream_ GUARDED_BY(mutex_);
  server::LatencyHistogram merge_latency_ GUARDED_BY(mutex_);
};

}  // namespace router
}  // namespace onex

#endif  // ONEX_ROUTER_ROUTER_METRICS_H_

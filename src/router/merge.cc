#include "router/merge.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <variant>

namespace onex {
namespace router {

namespace {

bool HasPrefix(const std::string& line, const char* prefix) {
  return line.rfind(prefix, 0) == 0;
}

/// True for the payload-row spellings of every final-block shape.
bool IsPayloadRow(const std::string& line) {
  return HasPrefix(line, "match ") || HasPrefix(line, "group ") ||
         HasPrefix(line, "recommend ") || HasPrefix(line, "refine ");
}

uint64_t ParseCounter(const std::map<std::string, std::string>& kv,
                      const char* key) {
  auto it = kv.find(key);
  if (it == kv.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace

size_t MergeKeepLimit(const QueryRequest& request) {
  if (std::holds_alternative<BestMatchRequest>(request)) return 1;
  if (const auto* k = std::get_if<KSimilarRequest>(&request)) {
    return k->k;
  }
  return std::numeric_limits<size_t>::max();
}

bool IsMatchShaped(const QueryRequest& request) {
  return std::holds_alternative<BestMatchRequest>(request) ||
         std::holds_alternative<KSimilarRequest>(request) ||
         std::holds_alternative<RangeWithinRequest>(request);
}

double MatchRowDistance(const std::string& row) {
  const auto kv = server::ParseKeyValues(row);
  auto it = kv.find("distance");
  if (it == kv.end()) return std::numeric_limits<double>::infinity();
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) {
    return std::numeric_limits<double>::infinity();
  }
  return value;
}

std::vector<std::string> MergeMatchRows(
    const std::vector<std::vector<std::string>>& per_leg_rows, size_t keep) {
  struct Ranked {
    double distance;
    size_t leg;
    size_t row;
    const std::string* line;
  };
  std::vector<Ranked> ranked;
  for (size_t leg = 0; leg < per_leg_rows.size(); ++leg) {
    for (size_t row = 0; row < per_leg_rows[leg].size(); ++row) {
      const std::string& line = per_leg_rows[leg][row];
      ranked.push_back({MatchRowDistance(line), leg, row, &line});
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.leg != b.leg) return a.leg < b.leg;
              return a.row < b.row;
            });
  if (ranked.size() > keep) ranked.resize(keep);
  std::vector<std::string> out;
  out.reserve(ranked.size());
  for (const Ranked& r : ranked) out.push_back(*r.line);
  return out;
}

void MergedStats::Absorb(const std::string& stats_line) {
  const auto kv = server::ParseKeyValues(stats_line);
  lengths_scanned += ParseCounter(kv, "lengths_scanned");
  reps_compared += ParseCounter(kv, "reps_compared");
  reps_pruned += ParseCounter(kv, "reps_pruned");
  members_compared += ParseCounter(kv, "members_compared");
  lemma2_admitted += ParseCounter(kv, "lemma2_admitted");
}

std::string MergedStats::Render() const {
  char line[192];
  std::snprintf(line, sizeof(line),
                "stats lengths_scanned=%" PRIu64 " reps_compared=%" PRIu64
                " reps_pruned=%" PRIu64 " members_compared=%" PRIu64
                " lemma2_admitted=%" PRIu64 "\n",
                lengths_scanned, reps_compared, reps_pruned,
                members_compared, lemma2_admitted);
  return line;
}

void SplitFinalPayload(const std::vector<std::string>& payload,
                       MergedStats* stats, std::vector<std::string>* rows,
                       std::vector<std::string>* extra) {
  for (const std::string& line : payload) {
    if (HasPrefix(line, "stats ")) {
      stats->Absorb(line);
    } else if (IsPayloadRow(line)) {
      rows->push_back(line);
    } else {
      extra->push_back(line);
    }
  }
}

const char* CountKeyForKind(const std::string& kind) {
  if (kind == "Seasonal" || kind == server::kPartGroupToken) return "groups";
  if (kind == "Recommend" || kind == "Refine" ||
      kind == server::kPartRecToken) {
    return "rows";
  }
  return "matches";
}

std::string RenderMergedFinal(const std::string& kind, uint64_t id,
                              const std::vector<std::string>& rows,
                              uint64_t latency_us, bool partial,
                              const std::string& interrupt,
                              const MergedStats& stats,
                              const std::vector<std::string>& extra) {
  std::string out = "OK " + kind;
  if (id != 0) out += " id=" + std::to_string(id);
  out += std::string(" ") + CountKeyForKind(kind) + "=" +
         std::to_string(rows.size());
  out += " latency_us=" + std::to_string(latency_us);
  if (partial) out += " partial=1 interrupt=" + interrupt;
  out += "\n";
  out += stats.Render();
  for (const std::string& line : extra) out += line + "\n";
  for (const std::string& line : rows) out += line + "\n";
  out += ".\n";
  return out;
}

std::string RenderScatterPart(const std::string& kind, uint64_t id,
                              uint64_t seq, double frac, bool snapshot,
                              const std::vector<std::string>& rows) {
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                " id=%llu seq=%llu frac=%.3f snapshot=%d ",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(seq), frac,
                snapshot ? 1 : 0);
  std::string out = "PART " + kind + tail + CountKeyForKind(kind) + "=" +
                    std::to_string(rows.size()) + "\n";
  for (const std::string& line : rows) out += line + "\n";
  out += ".\n";
  return out;
}

uint64_t RemainingBudgetMs(uint64_t original_ms, uint64_t elapsed_ms) {
  if (original_ms == 0) return 0;
  if (elapsed_ms >= original_ms) return 1;
  return original_ms - elapsed_ms;
}

}  // namespace router
}  // namespace onex

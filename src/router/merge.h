// Copyright 2026 The ONEX Reproduction Authors.
// Scatter-gather merge: turns the per-leg reply blocks of a scattered
// query back into ONE coherent wire answer. Everything works at the
// text level on purpose — the router re-ranks and re-frames payload
// rows without re-deriving them, so a row that leaves an upstream
// engine reaches the client byte-identical (modulo header re-tagging).
//
// Shape rules (mirrors the v4 typed-payload split):
//   - match-shaped rows (q1/q1k/q1r) carry a `distance=` field and form
//     one global ranking: merged by ascending distance, truncated to
//     the query's k (1 for q1, k for q1k, unbounded for q1r).
//   - GROUP/REC/refine rows have no global order across engines (group
//     ids are engine-local): legs are concatenated in leg order.

#ifndef ONEX_ROUTER_MERGE_H_
#define ONEX_ROUTER_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace onex {
namespace router {

/// Rows the merged ranking keeps: 1 for q1, k for q1k, unbounded
/// (SIZE_MAX) for every other query — q1r's within-threshold set and
/// the concatenated shapes have no top-k to cut.
size_t MergeKeepLimit(const QueryRequest& request);

/// True when the query's payload rows are match-shaped (q1/q1k/q1r) and
/// therefore re-rankable by distance across legs.
bool IsMatchShaped(const QueryRequest& request);

/// The `distance=` field of a match row; +inf when absent so malformed
/// rows sort last instead of poisoning the ranking.
double MatchRowDistance(const std::string& row);

/// Re-ranks match rows from several legs into one list: ascending
/// distance, ties broken by (leg index, arrival order) so the merge is
/// deterministic, truncated to `keep`.
std::vector<std::string> MergeMatchRows(
    const std::vector<std::vector<std::string>>& per_leg_rows, size_t keep);

/// The five pruning-cascade counters of the final block's stats line,
/// summed across legs — the client sees the total work the scatter did.
struct MergedStats {
  uint64_t lengths_scanned = 0;
  uint64_t reps_compared = 0;
  uint64_t reps_pruned = 0;
  uint64_t members_compared = 0;
  uint64_t lemma2_admitted = 0;

  /// Adds one leg's `stats ...` payload line into the totals.
  void Absorb(const std::string& stats_line);
  /// Renders the summed line in the server's exact format.
  std::string Render() const;
};

/// Splits one leg's final-block payload: the stats line is absorbed
/// into *stats, payload rows (match/group/recommend/refine) append to
/// *rows, anything else (TRACE lines) appends to *extra.
void SplitFinalPayload(const std::vector<std::string>& payload,
                       MergedStats* stats, std::vector<std::string>* rows,
                       std::vector<std::string>* extra);

/// The header count key matching a kind token ("matches" for the
/// match-shaped kinds, "groups" for Seasonal, "rows" otherwise).
const char* CountKeyForKind(const std::string& kind);

/// Renders the merged final block in the server's exact final-block
/// grammar: header, summed stats line, extra (TRACE) lines, rows,
/// terminator. `latency_us` is router-measured (admission to merge).
std::string RenderMergedFinal(const std::string& kind, uint64_t id,
                              const std::vector<std::string>& rows,
                              uint64_t latency_us, bool partial,
                              const std::string& interrupt,
                              const MergedStats& stats,
                              const std::vector<std::string>& extra);

/// Renders one merged PART frame with the CLIENT's id and the router's
/// own seq/frac. Scattered GROUP/REC frames must pass snapshot=false:
/// the merged stream interleaves legs, so no frame is ever a full
/// snapshot of the combined answer.
std::string RenderScatterPart(const std::string& kind, uint64_t id,
                              uint64_t seq, double frac, bool snapshot,
                              const std::vector<std::string>& rows);

/// Deadline budget left for a (re-)submitted upstream leg after
/// `elapsed_ms` of the client's `original_ms` budget. 0 stays 0
/// (unbounded); an exhausted budget clamps to 1ms so the upstream
/// bounces promptly with DEADLINE_EXCEEDED instead of running free.
uint64_t RemainingBudgetMs(uint64_t original_ms, uint64_t elapsed_ms);

}  // namespace router
}  // namespace onex

#endif  // ONEX_ROUTER_MERGE_H_

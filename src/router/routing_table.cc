#include "router/routing_table.h"

#include <algorithm>
#include <set>

namespace onex {
namespace router {

bool IsShardSet(const std::string& spec) {
  return spec.find('*') != std::string::npos;
}

bool MatchesShardSet(const std::string& spec, const std::string& dataset) {
  if (spec == "*") return true;
  const size_t star = spec.find('*');
  if (star == std::string::npos) return spec == dataset;
  // Grammar: one trailing star, prefix match. A star anywhere else is
  // treated as the literal prefix up to it — keep the contract simple
  // enough to document in one line.
  const std::string prefix = spec.substr(0, star);
  return dataset.size() >= prefix.size() &&
         dataset.compare(0, prefix.size(), prefix) == 0;
}

RoutingTable::RoutingTable(std::vector<UpstreamConfig> upstreams)
    : size_(upstreams.size()) {
  MutexLock lock(mutex_);
  upstreams_.resize(upstreams.size());
  for (size_t i = 0; i < upstreams.size(); ++i) {
    upstreams_[i].config = std::move(upstreams[i]);
  }
}

void RoutingTable::Update(size_t i, UpstreamHealth health,
                          std::vector<std::string> datasets) {
  MutexLock lock(mutex_);
  if (i >= upstreams_.size()) return;
  upstreams_[i].health = health;
  upstreams_[i].datasets = std::move(datasets);
}

std::vector<std::string> RoutingTable::Expand(const std::string& spec) const {
  std::set<std::string> names;
  {
    MutexLock lock(mutex_);
    for (const UpstreamSnapshot& up : upstreams_) {
      for (const std::string& dataset : up.datasets) {
        if (MatchesShardSet(spec, dataset)) names.insert(dataset);
      }
    }
  }
  return {names.begin(), names.end()};
}

std::optional<size_t> RoutingTable::PickRead(
    const std::string& dataset, const std::vector<size_t>& exclude) const {
  auto excluded = [&](size_t i) {
    return std::find(exclude.begin(), exclude.end(), i) != exclude.end();
  };
  MutexLock lock(mutex_);
  // Lowest-lag ready follower first; never-synced followers report a
  // negative lag and are not ready, so they fall out on `ready`.
  std::optional<size_t> best;
  double best_lag = 0.0;
  for (size_t i = 0; i < upstreams_.size(); ++i) {
    const UpstreamSnapshot& up = upstreams_[i];
    if (excluded(i) || !up.health.ready || !up.health.follower) continue;
    if (std::find(up.datasets.begin(), up.datasets.end(), dataset) ==
        up.datasets.end()) {
      continue;
    }
    if (!best.has_value() || up.health.replica_lag_s < best_lag) {
      best = i;
      best_lag = up.health.replica_lag_s;
    }
  }
  if (best.has_value()) return best;
  // Leader fallback.
  for (size_t i = 0; i < upstreams_.size(); ++i) {
    const UpstreamSnapshot& up = upstreams_[i];
    if (excluded(i) || !up.health.ready || up.health.follower) continue;
    if (std::find(up.datasets.begin(), up.datasets.end(), dataset) !=
        up.datasets.end()) {
      return i;
    }
  }
  return std::nullopt;
}

std::optional<size_t> RoutingTable::PickWrite(
    const std::string& dataset) const {
  MutexLock lock(mutex_);
  for (size_t i = 0; i < upstreams_.size(); ++i) {
    const UpstreamSnapshot& up = upstreams_[i];
    if (!up.health.ready || up.health.follower) continue;
    if (std::find(up.datasets.begin(), up.datasets.end(), dataset) !=
        up.datasets.end()) {
      return i;
    }
  }
  return std::nullopt;
}

std::vector<UpstreamSnapshot> RoutingTable::Snapshot() const {
  MutexLock lock(mutex_);
  return upstreams_;
}

}  // namespace router
}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Upstream pool: owns the router's view of every configured node.
//
// Two kinds of connection per upstream, on purpose:
//   - PROBES: short-lived blocking sessions (HEALTH + LIST) dialed
//     fresh each round with connect/io timeouts. Both verbs answer
//     inline on the upstream's session thread, so probes keep working
//     when its worker pool is wedged — exactly when routing away from
//     it matters most.
//   - QUERY LINKS: one long-lived async Client per upstream (demux
//     thread, auto_reconnect) shared by every routed query leg. Lazily
//     dialed, recreated after the client's own reconnect attempts are
//     exhausted.

#ifndef ONEX_ROUTER_UPSTREAM_H_
#define ONEX_ROUTER_UPSTREAM_H_

#include <memory>
#include <thread>
#include <vector>

#include "router/routing_table.h"
#include "server/client.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace onex {
namespace router {

struct UpstreamPoolOptions {
  uint64_t probe_interval_ms = 1000;
  /// Applied to probe dials and query links alike.
  uint64_t connect_timeout_ms = 2000;
  uint64_t io_timeout_ms = 5000;
};

class UpstreamPool {
 public:
  /// `table` must outlive the pool; the pool writes probe results into
  /// it and never reads routing decisions back.
  UpstreamPool(UpstreamPoolOptions options, RoutingTable* table);
  ~UpstreamPool();

  /// Probes every upstream once synchronously (so the table is useful
  /// before the first client connects), then starts one probe thread
  /// per upstream.
  void Start();
  void Stop();

  /// One synchronous probe of upstream `i`: HEALTH + LIST over a fresh
  /// blocking connection, result written into the routing table.
  void ProbeNow(size_t i);

  /// The shared async query link for upstream `i`, dialing it first if
  /// needed. The link has auto_reconnect on: transient drops re-submit
  /// unanswered tagged queries on the same connection object, and only
  /// an exhausted reconnect surfaces as IOError to the query legs.
  Result<std::shared_ptr<server::Client>> QueryLink(size_t i);

  /// Discards upstream `i`'s query link if it still is `dead` (a link
  /// whose Wait/Submit returned IOError), so the next QueryLink dials
  /// fresh instead of reusing a client whose demux has exited.
  void DropLink(size_t i, const server::Client* dead);

  /// Parses a HEALTH reply block into the probe's health view: ready/
  /// live from the header, follower + lag from the
  /// `check name=replica_lag` payload row (follower-only by
  /// construction — leaders never render it).
  static UpstreamHealth ParseHealth(const server::WireResponse& reply);

  /// Parses a LIST reply's `dataset name=...` payload rows.
  static std::vector<std::string> ParseDatasets(
      const server::WireResponse& reply);

 private:
  void ProbeLoop(size_t i);

  const UpstreamPoolOptions options_;
  RoutingTable* const table_;

  mutable Mutex mutex_{LockRank::kRouterUpstream, "router.upstream_mutex"};
  std::vector<std::shared_ptr<server::Client>> links_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  CondVar stop_cv_;
  std::vector<std::thread> probe_threads_;
};

}  // namespace router
}  // namespace onex

#endif  // ONEX_ROUTER_UPSTREAM_H_

// Copyright 2026 The ONEX Reproduction Authors.
// onex_router: the scatter-gather front door of a replicated ONEX
// deployment. Speaks the ONEX wire protocol downstream (clients connect
// to it exactly as they would to a server) and upstream (it is itself a
// client of every configured leader/follower node).
//
// What it adds over a plain node:
//   - replica-aware reads: queries go to the lowest-lag READY follower
//     serving the dataset, with leader fallback; APPEND/FLUSH always go
//     to the leader.
//   - shard-set addressing: `dataset=sales-*` (or `use sales-*`)
//     scatters one query across every matching upstream dataset and
//     gathers the legs into one coherent progressive answer with one
//     final block (match rows re-ranked by distance into a single
//     top-k; GROUP/REC frames interleaved by origin).
//   - mid-query failover: a leg whose upstream dies (transport error
//     after the client's own reconnects are exhausted) is re-submitted
//     to another replica with the deadline budget that remains.
//     Re-submits are idempotent — tagged queries are read-only by
//     grammar. Writes are NEVER auto-retried.
//
// Concurrency model: one session thread per downstream client (reads
// lines, answers control verbs inline), one coordinator thread per
// tagged scattered query (so CANCEL can overtake it on the session
// thread), one leg thread per upstream dataset of a scattered query,
// plus each upstream link's demux reader delivering PART frames into
// the per-query merge state machine. Lock order: routing table (44) <
// upstream pool (46) < merge op (48) < session write (52) < client
// locks (70+).

#ifndef ONEX_ROUTER_ROUTER_H_
#define ONEX_ROUTER_ROUTER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "router/router_metrics.h"
#include "router/routing_table.h"
#include "router/upstream.h"
#include "server/client.h"
#include "server/protocol.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace onex {
namespace router {

struct RouterOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (tests read port()).
  std::vector<UpstreamConfig> upstreams;
  UpstreamPoolOptions pool;
  /// Re-submit attempts per leg after the first transport failure.
  int max_failovers = 2;
};

class Router {
 public:
  /// Binds, probes every upstream once (so the first client sees a
  /// populated routing table), and starts the accept loop.
  static Result<std::unique_ptr<Router>> Start(RouterOptions options);
  ~Router();

  void Stop();

  uint16_t port() const { return port_; }

  // Test and introspection access.
  RoutingTable& table() { return table_; }
  RouterMetrics& metrics() { return metrics_; }
  UpstreamPool& pool() { return pool_; }

 private:
  struct Session;
  struct ScatterOp;

  explicit Router(RouterOptions options);

  Status Listen();
  void AcceptLoop();
  void SessionLoop(int fd);

  /// Runs one (possibly scattered) query to its merged final block.
  /// Blocks until done — tagged queries run it on a per-op thread.
  void RunScatter(std::shared_ptr<Session> session,
                  QueryRequest request, server::RequestAttrs attrs,
                  std::vector<std::string> datasets);
  /// One upstream leg: pick replica, submit, wait; on transport failure
  /// fail over to the next untried replica with the remaining budget.
  void RunLeg(std::shared_ptr<ScatterOp> op, size_t leg,
              std::string dataset, const QueryRequest& request,
              const server::RequestAttrs& attrs);
  /// Demux-thread PART delivery into the merge state machine.
  static void OnLegPart(const std::shared_ptr<ScatterOp>& op, size_t leg,
                        const server::WireResponse& part);

  /// Forwards APPEND/FLUSH to the leader over the session's dedicated
  /// blocking write connection (dialed and `use`-bound on demand).
  void ForwardWrite(const std::shared_ptr<Session>& session,
                    const std::string& raw_line, const std::string& verb);
  /// Fans a downstream CANCEL out to every leg of the op.
  void CancelOp(const std::shared_ptr<Session>& session, uint64_t id);

  std::string RenderRouterHealth() const;
  std::string RenderRouterInspect() const;
  std::string RenderRouterList() const;

  const RouterOptions options_;
  RoutingTable table_;
  RouterMetrics metrics_;
  UpstreamPool pool_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  struct SessionThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  mutable Mutex sessions_mutex_{LockRank::kServerSessions,
                                "router.sessions_mutex"};
  std::vector<SessionThread> session_threads_ GUARDED_BY(sessions_mutex_);
  std::vector<int> session_fds_ GUARDED_BY(sessions_mutex_);
};

}  // namespace router
}  // namespace onex

#endif  // ONEX_ROUTER_ROUTER_H_

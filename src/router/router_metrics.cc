#include "router/router_metrics.h"

#include <cstdio>

#include "util/process_stats.h"

namespace onex {
namespace router {

namespace {

// Local copies of the exposition helpers (the server's live in an
// anonymous namespace on purpose — the formats below must stay lintable
// by scripts/check_metrics.sh, which is the real shared contract).

void Preamble(std::string* out, const char* name, const char* type,
              const char* help) {
  *out += "# HELP ";
  *out += name;
  *out += ' ';
  *out += help;
  *out += "\n# TYPE ";
  *out += name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

void SimpleCounter(std::string* out, const char* name, const char* help,
                   uint64_t value) {
  Preamble(out, name, "counter", help);
  char line[128];
  std::snprintf(line, sizeof(line), "%s %llu\n", name,
                static_cast<unsigned long long>(value));
  *out += line;
}

void GaugeLine(std::string* out, const char* name, const char* help,
               double value) {
  Preamble(out, name, "gauge", help);
  char line[128];
  std::snprintf(line, sizeof(line), "%s %.9g\n", name, value);
  *out += line;
}

void HistogramFamily(std::string* out, const char* name, const char* help,
                     const server::LatencyHistogram& histogram) {
  Preamble(out, name, "histogram", help);
  char line[160];
  uint64_t cumulative = 0;
  for (size_t i = 0; i < server::LatencyHistogram::kBuckets; ++i) {
    const uint64_t in_bucket = histogram.bucket_count(i);
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"%.9g\"} %llu\n", name,
                  server::LatencyHistogram::UpperBound(i),
                  static_cast<unsigned long long>(cumulative));
    *out += line;
  }
  std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %llu\n", name,
                static_cast<unsigned long long>(histogram.count()));
  *out += line;
  std::snprintf(line, sizeof(line), "%s_sum %.9g\n", name,
                histogram.total_seconds());
  *out += line;
  std::snprintf(line, sizeof(line), "%s_count %llu\n", name,
                static_cast<unsigned long long>(histogram.count()));
  *out += line;
}

}  // namespace

RouterMetrics::RouterMetrics(size_t num_upstreams) {
  MutexLock lock(mutex_);
  upstream_.resize(num_upstreams);
}

void RouterMetrics::RecordRequest() {
  MutexLock lock(mutex_);
  ++requests_;
}

void RouterMetrics::RecordScatter(size_t legs) {
  MutexLock lock(mutex_);
  ++scatter_queries_;
  scatter_legs_ += legs;
}

void RouterMetrics::RecordUpstreamRequest(size_t i, bool follower) {
  MutexLock lock(mutex_);
  if (i >= upstream_.size()) return;
  if (follower) {
    ++upstream_[i].follower_requests;
  } else {
    ++upstream_[i].leader_requests;
  }
}

void RouterMetrics::RecordFailover() {
  MutexLock lock(mutex_);
  ++failovers_;
}

void RouterMetrics::RecordCancelFanout(size_t legs) {
  MutexLock lock(mutex_);
  cancel_fanout_ += legs;
}

void RouterMetrics::RecordMergeLatency(double seconds) {
  MutexLock lock(mutex_);
  merge_latency_.Record(seconds);
}

uint64_t RouterMetrics::requests() const {
  MutexLock lock(mutex_);
  return requests_;
}

uint64_t RouterMetrics::failovers() const {
  MutexLock lock(mutex_);
  return failovers_;
}

uint64_t RouterMetrics::upstream_requests(size_t i, bool follower) const {
  MutexLock lock(mutex_);
  if (i >= upstream_.size()) return 0;
  return follower ? upstream_[i].follower_requests
                  : upstream_[i].leader_requests;
}

std::string RouterMetrics::RenderPrometheus(
    const std::vector<UpstreamSnapshot>& upstreams) const {
  std::string out;
  out.reserve(4096);
  char line[256];
  MutexLock lock(mutex_);

  SimpleCounter(&out, "onex_router_requests_total",
                "Downstream queries admitted for routing.", requests_);
  SimpleCounter(&out, "onex_router_scatter_queries_total",
                "Queries scattered over more than one upstream dataset.",
                scatter_queries_);
  SimpleCounter(&out, "onex_router_failovers_total",
                "Mid-query re-submits to another replica.", failovers_);
  SimpleCounter(&out, "onex_router_cancel_fanout_total",
                "Upstream legs a downstream CANCEL was propagated to.",
                cancel_fanout_);

  Preamble(&out, "onex_router_upstream_requests_total", "counter",
           "Request legs by upstream and its probed role.");
  for (size_t i = 0; i < upstream_.size() && i < upstreams.size(); ++i) {
    const std::string address = upstreams[i].config.address();
    std::snprintf(line, sizeof(line),
                  "onex_router_upstream_requests_total{upstream=\"%s\","
                  "role=\"leader\"} %llu\n",
                  address.c_str(),
                  static_cast<unsigned long long>(
                      upstream_[i].leader_requests));
    out += line;
    std::snprintf(line, sizeof(line),
                  "onex_router_upstream_requests_total{upstream=\"%s\","
                  "role=\"follower\"} %llu\n",
                  address.c_str(),
                  static_cast<unsigned long long>(
                      upstream_[i].follower_requests));
    out += line;
  }

  HistogramFamily(&out, "onex_router_merge_latency_seconds",
                  "Admission-to-merged-final latency of routed queries.",
                  merge_latency_);

  Preamble(&out, "onex_router_upstream_healthy", "gauge",
           "1 when the upstream's last probe found it ready.");
  for (const UpstreamSnapshot& up : upstreams) {
    std::snprintf(line, sizeof(line),
                  "onex_router_upstream_healthy{upstream=\"%s\"} %d\n",
                  up.config.address().c_str(), up.health.ready ? 1 : 0);
    out += line;
  }
  Preamble(&out, "onex_router_upstream_lag_seconds", "gauge",
           "Probed replica lag of the upstream (-1 = leader/unknown).");
  for (const UpstreamSnapshot& up : upstreams) {
    std::snprintf(line, sizeof(line),
                  "onex_router_upstream_lag_seconds{upstream=\"%s\"} %.9g\n",
                  up.config.address().c_str(), up.health.replica_lag_s);
    out += line;
  }

  // Process gauges, same family names as the server's so one dashboard
  // row template fits every hop.
  const ProcessStats process = SampleProcessStats();
  GaugeLine(&out, "onex_process_uptime_seconds",
            "Seconds since process start.", process.uptime_seconds);
  GaugeLine(&out, "onex_process_resident_memory_bytes",
            "Resident set size in bytes.",
            static_cast<double>(process.rss_bytes));
  GaugeLine(&out, "onex_process_open_fds",
            "Open file descriptors (-1 when unavailable).",
            static_cast<double>(process.open_fds));
  GaugeLine(&out, "onex_process_threads",
            "Live threads (-1 when unavailable).",
            static_cast<double>(process.threads));
  Preamble(&out, "onex_process_cpu_user_seconds_total", "counter",
           "User-mode CPU seconds consumed.");
  std::snprintf(line, sizeof(line),
                "onex_process_cpu_user_seconds_total %.9g\n",
                process.cpu_user_seconds);
  out += line;
  Preamble(&out, "onex_process_cpu_sys_seconds_total", "counter",
           "Kernel-mode CPU seconds consumed.");
  std::snprintf(line, sizeof(line),
                "onex_process_cpu_sys_seconds_total %.9g\n",
                process.cpu_sys_seconds);
  out += line;
  return out;
}

}  // namespace router
}  // namespace onex

#include "router/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "router/merge.h"
#include "server/socket_io.h"

namespace onex {
namespace router {

namespace {

constexpr size_t kMaxRequestLine = size_t{1} << 20;

uint64_t ElapsedMs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

double HeaderDouble(const std::map<std::string, std::string>& header,
                    const char* key, double fallback) {
  auto it = header.find(key);
  if (it == header.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string HeaderString(const std::map<std::string, std::string>& header,
                         const char* key) {
  auto it = header.find(key);
  return it == header.end() ? std::string() : it->second;
}

/// Re-renders a relayed (write-path) reply block. The header map lost
/// the original key order, so the known write-verb orders are spelled
/// out; anything else falls back to map order.
std::string RenderRelay(const server::WireResponse& reply) {
  if (!reply.ok) return server::RenderErrorBlock(reply.code, reply.message);
  std::string out = "OK " + reply.kind;
  auto emit = [&](const char* key) {
    auto it = reply.header.find(key);
    if (it != reply.header.end()) {
      out += std::string(" ") + key + "=" + it->second;
    }
  };
  if (reply.kind == "Append") {
    emit("series");
    emit("total");
    emit("durable");
  } else if (reply.kind == "Flush") {
    emit("dataset");
  } else {
    for (const auto& [key, value] : reply.header) {
      out += " " + key + "=" + value;
    }
  }
  out += "\n";
  for (const std::string& row : reply.payload) out += row + "\n";
  return out + ".\n";
}

}  // namespace

// One downstream client connection. The write mutex serializes whole
// blocks onto the socket: inline replies (session thread), merged PART
// frames (upstream demux threads), and merged finals (op threads) all
// interleave block-at-a-time, never mid-block.
struct Router::Session {
  explicit Session(int fd) : fd(fd) {}

  void Send(const std::string& block) {
    MutexLock lock(write_mutex);
    server::SendAll(fd, block);
  }

  const int fd;
  Mutex write_mutex{LockRank::kSessionWrite, "router.session.write_mutex"};

  Mutex mutex{LockRank::kSessionState, "router.session.mutex"};
  /// `use` binding: an exact name or a shard-set spec.
  std::string bound GUARDED_BY(mutex);
  /// In-flight tagged scattered queries, by client id (CANCEL routing).
  std::map<uint64_t, std::shared_ptr<ScatterOp>> ops GUARDED_BY(mutex);

  // Write-forwarding state; session-thread-only, so unguarded. The
  // connection is blocking and NEVER auto-reconnects: a write whose
  // connection died has unknowable fate and must not be retried.
  std::optional<server::Client> write_client;
  size_t write_upstream = static_cast<size_t>(-1);
  std::string write_dataset;

  /// Coordinator threads of this session's tagged queries; joined when
  /// the session ends.
  std::vector<std::thread> op_threads;
};

// The merge state machine of one (possibly scattered) query.
struct Router::ScatterOp {
  std::shared_ptr<Session> session;
  uint64_t client_id = 0;
  bool match_shaped = false;
  size_t keep = 0;
  bool progress = false;
  std::chrono::steady_clock::time_point started;

  struct LegResult {
    bool finished = false;
    Status error = Status::OK();  ///< Transport failure when !ok().
    server::WireResponse final;   ///< Valid when finished && error.ok().
  };

  Mutex mutex{LockRank::kRouterMerge, "router.op.mutex"};
  uint64_t seq GUARDED_BY(mutex) = 0;
  bool cancelled GUARDED_BY(mutex) = false;
  /// Latest match-shaped snapshot per leg (re-ranked on every frame).
  std::vector<std::vector<std::string>> leg_rows GUARDED_BY(mutex);
  std::vector<double> leg_frac GUARDED_BY(mutex);
  /// Current upstream handle per leg, for CANCEL fan-out (replaced on
  /// failover re-submit).
  std::vector<server::Client::Handle> leg_handles GUARDED_BY(mutex);
  std::vector<LegResult> results GUARDED_BY(mutex);
};

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      table_(options_.upstreams),
      metrics_(options_.upstreams.size()),
      pool_(options_.pool, &table_) {}

Result<std::unique_ptr<Router>> Router::Start(RouterOptions options) {
  std::unique_ptr<Router> router(new Router(std::move(options)));
  const Status listening = router->Listen();
  if (!listening.ok()) return listening;
  router->pool_.Start();
  router->accept_thread_ = std::thread([r = router.get()] { r->AcceptLoop(); });
  return router;
}

Router::~Router() { Stop(); }

Status Router::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::IOError("bind " + options_.host + ":" +
                           std::to_string(options_.port) + ": " +
                           std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::OK();
}

void Router::Stop() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;

  // 1. No new connections.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Unblock session reads.
  {
    MutexLock lock(sessions_mutex_);
    for (const int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }

  // 3. Tear down the upstream pool: probes stop, query links close, so
  //    any leg still blocked in Wait() fails out and its op finishes.
  pool_.Stop();

  // 4. Sessions (and the op threads they join) can now run out.
  std::vector<SessionThread> to_join;
  {
    MutexLock lock(sessions_mutex_);
    to_join.swap(session_threads_);
  }
  for (SessionThread& session : to_join) {
    if (session.thread.joinable()) session.thread.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void Router::AcceptLoop() {
  while (!stop_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stop_.load()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    MutexLock lock(sessions_mutex_);
    if (stop_.load()) {
      ::close(fd);
      break;
    }
    for (auto it = session_threads_.begin(); it != session_threads_.end();) {
      if (it->done->load()) {
        if (it->thread.joinable()) it->thread.join();
        it = session_threads_.erase(it);
      } else {
        ++it;
      }
    }
    session_fds_.push_back(fd);
    auto done = std::make_shared<std::atomic<bool>>(false);
    session_threads_.push_back({std::thread([this, fd, done] {
                                  SessionLoop(fd);
                                  done->store(true);
                                }),
                                done});
  }
}

void Router::SessionLoop(int fd) {
  auto session = std::make_shared<Session>(fd);
  session->Send(server::Greeting());

  server::SocketLineReader reader(fd, kMaxRequestLine);
  std::string line;
  while (!stop_.load() && reader.ReadLine(&line)) {
    if (line.empty()) continue;
    server::RequestAttrs attrs;
    auto parsed = server::ParseRequestLine(line, &attrs);
    if (!parsed.ok()) {
      session->Send(server::RenderError(parsed.status(), attrs.id));
      continue;
    }

    if (const auto* control =
            std::get_if<server::ControlRequest>(&parsed.value())) {
      bool quit = false;
      switch (control->verb) {
        case server::ControlVerb::kUse: {
          const std::string& spec = control->argument;
          const auto names = table_.Expand(spec);
          if (names.empty()) {
            session->Send(server::RenderError(Status::NotFound(
                "no upstream serves '" + spec + "'")));
            break;
          }
          {
            MutexLock lock(session->mutex);
            session->bound = spec;
          }
          session->Send("OK Use dataset=" + spec +
                        " datasets=" + std::to_string(names.size()) +
                        "\n.\n");
          break;
        }
        case server::ControlVerb::kList:
          session->Send(RenderRouterList());
          break;
        case server::ControlVerb::kStats:
          session->Send(server::RenderErrorBlock(
              "NOT_SUPPORTED",
              "stats is node-local — connect to an upstream directly"));
          break;
        case server::ControlVerb::kPing:
          session->Send("OK Pong\n.\n");
          break;
        case server::ControlVerb::kHelp:
          session->Send(server::RenderHelp());
          break;
        case server::ControlVerb::kQuit:
          session->Send("OK Bye\n.\n");
          quit = true;
          break;
        case server::ControlVerb::kFlush:
          ForwardWrite(session, line, "flush");
          break;
        case server::ControlVerb::kCancel: {
          if (control->argument.find('/') != std::string::npos) {
            session->Send(server::RenderErrorBlock(
                "NOT_SUPPORTED",
                "admin cancel is node-local — connect to the node"));
            break;
          }
          CancelOp(session,
                   std::strtoull(control->argument.c_str(), nullptr, 10));
          break;
        }
        case server::ControlVerb::kMetrics:
          session->Send("OK Metrics\n" +
                        metrics_.RenderPrometheus(table_.Snapshot()) + ".\n");
          break;
        case server::ControlVerb::kInspect:
          session->Send(RenderRouterInspect());
          break;
        case server::ControlVerb::kHealth:
          session->Send(RenderRouterHealth());
          break;
        case server::ControlVerb::kManifest:
        case server::ControlVerb::kFetch:
          session->Send(server::RenderErrorBlock(
              "NOT_SUPPORTED",
              "replication verbs bypass the router — fetch from the "
              "leader directly"));
          break;
      }
      if (quit) break;
      continue;
    }

    if (std::get_if<server::AppendRequest>(&parsed.value()) != nullptr) {
      ForwardWrite(session, line, "append");
      continue;
    }

    // Query path: resolve the target spec, expand, scatter.
    const auto& query = std::get<QueryRequest>(parsed.value());
    metrics_.RecordRequest();
    std::string spec = attrs.dataset;
    if (spec.empty()) {
      MutexLock lock(session->mutex);
      spec = session->bound;
    }
    if (spec.empty()) {
      session->Send(server::RenderErrorBlock(
          server::kNoDatasetCode,
          "no dataset bound — send 'use <name>' or a dataset= attribute",
          attrs.id));
      continue;
    }
    auto datasets = table_.Expand(spec);
    if (datasets.empty()) {
      session->Send(server::RenderError(
          Status::NotFound("no upstream serves '" + spec + "'"), attrs.id));
      continue;
    }
    if (datasets.size() > 1) metrics_.RecordScatter(datasets.size());

    if (attrs.id != 0) {
      auto op = std::make_shared<ScatterOp>();
      op->session = session;
      op->client_id = attrs.id;
      op->match_shaped = IsMatchShaped(query);
      op->keep = MergeKeepLimit(query);
      op->progress = attrs.progress;
      op->started = std::chrono::steady_clock::now();
      {
        MutexLock lock(op->mutex);
        op->leg_rows.resize(datasets.size());
        op->leg_frac.assign(datasets.size(), 0.0);
        op->leg_handles.resize(datasets.size());
        op->results.resize(datasets.size());
      }
      bool duplicate = false;
      {
        MutexLock lock(session->mutex);
        duplicate = !session->ops.emplace(attrs.id, op).second;
      }
      if (duplicate) {
        session->Send(server::RenderErrorBlock(
            "INVALID_ARGUMENT",
            "id " + std::to_string(attrs.id) + " is already in flight",
            attrs.id));
        continue;
      }
      // Tagged: run on a coordinator thread so this session thread can
      // keep reading (CANCEL must be able to overtake the query).
      session->op_threads.emplace_back(
          [this, session, op, query, attrs, datasets]() mutable {
            RunScatter(session, query, attrs, std::move(datasets));
            MutexLock lock(session->mutex);
            session->ops.erase(attrs.id);
          });
      // RunScatter reads op state through session->ops; hand the op
      // over via the registry rather than re-creating it there.
      continue;
    }
    // Untagged: strictly ordered replies — run inline.
    RunScatter(session, query, attrs, std::move(datasets));
  }

  for (std::thread& op_thread : session->op_threads) {
    if (op_thread.joinable()) op_thread.join();
  }
  if (session->write_client.has_value()) session->write_client->Close();
  {
    MutexLock lock(sessions_mutex_);
    for (auto it = session_fds_.begin(); it != session_fds_.end(); ++it) {
      if (*it == fd) {
        session_fds_.erase(it);
        break;
      }
    }
  }
  ::close(fd);
}

void Router::RunScatter(std::shared_ptr<Session> session,
                        QueryRequest request,
                        server::RequestAttrs attrs,
                        std::vector<std::string> datasets) {
  std::shared_ptr<ScatterOp> op;
  if (attrs.id != 0) {
    MutexLock lock(session->mutex);
    op = session->ops[attrs.id];
  }
  if (op == nullptr) {
    // Untagged path: the op was not registered (no CANCEL can target
    // it), so build it here.
    op = std::make_shared<ScatterOp>();
    op->session = session;
    op->client_id = attrs.id;
    op->match_shaped = IsMatchShaped(request);
    op->keep = MergeKeepLimit(request);
    op->progress = attrs.progress;
    op->started = std::chrono::steady_clock::now();
    MutexLock lock(op->mutex);
    op->leg_rows.resize(datasets.size());
    op->leg_frac.assign(datasets.size(), 0.0);
    op->leg_handles.resize(datasets.size());
    op->results.resize(datasets.size());
  }

  std::vector<std::thread> legs;
  legs.reserve(datasets.size());
  for (size_t leg = 0; leg < datasets.size(); ++leg) {
    legs.emplace_back([this, op, leg, dataset = datasets[leg], &request,
                       &attrs] { RunLeg(op, leg, dataset, request, attrs); });
  }
  for (std::thread& leg : legs) leg.join();

  // All legs are finished; the upstream servers send the final block
  // after the last PART frame of an id, so no demux callback touches
  // the op anymore and the merge below sees quiescent state.
  const uint64_t latency_us = ElapsedMs(op->started) * 1000;
  metrics_.RecordMergeLatency(static_cast<double>(latency_us) / 1e6);

  MergedStats stats;
  std::vector<std::vector<std::string>> leg_final_rows(datasets.size());
  std::vector<std::string> extra;
  std::string kind;
  std::string interrupt;
  bool any_partial = false;
  bool any_transport_failure = false;
  Status failure = Status::OK();
  const server::WireResponse* app_error = nullptr;
  size_t successes = 0;
  MutexLock lock(op->mutex);
  for (size_t leg = 0; leg < op->results.size(); ++leg) {
    const ScatterOp::LegResult& result = op->results[leg];
    if (!result.error.ok()) {
      any_transport_failure = true;
      failure = result.error;
      continue;
    }
    if (!result.final.ok) {
      if (app_error == nullptr) app_error = &result.final;
      continue;
    }
    ++successes;
    if (kind.empty()) kind = result.final.kind;
    SplitFinalPayload(result.final.payload, &stats, &leg_final_rows[leg],
                      &extra);
    if (result.final.partial()) {
      any_partial = true;
      if (interrupt.empty()) {
        interrupt = HeaderString(result.final.header, "interrupt");
      }
    }
  }

  if (app_error != nullptr) {
    // An upstream understood the query and refused it (bad arguments,
    // unknown dataset): deterministic on every replica, so propagate.
    session->Send(server::RenderErrorBlock(app_error->code,
                                           app_error->message, attrs.id));
    return;
  }
  if (successes == 0) {
    if (failure.ok()) failure = Status::IOError("every leg failed");
    session->Send(server::RenderError(failure, attrs.id));
    return;
  }
  if (any_transport_failure) {
    // Partial coverage: some shards answered, some had no live replica
    // left. Same contract as a deadline-clipped single-node answer.
    any_partial = true;
    if (interrupt.empty()) interrupt = server::WireCode(failure.code());
  }
  if (any_partial && interrupt.empty()) {
    interrupt = server::WireCode(Status::Code::kDeadlineExceeded);
  }

  std::vector<std::string> rows;
  if (op->match_shaped) {
    rows = MergeMatchRows(leg_final_rows, op->keep);
  } else {
    for (const auto& leg_rows : leg_final_rows) {
      rows.insert(rows.end(), leg_rows.begin(), leg_rows.end());
    }
  }
  session->Send(RenderMergedFinal(kind, attrs.id, rows, latency_us,
                                  any_partial, interrupt, stats, extra));
}

void Router::RunLeg(std::shared_ptr<ScatterOp> op, size_t leg,
                    std::string dataset,
                    const QueryRequest& request,
                    const server::RequestAttrs& attrs) {
  std::vector<size_t> tried;
  Status last =
      Status::IOError("no ready upstream serves '" + dataset + "'");
  for (int attempt = 0; attempt <= options_.max_failovers; ++attempt) {
    {
      MutexLock lock(op->mutex);
      if (op->cancelled) {
        last = Status::Cancelled("cancelled before leg could run");
        break;
      }
    }
    if (attempt > 0) metrics_.RecordFailover();
    const auto pick = table_.PickRead(dataset, tried);
    if (!pick.has_value()) break;
    const size_t idx = pick.value();
    tried.push_back(idx);

    auto link = pool_.QueryLink(idx);
    if (!link.ok()) {
      last = link.status();
      continue;
    }
    std::shared_ptr<server::Client> client = link.value();
    metrics_.RecordUpstreamRequest(
        idx, table_.Snapshot()[idx].health.follower);

    server::Client::SubmitOptions submit;
    submit.deadline_ms =
        RemainingBudgetMs(attrs.deadline_ms, ElapsedMs(op->started));
    submit.trace = attrs.trace;
    submit.dataset = dataset;
    if (attrs.progress) {
      submit.on_progress = [op, leg](const server::WireResponse& part) {
        OnLegPart(op, leg, part);
      };
    }
    auto submitted = client->Submit(request, submit);
    if (!submitted.ok()) {
      pool_.DropLink(idx, client.get());
      last = submitted.status();
      continue;
    }
    bool was_cancelled = false;
    {
      MutexLock lock(op->mutex);
      op->leg_handles[leg] = submitted.value();
      was_cancelled = op->cancelled;
    }
    // Cancel raced the re-submit: the fan-out missed this handle, so
    // deliver it ourselves (idempotent server-side).
    if (was_cancelled) submitted.value().Cancel();

    auto final = submitted.value().Wait();
    if (final.ok()) {
      MutexLock lock(op->mutex);
      op->results[leg].finished = true;
      op->results[leg].final = std::move(final).value();
      return;
    }
    // Transport death with the client's own reconnects exhausted: drop
    // the link and fail over to the next untried replica.
    pool_.DropLink(idx, client.get());
    last = final.status();
  }
  MutexLock lock(op->mutex);
  op->results[leg].finished = true;
  op->results[leg].error = last;
}

void Router::OnLegPart(const std::shared_ptr<ScatterOp>& op, size_t leg,
                       const server::WireResponse& part) {
  MutexLock lock(op->mutex);
  if (leg >= op->leg_frac.size()) return;
  op->leg_frac[leg] = HeaderDouble(part.header, "frac", op->leg_frac[leg]);
  double frac_sum = 0.0;
  for (const double frac : op->leg_frac) frac_sum += frac;
  const double merged_frac =
      op->leg_frac.empty() ? 0.0
                           : frac_sum / static_cast<double>(
                                            op->leg_frac.size());
  const bool snapshot = HeaderString(part.header, "snapshot") == "1";
  std::string frame;
  if (op->match_shaped && snapshot) {
    // Best-so-far snapshot stream (q1/q1k): replace this leg's rows and
    // re-rank the union into one merged top-k snapshot.
    op->leg_rows[leg] = part.payload;
    frame = RenderScatterPart(part.kind, op->client_id, op->seq++,
                              merged_frac, /*snapshot=*/true,
                              MergeMatchRows(op->leg_rows, op->keep));
  } else {
    // Incremental streams (q1r matches, GROUP, REC): interleave by
    // origin. Never a snapshot downstream — no single frame covers the
    // whole scattered answer.
    if (part.payload.empty()) return;
    frame = RenderScatterPart(part.kind, op->client_id, op->seq++,
                              merged_frac, /*snapshot=*/false, part.payload);
  }
  // Sent under op->mutex so downstream seq numbers are monotone on the
  // wire (merge rank 48 < session-write rank 52).
  op->session->Send(frame);
}

void Router::ForwardWrite(const std::shared_ptr<Session>& session,
                          const std::string& raw_line,
                          const std::string& verb) {
  std::string dataset;
  {
    MutexLock lock(session->mutex);
    dataset = session->bound;
  }
  if (dataset.empty()) {
    session->Send(server::RenderErrorBlock(
        server::kNoDatasetCode,
        "no dataset bound — send 'use <name>' first"));
    return;
  }
  if (IsShardSet(dataset)) {
    session->Send(server::RenderErrorBlock(
        "INVALID_ARGUMENT", "writes need an exact dataset — '" + dataset +
                                "' is a shard-set"));
    return;
  }
  const auto pick = table_.PickWrite(dataset);
  if (!pick.has_value()) {
    session->Send(server::RenderError(
        Status::IOError("no ready leader serves '" + dataset + "'")));
    return;
  }
  const size_t idx = pick.value();

  if (!session->write_client.has_value() ||
      session->write_upstream != idx || session->write_dataset != dataset) {
    if (session->write_client.has_value()) {
      session->write_client->Close();
      session->write_client.reset();
    }
    const UpstreamConfig config = table_.Snapshot()[idx].config;
    server::ClientOptions client_options;
    client_options.connect_timeout_ms = options_.pool.connect_timeout_ms;
    client_options.io_timeout_ms = options_.pool.io_timeout_ms;
    auto dialed =
        server::Client::Connect(config.host, config.port, client_options);
    if (!dialed.ok()) {
      session->Send(server::RenderError(dialed.status()));
      return;
    }
    session->write_client.emplace(std::move(dialed).value());
    auto bound = session->write_client->Roundtrip("use " + dataset);
    if (!bound.ok() || !bound.value().ok) {
      const std::string detail =
          bound.ok() ? bound.value().code + " " + bound.value().message
                     : bound.status().message();
      session->write_client->Close();
      session->write_client.reset();
      session->Send(server::RenderError(Status::IOError(
          "binding '" + dataset + "' on the leader failed: " + detail)));
      return;
    }
    session->write_upstream = idx;
    session->write_dataset = dataset;
  }

  metrics_.RecordUpstreamRequest(idx, /*follower=*/false);
  auto reply = session->write_client->Roundtrip(raw_line);
  if (!reply.ok()) {
    // The write's fate is unknown — never retried. Surface and re-dial
    // on the NEXT write.
    session->write_client->Close();
    session->write_client.reset();
    session->Send(server::RenderError(Status::IOError(
        verb + " to the leader failed: " + reply.status().message())));
    return;
  }
  session->Send(RenderRelay(reply.value()));
}

void Router::CancelOp(const std::shared_ptr<Session>& session, uint64_t id) {
  std::shared_ptr<ScatterOp> op;
  {
    MutexLock lock(session->mutex);
    auto it = session->ops.find(id);
    if (it != session->ops.end()) op = it->second;
  }
  if (op == nullptr) {
    session->Send(server::RenderErrorBlock(
        "NOT_FOUND",
        "query id=" + std::to_string(id) + " is not in flight"));
    return;
  }
  std::vector<server::Client::Handle> handles;
  {
    MutexLock lock(op->mutex);
    op->cancelled = true;
    handles = op->leg_handles;
  }
  size_t fanned = 0;
  for (server::Client::Handle& handle : handles) {
    if (handle.id() == 0) continue;
    handle.Cancel();  // NotFound = that leg already finished; fine.
    ++fanned;
  }
  metrics_.RecordCancelFanout(fanned);
  session->Send("OK Cancel id=" + std::to_string(id) + "\n.\n");
}

std::string Router::RenderRouterHealth() const {
  const auto upstreams = table_.Snapshot();
  bool any_ready = false;
  for (const UpstreamSnapshot& up : upstreams) {
    if (up.health.ready) any_ready = true;
  }
  std::string reply = std::string("OK Health live=1 ready=") +
                      (any_ready ? "1" : "0") + "\n";
  for (const UpstreamSnapshot& up : upstreams) {
    char lag[32];
    std::snprintf(lag, sizeof(lag), "%.3f", up.health.replica_lag_s);
    reply += std::string("check name=upstream ok=") +
             (up.health.ready ? "1" : "0") + " address=" +
             up.config.address() + " role=" +
             (!up.health.reachable ? "unknown"
              : up.health.follower ? "follower"
                                   : "leader") +
             " lag_s=" + lag + "\n";
  }
  return reply + ".\n";
}

std::string Router::RenderRouterInspect() const {
  const auto upstreams = table_.Snapshot();
  size_t sessions = 0;
  {
    MutexLock lock(sessions_mutex_);
    sessions = session_fds_.size();
  }
  std::string reply = "OK Inspect sessions=" + std::to_string(sessions) +
                      " upstreams=" + std::to_string(upstreams.size()) +
                      "\n";
  for (const UpstreamSnapshot& up : upstreams) {
    char lag[32];
    std::snprintf(lag, sizeof(lag), "%.3f", up.health.replica_lag_s);
    reply += "upstream address=" + up.config.address() +
             " reachable=" + (up.health.reachable ? "1" : "0") +
             " ready=" + (up.health.ready ? "1" : "0") +
             " follower=" + (up.health.follower ? "1" : "0") +
             " lag_s=" + lag +
             " datasets=" + std::to_string(up.datasets.size());
    if (!up.health.error.empty()) reply += " error=" + up.health.error;
    reply += "\n";
  }
  return reply + ".\n";
}

std::string Router::RenderRouterList() const {
  const auto upstreams = table_.Snapshot();
  std::map<std::string, size_t> serving;
  for (const UpstreamSnapshot& up : upstreams) {
    for (const std::string& dataset : up.datasets) ++serving[dataset];
  }
  std::string reply =
      "OK List datasets=" + std::to_string(serving.size()) + "\n";
  for (const auto& [name, count] : serving) {
    reply += "dataset name=" + name +
             " upstreams=" + std::to_string(count) + "\n";
  }
  return reply + ".\n";
}

}  // namespace router
}  // namespace onex

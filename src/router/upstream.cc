#include "router/upstream.h"

#include <chrono>
#include <cstdlib>
#include <utility>

namespace onex {
namespace router {

UpstreamPool::UpstreamPool(UpstreamPoolOptions options, RoutingTable* table)
    : options_(options), table_(table) {
  MutexLock lock(mutex_);
  links_.resize(table_->size());
}

UpstreamPool::~UpstreamPool() { Stop(); }

void UpstreamPool::Start() {
  for (size_t i = 0; i < table_->size(); ++i) ProbeNow(i);
  probe_threads_.reserve(table_->size());
  for (size_t i = 0; i < table_->size(); ++i) {
    probe_threads_.emplace_back([this, i] { ProbeLoop(i); });
  }
}

void UpstreamPool::Stop() {
  {
    MutexLock lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  stop_cv_.NotifyAll();
  for (std::thread& t : probe_threads_) {
    if (t.joinable()) t.join();
  }
  probe_threads_.clear();
  // Close the query links after the probes: Close joins each link's
  // demux thread, and nothing submits anymore once the router's
  // sessions are down (the router stops sessions before the pool).
  std::vector<std::shared_ptr<server::Client>> links;
  {
    MutexLock lock(mutex_);
    links.swap(links_);
  }
  for (auto& link : links) {
    if (link) link->Close();
  }
}

void UpstreamPool::ProbeNow(size_t i) {
  const UpstreamConfig config = table_->Snapshot()[i].config;
  server::ClientOptions client_options;
  client_options.connect_timeout_ms = options_.connect_timeout_ms;
  client_options.io_timeout_ms = options_.io_timeout_ms;

  UpstreamHealth health;
  std::vector<std::string> datasets;
  auto client =
      server::Client::Connect(config.host, config.port, client_options);
  if (!client.ok()) {
    health.error = client.status().message();
    table_->Update(i, health, std::move(datasets));
    return;
  }
  auto health_reply = client.value().Roundtrip("health");
  if (!health_reply.ok()) {
    health.error = health_reply.status().message();
    table_->Update(i, health, std::move(datasets));
    return;
  }
  health = ParseHealth(health_reply.value());
  auto list_reply = client.value().Roundtrip("list");
  if (list_reply.ok()) {
    datasets = ParseDatasets(list_reply.value());
  } else {
    health.error = list_reply.status().message();
  }
  client.value().Close();
  table_->Update(i, health, std::move(datasets));
}

Result<std::shared_ptr<server::Client>> UpstreamPool::QueryLink(size_t i) {
  {
    MutexLock lock(mutex_);
    if (i >= links_.size()) {
      return Status::InvalidArgument("no such upstream");
    }
    if (links_[i]) return links_[i];
  }
  const UpstreamConfig config = table_->Snapshot()[i].config;
  server::ClientOptions client_options;
  client_options.connect_timeout_ms = options_.connect_timeout_ms;
  client_options.io_timeout_ms = options_.io_timeout_ms;
  client_options.auto_reconnect = true;
  auto dialed =
      server::Client::Connect(config.host, config.port, client_options);
  if (!dialed.ok()) return dialed.status();
  auto link = std::make_shared<server::Client>(std::move(dialed).value());
  {
    MutexLock lock(mutex_);
    if (!stopping_) {
      if (links_[i]) return links_[i];  // Lost the dial race; reuse theirs.
      links_[i] = link;
      return link;
    }
  }
  // Late dial during shutdown: don't park a live demux in the pool.
  link->Close();
  return Status::IOError("router shutting down");
}

void UpstreamPool::DropLink(size_t i, const server::Client* dead) {
  std::shared_ptr<server::Client> doomed;
  {
    MutexLock lock(mutex_);
    if (i >= links_.size() || links_[i].get() != dead) return;
    doomed = std::move(links_[i]);
  }
  if (doomed) doomed->Close();
}

UpstreamHealth UpstreamPool::ParseHealth(const server::WireResponse& reply) {
  UpstreamHealth health;
  if (!reply.ok || reply.kind != "Health") {
    health.error = "malformed HEALTH reply";
    return health;
  }
  health.reachable = true;
  auto flag = [&](const char* key) {
    auto it = reply.header.find(key);
    return it != reply.header.end() && it->second == "1";
  };
  health.live = flag("live");
  health.ready = flag("ready");
  for (const std::string& row : reply.payload) {
    const auto kv = server::ParseKeyValues(row);
    auto name = kv.find("name");
    if (name == kv.end() || name->second != "replica_lag") continue;
    health.follower = true;
    auto lag = kv.find("lag_s");
    if (lag != kv.end()) {
      health.replica_lag_s = std::strtod(lag->second.c_str(), nullptr);
    }
  }
  return health;
}

std::vector<std::string> UpstreamPool::ParseDatasets(
    const server::WireResponse& reply) {
  std::vector<std::string> datasets;
  if (!reply.ok || reply.kind != "List") return datasets;
  for (const std::string& row : reply.payload) {
    if (row.rfind("dataset ", 0) != 0) continue;
    const auto kv = server::ParseKeyValues(row);
    auto name = kv.find("name");
    if (name != kv.end()) datasets.push_back(name->second);
  }
  return datasets;
}

void UpstreamPool::ProbeLoop(size_t i) {
  const auto interval = std::chrono::milliseconds(options_.probe_interval_ms);
  while (true) {
    {
      MutexLock lock(mutex_);
      if (stopping_) return;
      stop_cv_.WaitFor(mutex_, interval);
      if (stopping_) return;
    }
    ProbeNow(i);
  }
}

}  // namespace router
}  // namespace onex

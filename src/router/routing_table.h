// Copyright 2026 The ONEX Reproduction Authors.
// Routing table of the scatter-gather tier: dataset -> {leader,
// followers}, learned by probing every configured upstream's HEALTH
// (role + readiness + replica lag) and dataset listing (MANIFEST on
// durable leaders, LIST everywhere — non-durable leaders publish no
// manifest). The table is a snapshot container: probe threads Update()
// whole per-upstream snapshots, session threads make routing decisions
// against the latest state without blocking the probes.

#ifndef ONEX_ROUTER_ROUTING_TABLE_H_
#define ONEX_ROUTER_ROUTING_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace onex {
namespace router {

/// One configured upstream node (a leader or a follower — the router
/// does not care which until the probe tells it).
struct UpstreamConfig {
  std::string host;
  uint16_t port = 0;
  std::string address() const {
    return host + ":" + std::to_string(port);
  }
};

/// What the last probe learned about one upstream.
struct UpstreamHealth {
  bool reachable = false;  ///< The probe connected and got HEALTH back.
  bool live = false;
  bool ready = false;
  /// The HEALTH payload carried a `check name=replica_lag` row — the
  /// node is a follower (ServerOptions::replica_status is follower-only).
  bool follower = false;
  double replica_lag_s = -1.0;
  std::string error;  ///< Last probe failure, for INSPECT.
};

/// One upstream's full probed state.
struct UpstreamSnapshot {
  UpstreamConfig config;
  UpstreamHealth health;
  std::vector<std::string> datasets;  ///< Names this node serves.
};

/// True when `dataset` is named by the shard-set spec: an exact match,
/// `*` (everything), or `<prefix>*` (prefix match — the documented
/// grammar is a single trailing star).
bool MatchesShardSet(const std::string& spec, const std::string& dataset);

/// True when the spec is a shard-set (contains a star) rather than an
/// exact dataset name.
bool IsShardSet(const std::string& spec);

class RoutingTable {
 public:
  explicit RoutingTable(std::vector<UpstreamConfig> upstreams);

  size_t size() const { return size_; }

  /// Replaces upstream `i`'s snapshot (probe thread).
  void Update(size_t i, UpstreamHealth health,
              std::vector<std::string> datasets);

  /// Expands a shard-set spec (or exact name) to the sorted set of
  /// distinct dataset names any upstream currently serves.
  std::vector<std::string> Expand(const std::string& spec) const;

  /// Read routing: the READY follower serving `dataset` with the
  /// lowest replica lag, falling back to a ready leader (non-follower)
  /// when no follower qualifies. Upstreams in `exclude` (already tried
  /// this query — failover) are skipped. nullopt = nobody can serve it.
  std::optional<size_t> PickRead(const std::string& dataset,
                                 const std::vector<size_t>& exclude) const;

  /// Write routing: a ready non-follower serving `dataset` (appends on
  /// a follower would bounce with READ_ONLY anyway).
  std::optional<size_t> PickWrite(const std::string& dataset) const;

  /// Full copy for INSPECT/HEALTH rendering.
  std::vector<UpstreamSnapshot> Snapshot() const;

 private:
  const size_t size_;
  mutable Mutex mutex_{LockRank::kRouterTable, "router.table_mutex"};
  std::vector<UpstreamSnapshot> upstreams_ GUARDED_BY(mutex_);
};

}  // namespace router
}  // namespace onex

#endif  // ONEX_ROUTER_ROUTING_TABLE_H_

// Copyright 2026 The ONEX Reproduction Authors.
// PAA baseline (paper [19], Keogh & Pazzani 2000): Piecewise Aggregate
// Approximation reduces each sequence to frame averages and DTW runs on
// the reduced series (PDTW). Approximate — the reduced-space winner need
// not be the true winner — and, per the paper's Sec. 6.3, it has no
// preprocessing phase: reduction happens during the scan.

#ifndef ONEX_BASELINES_PAA_H_
#define ONEX_BASELINES_PAA_H_

#include <span>
#include <vector>

#include "baselines/search_result.h"
#include "dataset/dataset.h"
#include "dataset/length_spec.h"
#include "distance/dtw.h"

namespace onex {

/// PAA reduction of `series` by `frame` (average of each frame of
/// consecutive points; a ragged final frame averages the remainder).
/// frame = 1 copies; frame >= length yields a single point.
std::vector<double> PaaReduce(std::span<const double> series, size_t frame);

/// PDTW: DTW between the PAA reductions of `a` and `b`.
double PdtwDistance(std::span<const double> a, std::span<const double> b,
                    size_t frame, const DtwOptions& options = {});

/// Scan-everything search in PAA space.
class PaaSearch {
 public:
  /// `frame` is the PAA frame size (the paper's dimensionality-reduction
  /// knob; 8 is a conventional default giving an 8x cell-count saving).
  PaaSearch(const Dataset* dataset, LengthSpec lengths, size_t frame = 8,
            DtwOptions dtw_options = {})
      : dataset_(dataset),
        lengths_(lengths),
        frame_(frame < 1 ? 1 : frame),
        dtw_options_(dtw_options) {}

  /// Best match across all candidate lengths by *reduced-space*
  /// normalized DTW; SearchResult::distance is that reduced-space value.
  /// Callers wanting the true distance recompute DTW at the returned
  /// location (as the paper's accuracy harness does).
  SearchResult FindBestMatch(std::span<const double> query) const;

  /// Best match restricted to candidates of exactly `length`.
  SearchResult FindBestMatchOfLength(std::span<const double> query,
                                     size_t length) const;

  size_t frame() const { return frame_; }

 private:
  const Dataset* dataset_;
  LengthSpec lengths_;
  size_t frame_;
  DtwOptions dtw_options_;
};

}  // namespace onex

#endif  // ONEX_BASELINES_PAA_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Re-implementation of the UCR-suite search of Rakthanmanon et al. [22]
// ("Trillion"), the paper's fastest comparator. The paper links the
// authors' binary; offline we rebuild the published algorithm:
//   - candidates are ALL same-length sliding windows (stride 1),
//   - every window is z-normalized (inherent to the UCR suite; this is
//     what separates its answers from the min-max gold standard and
//     produces the accuracy gap in the paper's Tables 2-3),
//   - pruning cascade: LB_KimFL -> LB_Keogh(query env) -> LB_Keogh(data
//     env) -> early-abandoning DTW with cumulative-bound pruning,
//   - incremental mean/stddev while sliding; query reordered by |z|.

#ifndef ONEX_BASELINES_TRILLION_H_
#define ONEX_BASELINES_TRILLION_H_

#include <cstdint>
#include <span>
#include <string>

#include "baselines/search_result.h"
#include "dataset/dataset.h"

namespace onex {

/// Pruning counters for the ablation bench.
struct TrillionStats {
  uint64_t candidates = 0;
  uint64_t pruned_kim = 0;
  uint64_t pruned_keogh_query = 0;
  uint64_t pruned_keogh_data = 0;
  uint64_t dtw_abandoned = 0;
  uint64_t dtw_completed = 0;

  void Reset() { *this = TrillionStats(); }
  std::string ToString() const;
};

/// UCR-suite best-match search. Only same-length matches are produced —
/// the restriction the paper calls out when comparing against ONEX-S
/// (Table 1) and when explaining Trillion's any-length accuracy.
class TrillionSearch {
 public:
  /// `window_ratio` is the Sakoe-Chiba band as a fraction of the query
  /// length (UCR-suite convention; 0.05 is the suite's common default).
  explicit TrillionSearch(const Dataset* dataset, double window_ratio = 0.05)
      : dataset_(dataset), window_ratio_(window_ratio) {}

  /// Finds the sliding window with minimal z-normalized DTW to the
  /// query. SearchResult::distance is that z-normalized DTW divided by
  /// 2 * query length (Def. 6 normalization, for engine-uniform
  /// reporting); callers needing min-max-space distances recompute at
  /// the returned location.
  SearchResult FindBestMatch(std::span<const double> query);

  const TrillionStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  const Dataset* dataset_;
  double window_ratio_;
  TrillionStats stats_;
};

}  // namespace onex

#endif  // ONEX_BASELINES_TRILLION_H_

#include "baselines/trillion.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <vector>

#include "dataset/normalize.h"
#include "distance/dtw.h"
#include "distance/envelope.h"
#include "distance/lb_keogh.h"

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kMinStddev = 1e-12;

// O(1) LB_Kim_FL against a window whose z-normalization is implied by
// (mu, sigma): z(x) = (x - mu) * inv_sigma. Uses first/last points plus
// their neighbours (admissible for m >= 4; callers guarantee that).
double LbKimFlImplicitZ(std::span<const double> zq,
                        const double* window, size_t m, double mu,
                        double inv_sigma) {
  auto z = [mu, inv_sigma](double x) { return (x - mu) * inv_sigma; };
  const double d00 = zq[0] - z(window[0]);
  double lb = d00 * d00;
  const double dnn = zq[m - 1] - z(window[m - 1]);
  lb += dnn * dnn;
  const double c01 = (zq[0] - z(window[1])) * (zq[0] - z(window[1]));
  const double c10 = (zq[1] - z(window[0])) * (zq[1] - z(window[0]));
  const double c11 = (zq[1] - z(window[1])) * (zq[1] - z(window[1]));
  lb += std::min({c01, c10, c11});
  const double e01 = (zq[m - 1] - z(window[m - 2])) *
                     (zq[m - 1] - z(window[m - 2]));
  const double e10 = (zq[m - 2] - z(window[m - 1])) *
                     (zq[m - 2] - z(window[m - 1]));
  const double e11 = (zq[m - 2] - z(window[m - 2])) *
                     (zq[m - 2] - z(window[m - 2]));
  lb += std::min({e01, e10, e11});
  return lb;  // Squared units.
}

// LB_Keogh(query-envelope, z-normalized window) visited in `order`
// (descending |zq|), early abandoned against best_so_far_sq. Squared
// per-point contributions are recorded in index order for cb pruning.
double LbKeoghQuerySide(const Envelope& query_env, const double* window,
                        double mu, double inv_sigma,
                        std::span<const size_t> order,
                        double best_so_far_sq,
                        std::vector<double>* contributions) {
  double sum = 0.0;
  size_t steps = 0;
  for (size_t idx : order) {
    const double zx = (window[idx] - mu) * inv_sigma;
    double c = 0.0;
    if (zx > query_env.upper[idx]) {
      const double d = zx - query_env.upper[idx];
      c = d * d;
    } else if (zx < query_env.lower[idx]) {
      const double d = query_env.lower[idx] - zx;
      c = d * d;
    }
    (*contributions)[idx] = c;
    sum += c;
    if (++steps % 16 == 0 && sum > best_so_far_sq) return kInf;
  }
  return sum > best_so_far_sq ? kInf : sum;
}

// LB_Keogh(data-envelope, z-normalized query): the role-reversed bound.
// The data envelope is the slice of the per-series raw envelope,
// z-normalized on the fly (affine, order-preserving since sigma > 0).
double LbKeoghDataSide(std::span<const double> zq, const double* env_lower,
                       const double* env_upper, double mu, double inv_sigma,
                       double best_so_far_sq,
                       std::vector<double>* contributions) {
  double sum = 0.0;
  const size_t m = zq.size();
  for (size_t i = 0; i < m; ++i) {
    const double lo = (env_lower[i] - mu) * inv_sigma;
    const double hi = (env_upper[i] - mu) * inv_sigma;
    double c = 0.0;
    if (zq[i] > hi) {
      const double d = zq[i] - hi;
      c = d * d;
    } else if (zq[i] < lo) {
      const double d = lo - zq[i];
      c = d * d;
    }
    (*contributions)[i] = c;
    sum += c;
    if (i % 16 == 15 && sum > best_so_far_sq) return kInf;
  }
  return sum > best_so_far_sq ? kInf : sum;
}

}  // namespace

std::string TrillionStats::ToString() const {
  std::ostringstream out;
  out << "candidates=" << candidates << " pruned_kim=" << pruned_kim
      << " pruned_keogh_q=" << pruned_keogh_query
      << " pruned_keogh_d=" << pruned_keogh_data
      << " dtw_abandoned=" << dtw_abandoned
      << " dtw_completed=" << dtw_completed;
  return out.str();
}

SearchResult TrillionSearch::FindBestMatch(std::span<const double> query) {
  SearchResult best;
  const size_t m = query.size();
  if (m < 4) return best;  // LB_KimFL admissibility floor; UCR queries
                           // are far longer in practice.

  const auto zq = ZNormalized(query);
  const size_t w = static_cast<size_t>(
      std::ceil(window_ratio_ * static_cast<double>(m)));
  const DtwOptions dtw_options{static_cast<int>(w)};
  const Envelope query_env =
      ComputeEnvelope(std::span<const double>(zq.data(), zq.size()), w);

  // UCR-suite reordering: evaluate LB_Keogh contributions at the indices
  // of largest |z| first, where excursions outside the envelope are most
  // likely and abandoning happens soonest.
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&zq](size_t a, size_t b) {
    return std::abs(zq[a]) > std::abs(zq[b]);
  });

  double best_sq = kInf;  // Best-so-far squared z-space DTW.
  std::vector<double> contrib_q(m), contrib_d(m), zbuf(m);

  for (uint32_t p = 0; p < dataset_->size(); ++p) {
    const TimeSeries& series = (*dataset_)[p];
    const size_t n = series.length();
    if (n < m) continue;
    const double* data = series.values().data();

    // Raw per-series envelope; slices of it are admissible (wider than
    // per-window envelopes near slice edges, which only loosens the
    // bound). Computed once per (series, query length).
    const Envelope series_env = ComputeEnvelope(series.View(), w);

    // Incremental sums for mean / stddev over the sliding window.
    double sum = 0.0, sum_sq = 0.0;
    for (size_t i = 0; i < m; ++i) {
      sum += data[i];
      sum_sq += data[i] * data[i];
    }
    for (size_t j = 0;; ++j) {
      ++stats_.candidates;
      ++best.candidates_examined;
      const double inv_m = 1.0 / static_cast<double>(m);
      const double mu = sum * inv_m;
      const double var = std::max(0.0, sum_sq * inv_m - mu * mu);
      const double sigma = std::sqrt(var);
      const double inv_sigma = sigma > kMinStddev ? 1.0 / sigma : 0.0;
      const double* window = data + j;

      const double lb_kim =
          LbKimFlImplicitZ(zq, window, m, mu, inv_sigma);
      if (lb_kim >= best_sq) {
        ++stats_.pruned_kim;
      } else {
        const double lb_q =
            LbKeoghQuerySide(query_env, window, mu, inv_sigma, order,
                             best_sq, &contrib_q);
        if (std::isinf(lb_q)) {
          ++stats_.pruned_keogh_query;
        } else {
          const double lb_d = LbKeoghDataSide(
              zq, series_env.lower.data() + j, series_env.upper.data() + j,
              mu, inv_sigma, best_sq, &contrib_d);
          if (std::isinf(lb_d)) {
            ++stats_.pruned_keogh_data;
          } else {
            // z-normalize the window once the bounds fail to prune.
            for (size_t i = 0; i < m; ++i) {
              zbuf[i] = (window[i] - mu) * inv_sigma;
            }
            // The tighter bound's contributions drive cb pruning.
            const auto& contrib = lb_q >= lb_d ? contrib_q : contrib_d;
            const auto cb = CumulativeBound(
                std::span<const double>(contrib.data(), contrib.size()));
            const double threshold =
                best_sq == kInf ? kInf : std::sqrt(best_sq);
            const double d =
                DtwEarlyAbandonCb(zq, zbuf,
                                  std::span<const double>(cb.data(),
                                                          cb.size()),
                                  threshold, dtw_options);
            if (std::isinf(d)) {
              ++stats_.dtw_abandoned;
            } else {
              ++stats_.dtw_completed;
              const double d_sq = d * d;
              if (d_sq < best_sq) {
                best_sq = d_sq;
                best.match = {p, static_cast<uint32_t>(j),
                              static_cast<uint32_t>(m)};
              }
            }
          }
        }
      }
      if (j + m >= n) break;
      // Slide: drop data[j], admit data[j + m].
      sum += data[j + m] - data[j];
      sum_sq += data[j + m] * data[j + m] - data[j] * data[j];
    }
  }
  if (best_sq < kInf) {
    best.distance = std::sqrt(best_sq) / (2.0 * static_cast<double>(m));
  }
  return best;
}

}  // namespace onex

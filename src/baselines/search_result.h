// Copyright 2026 The ONEX Reproduction Authors.
// Result record shared by all search engines (ONEX and the three
// baselines), so the experiment harnesses can treat engines uniformly.

#ifndef ONEX_BASELINES_SEARCH_RESULT_H_
#define ONEX_BASELINES_SEARCH_RESULT_H_

#include <cstdint>
#include <limits>

#include "dataset/subsequence.h"

namespace onex {

/// Outcome of one best-match query.
struct SearchResult {
  SubsequenceRef match;  ///< Location of the best match found.
  /// DTW distance between query and match in the engine's own space
  /// (min-max world for ONEX/StandardDTW/PAA; z-normalized for Trillion).
  double distance = std::numeric_limits<double>::infinity();
  /// Candidates whose DTW (or bound) was evaluated; for cost reporting.
  uint64_t candidates_examined = 0;

  bool found() const {
    return distance != std::numeric_limits<double>::infinity();
  }
};

}  // namespace onex

#endif  // ONEX_BASELINES_SEARCH_RESULT_H_

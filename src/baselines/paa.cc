#include "baselines/paa.h"

#include <algorithm>

namespace onex {

std::vector<double> PaaReduce(std::span<const double> series, size_t frame) {
  if (frame <= 1 || series.empty()) {
    return std::vector<double>(series.begin(), series.end());
  }
  std::vector<double> reduced;
  reduced.reserve((series.size() + frame - 1) / frame);
  size_t i = 0;
  while (i < series.size()) {
    const size_t stop = std::min(series.size(), i + frame);
    double sum = 0.0;
    for (size_t k = i; k < stop; ++k) sum += series[k];
    reduced.push_back(sum / static_cast<double>(stop - i));
    i = stop;
  }
  return reduced;
}

double PdtwDistance(std::span<const double> a, std::span<const double> b,
                    size_t frame, const DtwOptions& options) {
  const auto ra = PaaReduce(a, frame);
  const auto rb = PaaReduce(b, frame);
  return DtwDistance(ra, rb, options);
}

SearchResult PaaSearch::FindBestMatch(std::span<const double> query) const {
  SearchResult best;
  const auto reduced_query = PaaReduce(query, frame_);
  for (uint32_t p = 0; p < dataset_->size(); ++p) {
    const TimeSeries& series = (*dataset_)[p];
    for (size_t len : lengths_.LengthsFor(series.length())) {
      const double norm = 2.0 * static_cast<double>(
                                    std::max(query.size(), len));
      for (size_t j = 0; j + len <= series.length(); ++j) {
        const auto reduced = PaaReduce(series.Subsequence(j, len), frame_);
        const double d =
            DtwDistance(reduced_query, reduced, dtw_options_) / norm;
        ++best.candidates_examined;
        if (d < best.distance) {
          best.distance = d;
          best.match = {p, static_cast<uint32_t>(j),
                        static_cast<uint32_t>(len)};
        }
      }
    }
  }
  return best;
}

SearchResult PaaSearch::FindBestMatchOfLength(std::span<const double> query,
                                              size_t length) const {
  SearchResult best;
  const auto reduced_query = PaaReduce(query, frame_);
  const double norm =
      2.0 * static_cast<double>(std::max(query.size(), length));
  for (uint32_t p = 0; p < dataset_->size(); ++p) {
    const TimeSeries& series = (*dataset_)[p];
    if (series.length() < length) continue;
    for (size_t j = 0; j + length <= series.length(); ++j) {
      const auto reduced = PaaReduce(series.Subsequence(j, length), frame_);
      const double d =
          DtwDistance(reduced_query, reduced, dtw_options_) / norm;
      ++best.candidates_examined;
      if (d < best.distance) {
        best.distance = d;
        best.match = {p, static_cast<uint32_t>(j),
                      static_cast<uint32_t>(length)};
      }
    }
  }
  return best;
}

}  // namespace onex

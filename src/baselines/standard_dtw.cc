#include "baselines/standard_dtw.h"

#include <algorithm>

namespace onex {

SearchResult StandardDtwSearch::FindBestMatch(
    std::span<const double> query) const {
  SearchResult best;
  for (uint32_t p = 0; p < dataset_->size(); ++p) {
    const TimeSeries& series = (*dataset_)[p];
    for (size_t len : lengths_.LengthsFor(series.length())) {
      const double norm = 2.0 * static_cast<double>(
                                    std::max(query.size(), len));
      for (size_t j = 0; j + len <= series.length(); ++j) {
        const auto candidate = series.Subsequence(j, len);
        // Deliberately the plain O(n*m) kernel: this engine reproduces
        // the paper's unoptimized Standard-DTW cost profile.
        const double d = DtwDistance(query, candidate, dtw_options_) / norm;
        ++best.candidates_examined;
        if (d < best.distance) {
          best.distance = d;
          best.match = {p, static_cast<uint32_t>(j),
                        static_cast<uint32_t>(len)};
        }
      }
    }
  }
  return best;
}

SearchResult StandardDtwSearch::FindBestMatchOfLength(
    std::span<const double> query, size_t length) const {
  SearchResult best;
  const double norm =
      2.0 * static_cast<double>(std::max(query.size(), length));
  for (uint32_t p = 0; p < dataset_->size(); ++p) {
    const TimeSeries& series = (*dataset_)[p];
    if (series.length() < length) continue;
    for (size_t j = 0; j + length <= series.length(); ++j) {
      const auto candidate = series.Subsequence(j, length);
      const double d = DtwDistance(query, candidate, dtw_options_) / norm;
      ++best.candidates_examined;
      if (d < best.distance) {
        best.distance = d;
        best.match = {p, static_cast<uint32_t>(j),
                      static_cast<uint32_t>(length)};
      }
    }
  }
  return best;
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// The paper's exactness gold standard (Sec. 6.1): brute-force DTW over
// every candidate subsequence, no pruning, no index. Guarantees the best
// match; every accuracy number in Tables 2-3 is an error relative to
// this engine's answer.

#ifndef ONEX_BASELINES_STANDARD_DTW_H_
#define ONEX_BASELINES_STANDARD_DTW_H_

#include <span>

#include "baselines/search_result.h"
#include "dataset/dataset.h"
#include "dataset/length_spec.h"
#include "distance/dtw.h"

namespace onex {

/// Exhaustive best-match search. Comparison metric is the normalized DTW
/// of Def. 6, the same quantity ONEX minimizes, so "best" is consistent
/// across engines of different candidate lengths.
class StandardDtwSearch {
 public:
  /// `dataset` must outlive the searcher. `lengths` defines the candidate
  /// universe for any-length queries.
  StandardDtwSearch(const Dataset* dataset, LengthSpec lengths,
                    DtwOptions dtw_options = {})
      : dataset_(dataset), lengths_(lengths), dtw_options_(dtw_options) {}

  /// Best match across all candidate lengths (Match=Any), by normalized
  /// DTW. SearchResult::distance is the normalized DTW.
  SearchResult FindBestMatch(std::span<const double> query) const;

  /// Best match restricted to subsequences of exactly `length`
  /// (Match=Exact(L)).
  SearchResult FindBestMatchOfLength(std::span<const double> query,
                                     size_t length) const;

 private:
  const Dataset* dataset_;
  LengthSpec lengths_;
  DtwOptions dtw_options_;
};

}  // namespace onex

#endif  // ONEX_BASELINES_STANDARD_DTW_H_

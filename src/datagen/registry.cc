#include "datagen/registry.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <map>

#include "datagen/generators.h"

namespace onex {
namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

struct Entry {
  std::function<Dataset(const GenOptions&)> make;
  size_t default_n;
  size_t default_len;
};

const std::map<std::string, Entry>& Registry() {
  static const std::map<std::string, Entry> registry = {
      {"italypower", {MakeItalyPower, 1096, 24}},
      {"ecg", {MakeEcg, 884, 136}},
      {"face", {MakeFace, 2250, 131}},
      {"wafer", {MakeWafer, 7164, 152}},
      {"symbols", {MakeSymbols, 1020, 398}},
      {"twopattern", {MakeTwoPatterns, 5000, 128}},
      {"starlightcurves", {MakeStarLight, 9236, 1024}},
      {"randomwalk", {MakeRandomWalk, 500, 128}},
  };
  return registry;
}

}  // namespace

const std::vector<std::string>& EvaluationDatasetNames() {
  static const std::vector<std::string> names = {
      "ItalyPower", "ECG", "Face", "Wafer", "Symbols", "TwoPattern"};
  return names;
}

const std::vector<std::string>& AllDatasetNames() {
  static const std::vector<std::string> names = {
      "ItalyPower", "ECG",        "Face",            "Wafer",
      "Symbols",    "TwoPattern", "StarLightCurves", "RandomWalk"};
  return names;
}

Result<Dataset> MakeDatasetByName(const std::string& name,
                                  const GenOptions& options) {
  auto it = Registry().find(Lower(name));
  if (it == Registry().end()) {
    return Status::NotFound("unknown dataset '" + name + "'");
  }
  return it->second.make(options);
}

Result<Dataset> MakeScaledDataset(const std::string& name, double scale,
                                  uint64_t seed) {
  auto it = Registry().find(Lower(name));
  if (it == Registry().end()) {
    return Status::NotFound("unknown dataset '" + name + "'");
  }
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  GenOptions options;
  options.seed = seed;
  options.num_series = std::max<size_t>(
      4, static_cast<size_t>(std::llround(
             scale * static_cast<double>(it->second.default_n))));
  options.length = it->second.default_len;
  return it->second.make(options);
}

}  // namespace onex

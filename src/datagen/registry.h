// Copyright 2026 The ONEX Reproduction Authors.
// Name-based generator registry so benches and examples can select
// datasets with a --dataset flag, and a helper that produces the paper's
// six evaluation datasets at a uniform scale factor.

#ifndef ONEX_DATAGEN_REGISTRY_H_
#define ONEX_DATAGEN_REGISTRY_H_

#include <string>
#include <vector>

#include "datagen/generator.h"
#include "dataset/dataset.h"
#include "util/status.h"

namespace onex {

/// Names of the paper's six evaluation datasets (Fig. 2/4/5/6, Tables 1-4),
/// in the order the paper lists them.
const std::vector<std::string>& EvaluationDatasetNames();

/// All registered generator names (evaluation six + StarLightCurves +
/// RandomWalk).
const std::vector<std::string>& AllDatasetNames();

/// Instantiates a dataset by name ("ItalyPower", "ECG", "Face", "Wafer",
/// "Symbols", "TwoPattern", "StarLightCurves", "RandomWalk"). Name lookup
/// is case-insensitive. Fails with NotFound for unknown names.
Result<Dataset> MakeDatasetByName(const std::string& name,
                                  const GenOptions& options = {});

/// Instantiates a dataset by name with its default N scaled by `scale`
/// in (0, 1]. Length is kept at the dataset's default (timing shape
/// depends mostly on n; N is the paper's scalability axis).
Result<Dataset> MakeScaledDataset(const std::string& name, double scale,
                                  uint64_t seed = 42);

}  // namespace onex

#endif  // ONEX_DATAGEN_REGISTRY_H_

#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {

// Symbols: pen-trace-like smooth curves, default 1020 x 398, 6 classes.
// Class prototypes are smooth composites of a few wide Gaussian strokes;
// instances warp heavily (pen speed variation), which is why this dataset
// shows the largest DTW-vs-ED gap of the six in the paper's evaluation.
Dataset MakeSymbols(const GenOptions& options) {
  const GenOptions opt = options.Resolved(1020, 398);
  constexpr int kClasses = 6;
  constexpr int kStrokes = 4;
  Rng rng(opt.seed);
  // Per-class stroke tables (center fraction, width fraction, height).
  double center[kClasses][kStrokes];
  double width[kClasses][kStrokes];
  double height[kClasses][kStrokes];
  for (int c = 0; c < kClasses; ++c) {
    for (int k = 0; k < kStrokes; ++k) {
      center[c][k] = rng.UniformDouble(0.1, 0.9);
      width[c][k] = rng.UniformDouble(0.05, 0.15);
      height[c][k] = rng.UniformDouble(-1.2, 1.2);
    }
  }
  Dataset dataset("Symbols");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const int label = static_cast<int>(rng.Uniform(kClasses)) + 1;
    const int c = label - 1;
    const size_t n = opt.length;
    std::vector<double> trace(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) / static_cast<double>(n - 1);
      double v = 0.0;
      for (int k = 0; k < kStrokes; ++k) {
        v += GaussianBump(x, center[c][k], width[c][k], height[c][k]);
      }
      trace[i] = v;
    }
    auto warped = ApplyRandomWarp(
        std::span<const double>(trace.data(), trace.size()), 0.45, &rng);
    AddGaussianNoise(&warped, 0.02 * opt.noise, &rng);
    dataset.Add(TimeSeries(std::move(warped), label));
  }
  return dataset;
}

}  // namespace onex

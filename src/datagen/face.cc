#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {

// FaceAll-like: head-outline contours unrolled to 1D profiles. Each class
// is a fixed mixture of low-order harmonics (the "face shape"); instances
// perturb phases/amplitudes slightly and undergo mild warping. Default
// 2250 x 131 with 14 classes, matching the archive's cardinality.
Dataset MakeFace(const GenOptions& options) {
  const GenOptions opt = options.Resolved(2250, 131);
  constexpr int kClasses = 14;
  constexpr int kHarmonics = 5;
  Rng rng(opt.seed);
  // Class prototypes: per-class harmonic amplitude/phase table.
  double amp[kClasses][kHarmonics];
  double phase[kClasses][kHarmonics];
  for (int c = 0; c < kClasses; ++c) {
    for (int h = 0; h < kHarmonics; ++h) {
      amp[c][h] = rng.UniformDouble(0.1, 1.0) / (1.0 + h);
      phase[c][h] = rng.UniformDouble(0.0, 2.0 * M_PI);
    }
  }
  Dataset dataset("Face");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const int label = static_cast<int>(rng.Uniform(kClasses)) + 1;
    const int c = label - 1;
    std::vector<double> contour(opt.length);
    const double n = static_cast<double>(opt.length);
    // Per-instance perturbation of the class prototype.
    double inst_amp[kHarmonics];
    double inst_phase[kHarmonics];
    for (int h = 0; h < kHarmonics; ++h) {
      inst_amp[h] = amp[c][h] * (1.0 + 0.08 * rng.NextGaussian());
      inst_phase[h] = phase[c][h] + 0.05 * rng.NextGaussian();
    }
    for (size_t i = 0; i < opt.length; ++i) {
      const double theta = 2.0 * M_PI * static_cast<double>(i) / n;
      double v = 1.0;  // Base radius.
      for (int h = 0; h < kHarmonics; ++h) {
        v += inst_amp[h] * std::cos((h + 1) * theta + inst_phase[h]);
      }
      contour[i] = v;
    }
    auto warped = ApplyRandomWarp(
        std::span<const double>(contour.data(), contour.size()), 0.25, &rng);
    AddGaussianNoise(&warped, 0.05 * opt.noise, &rng);
    dataset.Add(TimeSeries(std::move(warped), label));
  }
  return dataset;
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Smooth random time-warping and resampling helpers. Generators derive
// each series from a class prototype via a random monotone time map, so
// the datasets contain exactly the alignment variation that separates DTW
// from ED — the phenomenon the paper's evaluation depends on.

#ifndef ONEX_DATAGEN_WARP_H_
#define ONEX_DATAGEN_WARP_H_

#include <span>
#include <vector>

#include "util/rng.h"

namespace onex {

/// Linear-interpolation resampling of `input` to `out_len` points.
std::vector<double> Resample(std::span<const double> input, size_t out_len);

/// Applies a smooth random monotone time warp to `prototype`:
/// output[i] = prototype(w(i)) where w is a monotone map whose derivative
/// wanders in [1-intensity, 1+intensity]. Output has the same length.
/// intensity = 0 returns a copy.
std::vector<double> ApplyRandomWarp(std::span<const double> prototype,
                                    double intensity, Rng* rng);

/// Adds iid Gaussian noise with standard deviation `sigma` in place.
void AddGaussianNoise(std::vector<double>* values, double sigma, Rng* rng);

/// Evaluates a Gaussian bump centred at `center` with width `width` and
/// height `height` at position `x` — the shared building block of the
/// shape-based generators.
double GaussianBump(double x, double center, double width, double height);

}  // namespace onex

#endif  // ONEX_DATAGEN_WARP_H_

#include "datagen/warp.h"

#include <algorithm>
#include <cmath>

namespace onex {

std::vector<double> Resample(std::span<const double> input, size_t out_len) {
  std::vector<double> out(out_len);
  if (input.empty() || out_len == 0) return out;
  if (input.size() == 1) {
    std::fill(out.begin(), out.end(), input[0]);
    return out;
  }
  const double scale =
      static_cast<double>(input.size() - 1) / std::max<size_t>(out_len - 1, 1);
  for (size_t i = 0; i < out_len; ++i) {
    const double pos = static_cast<double>(i) * scale;
    const size_t lo = std::min(static_cast<size_t>(pos), input.size() - 2);
    const double frac = pos - static_cast<double>(lo);
    out[i] = input[lo] * (1.0 - frac) + input[lo + 1] * frac;
  }
  return out;
}

std::vector<double> ApplyRandomWarp(std::span<const double> prototype,
                                    double intensity, Rng* rng) {
  const size_t n = prototype.size();
  std::vector<double> out(n);
  if (n == 0) return out;
  if (intensity <= 0.0) {
    std::copy(prototype.begin(), prototype.end(), out.begin());
    return out;
  }
  // Build a monotone time map by integrating a slowly varying positive
  // derivative, then normalize so it spans [0, n-1] exactly.
  std::vector<double> warp(n);
  double position = 0.0;
  double drift = 0.0;
  for (size_t i = 0; i < n; ++i) {
    warp[i] = position;
    // Smooth random walk on the derivative, clamped to stay positive.
    drift = 0.9 * drift + 0.1 * rng->UniformDouble(-intensity, intensity);
    position += std::max(0.05, 1.0 + drift);
  }
  const double total = warp.back();
  const double target = static_cast<double>(n - 1);
  // Sample the prototype at the warped (normalized) positions.
  for (size_t i = 0; i < n; ++i) {
    const double pos = total > 0.0 ? warp[i] / total * target : 0.0;
    const size_t lo = std::min(static_cast<size_t>(pos),
                               n >= 2 ? n - 2 : size_t{0});
    const double frac = pos - static_cast<double>(lo);
    const double next = lo + 1 < n ? prototype[lo + 1] : prototype[lo];
    out[i] = prototype[lo] * (1.0 - frac) + next * frac;
  }
  return out;
}

void AddGaussianNoise(std::vector<double>* values, double sigma, Rng* rng) {
  if (sigma <= 0.0) return;
  for (double& x : *values) x += rng->Gaussian(0.0, sigma);
}

double GaussianBump(double x, double center, double width, double height) {
  const double d = (x - center) / width;
  return height * std::exp(-0.5 * d * d);
}

}  // namespace onex

#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {
namespace {

// Writes an up-step (low->high) or down-step into trace at [start, start+len).
void WriteStep(std::vector<double>* trace, size_t start, size_t len, bool up) {
  const size_t half = len / 2;
  for (size_t i = 0; i < len && start + i < trace->size(); ++i) {
    const double v = (i < half) ? -1.0 : 1.0;
    (*trace)[start + i] = up ? v : -v;
  }
}

}  // namespace

// TwoPatterns: the classic synthetic benchmark (default 5000 x 128,
// 4 classes). Each series places two step patterns — each either
// up-step or down-step — at random non-overlapping offsets on a noisy
// baseline; the class is the ordered pair (UU, UD, DU, DD). Random
// placement means only a warping distance aligns same-class instances.
Dataset MakeTwoPatterns(const GenOptions& options) {
  const GenOptions opt = options.Resolved(5000, 128);
  Rng rng(opt.seed);
  Dataset dataset("TwoPattern");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const int label = static_cast<int>(rng.Uniform(4)) + 1;
    const bool first_up = (label == 1 || label == 2);
    const bool second_up = (label == 1 || label == 3);
    const size_t n = opt.length;
    std::vector<double> trace(n, 0.0);
    const size_t pat_len = n / 8;
    // First pattern in the left third, second in the right third, with
    // jittered offsets so instances are misaligned in time.
    const size_t pos1 = rng.Uniform(n / 3);
    const size_t pos2 = n / 2 + rng.Uniform(n / 3);
    WriteStep(&trace, pos1, pat_len, first_up);
    WriteStep(&trace, pos2, pat_len, second_up);
    AddGaussianNoise(&trace, 0.1 * opt.noise, &rng);
    dataset.Add(TimeSeries(std::move(trace), label));
  }
  return dataset;
}

}  // namespace onex

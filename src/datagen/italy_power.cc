#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {

// Daily power demand sampled hourly (length 24). Winter days (class 1)
// show a morning and an evening peak; summer days (class 2) a single
// broad midday plateau driven by cooling load. Matches the UCR dataset's
// two-class structure and its very short series length, which stresses
// the many-groups/short-length corner of ONEX base construction.
Dataset MakeItalyPower(const GenOptions& options) {
  const GenOptions opt = options.Resolved(1096, 24);
  Rng rng(opt.seed);
  Dataset dataset("ItalyPower");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const int label = (rng.NextDouble() < 0.5) ? 1 : 2;
    const double base = rng.UniformDouble(0.8, 1.2);
    std::vector<double> day(opt.length);
    const double hours = static_cast<double>(opt.length);
    // Class-conditional peak placement, jittered per-day.
    const double morning = rng.UniformDouble(7.0, 9.5) / 24.0 * hours;
    const double evening = rng.UniformDouble(18.0, 21.0) / 24.0 * hours;
    const double midday = rng.UniformDouble(12.0, 15.0) / 24.0 * hours;
    const double amp = rng.UniformDouble(0.6, 1.0);
    for (size_t h = 0; h < opt.length; ++h) {
      const double x = static_cast<double>(h);
      // Night-time trough common to both classes.
      double v = base + GaussianBump(x, hours * 0.12, hours * 0.25, -0.5);
      if (label == 1) {
        v += GaussianBump(x, morning, hours * 0.07, amp);
        v += GaussianBump(x, evening, hours * 0.09, amp * 0.9);
      } else {
        v += GaussianBump(x, midday, hours * 0.18, amp);
      }
      day[h] = v;
    }
    AddGaussianNoise(&day, 0.04 * opt.noise, &rng);
    dataset.Add(TimeSeries(std::move(day), label));
  }
  return dataset;
}

}  // namespace onex

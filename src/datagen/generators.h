// Copyright 2026 The ONEX Reproduction Authors.
// One factory function per synthetic UCR-archive substitute. Defaults
// reproduce each archive dataset's published cardinality (N x n) and
// class count; see generator.h for the substitution rationale.

#ifndef ONEX_DATAGEN_GENERATORS_H_
#define ONEX_DATAGEN_GENERATORS_H_

#include "datagen/generator.h"
#include "dataset/dataset.h"

namespace onex {

/// ItalyPowerDemand: daily electricity demand curves, default 1096 x 24,
/// 2 classes (winter: morning+evening peaks; summer: flat midday hump).
Dataset MakeItalyPower(const GenOptions& options = {});

/// ECG (ECGFiveDays-like): PQRST heartbeat morphology, default 884 x 136,
/// 2 classes differing in R-peak amplitude and T-wave lag.
Dataset MakeEcg(const GenOptions& options = {});

/// Face (FaceAll-like): head-outline contour profiles built from class
/// specific harmonic mixtures, default 2250 x 131, 14 classes.
Dataset MakeFace(const GenOptions& options = {});

/// Wafer: semiconductor process traces with plateau/ramp structure,
/// default 7164 x 152, 2 classes (~10% abnormal with spike defects).
Dataset MakeWafer(const GenOptions& options = {});

/// Symbols: smooth pen-trace-like curves, default 1020 x 398, 6 classes.
Dataset MakeSymbols(const GenOptions& options = {});

/// TwoPatterns: step patterns (up/down) x (up/down) at random offsets on
/// a noisy baseline, default 5000 x 128, 4 classes.
Dataset MakeTwoPatterns(const GenOptions& options = {});

/// StarLightCurves: phased periodic brightness curves with eclipse dips,
/// default 9236 x 1024, 3 classes. (Benches use scaled subsets, as does
/// the paper's Fig. 3 which cuts series to length 100.)
Dataset MakeStarLight(const GenOptions& options = {});

/// Random walks (stock-like), default 500 x 128, labels = trend sign.
Dataset MakeRandomWalk(const GenOptions& options = {});

}  // namespace onex

#endif  // ONEX_DATAGEN_GENERATORS_H_

#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {
namespace {

// One synthetic heartbeat: P wave, QRS complex, T wave on a flat
// baseline. Positions/amplitudes are fractions of the series length so
// any length works.
std::vector<double> HeartbeatPrototype(size_t length, int label, Rng* rng) {
  std::vector<double> beat(length, 0.0);
  const double n = static_cast<double>(length);
  const double p_center = n * rng->UniformDouble(0.18, 0.22);
  const double q_center = n * rng->UniformDouble(0.38, 0.40);
  const double r_center = q_center + n * 0.035;
  const double s_center = r_center + n * 0.035;
  // Class 2 has a delayed, flattened T wave and a weaker R peak — the
  // kind of morphology difference the UCR ECG datasets encode.
  const double t_shift = label == 1 ? 0.0 : n * rng->UniformDouble(0.05, 0.09);
  const double r_amp = label == 1 ? rng->UniformDouble(1.7, 2.1)
                                  : rng->UniformDouble(1.2, 1.5);
  const double t_amp = label == 1 ? rng->UniformDouble(0.45, 0.6)
                                  : rng->UniformDouble(0.25, 0.35);
  const double t_center = n * 0.68 + t_shift;
  for (size_t i = 0; i < length; ++i) {
    const double x = static_cast<double>(i);
    double v = 0.0;
    v += GaussianBump(x, p_center, n * 0.03, 0.25);       // P wave.
    v += GaussianBump(x, q_center, n * 0.012, -0.35);     // Q dip.
    v += GaussianBump(x, r_center, n * 0.010, r_amp);     // R spike.
    v += GaussianBump(x, s_center, n * 0.014, -0.55);     // S dip.
    v += GaussianBump(x, t_center, n * 0.05, t_amp);      // T wave.
    beat[i] = v;
  }
  return beat;
}

}  // namespace

// ECGFiveDays-like: 884 x 136, 2 classes. Each series is a randomly
// warped heartbeat; warping plus per-beat jitter yields the alignment
// variation that makes DTW materially better than ED here.
Dataset MakeEcg(const GenOptions& options) {
  const GenOptions opt = options.Resolved(884, 136);
  Rng rng(opt.seed);
  Dataset dataset("ECG");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const int label = (rng.NextDouble() < 0.5) ? 1 : 2;
    auto beat = HeartbeatPrototype(opt.length, label, &rng);
    auto warped = ApplyRandomWarp(
        std::span<const double>(beat.data(), beat.size()), 0.35, &rng);
    AddGaussianNoise(&warped, 0.03 * opt.noise, &rng);
    dataset.Add(TimeSeries(std::move(warped), label));
  }
  return dataset;
}

}  // namespace onex

#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {

// Stock-like random walks with mild per-series drift, default 500 x 128.
// Used by the examples (stock explorer, tax-policy scenario) and by
// stress tests that need unstructured data with no class redundancy —
// the worst case for ONEX group compression.
Dataset MakeRandomWalk(const GenOptions& options) {
  const GenOptions opt = options.Resolved(500, 128);
  Rng rng(opt.seed);
  Dataset dataset("RandomWalk");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const double drift = rng.UniformDouble(-0.01, 0.01);
    const double volatility = rng.UniformDouble(0.02, 0.08) * opt.noise;
    std::vector<double> walk(opt.length);
    double level = rng.UniformDouble(0.5, 1.5);
    for (size_t i = 0; i < opt.length; ++i) {
      level += drift + volatility * rng.NextGaussian();
      walk[i] = level;
    }
    const int label = walk.back() >= walk.front() ? 1 : 2;
    dataset.Add(TimeSeries(std::move(walk), label));
  }
  return dataset;
}

}  // namespace onex

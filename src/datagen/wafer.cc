#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {

// Wafer: in-line semiconductor process sensor traces, default 7164 x 152.
// Normal traces (class 1, ~90%) are plateau/ramp sequences; abnormal
// traces (class 2) add transient spike defects. The near-piecewise-flat
// morphology compresses extremely well into ONEX groups, mirroring the
// archive dataset's behaviour in the paper's Table 4.
Dataset MakeWafer(const GenOptions& options) {
  const GenOptions opt = options.Resolved(7164, 152);
  Rng rng(opt.seed);
  Dataset dataset("Wafer");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const bool abnormal = rng.NextDouble() < 0.106;  // Archive class ratio.
    const int label = abnormal ? 2 : 1;
    const size_t n = opt.length;
    std::vector<double> trace(n);
    // Process stages: idle -> ramp -> plateau A -> step -> plateau B ->
    // ramp-down, with jittered stage boundaries.
    const double b1 = 0.10 + rng.UniformDouble(-0.02, 0.02);
    const double b2 = 0.25 + rng.UniformDouble(-0.03, 0.03);
    const double b3 = 0.55 + rng.UniformDouble(-0.04, 0.04);
    const double b4 = 0.85 + rng.UniformDouble(-0.03, 0.03);
    const double level_a = rng.UniformDouble(0.9, 1.1);
    const double level_b = rng.UniformDouble(1.4, 1.6);
    for (size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(n - 1);
      double v;
      if (t < b1) {
        v = 0.0;
      } else if (t < b2) {
        v = level_a * (t - b1) / (b2 - b1);  // Ramp up.
      } else if (t < b3) {
        v = level_a;                          // Plateau A.
      } else if (t < b4) {
        v = level_b;                          // Plateau B (step up).
      } else {
        v = level_b * (1.0 - (t - b4) / (1.0 - b4));  // Ramp down.
      }
      trace[i] = v;
    }
    if (abnormal) {
      // One to three transient spike defects at random stage positions.
      const int spikes = 1 + static_cast<int>(rng.Uniform(3));
      for (int k = 0; k < spikes; ++k) {
        const double center = rng.UniformDouble(0.15, 0.9) *
                              static_cast<double>(n - 1);
        const double height = rng.UniformDouble(0.5, 1.2) *
                              (rng.NextDouble() < 0.5 ? -1.0 : 1.0);
        for (size_t i = 0; i < n; ++i) {
          trace[i] += GaussianBump(static_cast<double>(i), center,
                                   static_cast<double>(n) * 0.012, height);
        }
      }
    }
    AddGaussianNoise(&trace, 0.02 * opt.noise, &rng);
    dataset.Add(TimeSeries(std::move(trace), label));
  }
  return dataset;
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// Common options for the synthetic UCR-archive substitutes.
//
// SUBSTITUTION NOTE (see DESIGN.md Sec. 1.3): the paper evaluates on UCR
// archive datasets, which are not available offline. Each generator here
// reproduces the published *shape* of one archive dataset — series count,
// series length, class count, and qualitative morphology — because those
// are the properties the evaluated algorithms are sensitive to:
// cardinality drives running time, intra-class redundancy drives ONEX
// group compression, and warping structure drives the ED-vs-DTW gap.

#ifndef ONEX_DATAGEN_GENERATOR_H_
#define ONEX_DATAGEN_GENERATOR_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace onex {

/// Knobs shared by all generators. Zero values mean "use the dataset's
/// UCR default" (e.g. ItalyPower defaults to 1096 series of length 24).
struct GenOptions {
  size_t num_series = 0;  ///< 0 = dataset default.
  size_t length = 0;      ///< 0 = dataset default.
  uint64_t seed = 42;     ///< PRNG seed; same seed -> identical dataset.
  double noise = 1.0;     ///< Noise multiplier (1.0 = calibrated default).

  /// Resolves 0-valued fields against per-dataset defaults.
  GenOptions Resolved(size_t default_n, size_t default_len) const {
    GenOptions r = *this;
    if (r.num_series == 0) r.num_series = default_n;
    if (r.length == 0) r.length = default_len;
    return r;
  }
};

}  // namespace onex

#endif  // ONEX_DATAGEN_GENERATOR_H_

#include <cmath>

#include "datagen/generators.h"
#include "datagen/warp.h"
#include "util/rng.h"

namespace onex {

// StarLightCurves: phased stellar brightness curves, default 9236 x 1024,
// 3 classes (Cepheid-like smooth sinusoid, eclipsing-binary with sharp
// dips, RR-Lyrae-like sawtooth). This is the paper's scalability dataset
// (Fig. 3 uses subsets cut to length 100), so the generator must stay
// cheap at large N.
Dataset MakeStarLight(const GenOptions& options) {
  const GenOptions opt = options.Resolved(9236, 1024);
  Rng rng(opt.seed);
  Dataset dataset("StarLightCurves");
  dataset.Reserve(opt.num_series);
  for (size_t s = 0; s < opt.num_series; ++s) {
    const int label = static_cast<int>(rng.Uniform(3)) + 1;
    const size_t n = opt.length;
    std::vector<double> curve(n);
    const double cycles = rng.UniformDouble(1.5, 3.5);
    const double phase0 = rng.UniformDouble(0.0, 2.0 * M_PI);
    const double amp = rng.UniformDouble(0.7, 1.0);
    for (size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(n);
      const double phi = 2.0 * M_PI * cycles * t + phase0;
      double v = 0.0;
      switch (label) {
        case 1:  // Cepheid-like: fundamental plus soft first harmonic.
          v = amp * (std::sin(phi) + 0.3 * std::sin(2.0 * phi + 0.7));
          break;
        case 2: {  // Eclipsing binary: flat with periodic sharp dips.
          const double cycle_pos = std::fmod(phi / (2.0 * M_PI), 1.0);
          const double frac = cycle_pos < 0 ? cycle_pos + 1.0 : cycle_pos;
          v = 0.2 * std::sin(phi * 0.5);
          v -= GaussianBump(frac, 0.25, 0.03, 1.6 * amp);
          v -= GaussianBump(frac, 0.75, 0.03, 0.8 * amp);
          break;
        }
        default: {  // RR-Lyrae-like: fast rise, slow decay (sawtooth).
          const double cycle_pos = std::fmod(phi / (2.0 * M_PI), 1.0);
          const double frac = cycle_pos < 0 ? cycle_pos + 1.0 : cycle_pos;
          v = amp * (frac < 0.2 ? frac / 0.2 : 1.0 - (frac - 0.2) / 0.8);
          break;
        }
      }
      curve[i] = v;
    }
    AddGaussianNoise(&curve, 0.03 * opt.noise, &rng);
    dataset.Add(TimeSeries(std::move(curve), label));
  }
  return dataset;
}

}  // namespace onex

#include "core/query_processor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "distance/dtw.h"
#include "distance/lb_keogh.h"
#include "distance/lb_kim.h"
#include "util/timer.h"
#include "util/trace.h"

namespace onex {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Normalization denominator of Def. 6 for a query of length m against
// candidates of length len.
inline double Norm(size_t m, size_t len) {
  return 2.0 * static_cast<double>(std::max(m, len));
}

}  // namespace

std::string QueryStats::ToString() const {
  std::ostringstream out;
  out << "lengths=" << lengths_scanned << " reps_compared=" << reps_compared
      << " reps_pruned=" << reps_pruned
      << " members_compared=" << members_compared
      << " lemma2_admitted=" << members_admitted_by_lemma2;
  return out.str();
}

std::pair<uint32_t, double> QueryProcessor::BestRepresentative(
    std::span<const double> query, const GtiEntry& entry, double bsf,
    QueryStats& stats, ExecChecker& check) const {
  ScopedTimer stage(&stats.rep_scan_seconds);
  InflightStageScope live_stage(check, QueryStage::kRepScan);
  const size_t g = entry.NumGroups();
  const size_t m = query.size();
  const double norm = Norm(m, entry.length);
  const DtwOptions dtw_options = DtwOptions::FromRatio(
      base_->options().window_ratio, m, entry.length);

  // Visit order: median-out over the sum-sorted S array (Sec. 5.3) —
  // start at the representative with the median Dc-sum and alternate
  // left/right — or plain stored order when the optimization is off.
  // A fired checker makes every remaining `consider` a cheap no-op, so
  // the loop drains instead of pointer-chasing through break logic.
  uint32_t best_k = 0;
  double best_d = kInf;
  auto consider = [&](uint32_t k) {
    if (check.ShouldStop()) return;
    const LsiEntry& group = entry.groups[k];
    const std::span<const double> rep(group.representative.data(),
                                      entry.length);
    const double prune_at = std::min(bsf, best_d);
    ++stats.cascade.candidates;
    if (options_.use_cascade && prune_at < kInf) {
      if (LbKim(query, rep) / norm > prune_at) {
        ++stats.reps_pruned;
        ++stats.cascade.pruned_kim;
        return;
      }
      if (m == entry.length &&
          LbKeoghEarlyAbandon(query, group.envelope, prune_at * norm) / norm >
              prune_at) {
        ++stats.reps_pruned;
        ++stats.cascade.pruned_keogh;
        return;
      }
    }
    ++stats.reps_compared;
    double d;
    if (options_.use_early_abandon && prune_at < kInf) {
      d = DtwEarlyAbandon(query, rep, prune_at * norm, dtw_options) / norm;
      if (std::isinf(d)) {
        ++stats.cascade.dtw_abandoned;
      } else {
        ++stats.cascade.dtw_completed;
      }
    } else {
      d = DtwDistance(query, rep, dtw_options) / norm;
      ++stats.cascade.dtw_completed;
    }
    if (d < best_d) {
      best_d = d;
      best_k = k;
    }
  };

  if (options_.use_median_order && !entry.sum_sorted.empty()) {
    const size_t mid = g / 2;
    consider(entry.sum_sorted[mid].first);
    for (size_t offset = 1; offset <= g; ++offset) {
      if (mid >= offset) consider(entry.sum_sorted[mid - offset].first);
      if (mid + offset < g) consider(entry.sum_sorted[mid + offset].first);
    }
  } else {
    for (uint32_t k = 0; k < g; ++k) consider(k);
  }
  return {best_k, best_d};
}

QueryMatch QueryProcessor::SearchGroup(std::span<const double> query,
                                       const GtiEntry& entry,
                                       uint32_t group_id, double rep_distance,
                                       double bsf, QueryStats& stats,
                                       ExecChecker& check) const {
  ScopedTimer stage(&stats.member_scan_seconds);
  InflightStageScope live_stage(check, QueryStage::kMemberScan);
  const LsiEntry& group = entry.groups[group_id];
  const size_t m = query.size();
  const double norm = Norm(m, entry.length);
  const DtwOptions dtw_options = DtwOptions::FromRatio(
      base_->options().window_ratio, m, entry.length);

  QueryMatch best;
  best.distance = kInf;
  best.group_id = group_id;

  auto consider = [&](const LsiMember& member) {
    if (check.ShouldStop()) return;
    ++stats.members_compared;
    ++stats.cascade.candidates;
    const auto values = member.ref.View(base_->dataset());
    const double prune_at = std::min(bsf, best.distance);
    double d;
    if (options_.use_early_abandon && prune_at < kInf) {
      d = DtwEarlyAbandon(query, values, prune_at * norm, dtw_options) / norm;
      if (std::isinf(d)) {
        ++stats.cascade.dtw_abandoned;
      } else {
        ++stats.cascade.dtw_completed;
      }
    } else {
      d = DtwDistance(query, values, dtw_options) / norm;
      ++stats.cascade.dtw_completed;
    }
    if (d < best.distance) {
      best.distance = d;
      best.ref = member.ref;
    }
  };

  if (options_.use_value_targeted_scan && !group.members.empty()) {
    // Start at the member whose stored ED-to-rep is closest in value to
    // DTW(query, rep) and fan outwards (Sec. 5.3): nearby stored EDs
    // mean similar geometry relative to the representative, so the best
    // match tends to be reached — and the best-so-far tightened — early.
    const size_t start = group.ClosestMemberTo(rep_distance);
    consider(group.members[start]);
    for (size_t offset = 1; offset <= group.members.size(); ++offset) {
      if (start >= offset) consider(group.members[start - offset]);
      if (start + offset < group.members.size()) {
        consider(group.members[start + offset]);
      }
    }
  } else {
    for (const LsiMember& member : group.members) consider(member);
  }
  return best;
}

std::vector<std::pair<uint32_t, double>> QueryProcessor::TopRepresentatives(
    std::span<const double> query, const GtiEntry& entry,
    QueryStats& stats, ExecChecker& check) const {
  ScopedTimer stage(&stats.rep_scan_seconds);
  InflightStageScope live_stage(check, QueryStage::kRepScan);
  const size_t m = query.size();
  const double norm = Norm(m, entry.length);
  const DtwOptions dtw_options = DtwOptions::FromRatio(
      base_->options().window_ratio, m, entry.length);
  std::vector<std::pair<uint32_t, double>> reps;
  reps.reserve(entry.NumGroups());
  for (uint32_t k = 0; k < entry.NumGroups(); ++k) {
    if (check.ShouldStop()) break;
    ++stats.reps_compared;
    ++stats.cascade.candidates;
    ++stats.cascade.dtw_completed;
    const std::span<const double> rep(
        entry.groups[k].representative.data(), entry.length);
    reps.push_back({k, DtwDistance(query, rep, dtw_options) / norm});
  }
  const size_t top =
      std::min(options_.groups_to_search, reps.size());
  std::partial_sort(reps.begin(), reps.begin() + static_cast<ptrdiff_t>(top),
                    reps.end(), [](const auto& a, const auto& b) {
                      return a.second < b.second;
                    });
  reps.resize(top);
  return reps;
}

QueryMatch QueryProcessor::SearchEntry(std::span<const double> query,
                                       const GtiEntry& entry, double bsf,
                                       double* best_rep_distance,
                                       QueryStats& stats,
                                       ExecChecker& check) const {
  QueryMatch best;
  best.distance = std::numeric_limits<double>::infinity();
  if (options_.groups_to_search <= 1) {
    const auto [group_id, rep_d] =
        BestRepresentative(query, entry, bsf, stats, check);
    *best_rep_distance = rep_d;
    if (!std::isfinite(rep_d)) return best;
    return SearchGroup(query, entry, group_id, rep_d,
                       std::min(bsf, best.distance), stats, check);
  }
  const auto tops = TopRepresentatives(query, entry, stats, check);
  *best_rep_distance =
      tops.empty() ? std::numeric_limits<double>::infinity()
                   : tops.front().second;
  for (const auto& [group_id, rep_d] : tops) {
    QueryMatch match = SearchGroup(query, entry, group_id, rep_d,
                                   std::min(bsf, best.distance), stats,
                                   check);
    if (match.distance < best.distance) best = match;
  }
  return best;
}

std::vector<size_t> QueryProcessor::OrderedLengths(size_t m) const {
  const std::vector<size_t> all = base_->gti().Lengths();
  if (all.empty()) return all;
  // Position of the first length >= m.
  const auto pivot = std::lower_bound(all.begin(), all.end(), m);
  std::vector<size_t> ordered;
  ordered.reserve(all.size());
  // Exact length first (when present), then decreasing below it, then
  // increasing above (Sec. 5.3).
  size_t above = static_cast<size_t>(pivot - all.begin());
  size_t below = above;  // First index strictly below m is below-1.
  if (above < all.size() && all[above] == m) {
    ordered.push_back(all[above]);
    ++above;
  }
  while (below > 0) ordered.push_back(all[--below]);
  while (above < all.size()) ordered.push_back(all[above++]);
  return ordered;
}

Result<QueryMatch> QueryProcessor::FindBestMatchOfLength(
    std::span<const double> query, size_t length, QueryStats* stats,
    const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("q1.best_match_of_length");
  if (query.empty()) return Status::InvalidArgument("empty query");
  const GtiEntry* entry = base_->EntryFor(length);
  if (entry == nullptr || entry->NumGroups() == 0) {
    return Status::NotFound("length " + std::to_string(length) +
                            " is not in the ONEX base");
  }
  QueryStats call;
  ExecChecker check(ctx);
  check.ObserveCascade(&call.cascade);
  ++call.lengths_scanned;
  double rep_d = kInf;
  QueryMatch match = SearchEntry(query, *entry, kInf, &rep_d, call, check);
  CommitStats(call, stats);
  if (!check.status().ok()) {
    // Flush the best candidate found before the interruption, so the
    // API layer can return it flagged partial.
    if (std::isfinite(match.distance)) {
      check.Report(std::span<const QueryMatch>(&match, 1), 1.0,
                   /*snapshot=*/true);
    }
    return check.status();
  }
  if (!std::isfinite(match.distance)) {
    return Status::NotFound("group is empty");
  }
  return match;
}

Result<QueryMatch> QueryProcessor::FindBestMatch(std::span<const double> query,
                                                 QueryStats* stats,
                                                 const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("q1.best_match");
  if (query.empty()) return Status::InvalidArgument("empty query");
  const double half_st = base_->options().st / 2.0;
  QueryStats call;
  ExecChecker check(ctx);
  check.ObserveCascade(&call.cascade);
  QueryMatch best;
  best.distance = kInf;
  const std::vector<size_t> ordered = OrderedLengths(query.size());
  size_t lengths_done = 0;
  for (size_t length : ordered) {
    const GtiEntry* entry = base_->EntryFor(length);
    if (entry == nullptr || entry->NumGroups() == 0) continue;
    ++call.lengths_scanned;
    double rep_d = kInf;
    QueryMatch match =
        SearchEntry(query, *entry, best.distance, &rep_d, call, check);
    ++lengths_done;
    if (match.distance < best.distance) {
      best = match;
      // Mid-scan improvements only matter to a live watcher; the
      // capture-only wrapper is served by the interrupt-time flush
      // below (same rule as FindKSimilar's periodic snapshots).
      if (check.wants_live_progress() && std::isfinite(best.distance)) {
        check.Report(std::span<const QueryMatch>(&best, 1),
                     static_cast<double>(lengths_done) /
                         static_cast<double>(ordered.size()),
                     /*snapshot=*/true);
      }
    }
    if (check.ShouldStop()) break;
    // Lemma 2 stop: a representative within ST/2 guarantees every member
    // of its group is within ST of the query.
    if (options_.stop_within_st_half && rep_d <= half_st) break;
  }
  CommitStats(call, stats);
  if (!check.status().ok()) {
    if (std::isfinite(best.distance)) {
      check.Report(std::span<const QueryMatch>(&best, 1), 1.0,
                   /*snapshot=*/true);
    }
    return check.status();
  }
  if (!std::isfinite(best.distance)) {
    return Status::NotFound("ONEX base has no groups");
  }
  return best;
}

Result<std::vector<QueryMatch>> QueryProcessor::FindKSimilar(
    std::span<const double> query, size_t k, size_t length,
    QueryStats* stats, const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("q1.k_similar");
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  QueryStats call;
  ExecChecker check(ctx);
  check.ObserveCascade(&call.cascade);
  const GtiEntry* entry = nullptr;
  uint32_t group_id = 0;
  double rep_d = kInf;
  if (length != 0) {
    entry = base_->EntryFor(length);
    if (entry == nullptr || entry->NumGroups() == 0) {
      return Status::NotFound("length " + std::to_string(length) +
                              " is not in the ONEX base");
    }
    std::tie(group_id, rep_d) =
        BestRepresentative(query, *entry, kInf, call, check);
  } else {
    // Any length: locate the best group via the Q1 path, then rank its
    // members.
    double best_rep = kInf;
    for (size_t len : OrderedLengths(query.size())) {
      if (check.ShouldStop()) break;
      const GtiEntry* candidate = base_->EntryFor(len);
      if (candidate == nullptr || candidate->NumGroups() == 0) continue;
      ++call.lengths_scanned;
      const auto [gid, d] =
          BestRepresentative(query, *candidate, best_rep, call, check);
      if (d < best_rep) {
        best_rep = d;
        entry = candidate;
        group_id = gid;
        rep_d = d;
      }
      if (options_.stop_within_st_half && d <= base_->options().st / 2.0) {
        break;
      }
    }
    if (entry == nullptr) {
      CommitStats(call, stats);
      if (!check.status().ok()) return check.status();
      return Status::NotFound("ONEX base has no groups");
    }
  }

  // Rank every member of the chosen group (no early abandon: we need
  // exact distances for the top-k ordering).
  const LsiEntry& group = entry->groups[group_id];
  const double norm = Norm(query.size(), entry->length);
  const DtwOptions dtw_options = DtwOptions::FromRatio(
      base_->options().window_ratio, query.size(), entry->length);
  std::vector<QueryMatch> matches;
  matches.reserve(group.members.size());
  // Running top-k for LIVE progress snapshots, maintained incrementally
  // (sorted, capped at k) so each emission costs O(k), never a copy or
  // sort of the full accumulation. Capture-only contexts skip the
  // per-member maintenance entirely — their one interrupt-time flush
  // sorts the accumulated matches once instead.
  std::vector<QueryMatch> topk;
  const bool track_topk = check.wants_live_progress();
  if (track_topk) topk.reserve(k + 1);
  auto flush_topk = [&](double fraction) {
    check.Report(std::span<const QueryMatch>(topk.data(), topk.size()),
                 fraction, /*snapshot=*/true);
  };
  {
    // Scoped so the ranking time is flushed into `call` before
    // CommitStats copies it out below.
    ScopedTimer stage(&call.knn_seconds);
    InflightStageScope live_stage(check, QueryStage::kKnn);
    for (size_t i = 0; i < group.members.size(); ++i) {
      if (check.ShouldStop()) break;
      const LsiMember& member = group.members[i];
      ++call.members_compared;
      ++call.cascade.candidates;
      ++call.cascade.dtw_completed;
      QueryMatch match;
      match.ref = member.ref;
      match.group_id = group_id;
      match.distance =
          DtwDistance(query, member.ref.View(base_->dataset()), dtw_options) /
          norm;
      matches.push_back(match);
      if (track_topk &&
          (topk.size() < k || MatchDistanceLess(match, topk.back()))) {
        topk.insert(std::upper_bound(topk.begin(), topk.end(), match,
                                     MatchDistanceLess),
                    match);
        if (topk.size() > k) topk.pop_back();
      }
      // Periodic snapshots only when a live watcher exists: the API
      // layer's partial-capture wrapper is served by the final/interrupt
      // flush alone.
      if (check.wants_live_progress() && (i + 1) % 32 == 0) {
        flush_topk(static_cast<double>(i + 1) /
                   static_cast<double>(group.members.size()));
      }
    }
  }
  CommitStats(call, stats);
  if (!check.status().ok()) {
    if (!matches.empty()) {
      if (track_topk) {
        flush_topk(1.0);
      } else {
        // Capture-only: build the top-k once, now that it is needed.
        const size_t keep = std::min(k, matches.size());
        std::partial_sort(matches.begin(),
                          matches.begin() + static_cast<ptrdiff_t>(keep),
                          matches.end(), MatchDistanceLess);
        check.Report(std::span<const QueryMatch>(matches.data(), keep), 1.0,
                     /*snapshot=*/true);
      }
    }
    return check.status();
  }
  std::sort(matches.begin(), matches.end(), MatchDistanceLess);
  if (matches.size() > k) matches.resize(k);
  return matches;
}

Result<std::vector<QueryMatch>> QueryProcessor::FindAllWithin(
    std::span<const double> query, double st, size_t length,
    bool exact_distances, QueryStats* stats, const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("q1.range_within");
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (st <= 0.0) return Status::InvalidArgument("st must be positive");

  std::vector<size_t> lengths;
  if (length != 0) {
    if (base_->EntryFor(length) == nullptr) {
      return Status::NotFound("length " + std::to_string(length) +
                              " is not in the ONEX base");
    }
    lengths.push_back(length);
  } else {
    lengths = base_->gti().Lengths();
  }

  QueryStats call;
  ExecChecker check(ctx);
  check.ObserveCascade(&call.cascade);
  std::vector<QueryMatch> matches;
  const size_t m = query.size();

  // Work-fraction denominator for progress: total groups to visit.
  size_t total_groups = 0;
  for (size_t len : lengths) {
    const GtiEntry* entry = base_->EntryFor(len);
    if (entry != nullptr) total_groups += entry->NumGroups();
  }
  size_t groups_done = 0;
  // Everything past this index is unreported; batches flush per group
  // for a LIVE watcher, while the capture-only wrapper is served by the
  // single interrupt-time flush (the watermark makes it deliver
  // everything confirmed) — an uninterrupted plain query streams and
  // copies nothing.
  size_t reported = 0;
  auto flush_new = [&] {
    if (matches.size() > reported) {
      check.Report(std::span<const QueryMatch>(matches.data() + reported,
                                               matches.size() - reported),
                   total_groups == 0
                       ? 1.0
                       : static_cast<double>(groups_done) /
                             static_cast<double>(total_groups),
                   /*snapshot=*/false);
      reported = matches.size();
    }
  };

  for (size_t len : lengths) {
    const GtiEntry* entry = base_->EntryFor(len);
    if (entry == nullptr) continue;
    if (check.ShouldStop()) break;
    ++call.lengths_scanned;
    const double norm = Norm(m, len);
    // Range semantics follow Def. 3's unconstrained DTW: Lemma 2 is
    // proven for it, and a Sakoe-Chiba band could push a guaranteed
    // member's reported distance past st.
    const DtwOptions dtw_options{-1};
    for (uint32_t k = 0; k < entry->NumGroups(); ++k) {
      if (check.ShouldStop()) break;
      const LsiEntry& group = entry->groups[k];
      const std::span<const double> rep(group.representative.data(), len);
      // DTW has no reverse triangle inequality, so no group can be
      // skipped outright; the representative's DTW only chooses between
      // wholesale admission (Lemma 2) and a per-member scan.
      ++call.reps_compared;
      ++call.cascade.candidates;
      ++call.cascade.dtw_completed;
      double rep_d;
      {
        ScopedTimer stage(&call.rep_scan_seconds);
        InflightStageScope live_stage(check, QueryStage::kRepScan);
        rep_d = DtwDistance(query, rep, dtw_options) / norm;
      }
      // Lemma 2 premises, checked against the *stored* member EDs (the
      // members array is sorted, so back() is the group's ED radius):
      // both DTW(query, rep) and every ED(member, rep) must be <= st/2.
      const double group_radius =
          group.members.empty() ? 0.0 : group.members.back().ed_to_rep;
      if (rep_d <= st / 2.0 && group_radius <= st / 2.0) {
        // Lemma 2: every member of this group is within st of the query.
        ScopedTimer stage(&call.member_scan_seconds);
        InflightStageScope live_stage(check, QueryStage::kMemberScan);
        call.members_admitted_by_lemma2 += group.members.size();
        for (const LsiMember& member : group.members) {
          QueryMatch match;
          match.ref = member.ref;
          match.group_id = k;
          if (exact_distances) {
            if (check.ShouldStop()) break;
            // Exact recompute enters the cascade as a straight DTW.
            ++call.cascade.candidates;
            ++call.cascade.dtw_completed;
            match.distance =
                DtwDistance(query, member.ref.View(base_->dataset()),
                            dtw_options) /
                norm;
          } else {
            match.distance = st;
            match.distance_is_upper_bound = true;
          }
          matches.push_back(match);
        }
      } else {
        // Individual scan with early abandoning at the range threshold.
        ScopedTimer stage(&call.member_scan_seconds);
        InflightStageScope live_stage(check, QueryStage::kMemberScan);
        for (const LsiMember& member : group.members) {
          if (check.ShouldStop()) break;
          ++call.members_compared;
          ++call.cascade.candidates;
          const double d =
              DtwEarlyAbandon(query, member.ref.View(base_->dataset()),
                              st * norm, dtw_options) /
              norm;
          if (std::isinf(d)) {
            ++call.cascade.dtw_abandoned;
          } else {
            ++call.cascade.dtw_completed;
          }
          if (d <= st) {
            QueryMatch match;
            match.ref = member.ref;
            match.group_id = k;
            match.distance = d;
            matches.push_back(match);
          }
        }
      }
      ++groups_done;
      if (check.wants_live_progress()) flush_new();
    }
  }
  CommitStats(call, stats);
  if (!check.status().ok()) {
    // Flush everything confirmed and still unreported before the stop;
    // the API layer re-assembles the partial response from these
    // events.
    flush_new();
    return check.status();
  }
  std::sort(matches.begin(), matches.end(), MatchDistanceLess);
  return matches;
}

namespace {

/// Shared progress plumbing of the two Q2 scans: appends each confirmed
/// group to the sink as GroupProgress events (one per visited source
/// group, so frames feel live even when few groups qualify), and
/// flushes whatever is unreported when the scan is interrupted — the
/// API layer re-assembles partial Seasonal responses from exactly these
/// events. Per-group emissions happen only for a LIVE watcher; the
/// capture-only wrapper is served by the interrupt flush alone (the
/// watermark makes that one flush deliver everything confirmed).
class GroupStream {
 public:
  GroupStream(const ExecChecker& check, size_t total_groups)
      : check_(check), total_groups_(total_groups) {}

  void GroupVisited(const std::vector<std::vector<SubsequenceRef>>& result) {
    ++visited_;
    if (check_.wants_live_progress()) Flush(result);
  }

  void Flush(const std::vector<std::vector<SubsequenceRef>>& result) {
    if (!check_.wants_progress() || result.size() <= reported_) return;
    check_.Report(std::span<const std::vector<SubsequenceRef>>(
                      result.data() + reported_, result.size() - reported_),
                  total_groups_ == 0
                      ? 1.0
                      : static_cast<double>(visited_) /
                            static_cast<double>(total_groups_),
                  /*snapshot=*/false);
    reported_ = result.size();
  }

 private:
  const ExecChecker& check_;
  size_t total_groups_;
  size_t visited_ = 0;
  size_t reported_ = 0;
};

}  // namespace

Result<std::vector<std::vector<SubsequenceRef>>>
QueryProcessor::SeasonalSimilarity(uint32_t series_id, size_t length,
                                   const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("q2.seasonal");
  if (series_id >= base_->dataset().size()) {
    return Status::InvalidArgument("series id out of range");
  }
  const GtiEntry* entry = base_->EntryFor(length);
  if (entry == nullptr) {
    return Status::NotFound("length " + std::to_string(length) +
                            " is not in the ONEX base");
  }
  ExecChecker check(ctx);
  std::vector<std::vector<SubsequenceRef>> result;
  GroupStream stream(check, entry->NumGroups());
  for (const LsiEntry& group : entry->groups) {
    if (check.ShouldStop()) {
      stream.Flush(result);
      return check.status();
    }
    std::vector<SubsequenceRef> own;
    for (const LsiMember& member : group.members) {
      if (member.ref.series == series_id) own.push_back(member.ref);
    }
    // Recurring similarity = the series visits this group more than once.
    if (own.size() >= 2) result.push_back(std::move(own));
    stream.GroupVisited(result);
  }
  return result;
}

Result<std::vector<std::vector<SubsequenceRef>>>
QueryProcessor::SimilarGroupsOfLength(size_t length,
                                      const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("q2.similar_groups");
  const GtiEntry* entry = base_->EntryFor(length);
  if (entry == nullptr) {
    return Status::NotFound("length " + std::to_string(length) +
                            " is not in the ONEX base");
  }
  ExecChecker check(ctx);
  std::vector<std::vector<SubsequenceRef>> result;
  GroupStream stream(check, entry->NumGroups());
  for (const LsiEntry& group : entry->groups) {
    if (check.ShouldStop()) {
      stream.Flush(result);
      return check.status();
    }
    if (group.members.size() >= 2) {
      std::vector<SubsequenceRef> refs;
      refs.reserve(group.members.size());
      for (const LsiMember& member : group.members) {
        refs.push_back(member.ref);
      }
      result.push_back(std::move(refs));
    }
    stream.GroupVisited(result);
  }
  return result;
}

}  // namespace onex

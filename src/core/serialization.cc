#include "core/serialization.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/group.h"
#include "core/gti.h"
#include "distance/envelope.h"

namespace onex {
namespace {

constexpr char kMagic[4] = {'O', 'N', 'E', 'X'};

// ------------------------------------------------------------- Writing.

class Writer {
 public:
  explicit Writer(std::ostream* out) : out_(out) {}

  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U64(s.size());
    Raw(s.data(), s.size());
  }
  void Doubles(const std::vector<double>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }
  bool ok() const { return out_->good(); }

 private:
  void Raw(const void* data, size_t bytes) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(bytes));
  }
  std::ostream* out_;
};

// ------------------------------------------------------------- Reading.

// Every count is validated against the bytes actually left in the file
// BEFORE the corresponding resize/reserve: a corrupt length prefix must
// come back as Corruption, never as a multi-gigabyte allocation (or a
// std::bad_alloc crash) from attacker- or bitrot-controlled data.
class Reader {
 public:
  explicit Reader(std::istream* in) : in_(in) {
    const std::streampos at = in_->tellg();
    in_->seekg(0, std::ios::end);
    const std::streampos end = in_->tellg();
    in_->seekg(at);
    remaining_ = end >= at ? static_cast<uint64_t>(end - at) : 0;
  }

  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s, uint64_t max = 1 << 20) {
    uint64_t n = 0;
    if (!U64(&n) || n > max || n > remaining_) return false;
    s->resize(n);
    return Raw(s->data(), n);
  }
  bool Doubles(std::vector<double>* v) {
    uint64_t n = 0;
    if (!U64(&n) || n > remaining_ / sizeof(double)) return false;
    v->resize(n);
    return Raw(v->data(), n * sizeof(double));
  }

  /// True when `count` records of at least `min_bytes_each` could still
  /// fit in the file — the pre-reserve sanity check for every
  /// variable-length section.
  bool Fits(uint64_t count, uint64_t min_bytes_each) const {
    return count <= remaining_ / min_bytes_each;
  }

 private:
  bool Raw(void* data, size_t bytes) {
    if (bytes > remaining_) {
      in_->setstate(std::ios::failbit);
      return false;
    }
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
    const bool ok = in_->good() || (bytes == 0);
    if (ok) remaining_ -= bytes;
    return ok;
  }
  std::istream* in_;
  uint64_t remaining_ = 0;
};

/// Stream-generic save body shared by the file and in-memory entry
/// points; `where` names the destination in error messages.
Status SaveBaseToStream(const OnexBase& base, std::ostream& out,
                        const std::string& where) {
  Writer w(&out);
  out.write(kMagic, sizeof(kMagic));
  w.U32(kOnexBaseFormatVersion);

  // Dataset.
  const Dataset& dataset = base.dataset();
  w.Str(dataset.name());
  w.U64(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    w.U32(static_cast<uint32_t>(dataset[i].label()));
    w.Doubles(dataset[i].values());
  }

  // Options.
  const OnexOptions& options = base.options();
  w.F64(options.st);
  w.U64(options.lengths.min_length);
  w.U64(options.lengths.max_length);
  w.U64(options.lengths.step);
  w.F64(options.window_ratio);
  w.U64(options.seed);
  w.U32(options.compute_sp_space ? 1 : 0);

  // GTI entries.
  w.U64(base.gti().entries().size());
  for (const auto& [length, entry] : base.gti().entries()) {
    w.U64(length);
    w.F64(entry.st_half);
    w.F64(entry.st_final);
    w.U64(entry.groups.size());
    for (const auto& group : entry.groups) {
      w.Doubles(group.representative);
      w.U64(group.members.size());
      for (const auto& member : group.members) {
        w.U32(member.ref.series);
        w.U32(member.ref.start);
        w.U32(member.ref.length);
        w.F64(member.ed_to_rep);
      }
    }
    // Dc and sums are recomputable but cheap to store and expensive to
    // recompute (O(g^2 L)); store them.
    w.Doubles(entry.dc);
    w.U64(entry.sum_sorted.size());
    for (const auto& [k, sum] : entry.sum_sorted) {
      w.U32(k);
      w.F64(sum);
    }
  }
  if (!w.ok()) return Status::IOError("write failed for '" + where + "'");
  return Status::OK();
}

/// Stream-generic load body shared by the file and in-memory entry
/// points; `where` names the source in error messages.
Result<OnexBase> LoadBaseFromStream(std::istream& in,
                                    const std::string& where) {
  Reader r(&in);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("'" + where + "' is not an ONEX base file");
  }
  uint32_t version = 0;
  if (!r.U32(&version) || version != kOnexBaseFormatVersion) {
    return Status::Corruption("unsupported format version " +
                              std::to_string(version));
  }

  // Dataset.
  std::string name;
  uint64_t num_series = 0;
  if (!r.Str(&name) || !r.U64(&num_series) ||
      !r.Fits(num_series, /*label + count=*/12)) {
    return Status::Corruption("truncated dataset header");
  }
  Dataset dataset(name);
  dataset.Reserve(num_series);
  for (uint64_t i = 0; i < num_series; ++i) {
    uint32_t label = 0;
    std::vector<double> values;
    if (!r.U32(&label) || !r.Doubles(&values)) {
      return Status::Corruption("truncated series " + std::to_string(i));
    }
    dataset.Add(TimeSeries(std::move(values), static_cast<int>(label)));
  }

  // Options.
  OnexOptions options;
  uint64_t min_len = 0, max_len = 0, step = 0, seed = 0;
  uint32_t sp = 0;
  if (!r.F64(&options.st) || !r.U64(&min_len) || !r.U64(&max_len) ||
      !r.U64(&step) || !r.F64(&options.window_ratio) || !r.U64(&seed) ||
      !r.U32(&sp)) {
    return Status::Corruption("truncated options block");
  }
  options.lengths = {static_cast<size_t>(min_len),
                     static_cast<size_t>(max_len),
                     static_cast<size_t>(step)};
  options.seed = seed;
  options.compute_sp_space = sp != 0;

  // GTI.
  uint64_t num_lengths = 0;
  if (!r.U64(&num_lengths) ||
      !r.Fits(num_lengths, /*entry header=*/32)) {
    return Status::Corruption("truncated GTI");
  }
  GlobalTimeIndex gti;
  for (uint64_t e = 0; e < num_lengths; ++e) {
    GtiEntry entry;
    uint64_t length = 0, num_groups = 0;
    if (!r.U64(&length) || !r.F64(&entry.st_half) ||
        !r.F64(&entry.st_final) || !r.U64(&num_groups) ||
        !r.Fits(num_groups, /*rep count + member count=*/16)) {
      return Status::Corruption("truncated GTI entry header");
    }
    entry.length = static_cast<size_t>(length);
    // Clamp the ratio before the size_t cast: a corrupt value (huge,
    // NaN) must not become undefined behaviour. ComputeEnvelope clamps
    // the window to the series length anyway, so capping at 1.0 (and
    // treating NaN like "full window") preserves semantics.
    const double ratio = options.window_ratio;
    const size_t window =
        !(ratio >= 0.0)
            ? entry.length
            : static_cast<size_t>(std::ceil(std::min(ratio, 1.0) *
                                            static_cast<double>(length)));
    entry.groups.reserve(num_groups);
    for (uint64_t g = 0; g < num_groups; ++g) {
      LsiEntry group;
      uint64_t num_members = 0;
      if (!r.Doubles(&group.representative) || !r.U64(&num_members) ||
          !r.Fits(num_members, /*member record=*/20)) {
        return Status::Corruption("truncated group");
      }
      if (group.representative.size() != entry.length) {
        return Status::Corruption("representative length mismatch");
      }
      group.members.resize(num_members);
      for (auto& member : group.members) {
        if (!r.U32(&member.ref.series) || !r.U32(&member.ref.start) ||
            !r.U32(&member.ref.length) || !r.F64(&member.ed_to_rep)) {
          return Status::Corruption("truncated member record");
        }
        // Widen before adding: start + length are u32 and a corrupt
        // pair can wrap mod 2^32 past the bounds check.
        if (member.ref.series >= dataset.size() ||
            member.ref.length != entry.length ||
            static_cast<uint64_t>(member.ref.start) + member.ref.length >
                dataset[member.ref.series].length()) {
          return Status::Corruption("member reference out of bounds");
        }
      }
      // Envelopes are derived state: rebuild.
      group.envelope = ComputeEnvelope(
          std::span<const double>(group.representative.data(),
                                  group.representative.size()),
          window);
      entry.groups.push_back(std::move(group));
    }
    uint64_t num_sums = 0;
    if (!r.Doubles(&entry.dc) || !r.U64(&num_sums)) {
      return Status::Corruption("truncated Dc block");
    }
    if (entry.dc.size() != entry.groups.size() * entry.groups.size() ||
        num_sums != entry.groups.size()) {
      return Status::Corruption("Dc/sum cardinality mismatch");
    }
    entry.sum_sorted.resize(num_sums);
    for (auto& [k, sum] : entry.sum_sorted) {
      if (!r.U32(&k) || !r.F64(&sum)) {
        return Status::Corruption("truncated sum record");
      }
      if (k >= entry.groups.size()) {
        return Status::Corruption("sum record references bad group");
      }
    }
    gti.Insert(std::move(entry));
  }
  return OnexBase::FromParts(std::move(dataset), options, std::move(gti));
}

}  // namespace

Status SaveBase(const OnexBase& base, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot create '" + path + "'");
  Status saved = SaveBaseToStream(base, out, path);
  if (!saved.ok()) return saved;
  out.close();
  if (!out) return Status::IOError("close failed for '" + path + "'");
  return Status::OK();
}

Result<OnexBase> LoadBase(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return LoadBaseFromStream(in, path);
}

Result<std::string> SaveBaseToString(const OnexBase& base) {
  std::ostringstream out(std::ios::binary);
  Status saved = SaveBaseToStream(base, out, "<memory>");
  if (!saved.ok()) return saved;
  return std::move(out).str();
}

Result<OnexBase> LoadBaseFromBuffer(const std::string& buffer) {
  std::istringstream in(buffer, std::ios::binary);
  return LoadBaseFromStream(in, "<memory>");
}

}  // namespace onex

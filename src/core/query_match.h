// Copyright 2026 The ONEX Reproduction Authors.
// The retrieved-sequence record shared by the query processor, the
// session facade, and the execution-context progress machinery. Split
// out of query_processor.h so exec_context.h (which streams batches of
// these) does not have to pull in the whole processor.

#ifndef ONEX_CORE_QUERY_MATCH_H_
#define ONEX_CORE_QUERY_MATCH_H_

#include <cstdint>

#include "dataset/subsequence.h"

namespace onex {

/// One retrieved sequence.
struct QueryMatch {
  SubsequenceRef ref;
  /// Normalized DTW (Def. 6) between query and this sequence.
  double distance = 0.0;
  /// Group the match came from (id within its length's GtiEntry).
  uint32_t group_id = 0;
  /// Set when `distance` is a guaranteed upper bound rather than the
  /// actual DTW: FindAllWithin's Lemma-2 fast path admits whole groups
  /// at the range threshold without per-member DTW, so those matches
  /// report `st` unless the caller asked for exact_distances.
  bool distance_is_upper_bound = false;
};

/// THE match ordering: every ranked result list — full answers, top-k
/// snapshots, and partial (interrupted) responses alike — sorts with
/// this one comparator so the paths can never silently diverge.
inline bool MatchDistanceLess(const QueryMatch& a, const QueryMatch& b) {
  return a.distance < b.distance;
}

}  // namespace onex

#endif  // ONEX_CORE_QUERY_MATCH_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Q3, similarity-threshold recommendations (paper Secs. 4.2 and 5.1):
// turns the analyst's intuition of "strict / medium / loose" similarity
// into concrete ST ranges derived from the SP-Space merge thresholds, so
// exploration takes fewer trial-and-error rounds.

#ifndef ONEX_CORE_RECOMMENDER_H_
#define ONEX_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "core/exec_context.h"
#include "core/onex_base.h"
#include "core/recommendation.h"
#include "core/sp_space.h"

namespace onex {

/// Thin facade over the base's SP-Space implementing query class Q3.
class Recommender {
 public:
  /// `base` must outlive the recommender and have been built with
  /// compute_sp_space = true for meaningful output.
  explicit Recommender(const OnexBase* base) : base_(base) {}

  /// Q3 with simDegree = S|M|L. `length` = 0 uses the global markers
  /// (Match=Any); a concrete length uses that length's local markers
  /// (Match=Exact(L)).
  Recommendation Recommend(SimilarityDegree degree, size_t length = 0) const;

  /// Q3 with simDegree = NULL: the full picture, one row per degree.
  /// Each confirmed row is streamed to the context's progress sink (a
  /// RecommendProgress append event), so a front end can render degrees
  /// as they resolve. An interrupted context (cancel/deadline) stops
  /// between rows, so the result may hold fewer than three — the caller
  /// (Engine) checks ctx and flags the response partial, re-assembled
  /// from the streamed rows.
  std::vector<Recommendation> AllDegrees(size_t length = 0,
                                         const ExecContext* ctx =
                                             nullptr) const;

  /// Classifies an analyst-supplied threshold (used by examples to
  /// explain what a chosen ST means for this dataset).
  SimilarityDegree Classify(double st, size_t length = 0) const;

 private:
  const OnexBase* base_;
};

}  // namespace onex

#endif  // ONEX_CORE_RECOMMENDER_H_

#include "core/group.h"

#include <cassert>

namespace onex {

SimilarityGroup::SimilarityGroup(size_t length, SubsequenceRef ref,
                                 std::span<const double> values)
    : length_(length) {
  assert(values.size() == length);
  members_.push_back(ref);
  sum_.assign(values.begin(), values.end());
  rep_ = sum_;
}

void SimilarityGroup::Add(SubsequenceRef ref, std::span<const double> values) {
  assert(values.size() == length_);
  members_.push_back(ref);
  const double inv_count = 1.0 / static_cast<double>(members_.size());
  for (size_t i = 0; i < length_; ++i) {
    sum_[i] += values[i];
    rep_[i] = sum_[i] * inv_count;
  }
}

}  // namespace onex

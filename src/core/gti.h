// Copyright 2026 The ONEX Reproduction Authors.
// Global Time Index (paper Sec. 4.3): per-length directory over the
// groups. Stores the group list, the pairwise Inter-Representative
// Distance matrix Dc (Def. 10), the sum-of-Dc sorted array S_i(k, sum_k)
// that seeds the median-out representative search (Sec. 5.3), and the
// per-length SThalf / STfinal markers of the SP-Space (Sec. 4.2).

#ifndef ONEX_CORE_GTI_H_
#define ONEX_CORE_GTI_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/group.h"
#include "core/lsi.h"

namespace onex {

/// Everything GTI knows about one length.
struct GtiEntry {
  size_t length = 0;
  /// The groups of this length; index into this vector = group id k.
  std::vector<LsiEntry> groups;
  /// Row-major k x k normalized-ED matrix between representatives.
  std::vector<double> dc;
  /// (group id, sum of its Dc row), sorted ascending by sum.
  std::vector<std::pair<uint32_t, double>> sum_sorted;
  /// Local similarity-threshold markers (Sec. 4.2); st_half is the ST'
  /// at which half the groups of this length have merged, st_final when
  /// all have. Both equal the base ST when the length has one group.
  double st_half = 0.0;
  double st_final = 0.0;

  double Dc(size_t k, size_t l) const { return dc[k * groups.size() + l]; }

  size_t NumGroups() const { return groups.size(); }

  /// GTI bytes: identifiers, Dc matrix, sums, thresholds (Table 4 split).
  size_t GtiMemoryBytes() const {
    return dc.capacity() * sizeof(double) +
           sum_sorted.capacity() * sizeof(std::pair<uint32_t, double>) +
           2 * sizeof(double);
  }

  /// LSI bytes aggregated over the groups of this length.
  size_t LsiMemoryBytes() const {
    size_t total = 0;
    for (const auto& g : groups) total += g.MemoryBytes();
    return total;
  }
};

/// Builds the frozen GtiEntry for one length from construction-time
/// groups: freezes representatives, sorts members by normalized ED to
/// the final representative, computes envelopes (band = window_ratio *
/// length), the Dc matrix, the sum-sorted array and, when requested, the
/// merge thresholds. `st` is the base similarity threshold.
GtiEntry BuildGtiEntry(const Dataset& dataset,
                       std::vector<SimilarityGroup> groups, double st,
                       double window_ratio, bool compute_sp_space);

/// The full index: one GtiEntry per constructed length.
class GlobalTimeIndex {
 public:
  GlobalTimeIndex() = default;

  void Insert(GtiEntry entry) {
    entries_[entry.length] = std::move(entry);
  }

  /// Entry for exactly `length`, or nullptr.
  const GtiEntry* Find(size_t length) const {
    auto it = entries_.find(length);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// All indexed lengths, ascending.
  std::vector<size_t> Lengths() const {
    std::vector<size_t> lengths;
    lengths.reserve(entries_.size());
    for (const auto& [len, entry] : entries_) lengths.push_back(len);
    return lengths;
  }

  const std::map<size_t, GtiEntry>& entries() const { return entries_; }
  std::map<size_t, GtiEntry>* mutable_entries() { return &entries_; }

 private:
  std::map<size_t, GtiEntry> entries_;
};

}  // namespace onex

#endif  // ONEX_CORE_GTI_H_

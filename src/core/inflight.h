// Copyright 2026 The ONEX Reproduction Authors.
// Mid-flight query visibility: a fixed-capacity global registry of
// InflightProbe slots, one per executing query. The worker claims a
// slot before Engine::Execute and points ExecContext::probe at it; the
// query's inner loops then publish their CURRENT stage and a mirror of
// the cascade counters through relaxed atomics, amortized on the same
// every-`check_every` slow path ExecChecker already pays for — so a
// reader (the INSPECT verb, the stall watchdog, the crash-time flight
// recorder) can see where a query is stuck WHILE it runs, without a
// lock anywhere near the hot path.
//
// Consistency model: each field is individually atomic but the row is
// not a snapshot — INSPECT may observe stage=knn with counters from a
// moment earlier. That is the deliberate trade: torn-but-true-ish rows
// for zero synchronization with the query thread (the seqlock
// alternative costs two fenced stores per publish and buys nothing an
// operator can act on). The `epoch` counter (bumped on claim AND
// release) lets careful readers detect slot reuse mid-read.
//
// The registry is intentionally a process-global singleton with
// statically-allocated slots: the crash recorder must walk it from a
// signal handler, where following heap pointers owned by a dying
// server object is how crash handlers crash.

#ifndef ONEX_CORE_INFLIGHT_H_
#define ONEX_CORE_INFLIGHT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace onex {

/// Where a query currently is. Published at stage-transition points
/// (the same ScopedTimer sites that attribute stage seconds), so the
/// live value and the post-hoc breakdown can never disagree about what
/// the stages ARE.
enum class QueryStage : uint32_t {
  kQueued = 0,      ///< Admitted, waiting for a worker.
  kRepScan = 1,     ///< Scanning group representatives (LB cascade).
  kMemberScan = 2,  ///< Scanning inside chosen groups.
  kKnn = 3,         ///< k-NN refinement loop.
  kRefine = 4,      ///< Threshold-refinement re-query loop.
};

const char* ToString(QueryStage stage);

/// One live query's mirror. All fields relaxed atomics: single writer
/// (the query thread; the watchdog writes only `stalled`), any number
/// of lock-free readers. POD-over-atomics on purpose — a signal
/// handler reads this memory directly.
struct InflightProbe {
  static constexpr size_t kDatasetCap = 48;

  std::atomic<uint64_t> epoch{0};     ///< Odd while active (seqlock-lite).
  std::atomic<uint64_t> id{0};        ///< Wire request id; 0 = untagged.
  std::atomic<uint64_t> session{0};   ///< Owning session fd.
  std::atomic<uint32_t> kind{0};      ///< QueryKind as int.
  std::atomic<uint32_t> stage{0};     ///< QueryStage as int.
  std::atomic<uint64_t> start_ns{0};  ///< steady_clock claim time.
  std::atomic<int64_t> deadline_ns{-1};  ///< Absolute steady ns; -1 none.
  std::atomic<uint32_t> stalled{0};   ///< Set by the watchdog, once.
  /// Cascade mirror (same invariant as CascadeStats, eventually).
  std::atomic<uint64_t> candidates{0};
  std::atomic<uint64_t> pruned_kim{0};
  std::atomic<uint64_t> pruned_keogh{0};
  std::atomic<uint64_t> dtw_abandoned{0};
  std::atomic<uint64_t> dtw_completed{0};
  /// Dataset name, length-published AFTER the bytes (release store).
  char dataset[kDatasetCap] = {};
  std::atomic<uint32_t> dataset_len{0};
  /// Which server claimed the slot (INSPECT filters to its own server;
  /// the crash dump prints everything).
  std::atomic<const void*> owner{nullptr};

  void PublishStage(QueryStage s) {
    stage.store(static_cast<uint32_t>(s), std::memory_order_relaxed);
  }
  QueryStage CurrentStage() const {
    return static_cast<QueryStage>(stage.load(std::memory_order_relaxed));
  }
};

/// A decoded, plain-struct copy of one live row (what INSPECT renders
/// and the watchdog logs).
struct InflightRow {
  uint64_t epoch = 0;
  uint64_t id = 0;
  uint64_t session = 0;
  uint32_t kind = 0;
  QueryStage stage = QueryStage::kQueued;
  uint64_t start_ns = 0;
  int64_t deadline_ns = -1;
  bool stalled = false;
  uint64_t candidates = 0;
  uint64_t pruned_kim = 0;
  uint64_t pruned_keogh = 0;
  uint64_t dtw_abandoned = 0;
  uint64_t dtw_completed = 0;
  std::string dataset;
};

/// Decodes one probe into a plain row (relaxed reads; the row is not an
/// atomic snapshot — see the consistency note above). The stall
/// watchdog uses this to log a flagged job's INSPECT row without a full
/// registry sweep.
InflightRow DecodeProbe(const InflightProbe& probe);

/// Fixed-capacity slot table. Claim scans for a free slot with CAS on
/// the epoch parity; on exhaustion (more concurrent queries than
/// kCapacity — not reachable through the bounded server queue) Claim
/// returns nullptr and the query simply runs unobserved.
class InflightRegistry {
 public:
  static constexpr size_t kCapacity = 128;

  static InflightRegistry& Global();

  /// Claims a slot and initializes identity fields. `deadline_ns` < 0
  /// means no deadline; `start_ns` is steady_clock now in ns.
  InflightProbe* Claim(const void* owner, uint64_t id, uint64_t session,
                       uint32_t kind, const std::string& dataset,
                       uint64_t start_ns, int64_t deadline_ns);

  /// Releases a slot claimed by Claim (bumps epoch to even = free).
  void Release(InflightProbe* probe);

  /// Decodes every active row, optionally filtered to one owner.
  std::vector<InflightRow> Snapshot(const void* owner) const;

  /// Async-signal-safe: emits the active rows as a JSON array onto fd.
  /// Reads the same atomics Snapshot does, via raw loads only.
  void DumpSigSafe(int fd) const;

  /// Active-slot count (cheap gauge for INSPECT's header line).
  size_t ActiveCount(const void* owner) const;

 private:
  InflightProbe slots_[kCapacity];
  std::atomic<uint64_t> next_hint_{0};
};

/// RAII claim for the worker loop: claims on construction (may hold
/// nullptr), releases on destruction. Move-only.
class InflightClaim {
 public:
  InflightClaim() = default;
  InflightClaim(const void* owner, uint64_t id, uint64_t session,
                uint32_t kind, const std::string& dataset, uint64_t start_ns,
                int64_t deadline_ns)
      : probe_(InflightRegistry::Global().Claim(owner, id, session, kind,
                                               dataset, start_ns,
                                               deadline_ns)) {}
  InflightClaim(InflightClaim&& other) noexcept : probe_(other.probe_) {
    other.probe_ = nullptr;
  }
  InflightClaim& operator=(InflightClaim&& other) noexcept {
    if (this != &other) {
      Reset();
      probe_ = other.probe_;
      other.probe_ = nullptr;
    }
    return *this;
  }
  InflightClaim(const InflightClaim&) = delete;
  InflightClaim& operator=(const InflightClaim&) = delete;
  ~InflightClaim() { Reset(); }

  InflightProbe* probe() const { return probe_; }

 private:
  void Reset() {
    if (probe_ != nullptr) InflightRegistry::Global().Release(probe_);
    probe_ = nullptr;
  }
  InflightProbe* probe_ = nullptr;
};

}  // namespace onex

#endif  // ONEX_CORE_INFLIGHT_H_

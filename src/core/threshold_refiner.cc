#include "core/threshold_refiner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/group_builder.h"
#include "distance/euclidean.h"
#include "util/trace.h"

namespace onex {
namespace {

// Rebuilds a SimilarityGroup from a fixed member list (the point-wise
// average is order-independent, so Add-ing in any order reproduces
// Def. 7 exactly).
SimilarityGroup GroupFromMembers(const Dataset& dataset, size_t length,
                                 const std::vector<SubsequenceRef>& refs) {
  SimilarityGroup group(length, refs.front(), refs.front().View(dataset));
  for (size_t i = 1; i < refs.size(); ++i) {
    group.Add(refs[i], refs[i].View(dataset));
  }
  return group;
}

}  // namespace

Result<GtiEntry> ThresholdRefiner::RefineLength(size_t length,
                                                double st_prime,
                                                const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("refine.length");
  if (st_prime <= 0.0) {
    return Status::InvalidArgument("st' must be positive");
  }
  const GtiEntry* entry = base_->EntryFor(length);
  if (entry == nullptr) {
    return Status::NotFound("length " + std::to_string(length) +
                            " is not in the ONEX base");
  }
  const double st = base_->options().st;
  if (st_prime == st) return *entry;  // Case 1: use as-is.
  ExecChecker check(ctx);
  GtiEntry refined = st_prime < st ? Split(*entry, st_prime, check)
                                   : Merge(*entry, st_prime, check);
  // A half-refined entry would answer queries wrong; drop it and report
  // the interruption instead.
  if (!check.status().ok()) return check.status();
  return refined;
}

GtiEntry ThresholdRefiner::Split(const GtiEntry& entry, double st_prime,
                                 ExecChecker& check) const {
  const Dataset& dataset = base_->dataset();
  const size_t length = entry.length;
  const double radius =
      std::sqrt(static_cast<double>(length)) * st_prime / 2.0;
  const double radius_sq = radius * radius;

  // Re-cluster each group's members at the smaller radius with the
  // original assignment rule (nearest qualifying representative).
  std::vector<SimilarityGroup> refined;
  for (const LsiEntry& group : entry.groups) {
    if (check.ShouldStop()) break;
    std::vector<SimilarityGroup> local;
    for (const LsiMember& member : group.members) {
      if (check.ShouldStop()) break;
      const auto values = member.ref.View(dataset);
      double min_sq = std::numeric_limits<double>::infinity();
      size_t min_k = 0;
      for (size_t k = 0; k < local.size(); ++k) {
        const double d_sq = SquaredEuclideanEarlyAbandon(
            values,
            std::span<const double>(local[k].representative().data(), length),
            std::min(min_sq, radius_sq));
        if (d_sq < min_sq) {
          min_sq = d_sq;
          min_k = k;
        }
      }
      if (min_sq <= radius_sq) {
        local[min_k].Add(member.ref, values);
      } else {
        local.emplace_back(length, member.ref, values);
      }
    }
    for (auto& g : local) refined.push_back(std::move(g));
  }
  return BuildGtiEntry(dataset, std::move(refined), st_prime,
                       base_->options().window_ratio,
                       base_->options().compute_sp_space);
}

GtiEntry ThresholdRefiner::Merge(const GtiEntry& entry, double st_prime,
                                 ExecChecker& check) const {
  const Dataset& dataset = base_->dataset();
  const size_t length = entry.length;
  const double st = base_->options().st;
  const double budget = st_prime - st;  // Merge fires when Dc <= budget.

  // Working set: member lists + weighted-average representatives.
  struct Working {
    std::vector<SubsequenceRef> members;
    std::vector<double> rep;
  };
  std::vector<Working> work;
  work.reserve(entry.NumGroups());
  for (const LsiEntry& group : entry.groups) {
    Working w;
    w.rep = group.representative;
    w.members.reserve(group.members.size());
    for (const LsiMember& member : group.members) {
      w.members.push_back(member.ref);
    }
    work.push_back(std::move(w));
  }

  // Cascading merge (Sec. 5.2 case 3.2a): repeatedly merge the *closest*
  // qualifying pair (deterministic stand-in for the paper's random pick),
  // recompute the merged representative, repeat until no pair qualifies.
  bool merged = true;
  while (merged && work.size() > 1) {
    if (check.ShouldStop()) break;
    merged = false;
    double best_d = std::numeric_limits<double>::infinity();
    size_t best_a = 0, best_b = 0;
    for (size_t a = 0; a < work.size(); ++a) {
      if (check.ShouldStop()) break;
      for (size_t b = a + 1; b < work.size(); ++b) {
        const double d = NormalizedEuclidean(
            std::span<const double>(work[a].rep.data(), length),
            std::span<const double>(work[b].rep.data(), length));
        if (d <= budget && d < best_d) {
          best_d = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_d <= budget) {
      Working& a = work[best_a];
      Working& b = work[best_b];
      const double na = static_cast<double>(a.members.size());
      const double nb = static_cast<double>(b.members.size());
      for (size_t i = 0; i < length; ++i) {
        a.rep[i] = (a.rep[i] * na + b.rep[i] * nb) / (na + nb);
      }
      a.members.insert(a.members.end(), b.members.begin(), b.members.end());
      work.erase(work.begin() + static_cast<ptrdiff_t>(best_b));
      merged = true;
    }
  }

  std::vector<SimilarityGroup> refined;
  refined.reserve(work.size());
  for (const Working& w : work) {
    refined.push_back(GroupFromMembers(dataset, length, w.members));
  }
  return BuildGtiEntry(dataset, std::move(refined), st_prime,
                       base_->options().window_ratio,
                       base_->options().compute_sp_space);
}

Result<GlobalTimeIndex> ThresholdRefiner::RefineAll(
    double st_prime, const ExecContext* ctx) const {
  if (st_prime <= 0.0) {
    return Status::InvalidArgument("st' must be positive");
  }
  GlobalTimeIndex refined;
  for (size_t length : base_->gti().Lengths()) {
    auto entry = RefineLength(length, st_prime, ctx);
    if (!entry.ok()) return entry.status();
    refined.Insert(std::move(entry).value());
  }
  return refined;
}

Result<OnexBase> ThresholdRefiner::RefinedBase(double st_prime) const {
  auto refined = RefineAll(st_prime);
  if (!refined.ok()) return refined.status();
  OnexOptions options = base_->options();
  options.st = st_prime;
  return OnexBase::FromParts(base_->dataset(), options,
                             std::move(refined).value());
}

}  // namespace onex

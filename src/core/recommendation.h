// Copyright 2026 The ONEX Reproduction Authors.
// The Q3 recommendation row, split out of recommender.h so the
// execution-context progress machinery (exec_context.h streams batches
// of these) does not have to pull in the whole recommender — which
// itself includes exec_context.h.

#ifndef ONEX_CORE_RECOMMENDATION_H_
#define ONEX_CORE_RECOMMENDATION_H_

#include <string>

#include "core/sp_space.h"

namespace onex {

/// One recommendation row: a degree and its ST interval.
struct Recommendation {
  SimilarityDegree degree = SimilarityDegree::kStrict;
  double st_low = 0.0;
  double st_high = 0.0;

  std::string ToString() const;
};

}  // namespace onex

#endif  // ONEX_CORE_RECOMMENDATION_H_

#include "core/recommender.h"

#include <iterator>
#include <sstream>

#include "util/table.h"
#include "util/trace.h"

namespace onex {
namespace {

const char* DegreeName(SimilarityDegree degree) {
  switch (degree) {
    case SimilarityDegree::kStrict: return "Strict";
    case SimilarityDegree::kMedium: return "Medium";
    case SimilarityDegree::kLoose:  return "Loose";
  }
  return "?";
}

}  // namespace

std::string Recommendation::ToString() const {
  std::ostringstream out;
  out << DegreeName(degree) << ": ST in [" << TableWriter::Num(st_low, 4)
      << ", " << TableWriter::Num(st_high, 4) << "]";
  return out.str();
}

Recommendation Recommender::Recommend(SimilarityDegree degree,
                                      size_t length) const {
  Recommendation rec;
  rec.degree = degree;
  const auto [lo, hi] = base_->sp_space().Recommend(degree, length);
  rec.st_low = lo;
  rec.st_high = hi;
  return rec;
}

std::vector<Recommendation> Recommender::AllDegrees(
    size_t length, const ExecContext* ctx) const {
  ONEX_TRACE_SPAN("q3.recommend");
  ExecChecker check(ctx);
  std::vector<Recommendation> rows;
  constexpr SimilarityDegree kDegrees[] = {SimilarityDegree::kStrict,
                                           SimilarityDegree::kMedium,
                                           SimilarityDegree::kLoose};
  for (const SimilarityDegree degree : kDegrees) {
    // Immediate (non-amortized) check: only three iterations, and a
    // fired context must never cost a whole extra degree.
    if (ctx != nullptr && !ctx->Check().ok()) break;
    rows.push_back(Recommend(degree, length));
    check.Report(std::span<const Recommendation>(&rows.back(), 1),
                 static_cast<double>(rows.size()) / std::size(kDegrees),
                 /*snapshot=*/false);
  }
  return rows;
}

SimilarityDegree Recommender::Classify(double st, size_t length) const {
  return base_->sp_space().Classify(st, length);
}

}  // namespace onex

#include "core/recommender.h"

#include <sstream>

#include "util/table.h"

namespace onex {
namespace {

const char* DegreeName(SimilarityDegree degree) {
  switch (degree) {
    case SimilarityDegree::kStrict: return "Strict";
    case SimilarityDegree::kMedium: return "Medium";
    case SimilarityDegree::kLoose:  return "Loose";
  }
  return "?";
}

}  // namespace

std::string Recommendation::ToString() const {
  std::ostringstream out;
  out << DegreeName(degree) << ": ST in [" << TableWriter::Num(st_low, 4)
      << ", " << TableWriter::Num(st_high, 4) << "]";
  return out.str();
}

Recommendation Recommender::Recommend(SimilarityDegree degree,
                                      size_t length) const {
  Recommendation rec;
  rec.degree = degree;
  const auto [lo, hi] = base_->sp_space().Recommend(degree, length);
  rec.st_low = lo;
  rec.st_high = hi;
  return rec;
}

std::vector<Recommendation> Recommender::AllDegrees(
    size_t length, const ExecContext* ctx) const {
  std::vector<Recommendation> rows;
  for (const SimilarityDegree degree :
       {SimilarityDegree::kStrict, SimilarityDegree::kMedium,
        SimilarityDegree::kLoose}) {
    if (ctx != nullptr && !ctx->Check().ok()) break;
    rows.push_back(Recommend(degree, length));
  }
  return rows;
}

SimilarityDegree Recommender::Classify(double st, size_t length) const {
  return base_->sp_space().Classify(st, length);
}

}  // namespace onex

// Copyright 2026 The ONEX Reproduction Authors.
// 1-nearest-neighbor time-series classification on top of the ONEX
// base. Every UCR dataset ships class labels, and 1-NN-DTW is the
// classical strong baseline (the paper's related work discusses
// nearest-centroid [28] and DTW-averaging classifiers [21]); ONEX makes
// the neighbor search interactive: classify by the label of the best
// whole-series match retrieved through the group index instead of a
// linear DTW scan.

#ifndef ONEX_CORE_CLASSIFIER_H_
#define ONEX_CORE_CLASSIFIER_H_

#include <cstdint>
#include <span>

#include "core/onex_base.h"
#include "core/query_processor.h"
#include "util/status.h"

namespace onex {

/// Classification outcome with provenance.
struct Classification {
  int label = 0;               ///< Predicted class.
  uint32_t neighbor = 0;       ///< Training series the label came from.
  double distance = 0.0;       ///< Normalized DTW to that neighbor.
};

/// 1-NN classifier over a base built with whole-series granularity.
/// The base's LengthSpec should include the training series' full
/// length (classification queries search Exact(series length) first and
/// fall back to Any).
class NearestNeighborClassifier {
 public:
  /// `base` must outlive the classifier; its dataset supplies labels.
  explicit NearestNeighborClassifier(const OnexBase* base)
      : base_(base), processor_(base) {}

  /// Predicts the class of `series` via the ONEX best match.
  Result<Classification> Classify(std::span<const double> series);

  /// Exhaustive 1-NN-DTW over whole training series — the accuracy
  /// ceiling ONEX retrieval is compared against (no index, O(N * n^2)).
  Result<Classification> ClassifyBruteForce(
      std::span<const double> series) const;

  /// Fraction of `test` series classified correctly (by stored label).
  /// `brute_force` selects the reference path.
  Result<double> Evaluate(const Dataset& test, bool brute_force = false);

 private:
  const OnexBase* base_;
  QueryProcessor processor_;
};

}  // namespace onex

#endif  // ONEX_CORE_CLASSIFIER_H_

#include "core/group_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "distance/euclidean.h"

namespace onex {

std::vector<SimilarityGroup> BuildGroupsForLength(const Dataset& dataset,
                                                  size_t length, double st,
                                                  Rng* rng) {
  // Enumerate all subsequences of this length (Algorithm 1 lines 3-4).
  std::vector<SubsequenceRef> refs;
  for (uint32_t p = 0; p < dataset.size(); ++p) {
    const size_t n = dataset[p].length();
    if (n < length) continue;
    for (uint32_t j = 0; j + length <= n; ++j) {
      refs.push_back({p, j, static_cast<uint32_t>(length)});
    }
  }
  RandomizeInPlace(&refs, rng);

  // Radius in *raw* ED units: sqrt(L) * ST / 2 (Algorithm 1 line 15).
  const double radius =
      std::sqrt(static_cast<double>(length)) * st / 2.0;
  const double radius_sq = radius * radius;

  std::vector<SimilarityGroup> groups;
  for (const SubsequenceRef& ref : refs) {
    const auto values = ref.View(dataset);
    // Find the nearest representative (lines 12-14), abandoning each ED
    // early at the better of the running minimum and the join radius.
    double min_sq = std::numeric_limits<double>::infinity();
    size_t min_k = 0;
    for (size_t k = 0; k < groups.size(); ++k) {
      const double abandon_at = std::min(min_sq, radius_sq);
      const double d_sq = SquaredEuclideanEarlyAbandon(
          values,
          std::span<const double>(groups[k].representative().data(), length),
          abandon_at);
      if (d_sq < min_sq) {
        min_sq = d_sq;
        min_k = k;
      }
    }
    if (min_sq <= radius_sq) {
      groups[min_k].Add(ref, values);  // Lines 16-17.
    } else {
      groups.emplace_back(length, ref, values);  // Lines 19-20.
    }
  }
  return groups;
}

std::vector<SimilarityGroup> RefineGroupsOnce(
    const Dataset& dataset, const std::vector<SimilarityGroup>& groups,
    size_t length, double st) {
  // Freeze the current representatives as assignment targets.
  std::vector<std::vector<double>> centers;
  centers.reserve(groups.size());
  for (const auto& group : groups) centers.push_back(group.representative());

  const double radius = std::sqrt(static_cast<double>(length)) * st / 2.0;
  const double radius_sq = radius * radius;

  std::vector<SimilarityGroup> refined;
  std::vector<std::vector<SubsequenceRef>> assignments(centers.size());
  std::vector<SubsequenceRef> founders;
  for (const auto& group : groups) {
    for (const SubsequenceRef& ref : group.members()) {
      const auto values = ref.View(dataset);
      double min_sq = std::numeric_limits<double>::infinity();
      size_t min_k = 0;
      for (size_t k = 0; k < centers.size(); ++k) {
        const double d_sq = SquaredEuclideanEarlyAbandon(
            values, std::span<const double>(centers[k].data(), length),
            std::min(min_sq, radius_sq));
        if (d_sq < min_sq) {
          min_sq = d_sq;
          min_k = k;
        }
      }
      if (min_sq <= radius_sq) {
        assignments[min_k].push_back(ref);
      } else {
        founders.push_back(ref);  // Out of radius of every center.
      }
    }
  }
  for (const auto& bucket : assignments) {
    if (bucket.empty()) continue;  // Center lost all members: drop it.
    SimilarityGroup group(length, bucket[0], bucket[0].View(dataset));
    for (size_t i = 1; i < bucket.size(); ++i) {
      group.Add(bucket[i], bucket[i].View(dataset));
    }
    refined.push_back(std::move(group));
  }
  // Orphans re-run the online rule against the refined set.
  for (const SubsequenceRef& ref : founders) {
    const auto values = ref.View(dataset);
    double min_sq = std::numeric_limits<double>::infinity();
    size_t min_k = 0;
    for (size_t k = 0; k < refined.size(); ++k) {
      const double d_sq = SquaredEuclideanEarlyAbandon(
          values,
          std::span<const double>(refined[k].representative().data(),
                                  length),
          std::min(min_sq, radius_sq));
      if (d_sq < min_sq) {
        min_sq = d_sq;
        min_k = k;
      }
    }
    if (min_sq <= radius_sq) {
      refined[min_k].Add(ref, values);
    } else {
      refined.emplace_back(length, ref, values);
    }
  }
  return refined;
}

std::map<size_t, std::vector<SimilarityGroup>> BuildAllGroups(
    const Dataset& dataset, const OnexOptions& options) {
  std::map<size_t, std::vector<SimilarityGroup>> result;
  Rng rng(options.seed);
  // The union of candidate lengths over all series (series may be ragged).
  std::set<size_t> lengths;
  for (size_t p = 0; p < dataset.size(); ++p) {
    for (size_t len : options.lengths.LengthsFor(dataset[p].length())) {
      lengths.insert(len);
    }
  }
  for (size_t len : lengths) {
    auto groups = BuildGroupsForLength(dataset, len, options.st, &rng);
    for (size_t pass = 0; pass < options.refinement_passes; ++pass) {
      groups = RefineGroupsOnce(dataset, groups, len, options.st);
    }
    result[len] = std::move(groups);
  }
  return result;
}

}  // namespace onex

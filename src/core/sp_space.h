// Copyright 2026 The ONEX Reproduction Authors.
// Similarity Parameter Space (paper Sec. 4.2 and Fig. 1). Two groups of
// one length merge at a new threshold ST' once ST' - ST >= Dc, so
// sweeping the Dc edges in ascending order (Kruskal over the complete
// representative graph) yields the exact thresholds at which half
// (SThalf) and all (STfinal) of the groups have merged. Global markers
// take the maximum of the local ones across lengths; the S/M/L
// similarity degrees of Q3 are intervals delimited by these markers.

#ifndef ONEX_CORE_SP_SPACE_H_
#define ONEX_CORE_SP_SPACE_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace onex {

/// The two critical thresholds of one length.
struct MergeThresholds {
  double st_half = 0.0;
  double st_final = 0.0;
};

/// Computes SThalf / STfinal from a row-major g x g Dc matrix and the
/// base threshold `st`. One group (or zero) yields {st, st}: nothing can
/// merge, so every ST' behaves the same.
MergeThresholds ComputeMergeThresholds(std::span<const double> dc, size_t g,
                                       double st);

/// The paper's similarity degrees (Sec. 4.2).
enum class SimilarityDegree { kStrict, kMedium, kLoose };

/// Parses "S" / "M" / "L" (case-insensitive). Anything else -> kMedium.
SimilarityDegree ParseDegree(const std::string& token);

/// Aggregated SP-Space over all lengths.
class SpSpace {
 public:
  /// Records one length's local thresholds.
  void AddLength(size_t length, MergeThresholds local);

  /// Local thresholds for `length`; {0,0} if the length is unknown.
  MergeThresholds Local(size_t length) const;

  /// Global markers: the maxima of the local values (paper Fig. 1's
  /// dashed lines), so that ST' >= global st_final merges everything at
  /// every length.
  MergeThresholds Global() const;

  /// Recommended ST interval for a degree (Q3): Strict = [0, SThalf],
  /// Medium = [SThalf, STfinal], Loose = [STfinal, 1.5 * STfinal].
  /// Uses local thresholds when `length` is non-zero and known,
  /// otherwise global ones.
  std::pair<double, double> Recommend(SimilarityDegree degree,
                                      size_t length = 0) const;

  /// Classifies a threshold into a degree (local if length known).
  SimilarityDegree Classify(double st, size_t length = 0) const;

  bool empty() const { return locals_.empty(); }

 private:
  std::vector<std::pair<size_t, MergeThresholds>> locals_;
};

}  // namespace onex

#endif  // ONEX_CORE_SP_SPACE_H_

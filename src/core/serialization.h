// Copyright 2026 The ONEX Reproduction Authors.
// Binary persistence for the ONEX base. The paper's one-time expensive
// preprocessing (Fig. 5) only pays off across sessions if the base can
// be stored and reloaded; this module gives the knowledge base a
// versioned on-disk format:
//
//   [magic "ONEX"][u32 version]
//   [dataset: name, N, per-series label + values]
//   [options: st, lengths, window_ratio, seed, sp flag]
//   [gti: per length -> groups (rep, members), dc, sums, thresholds]
//
// All integers little-endian fixed width; doubles as IEEE-754 bits.
// Loading validates the magic, version, and structural invariants and
// returns Corruption on any mismatch. Envelopes are recomputed on load
// (cheaper to rebuild with Lemire than to store).

#ifndef ONEX_CORE_SERIALIZATION_H_
#define ONEX_CORE_SERIALIZATION_H_

#include <string>

#include "core/onex_base.h"
#include "util/status.h"

namespace onex {

/// Current format version; bumped on layout changes.
inline constexpr uint32_t kOnexBaseFormatVersion = 1;

/// Writes `base` to `path`, overwriting. IOError on filesystem failure.
Status SaveBase(const OnexBase& base, const std::string& path);

/// Reads a base previously written by SaveBase. The returned base is
/// fully queryable (envelopes and derived stats are rebuilt).
Result<OnexBase> LoadBase(const std::string& path);

/// Serializes `base` into an in-memory buffer — byte-identical to the
/// file SaveBase would write. This is the snapshot-shadow step of the
/// incremental checkpointer (storage/storage.h): the engine writer lock
/// is held only for this memory serialization, never for disk I/O or
/// delta encoding.
Result<std::string> SaveBaseToString(const OnexBase& base);

/// Deserializes a buffer produced by SaveBaseToString (or read back
/// from a SaveBase file). Same validation as LoadBase: magic, version,
/// and every structural invariant, Corruption on any mismatch.
Result<OnexBase> LoadBaseFromBuffer(const std::string& buffer);

}  // namespace onex

#endif  // ONEX_CORE_SERIALIZATION_H_

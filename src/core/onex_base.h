// Copyright 2026 The ONEX Reproduction Authors.
// The ONEX base (paper Secs. 3-4): the dataset plus the R-Space — every
// similarity group of every candidate length, indexed by GTI/LSI, plus
// the SP-Space threshold markers. Built once offline (the phase Fig. 5
// times); all online queries (Sec. 5) run against this object.

#ifndef ONEX_CORE_ONEX_BASE_H_
#define ONEX_CORE_ONEX_BASE_H_

#include <cstdint>
#include <string>

#include "core/gti.h"
#include "core/options.h"
#include "core/sp_space.h"
#include "dataset/dataset.h"
#include "util/status.h"

namespace onex {

/// Size/time accounting in the shape of the paper's Table 4 and Fig. 5/6.
struct BaseStats {
  double build_seconds = 0.0;
  uint64_t num_subsequences = 0;     ///< Grouped subsequences (all lengths).
  uint64_t num_representatives = 0;  ///< Total groups across lengths.
  uint64_t num_lengths = 0;
  size_t gti_bytes = 0;
  size_t lsi_bytes = 0;

  size_t TotalBytes() const { return gti_bytes + lsi_bytes; }
  double TotalMb() const {
    return static_cast<double>(TotalBytes()) / (1024.0 * 1024.0);
  }
  std::string ToString() const;
};

/// Immutable-after-build knowledge base.
class OnexBase {
 public:
  /// Builds the base over `dataset` (taken by value; the base must keep
  /// the original data to return actual sequences, paper Sec. 7).
  /// The dataset is expected to be normalized already (Sec. 6.1).
  static Result<OnexBase> Build(Dataset dataset, const OnexOptions& options);

  /// Reassembles a base from prebuilt parts (deserialization, refined
  /// views). Derived state — SP-Space registry and size stats — is
  /// recomputed from the entries; build_seconds is reported as 0.
  static OnexBase FromParts(Dataset dataset, OnexOptions options,
                            GlobalTimeIndex gti);

  /// Appends one new time series to the base, maintaining every
  /// invariant of Algorithm 1: each new subsequence joins its nearest
  /// in-radius representative or founds a new group, and the affected
  /// lengths' Dc matrices, sum orders, envelopes, and SP-Space markers
  /// are refreshed. This is the "ONEX base maintenance" the paper
  /// defers to its tech report. InvalidArgument for an empty series.
  Status AppendSeries(TimeSeries series);

  /// Appends a whole batch with ONE maintenance pass: per affected
  /// length the groups are reconstituted once, every new subsequence is
  /// assigned in batch order (the same nearest-in-radius rule the
  /// sequential path applies), and the derived structures (member sort,
  /// envelopes, Dc, sum order, markers) are rebuilt once — instead of
  /// once per series. WAL replay batches recovery through this, turning
  /// N derived-state rebuilds into 1 per length. All-or-nothing
  /// validation: an empty series anywhere rejects the batch unapplied.
  Status AppendBatch(std::vector<TimeSeries> batch);

  const Dataset& dataset() const { return dataset_; }
  const OnexOptions& options() const { return options_; }
  const GlobalTimeIndex& gti() const { return gti_; }
  const SpSpace& sp_space() const { return sp_space_; }
  const BaseStats& stats() const { return stats_; }

  /// Groups for one length (nullptr if the length was not constructed).
  const GtiEntry* EntryFor(size_t length) const { return gti_.Find(length); }

 private:
  OnexBase() = default;

  /// Recomputes stats_ and sp_space_ from gti_ (shared by Build,
  /// FromParts, and AppendSeries).
  void RefreshDerivedState();

  Dataset dataset_;
  OnexOptions options_;
  GlobalTimeIndex gti_;
  SpSpace sp_space_;
  BaseStats stats_;
};

}  // namespace onex

#endif  // ONEX_CORE_ONEX_BASE_H_

// Copyright 2026 The ONEX Reproduction Authors.
// A similarity group under construction (paper Defs. 7-8): subsequences
// of one length whose normalized ED to the group's representative is at
// most ST/2, with the representative maintained as the running
// point-wise average of the members (Def. 7).

#ifndef ONEX_CORE_GROUP_H_
#define ONEX_CORE_GROUP_H_

#include <span>
#include <vector>

#include "dataset/subsequence.h"

namespace onex {

/// Mutable group used by GroupBuilder (Algorithm 1). Frozen into an
/// LsiEntry once construction finishes.
class SimilarityGroup {
 public:
  /// Creates a group of subsequences of `length`, seeded by its first
  /// member `ref` with values `values` (which becomes the representative).
  SimilarityGroup(size_t length, SubsequenceRef ref,
                  std::span<const double> values);

  /// Adds a member and folds its values into the running average.
  void Add(SubsequenceRef ref, std::span<const double> values);

  size_t length() const { return length_; }
  size_t size() const { return members_.size(); }
  const std::vector<SubsequenceRef>& members() const { return members_; }

  /// Current representative: point-wise average of all members so far.
  const std::vector<double>& representative() const { return rep_; }

 private:
  size_t length_;
  std::vector<SubsequenceRef> members_;
  std::vector<double> sum_;  ///< Point-wise sums over members.
  std::vector<double> rep_;  ///< sum_ / member count, kept fresh.
};

}  // namespace onex

#endif  // ONEX_CORE_GROUP_H_

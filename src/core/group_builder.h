// Copyright 2026 The ONEX Reproduction Authors.
// Algorithm 1 of the paper: offline construction of ONEX similarity
// groups for each subsequence length. Subsequence order is randomized
// (RANDOMIZE-IN-PLACE) to remove data-order bias; each subsequence joins
// the nearest representative within raw-ED radius sqrt(L) * ST / 2
// (equivalently normalized ED <= ST/2) or founds a new group.

#ifndef ONEX_CORE_GROUP_BUILDER_H_
#define ONEX_CORE_GROUP_BUILDER_H_

#include <map>
#include <vector>

#include "core/group.h"
#include "core/options.h"
#include "dataset/dataset.h"
#include "util/rng.h"

namespace onex {

/// Builds the similarity groups of one specific length over `dataset`.
/// `rng` drives the order randomization; reusing one Rng across lengths
/// keeps whole-base builds deterministic for a given seed.
std::vector<SimilarityGroup> BuildGroupsForLength(const Dataset& dataset,
                                                  size_t length, double st,
                                                  Rng* rng);

/// One Lloyd-style refinement pass (the "alternative clustering
/// methods" the paper's tech report discusses): every member is
/// reassigned to its nearest current representative within the ST/2
/// radius — or founds a new group — and representatives are rebuilt as
/// running averages. Iterating reduces assignment drift left by the
/// one-pass online algorithm while preserving every Def. 8 invariant.
std::vector<SimilarityGroup> RefineGroupsOnce(
    const Dataset& dataset, const std::vector<SimilarityGroup>& groups,
    size_t length, double st);

/// Runs BuildGroupsForLength for every length in options.lengths
/// (plus options.refinement_passes Lloyd passes each), returning
/// length -> groups. This is the expensive offline phase the paper
/// measures in Fig. 5.
std::map<size_t, std::vector<SimilarityGroup>> BuildAllGroups(
    const Dataset& dataset, const OnexOptions& options);

}  // namespace onex

#endif  // ONEX_CORE_GROUP_BUILDER_H_

// Copyright 2026 The ONEX Reproduction Authors.
// The ONEX online query processor (paper Sec. 5, Algorithm 2). Queries
// run DTW against the compact R-Space — first the representatives of a
// length (median-out order over the sum-sorted S array), then the
// members of the single best group (value-targeted outward scan) —
// instead of against the raw data, which is where the speedup over the
// baselines comes from. The justification that group members inherit
// the representative's similarity is the ED-DTW triangle inequality
// (Lemma 2).

#ifndef ONEX_CORE_QUERY_PROCESSOR_H_
#define ONEX_CORE_QUERY_PROCESSOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/exec_context.h"
#include "core/onex_base.h"
#include "core/query_match.h"
#include "distance/cascade.h"
#include "util/status.h"

namespace onex {

/// Optimization toggles (paper Sec. 5.3); the ablation bench flips them.
struct QueryOptions {
  /// LB_Kim / LB_Keogh pruning before DTW on representatives.
  bool use_cascade = true;
  /// Median-out traversal of the sum-sorted representative array.
  bool use_median_order = true;
  /// In-group outward scan from the member whose ED-to-rep is closest
  /// to DTW(query, rep); otherwise members are scanned in stored order.
  bool use_value_targeted_scan = true;
  /// Early-abandoning DTW everywhere.
  bool use_early_abandon = true;
  /// Any-length search: stop scanning further lengths once a
  /// representative with normalized DTW <= ST/2 is found (Lemma 2
  /// guarantees its members are all within ST).
  bool stop_within_st_half = true;
  /// Number of best-representative groups to descend into per length
  /// (the paper searches exactly 1). Larger values close the gap to the
  /// exhaustive oracle at a linear cost in extra member scans — an
  /// accuracy/time knob beyond the paper.
  size_t groups_to_search = 1;
};

/// Work counters for the time-response experiments, plus — since the
/// observability layer — the live pruning-cascade breakdown and stage
/// timings every query carries back through QueryResponse.stats.
struct QueryStats {
  uint64_t lengths_scanned = 0;
  uint64_t reps_compared = 0;
  uint64_t reps_pruned = 0;
  uint64_t members_compared = 0;
  /// Members admitted wholesale by the Lemma-2 fast path of
  /// FindAllWithin, without any per-member DTW.
  uint64_t members_admitted_by_lemma2 = 0;

  /// Pruning-cascade counters, incremented at every DTW decision point
  /// (representative scans, member scans, k-NN ranking, range scans).
  /// Invariant at every site: candidates == pruned_kim + pruned_keogh +
  /// dtw_abandoned + dtw_completed — the wire's `dtw_evaluated` is the
  /// last two summed, so the paper's pruning ratio
  /// (1 - dtw_evaluated/candidates) is available per query, live.
  /// Lemma-2-admitted members never enter the cascade and are counted
  /// only in members_admitted_by_lemma2.
  CascadeStats cascade;

  /// Stage timings, seconds. Accumulated at call/group granularity
  /// (one ScopedTimer per representative scan, group scan, or ranking
  /// loop — never per candidate, so the cost is two clock reads against
  /// microseconds of DTW). queue_wait_seconds is filled by the server
  /// after execution (the processor never sees the queue); envelopes
  /// are precomputed at base-build time, so there is no query-side
  /// envelope stage to time.
  double queue_wait_seconds = 0;   ///< Admission -> worker pickup.
  double rep_scan_seconds = 0;     ///< Representative (group) scans.
  double member_scan_seconds = 0;  ///< Within-group member refinement.
  double knn_seconds = 0;          ///< Exact top-k ranking loop.
  double refine_seconds = 0;       ///< Threshold refine (split/merge).

  void Reset() { *this = QueryStats(); }

  /// Merges another call's counters into this accumulator.
  void Add(const QueryStats& other) {
    lengths_scanned += other.lengths_scanned;
    reps_compared += other.reps_compared;
    reps_pruned += other.reps_pruned;
    members_compared += other.members_compared;
    members_admitted_by_lemma2 += other.members_admitted_by_lemma2;
    cascade.Add(other.cascade);
    queue_wait_seconds += other.queue_wait_seconds;
    rep_scan_seconds += other.rep_scan_seconds;
    member_scan_seconds += other.member_scan_seconds;
    knn_seconds += other.knn_seconds;
    refine_seconds += other.refine_seconds;
  }

  std::string ToString() const;
};

/// Stateless query engine over a built base. Every query method is const
/// and reentrant: work counters are accumulated per call and returned
/// through the optional trailing `stats` out-parameter (nullptr simply
/// discards them), so one processor can serve concurrent readers
/// (`onex::Engine` and the server's worker pool rely on this). The
/// processor holds NO mutable state — the old member accumulator is
/// gone; callers wanting running totals QueryStats::Add per call.
///
/// Interruption: every query method accepts an optional ExecContext.
/// Inner loops test it through an amortized ExecChecker (one atomic
/// load / clock read per ctx->check_every candidates); when the
/// deadline passes or the token fires the method stops descending and
/// returns Status kDeadlineExceeded / kCancelled. Matches confirmed
/// before the interruption are flushed to the context's progress sink
/// (a final append event), so the API layer can still hand the caller a
/// partial response. With ctx == nullptr the old behavior — and the old
/// cost — is unchanged.
class QueryProcessor {
 public:
  /// `base` must outlive the processor.
  explicit QueryProcessor(const OnexBase* base, QueryOptions options = {})
      : base_(base), options_(options) {}

  /// Q1 with Match = Exact(L): best match among subsequences of exactly
  /// `length`. NotFound if that length was not constructed.
  Result<QueryMatch> FindBestMatchOfLength(
      std::span<const double> query, size_t length,
      QueryStats* stats = nullptr, const ExecContext* ctx = nullptr) const;

  /// Q1 with Match = Any: best match across all constructed lengths,
  /// searched in the optimized order (query length, then decreasing,
  /// then increasing — Sec. 5.3). Progress events are snapshots of the
  /// current best match.
  Result<QueryMatch> FindBestMatch(std::span<const double> query,
                                   QueryStats* stats = nullptr,
                                   const ExecContext* ctx = nullptr) const;

  /// k most similar sequences from the best-matching group (Algorithm
  /// 2's getKSim). Results are sorted by distance, at most k of them.
  /// Progress events are snapshots of the current top-k.
  Result<std::vector<QueryMatch>> FindKSimilar(
      std::span<const double> query, size_t k, size_t length = 0,
      QueryStats* stats = nullptr, const ExecContext* ctx = nullptr) const;

  /// Q1 range form (`WHERE Sim <= ST`): every sequence of `length`
  /// (0 = all lengths) whose normalized DTW to the query is <= `st`.
  /// Lemma 2 fast path: when DTW(query, representative) <= st/2, the
  /// whole group qualifies with NO per-member DTW — the paper's
  /// guarantee made operational; other groups are scanned with
  /// early-abandoning DTW at threshold st. Results sorted by distance.
  /// Fast-path members report their upper bound (st) as distance — and
  /// carry distance_is_upper_bound — unless `exact_distances` is set,
  /// which recomputes them. Progress events append each group's newly
  /// confirmed matches as the scan visits it.
  Result<std::vector<QueryMatch>> FindAllWithin(
      std::span<const double> query, double st, size_t length = 0,
      bool exact_distances = false, QueryStats* stats = nullptr,
      const ExecContext* ctx = nullptr) const;

  /// Q2, user-driven: groups of `length` restricted to subsequences of
  /// series `series_id`; only groups contributing >= 2 such subsequences
  /// (i.e., recurring similarity) are returned. Confirmed groups are
  /// streamed to the context's progress sink as GroupProgress append
  /// events; interruption flushes the groups confirmed so far (the API
  /// layer turns them into a partial Seasonal response) and returns
  /// kCancelled / kDeadlineExceeded.
  Result<std::vector<std::vector<SubsequenceRef>>> SeasonalSimilarity(
      uint32_t series_id, size_t length,
      const ExecContext* ctx = nullptr) const;

  /// Q2, data-driven: all groups of `length` with >= 2 members. Same
  /// streaming / interruption contract as SeasonalSimilarity.
  Result<std::vector<std::vector<SubsequenceRef>>> SimilarGroupsOfLength(
      size_t length, const ExecContext* ctx = nullptr) const;

 private:
  /// Best representative of `entry` for `query`: (group id, normalized
  /// DTW). `bsf` seeds pruning (normalized units). Stops early (partial
  /// best-so-far) when `check` fires.
  std::pair<uint32_t, double> BestRepresentative(std::span<const double> query,
                                                 const GtiEntry& entry,
                                                 double bsf,
                                                 QueryStats& stats,
                                                 ExecChecker& check) const;

  /// Top options_.groups_to_search representatives, ascending by
  /// normalized DTW (no pruning: all representatives are evaluated).
  std::vector<std::pair<uint32_t, double>> TopRepresentatives(
      std::span<const double> query, const GtiEntry& entry,
      QueryStats& stats, ExecChecker& check) const;

  /// Searches the chosen groups of one entry (1 group on the paper's
  /// path, several with groups_to_search > 1) and returns the best
  /// member found, seeded with `bsf`.
  QueryMatch SearchEntry(std::span<const double> query, const GtiEntry& entry,
                         double bsf, double* best_rep_distance,
                         QueryStats& stats, ExecChecker& check) const;

  /// Scans the chosen group; returns the best member (and distance),
  /// seeded with `bsf`. `rep_distance` is DTW(query, representative),
  /// the target of the value-directed scan.
  QueryMatch SearchGroup(std::span<const double> query, const GtiEntry& entry,
                         uint32_t group_id, double rep_distance, double bsf,
                         QueryStats& stats, ExecChecker& check) const;

  /// Lengths in the optimized search order for a query of length m.
  std::vector<size_t> OrderedLengths(size_t m) const;

  /// Delivers one call's counters to the caller (nullptr = not wanted).
  static void CommitStats(const QueryStats& call, QueryStats* out) {
    if (out != nullptr) *out = call;
  }

  const OnexBase* base_;
  QueryOptions options_;
};

}  // namespace onex

#endif  // ONEX_CORE_QUERY_PROCESSOR_H_

#include "core/lsi.h"

#include <algorithm>

namespace onex {

size_t LsiEntry::ClosestMemberTo(double target) const {
  if (members.empty()) return 0;
  const auto it = std::lower_bound(
      members.begin(), members.end(), target,
      [](const LsiMember& m, double value) { return m.ed_to_rep < value; });
  if (it == members.begin()) return 0;
  if (it == members.end()) return members.size() - 1;
  const size_t hi = static_cast<size_t>(it - members.begin());
  const size_t lo = hi - 1;
  return (target - members[lo].ed_to_rep <= members[hi].ed_to_rep - target)
             ? lo
             : hi;
}

}  // namespace onex

#include "core/sp_space.h"

#include <algorithm>
#include <cctype>

#include "util/union_find.h"

namespace onex {

MergeThresholds ComputeMergeThresholds(std::span<const double> dc, size_t g,
                                       double st) {
  MergeThresholds result{st, st};
  if (g <= 1) return result;
  // Kruskal sweep: edge (k, l) fires at ST' = st + Dc(k, l).
  std::vector<std::pair<double, std::pair<uint32_t, uint32_t>>> edges;
  edges.reserve(g * (g - 1) / 2);
  for (size_t k = 0; k < g; ++k) {
    for (size_t l = k + 1; l < g; ++l) {
      edges.push_back({dc[k * g + l],
                       {static_cast<uint32_t>(k), static_cast<uint32_t>(l)}});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  UnionFind uf(g);
  const size_t half_target = (g + 1) / 2;  // "Half the groups merged".
  bool half_found = false;
  for (const auto& [d, pair] : edges) {
    if (!uf.Union(pair.first, pair.second)) continue;
    if (!half_found && uf.components() <= half_target) {
      result.st_half = st + d;
      half_found = true;
    }
    if (uf.components() == 1) {
      result.st_final = st + d;
      break;
    }
  }
  if (!half_found) result.st_half = result.st_final;
  return result;
}

SimilarityDegree ParseDegree(const std::string& token) {
  if (token.empty()) return SimilarityDegree::kMedium;
  switch (std::tolower(static_cast<unsigned char>(token[0]))) {
    case 's': return SimilarityDegree::kStrict;
    case 'l': return SimilarityDegree::kLoose;
    default:  return SimilarityDegree::kMedium;
  }
}

void SpSpace::AddLength(size_t length, MergeThresholds local) {
  locals_.push_back({length, local});
}

MergeThresholds SpSpace::Local(size_t length) const {
  for (const auto& [len, t] : locals_) {
    if (len == length) return t;
  }
  return {0.0, 0.0};
}

MergeThresholds SpSpace::Global() const {
  MergeThresholds global{0.0, 0.0};
  for (const auto& [len, t] : locals_) {
    global.st_half = std::max(global.st_half, t.st_half);
    global.st_final = std::max(global.st_final, t.st_final);
  }
  return global;
}

std::pair<double, double> SpSpace::Recommend(SimilarityDegree degree,
                                             size_t length) const {
  MergeThresholds t = length != 0 ? Local(length) : Global();
  if (t.st_half == 0.0 && t.st_final == 0.0) t = Global();
  switch (degree) {
    case SimilarityDegree::kStrict: return {0.0, t.st_half};
    case SimilarityDegree::kMedium: return {t.st_half, t.st_final};
    case SimilarityDegree::kLoose:  return {t.st_final, 1.5 * t.st_final};
  }
  return {0.0, t.st_half};
}

SimilarityDegree SpSpace::Classify(double st, size_t length) const {
  MergeThresholds t = length != 0 ? Local(length) : Global();
  if (t.st_half == 0.0 && t.st_final == 0.0) t = Global();
  if (st <= t.st_half) return SimilarityDegree::kStrict;
  if (st < t.st_final) return SimilarityDegree::kMedium;
  return SimilarityDegree::kLoose;
}

}  // namespace onex

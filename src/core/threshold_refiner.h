// Copyright 2026 The ONEX Reproduction Authors.
// Varying-similarity-threshold support (paper Sec. 5.2, Algorithm 2.C).
// When an analyst queries with ST' different from the ST the base was
// built with, the R-Space is *refined*, not rebuilt:
//   ST' = ST  -> groups used as-is;
//   ST' < ST  -> each group is split by re-clustering its own members at
//                the smaller radius (answers can only move apart);
//   ST' > ST  -> pairs of groups whose Inter-Representative Distance
//                satisfies ST' - ST >= Dc are merged, cascading: after a
//                merge the new (weighted-average) representative's
//                distances are recomputed and further merges may fire.

#ifndef ONEX_CORE_THRESHOLD_REFINER_H_
#define ONEX_CORE_THRESHOLD_REFINER_H_

#include "core/exec_context.h"
#include "core/gti.h"
#include "core/onex_base.h"
#include "util/status.h"

namespace onex {

/// Derives refined group structures from a built base. The refiner never
/// mutates the base; refined entries are self-contained GtiEntry values
/// that QueryProcessor-compatible code can search.
class ThresholdRefiner {
 public:
  /// `base` must outlive the refiner.
  explicit ThresholdRefiner(const OnexBase* base) : base_(base) {}

  /// Refined groups of one length for threshold `st_prime`.
  /// NotFound if the length is absent; InvalidArgument for st' <= 0.
  /// An interrupted context aborts the re-clustering / merge cascade
  /// and returns kCancelled / kDeadlineExceeded (a half-refined entry
  /// is never returned — refinement is all-or-nothing per length).
  Result<GtiEntry> RefineLength(size_t length, double st_prime,
                                const ExecContext* ctx = nullptr) const;

  /// Refines every constructed length (an ST'-parameterized view of the
  /// whole base). Interruption aborts between (and inside) lengths.
  Result<GlobalTimeIndex> RefineAll(double st_prime,
                                    const ExecContext* ctx = nullptr) const;

  /// Fully queryable ST'-view: a standalone OnexBase (own dataset copy,
  /// options.st = st') whose groups are the refined ones. Feed it to a
  /// QueryProcessor to answer queries under the new threshold — the
  /// online half of Algorithm 2.C.
  Result<OnexBase> RefinedBase(double st_prime) const;

 private:
  /// Split/Merge bodies; both bail out (returning an arbitrary partial
  /// entry the caller discards) once `check` fires.
  GtiEntry Split(const GtiEntry& entry, double st_prime,
                 ExecChecker& check) const;
  GtiEntry Merge(const GtiEntry& entry, double st_prime,
                 ExecChecker& check) const;

  const OnexBase* base_;
};

}  // namespace onex

#endif  // ONEX_CORE_THRESHOLD_REFINER_H_

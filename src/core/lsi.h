// Copyright 2026 The ONEX Reproduction Authors.
// Local Sequence Index (paper Sec. 4.3): the per-group online structure.
// Holds the frozen representative, the members sorted by their ED to the
// representative (driving the value-targeted in-group scan of Sec. 5.3),
// and the LB_Keogh envelope around the representative.

#ifndef ONEX_CORE_LSI_H_
#define ONEX_CORE_LSI_H_

#include <cstdint>
#include <vector>

#include "dataset/subsequence.h"
#include "distance/envelope.h"

namespace onex {

/// One member record: where the subsequence lives and its *normalized*
/// ED to the group representative (the EDk(m, EDm) array of Sec. 4.3).
struct LsiMember {
  SubsequenceRef ref;
  double ed_to_rep = 0.0;
};

/// Frozen per-group index entry.
struct LsiEntry {
  /// Representative R^i_k: point-wise average of the members (Def. 7).
  std::vector<double> representative;
  /// LB_Keogh envelope around the representative (pruning, Sec. 4.3).
  Envelope envelope;
  /// Members sorted ascending by ed_to_rep.
  std::vector<LsiMember> members;

  size_t size() const { return members.size(); }

  /// Heap bytes (paper Table 4 reports LSI sizes: sequence identifiers,
  /// representative vectors, envelopes).
  size_t MemoryBytes() const {
    return representative.capacity() * sizeof(double) +
           envelope.MemoryBytes() + members.capacity() * sizeof(LsiMember);
  }

  /// Index of the member whose ed_to_rep is closest to `target` (binary
  /// search over the sorted array); the starting point of the outward
  /// in-group scan. Returns 0 for an empty entry.
  size_t ClosestMemberTo(double target) const;
};

}  // namespace onex

#endif  // ONEX_CORE_LSI_H_

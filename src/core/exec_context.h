// Copyright 2026 The ONEX Reproduction Authors.
// Interactive query control: every Engine::Execute carries an
// ExecContext bundling a deadline, a cooperative CancelToken, and an
// optional progress sink that receives typed partial-result events
// while the query is still running. Events are SHAPED like the final
// payload: match-shaped queries stream QueryMatch batches, Seasonal
// queries stream confirmed groups, Recommend queries stream rows — so
// an interactive front end renders partial results of every query class
// the same way it renders the final ones. The query components
// (QueryProcessor, Recommender, ThresholdRefiner) test the context
// inside their inner loops through an amortized ExecChecker — one
// atomic load / clock read every `check_every` candidates, so an
// uncancelled query pays well under the interactive-latency noise floor
// for the ability to be aborted mid-flight.
//
// Interruption is COOPERATIVE: Cancel() or an expired deadline never
// tears a thread down; the running query notices at its next check,
// stops descending, and returns what it has. The API layer flags such a
// response `partial` and records which code interrupted it
// (Status::Code::kCancelled / kDeadlineExceeded).

#ifndef ONEX_CORE_EXEC_CONTEXT_H_
#define ONEX_CORE_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "core/inflight.h"
#include "core/query_match.h"
#include "core/recommendation.h"
#include "dataset/subsequence.h"
#include "distance/cascade.h"
#include "util/status.h"

namespace onex {

/// Overload-set builder for variant visitation:
///   Visit(Overloaded{[](const A&) {...}, [](const B&) {...}}, v)
/// Used by QueryResponse::Visit and the progress plumbing; a visitor
/// missing an alternative fails to COMPILE, which is the exhaustiveness
/// guarantee the typed payloads exist for.
template <class... Fs>
struct Overloaded : Fs... {
  using Fs::operator()...;
};
template <class... Fs>
Overloaded(Fs...) -> Overloaded<Fs...>;

/// Shared cancellation flag. Copies alias one flag, so a client thread
/// can hold a token while a worker runs the query: Cancel() from any
/// copy is observed by every other. Thread-safe; cancelling is
/// idempotent and cannot be undone (one token = one query's lifetime).
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// ------------------------------------------------- progress events

/// Q1-shaped progress: a batch of confirmed matches.
struct MatchProgress {
  std::span<const QueryMatch> matches;
};

/// Q2-shaped progress: confirmed similar groups (one ref vector each).
struct GroupProgress {
  std::span<const std::vector<SubsequenceRef>> groups;
};

/// Q3-shaped progress: confirmed recommendation rows.
struct RecommendProgress {
  std::span<const Recommendation> rows;
};

/// The typed payload of one progress delivery. One query emits events
/// of exactly ONE alternative — the one matching its response payload.
using ProgressPayload =
    std::variant<MatchProgress, GroupProgress, RecommendProgress>;

/// One progress delivery: a typed batch of confirmed partial results
/// plus a rough work-fraction estimate. `snapshot` distinguishes the
/// two delivery modes: best-match-style queries send their CURRENT best
/// set (replacing earlier events), scan-style queries (ranges, seasonal
/// groups, recommendation rows) send only results confirmed SINCE the
/// last event (append). The spans point into the running query's
/// buffers and are valid only for the duration of the callback — copy
/// out anything kept.
struct ProgressEvent {
  ProgressPayload payload;
  /// Fraction of the candidate space already searched, in [0, 1]. An
  /// estimate (groups visited / groups total), not a latency promise.
  double work_fraction = 0.0;
  /// True: the payload replaces everything delivered before. False: it
  /// extends it.
  bool snapshot = false;

  /// Shape-checked accessors (std::get semantics: throws
  /// std::bad_variant_access when the event carries another shape).
  std::span<const QueryMatch> matches() const {
    return std::get<MatchProgress>(payload).matches;
  }
  std::span<const std::vector<SubsequenceRef>> groups() const {
    return std::get<GroupProgress>(payload).groups;
  }
  std::span<const Recommendation> rows() const {
    return std::get<RecommendProgress>(payload).rows;
  }
};

using ProgressSink = std::function<void(const ProgressEvent&)>;

/// THE accumulation rule for progress deliveries — snapshot replaces,
/// append extends — shared by the engine's partial-results capture and
/// the server's PART-frame batching so the two can never diverge.
template <typename T>
void AccumulateProgress(std::vector<T>* into, std::span<const T> batch,
                        bool snapshot) {
  if (snapshot) {
    into->assign(batch.begin(), batch.end());
  } else {
    into->insert(into->end(), batch.begin(), batch.end());
  }
}

/// Per-call execution context. Cheap to copy (a time point, a shared
/// token, a std::function). A default-constructed context never
/// interrupts, so `Execute(request, ExecContext{})` is the plain
/// blocking call.
struct ExecContext {
  /// Absolute deadline; unset = unbounded.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Cooperative abort switch; keep a copy to Cancel() from elsewhere.
  CancelToken cancel;
  /// Optional sink for typed partial results (see ProgressEvent).
  /// Called from the query thread — keep it fast, and do not call back
  /// into the engine from inside it.
  ProgressSink progress;
  /// Inner loops consult the token/clock every `check_every` candidate
  /// comparisons. Smaller = faster abort, more overhead; the default
  /// keeps uncancelled overhead <2% on micro_distance-scale work while
  /// bounding abort latency to a handful of DTW invocations.
  size_t check_every = 32;
  /// Set by the API layer when `progress` exists only to capture
  /// partial results (the caller attached no sink of their own):
  /// queries then skip the PERIODIC snapshot emissions (e.g. the
  /// running top-k, which costs a copy + sort per emission) and only
  /// flush on completion/interrupt — which is all capture needs.
  bool progress_capture_only = false;
  /// Mid-flight visibility slot (INSPECT / watchdog / crash dump), or
  /// nullptr to run unobserved. Not owned; the claimer (the server's
  /// worker loop) releases it after Execute returns. Stage transitions
  /// and the cascade mirror are published through it with relaxed
  /// stores — see core/inflight.h for the consistency model.
  InflightProbe* probe = nullptr;

  /// Deadline `budget` from now.
  static ExecContext WithDeadlineAfter(std::chrono::milliseconds budget) {
    ExecContext ctx;
    ctx.deadline = std::chrono::steady_clock::now() + budget;
    return ctx;
  }

  /// Immediate (non-amortized) check: OK, DeadlineExceeded, or
  /// Cancelled. The deadline is tested FIRST: when both fired, the
  /// deadline fired on its own schedule regardless of the token (the
  /// server's overload shedder cancels over-deadline queries, and the
  /// caller of such a query must see DEADLINE_EXCEEDED, not a cancel it
  /// never sent).
  Status Check() const {
    if (deadline.has_value() &&
        std::chrono::steady_clock::now() >= *deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    if (cancel.cancelled()) return Status::Cancelled("query cancelled");
    return Status::OK();
  }
};

/// Amortized interruption probe for inner loops. Constructed once per
/// query call, passed by reference down the loop nest; ShouldStop() is
/// a counter bump on all but every `check_every`-th call. Once it
/// returns true it stays true (status() says why), so a loop nest can
/// unwind level by level without re-checking.
class ExecChecker {
 public:
  /// `ctx` may be nullptr (the context-free fast path: ShouldStop is a
  /// single null test). The context must outlive the checker.
  explicit ExecChecker(const ExecContext* ctx)
      : ctx_(ctx),
        period_(ctx != nullptr && ctx->check_every > 0 ? ctx->check_every
                                                       : 1) {}

  /// True when the query must stop now; status() carries the code.
  bool ShouldStop() {
    if (ctx_ == nullptr) return false;
    if (!status_.ok()) return true;
    if (++count_ < period_) return false;
    count_ = 0;
    MirrorCascade();  // Amortized: rides the same slow path as Check().
    status_ = ctx_->Check();
    return !status_.ok();
  }

  /// Why the last ShouldStop() returned true (OK until then).
  const Status& status() const { return status_; }

  const ExecContext* context() const { return ctx_; }

  /// Emits one typed progress event if a sink is attached. The three
  /// Report overloads are the shape-specific entry points the query
  /// components call.
  void Emit(ProgressPayload payload, double work_fraction,
            bool snapshot) const {
    if (ctx_ == nullptr || !ctx_->progress) return;
    ctx_->progress(ProgressEvent{payload, work_fraction, snapshot});
  }

  void Report(std::span<const QueryMatch> matches, double work_fraction,
              bool snapshot) const {
    Emit(MatchProgress{matches}, work_fraction, snapshot);
  }

  void Report(std::span<const std::vector<SubsequenceRef>> groups,
              double work_fraction, bool snapshot) const {
    Emit(GroupProgress{groups}, work_fraction, snapshot);
  }

  void Report(std::span<const Recommendation> rows, double work_fraction,
              bool snapshot) const {
    Emit(RecommendProgress{rows}, work_fraction, snapshot);
  }

  bool wants_progress() const {
    return ctx_ != nullptr && static_cast<bool>(ctx_->progress);
  }

  /// True when someone is actually WATCHING: periodic (non-final)
  /// snapshot emissions are only worth their cost then.
  bool wants_live_progress() const {
    return wants_progress() && !ctx_->progress_capture_only;
  }

  /// The context's in-flight probe, or nullptr (no visibility asked).
  InflightProbe* probe() const {
    return ctx_ != nullptr ? ctx_->probe : nullptr;
  }

  /// Binds the per-call cascade accumulator whose counters ShouldStop's
  /// slow path mirrors into the probe. The accumulator must outlive the
  /// checker (it's the QueryStats local of the same call).
  void ObserveCascade(const CascadeStats* cascade) {
    observed_cascade_ = cascade;
  }

  /// Copies the observed cascade counters into the probe (relaxed
  /// stores; single writer). Public so the API layer can force a final
  /// publish when the call completes — INSPECT row parity with the
  /// response's own stats is a test invariant.
  void MirrorCascade() const {
    InflightProbe* p = probe();
    if (p == nullptr || observed_cascade_ == nullptr) return;
    p->candidates.store(observed_cascade_->candidates,
                        std::memory_order_relaxed);
    p->pruned_kim.store(observed_cascade_->pruned_kim,
                        std::memory_order_relaxed);
    p->pruned_keogh.store(observed_cascade_->pruned_keogh,
                          std::memory_order_relaxed);
    p->dtw_abandoned.store(observed_cascade_->dtw_abandoned,
                           std::memory_order_relaxed);
    p->dtw_completed.store(observed_cascade_->dtw_completed,
                           std::memory_order_relaxed);
  }

 private:
  const ExecContext* ctx_;
  size_t period_;
  size_t count_ = 0;
  Status status_;
  const CascadeStats* observed_cascade_ = nullptr;
};

/// RAII stage publisher: flips the probe's live stage on entry and
/// restores the previous one on exit (stages nest — FindAllWithin's
/// member scans sit inside its group loop). Two relaxed stores at
/// call/group granularity; placed at the SAME sites as the stage-
/// seconds ScopedTimers so live stage and post-hoc attribution can
/// never disagree. No-op when no probe is attached.
class InflightStageScope {
 public:
  InflightStageScope(InflightProbe* probe, QueryStage stage)
      : probe_(probe) {
    if (probe_ == nullptr) return;
    prev_ = probe_->CurrentStage();
    probe_->PublishStage(stage);
  }
  InflightStageScope(const ExecChecker& check, QueryStage stage)
      : InflightStageScope(check.probe(), stage) {}
  InflightStageScope(const ExecContext* ctx, QueryStage stage)
      : InflightStageScope(ctx != nullptr ? ctx->probe : nullptr, stage) {}
  ~InflightStageScope() {
    if (probe_ != nullptr) probe_->PublishStage(prev_);
  }
  InflightStageScope(const InflightStageScope&) = delete;
  InflightStageScope& operator=(const InflightStageScope&) = delete;

 private:
  InflightProbe* probe_;
  QueryStage prev_ = QueryStage::kQueued;
};

}  // namespace onex

#endif  // ONEX_CORE_EXEC_CONTEXT_H_

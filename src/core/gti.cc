#include "core/gti.h"

#include <algorithm>
#include <cmath>

#include "core/sp_space.h"
#include "distance/euclidean.h"

namespace onex {

GtiEntry BuildGtiEntry(const Dataset& dataset,
                       std::vector<SimilarityGroup> groups, double st,
                       double window_ratio, bool compute_sp_space) {
  GtiEntry entry;
  if (groups.empty()) return entry;
  entry.length = groups.front().length();
  const size_t length = entry.length;
  const size_t window =
      window_ratio < 0
          ? length
          : static_cast<size_t>(
                std::ceil(window_ratio * static_cast<double>(length)));

  // Freeze each group into an LsiEntry: final representative, members
  // sorted by normalized ED to it, envelope around it.
  entry.groups.reserve(groups.size());
  for (auto& group : groups) {
    LsiEntry lsi;
    lsi.representative = group.representative();
    const std::span<const double> rep(lsi.representative.data(), length);
    lsi.members.reserve(group.size());
    for (const SubsequenceRef& ref : group.members()) {
      lsi.members.push_back({ref, NormalizedEuclidean(ref.View(dataset), rep)});
    }
    std::sort(lsi.members.begin(), lsi.members.end(),
              [](const LsiMember& a, const LsiMember& b) {
                return a.ed_to_rep < b.ed_to_rep;
              });
    lsi.envelope = ComputeEnvelope(rep, window);
    entry.groups.push_back(std::move(lsi));
  }

  // Pairwise Inter-Representative Distances (Def. 10), normalized ED.
  const size_t g = entry.groups.size();
  entry.dc.assign(g * g, 0.0);
  for (size_t k = 0; k < g; ++k) {
    const std::span<const double> rk(entry.groups[k].representative.data(),
                                     length);
    for (size_t l = k + 1; l < g; ++l) {
      const std::span<const double> rl(entry.groups[l].representative.data(),
                                       length);
      const double d = NormalizedEuclidean(rk, rl);
      entry.dc[k * g + l] = d;
      entry.dc[l * g + k] = d;
    }
  }

  // S_i(k, sum_k): group ids sorted by the sum of their Dc row, the seed
  // order for the median-out representative search (Sec. 5.3).
  entry.sum_sorted.reserve(g);
  for (size_t k = 0; k < g; ++k) {
    double sum = 0.0;
    for (size_t l = 0; l < g; ++l) sum += entry.dc[k * g + l];
    entry.sum_sorted.push_back({static_cast<uint32_t>(k), sum});
  }
  std::sort(entry.sum_sorted.begin(), entry.sum_sorted.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  // Local SP-Space markers (Sec. 4.2).
  if (compute_sp_space) {
    const MergeThresholds t = ComputeMergeThresholds(
        std::span<const double>(entry.dc.data(), entry.dc.size()), g, st);
    entry.st_half = t.st_half;
    entry.st_final = t.st_final;
  } else {
    entry.st_half = st;
    entry.st_final = st;
  }
  return entry;
}

}  // namespace onex

#include "core/onex_base.h"

#include <sstream>

#include "core/group_builder.h"
#include "util/logging.h"
#include "util/timer.h"

namespace onex {

std::string BaseStats::ToString() const {
  std::ostringstream out;
  out << "build=" << build_seconds << "s subsequences=" << num_subsequences
      << " representatives=" << num_representatives
      << " lengths=" << num_lengths << " size=" << TotalMb() << "MB (gti="
      << gti_bytes << "B lsi=" << lsi_bytes << "B)";
  return out.str();
}

Result<OnexBase> OnexBase::Build(Dataset dataset,
                                 const OnexOptions& options) {
  Status valid = options.Validate();
  if (!valid.ok()) return valid;
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot build a base over an empty "
                                   "dataset");
  }

  OnexBase base;
  base.options_ = options;
  base.dataset_ = std::move(dataset);

  Timer timer;
  auto groups_by_length = BuildAllGroups(base.dataset_, options);
  for (auto& [length, groups] : groups_by_length) {
    base.gti_.Insert(
        BuildGtiEntry(base.dataset_, std::move(groups), options.st,
                      options.window_ratio, options.compute_sp_space));
  }
  const double build_seconds = timer.ElapsedSeconds();
  base.RefreshDerivedState();
  base.stats_.build_seconds = build_seconds;
  ONEX_LOG_DEBUG << "built ONEX base over '" << base.dataset_.name()
                 << "': " << base.stats_.ToString();
  return base;
}

OnexBase OnexBase::FromParts(Dataset dataset, OnexOptions options,
                             GlobalTimeIndex gti) {
  OnexBase base;
  base.dataset_ = std::move(dataset);
  base.options_ = options;
  base.gti_ = std::move(gti);
  base.RefreshDerivedState();
  return base;
}

void OnexBase::RefreshDerivedState() {
  stats_ = BaseStats();
  sp_space_ = SpSpace();
  for (const auto& [length, entry] : gti_.entries()) {
    ++stats_.num_lengths;
    stats_.num_representatives += entry.NumGroups();
    for (const auto& group : entry.groups) {
      stats_.num_subsequences += group.size();
    }
    stats_.gti_bytes += entry.GtiMemoryBytes();
    stats_.lsi_bytes += entry.LsiMemoryBytes();
    if (options_.compute_sp_space) {
      sp_space_.AddLength(length, {entry.st_half, entry.st_final});
    }
  }
}

}  // namespace onex

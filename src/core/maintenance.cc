// Incremental maintenance of a built ONEX base (OnexBase::AppendSeries
// / AppendBatch). The paper defers base maintenance to its tech report;
// the natural incremental form of Algorithm 1 is implemented here:
// every subsequence of each new series is assigned to its nearest
// in-radius representative (updating that group's running average) or
// founds a new group, after which the affected per-length derived
// structures (member sort, envelopes, Dc matrix, sum order, SP-Space
// markers) are rebuilt. Rebuilding derived structures costs O(g^2 L)
// per length — the same order as one Fig. 5 build step for that length
// — which is why AppendBatch amortizes: a batch of N series pays that
// rebuild once per length instead of N times (WAL replay leans on
// this), while the assignment itself is O(subsequences * g * L) either
// way, identical to the offline loop.

#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "core/group.h"
#include "core/gti.h"
#include "core/onex_base.h"
#include "distance/euclidean.h"

namespace onex {
namespace {

/// Assigns every subsequence of `series` at `length` into `groups`
/// (nearest in-radius representative, or a new group) — the inner loop
/// of Algorithm 1's incremental form, shared by the single and batch
/// paths so their grouping decisions cannot diverge.
void AssignSubsequences(const Dataset& dataset, uint32_t series_id,
                        size_t length, double radius_sq,
                        std::vector<SimilarityGroup>& groups) {
  const TimeSeries& stored = dataset[series_id];
  for (uint32_t j = 0; j + length <= stored.length(); ++j) {
    const SubsequenceRef ref{series_id, j, static_cast<uint32_t>(length)};
    const auto values = ref.View(dataset);
    double min_sq = std::numeric_limits<double>::infinity();
    size_t min_k = 0;
    for (size_t k = 0; k < groups.size(); ++k) {
      const double d_sq = SquaredEuclideanEarlyAbandon(
          values,
          std::span<const double>(groups[k].representative().data(), length),
          std::min(min_sq, radius_sq));
      if (d_sq < min_sq) {
        min_sq = d_sq;
        min_k = k;
      }
    }
    if (min_sq <= radius_sq) {
      groups[min_k].Add(ref, values);
    } else {
      groups.emplace_back(length, ref, values);
    }
  }
}

/// Reconstitutes construction-time groups from the frozen entry so the
/// running-average update has the member counts it needs.
std::vector<SimilarityGroup> ReconstituteGroups(const Dataset& dataset,
                                                const GtiEntry* frozen,
                                                size_t length) {
  std::vector<SimilarityGroup> groups;
  if (frozen == nullptr) return groups;
  groups.reserve(frozen->NumGroups());
  for (const LsiEntry& lsi : frozen->groups) {
    if (lsi.members.empty()) continue;
    SimilarityGroup group(length, lsi.members[0].ref,
                          lsi.members[0].ref.View(dataset));
    for (size_t m = 1; m < lsi.members.size(); ++m) {
      group.Add(lsi.members[m].ref, lsi.members[m].ref.View(dataset));
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace

Status OnexBase::AppendSeries(TimeSeries series) {
  std::vector<TimeSeries> batch;
  batch.push_back(std::move(series));
  return AppendBatch(std::move(batch));
}

Status OnexBase::AppendBatch(std::vector<TimeSeries> batch) {
  for (const TimeSeries& series : batch) {
    if (series.empty()) {
      return Status::InvalidArgument("cannot append an empty series");
    }
  }
  if (batch.empty()) return Status::OK();

  const uint32_t first_id = static_cast<uint32_t>(dataset_.size());
  for (TimeSeries& series : batch) dataset_.Add(std::move(series));
  const uint32_t end_id = static_cast<uint32_t>(dataset_.size());

  // Union of candidate lengths across the new series; each series only
  // contributes subsequences at the lengths its own LengthsFor yields,
  // exactly as the sequential path would.
  std::set<size_t> lengths;
  for (uint32_t id = first_id; id < end_id; ++id) {
    for (size_t length : options_.lengths.LengthsFor(dataset_[id].length())) {
      lengths.insert(length);
    }
  }

  for (size_t length : lengths) {
    std::vector<SimilarityGroup> groups =
        ReconstituteGroups(dataset_, gti_.Find(length), length);
    const double radius =
        std::sqrt(static_cast<double>(length)) * options_.st / 2.0;
    const double radius_sq = radius * radius;
    for (uint32_t id = first_id; id < end_id; ++id) {
      if (!options_.lengths.Contains(length, dataset_[id].length())) {
        continue;
      }
      AssignSubsequences(dataset_, id, length, radius_sq, groups);
    }
    gti_.Insert(BuildGtiEntry(dataset_, std::move(groups), options_.st,
                              options_.window_ratio,
                              options_.compute_sp_space));
  }
  RefreshDerivedState();
  return Status::OK();
}

}  // namespace onex

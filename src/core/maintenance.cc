// Incremental maintenance of a built ONEX base (OnexBase::AppendSeries).
// The paper defers base maintenance to its tech report; the natural
// incremental form of Algorithm 1 is implemented here: every
// subsequence of the new series is assigned to its nearest in-radius
// representative (updating that group's running average) or founds a
// new group, after which the affected per-length derived structures
// (member sort, envelopes, Dc matrix, sum order, SP-Space markers) are
// rebuilt. Rebuilding derived structures costs O(g^2 L) per length —
// the same order as one Fig. 5 build step for that length — while the
// assignment itself is O(subsequences * g * L), identical to the
// offline loop.

#include <cmath>
#include <limits>

#include "core/group.h"
#include "core/gti.h"
#include "core/onex_base.h"
#include "distance/euclidean.h"

namespace onex {

Status OnexBase::AppendSeries(TimeSeries series) {
  if (series.empty()) {
    return Status::InvalidArgument("cannot append an empty series");
  }
  const uint32_t new_id = static_cast<uint32_t>(dataset_.size());
  dataset_.Add(std::move(series));
  const TimeSeries& stored = dataset_[new_id];

  for (size_t length : options_.lengths.LengthsFor(stored.length())) {
    // Reconstitute construction-time groups from the frozen entry so
    // the running-average update has the member counts it needs.
    const GtiEntry* frozen = gti_.Find(length);
    std::vector<SimilarityGroup> groups;
    if (frozen != nullptr) {
      groups.reserve(frozen->NumGroups());
      for (const LsiEntry& lsi : frozen->groups) {
        if (lsi.members.empty()) continue;
        SimilarityGroup group(length, lsi.members[0].ref,
                              lsi.members[0].ref.View(dataset_));
        for (size_t m = 1; m < lsi.members.size(); ++m) {
          group.Add(lsi.members[m].ref, lsi.members[m].ref.View(dataset_));
        }
        groups.push_back(std::move(group));
      }
    }

    const double radius =
        std::sqrt(static_cast<double>(length)) * options_.st / 2.0;
    const double radius_sq = radius * radius;
    for (uint32_t j = 0; j + length <= stored.length(); ++j) {
      const SubsequenceRef ref{new_id, j, static_cast<uint32_t>(length)};
      const auto values = ref.View(dataset_);
      double min_sq = std::numeric_limits<double>::infinity();
      size_t min_k = 0;
      for (size_t k = 0; k < groups.size(); ++k) {
        const double d_sq = SquaredEuclideanEarlyAbandon(
            values,
            std::span<const double>(groups[k].representative().data(),
                                    length),
            std::min(min_sq, radius_sq));
        if (d_sq < min_sq) {
          min_sq = d_sq;
          min_k = k;
        }
      }
      if (min_sq <= radius_sq) {
        groups[min_k].Add(ref, values);
      } else {
        groups.emplace_back(length, ref, values);
      }
    }

    gti_.Insert(BuildGtiEntry(dataset_, std::move(groups), options_.st,
                              options_.window_ratio,
                              options_.compute_sp_space));
  }
  RefreshDerivedState();
  return Status::OK();
}

}  // namespace onex

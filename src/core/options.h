// Copyright 2026 The ONEX Reproduction Authors.
// Configuration for ONEX base construction and query processing.

#ifndef ONEX_CORE_OPTIONS_H_
#define ONEX_CORE_OPTIONS_H_

#include <cstdint>

#include "dataset/length_spec.h"
#include "util/status.h"

namespace onex {

/// All knobs of the ONEX pipeline. Defaults follow the paper: ST = 0.2
/// (the "balanced" threshold of Sec. 6.3), full length decomposition,
/// and a 10% Sakoe-Chiba band for online DTW.
struct OnexOptions {
  /// Similarity threshold ST in normalized-distance units (Def. 4 with
  /// the normalized distances of Defs. 5-6). Groups have ED radius ST/2.
  double st = 0.2;

  /// Candidate subsequence lengths (paper: all lengths; benches stride).
  LengthSpec lengths;

  /// Sakoe-Chiba band for online DTW as a fraction of the longer series;
  /// negative = unconstrained. Also sizes the LSI envelopes.
  double window_ratio = 0.1;

  /// Seed for RANDOMIZE-IN-PLACE in Algorithm 1.
  uint64_t seed = 42;

  /// Computes SThalf / STfinal per length during the build (Sec. 4.2).
  /// Costs O(g^2 log g) per length; disable for very large bases.
  bool compute_sp_space = true;

  /// Lloyd-style refinement passes after the one-shot online clustering
  /// of Algorithm 1 (0 = the paper's behaviour). Each pass reassigns
  /// every subsequence to its nearest in-radius representative and
  /// rebuilds the averages, tightening groups at extra build cost.
  size_t refinement_passes = 0;

  /// Validates parameter sanity.
  Status Validate() const {
    if (st <= 0.0) return Status::InvalidArgument("st must be positive");
    if (lengths.min_length < 2) {
      return Status::InvalidArgument("min_length must be >= 2");
    }
    if (lengths.max_length != 0 &&
        lengths.max_length < lengths.min_length) {
      return Status::InvalidArgument("max_length < min_length");
    }
    return Status::OK();
  }
};

}  // namespace onex

#endif  // ONEX_CORE_OPTIONS_H_

// Copyright 2026 The ONEX Reproduction Authors.

#include "core/inflight.h"

#include <algorithm>
#include <cstring>

#include "util/sigsafe.h"

namespace onex {

const char* ToString(QueryStage stage) {
  switch (stage) {
    case QueryStage::kQueued:
      return "queue";
    case QueryStage::kRepScan:
      return "rep_scan";
    case QueryStage::kMemberScan:
      return "member_scan";
    case QueryStage::kKnn:
      return "knn";
    case QueryStage::kRefine:
      return "refine";
  }
  return "unknown";
}

InflightRegistry& InflightRegistry::Global() {
  // Leaked-on-exit singleton: the crash handler may fire during static
  // destruction, and a destructed registry is exactly the dangling
  // pointer this design exists to avoid.
  static InflightRegistry* registry = new InflightRegistry();
  return *registry;
}

InflightProbe* InflightRegistry::Claim(const void* owner, uint64_t id,
                                       uint64_t session, uint32_t kind,
                                       const std::string& dataset,
                                       uint64_t start_ns,
                                       int64_t deadline_ns) {
  const uint64_t hint =
      next_hint_.fetch_add(1, std::memory_order_relaxed) % kCapacity;
  for (size_t i = 0; i < kCapacity; ++i) {
    InflightProbe& slot = slots_[(hint + i) % kCapacity];
    uint64_t epoch = slot.epoch.load(std::memory_order_relaxed);
    if (epoch % 2 != 0) continue;  // Active.
    // Odd epoch = claimed. CAS arbitrates racing workers.
    if (!slot.epoch.compare_exchange_strong(epoch, epoch + 1,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    slot.id.store(id, std::memory_order_relaxed);
    slot.session.store(session, std::memory_order_relaxed);
    slot.kind.store(kind, std::memory_order_relaxed);
    slot.stage.store(static_cast<uint32_t>(QueryStage::kQueued),
                     std::memory_order_relaxed);
    slot.start_ns.store(start_ns, std::memory_order_relaxed);
    slot.deadline_ns.store(deadline_ns, std::memory_order_relaxed);
    slot.stalled.store(0, std::memory_order_relaxed);
    slot.candidates.store(0, std::memory_order_relaxed);
    slot.pruned_kim.store(0, std::memory_order_relaxed);
    slot.pruned_keogh.store(0, std::memory_order_relaxed);
    slot.dtw_abandoned.store(0, std::memory_order_relaxed);
    slot.dtw_completed.store(0, std::memory_order_relaxed);
    const size_t len =
        std::min(dataset.size(), InflightProbe::kDatasetCap - 1);
    std::memcpy(slot.dataset, dataset.data(), len);
    slot.dataset[len] = '\0';
    slot.dataset_len.store(static_cast<uint32_t>(len),
                           std::memory_order_release);
    slot.owner.store(owner, std::memory_order_release);
    return &slot;
  }
  return nullptr;  // Saturated: run unobserved rather than block.
}

void InflightRegistry::Release(InflightProbe* probe) {
  probe->owner.store(nullptr, std::memory_order_relaxed);
  probe->epoch.fetch_add(1, std::memory_order_release);  // Odd -> even.
}

InflightRow DecodeProbe(const InflightProbe& slot) {
  InflightRow row;
  row.epoch = slot.epoch.load(std::memory_order_relaxed);
  row.id = slot.id.load(std::memory_order_relaxed);
  row.session = slot.session.load(std::memory_order_relaxed);
  row.kind = slot.kind.load(std::memory_order_relaxed);
  row.stage = slot.CurrentStage();
  row.start_ns = slot.start_ns.load(std::memory_order_relaxed);
  row.deadline_ns = slot.deadline_ns.load(std::memory_order_relaxed);
  row.stalled = slot.stalled.load(std::memory_order_relaxed) != 0;
  row.candidates = slot.candidates.load(std::memory_order_relaxed);
  row.pruned_kim = slot.pruned_kim.load(std::memory_order_relaxed);
  row.pruned_keogh = slot.pruned_keogh.load(std::memory_order_relaxed);
  row.dtw_abandoned = slot.dtw_abandoned.load(std::memory_order_relaxed);
  row.dtw_completed = slot.dtw_completed.load(std::memory_order_relaxed);
  const uint32_t len = slot.dataset_len.load(std::memory_order_acquire);
  row.dataset.assign(slot.dataset,
                     std::min<size_t>(len, InflightProbe::kDatasetCap - 1));
  return row;
}

std::vector<InflightRow> InflightRegistry::Snapshot(const void* owner) const {
  std::vector<InflightRow> rows;
  for (const InflightProbe& slot : slots_) {
    const uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch % 2 == 0) continue;
    if (owner != nullptr &&
        slot.owner.load(std::memory_order_acquire) != owner) {
      continue;
    }
    InflightRow row = DecodeProbe(slot);
    row.epoch = epoch;
    rows.push_back(std::move(row));
  }
  return rows;
}

size_t InflightRegistry::ActiveCount(const void* owner) const {
  size_t n = 0;
  for (const InflightProbe& slot : slots_) {
    if (slot.epoch.load(std::memory_order_relaxed) % 2 == 0) continue;
    if (owner != nullptr &&
        slot.owner.load(std::memory_order_relaxed) != owner) {
      continue;
    }
    ++n;
  }
  return n;
}

void InflightRegistry::DumpSigSafe(int fd) const {
  using sigsafe::WriteI64;
  using sigsafe::WriteJsonEscaped;
  using sigsafe::WriteStr;
  using sigsafe::WriteU64;
  WriteStr(fd, "[");
  bool first = true;
  for (const InflightProbe& slot : slots_) {
    if (slot.epoch.load(std::memory_order_relaxed) % 2 == 0) continue;
    if (!first) WriteStr(fd, ",");
    first = false;
    WriteStr(fd, "{\"id\":");
    WriteU64(fd, slot.id.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"session\":");
    WriteU64(fd, slot.session.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"kind\":");
    WriteU64(fd, slot.kind.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"stage\":\"");
    WriteStr(fd, ToString(slot.CurrentStage()));
    WriteStr(fd, "\",\"dataset\":\"");
    const uint32_t len = slot.dataset_len.load(std::memory_order_relaxed);
    WriteJsonEscaped(
        fd, slot.dataset,
        std::min<size_t>(len, InflightProbe::kDatasetCap - 1));
    WriteStr(fd, "\",\"start_ns\":");
    WriteU64(fd, slot.start_ns.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"deadline_ns\":");
    WriteI64(fd, slot.deadline_ns.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"stalled\":");
    WriteU64(fd, slot.stalled.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"seen\":");
    WriteU64(fd, slot.candidates.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"kim_pruned\":");
    WriteU64(fd, slot.pruned_kim.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"keogh_pruned\":");
    WriteU64(fd, slot.pruned_keogh.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"dtw_abandoned\":");
    WriteU64(fd, slot.dtw_abandoned.load(std::memory_order_relaxed));
    WriteStr(fd, ",\"dtw_completed\":");
    WriteU64(fd, slot.dtw_completed.load(std::memory_order_relaxed));
    WriteStr(fd, "}");
  }
  WriteStr(fd, "]");
}

}  // namespace onex

#include "core/classifier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "distance/dtw.h"

namespace onex {

Result<Classification> NearestNeighborClassifier::Classify(
    std::span<const double> series) {
  if (series.empty()) return Status::InvalidArgument("empty series");
  // Prefer whole-series matches of the query's own length; fall back to
  // the cross-length search when that length is not indexed.
  auto match = processor_.FindBestMatchOfLength(series, series.size());
  if (!match.ok()) match = processor_.FindBestMatch(series);
  if (!match.ok()) return match.status();
  Classification result;
  result.neighbor = match.value().ref.series;
  result.label = base_->dataset()[result.neighbor].label();
  result.distance = match.value().distance;
  return result;
}

Result<Classification> NearestNeighborClassifier::ClassifyBruteForce(
    std::span<const double> series) const {
  if (series.empty()) return Status::InvalidArgument("empty series");
  const Dataset& train = base_->dataset();
  const DtwOptions options = DtwOptions::FromRatio(
      base_->options().window_ratio, series.size(), train.MaxLength());
  Classification best;
  best.distance = std::numeric_limits<double>::infinity();
  for (uint32_t p = 0; p < train.size(); ++p) {
    const double norm = 2.0 * static_cast<double>(std::max(
                                  series.size(), train[p].length()));
    const double d =
        DtwDistance(series, train[p].View(), options) / norm;
    if (d < best.distance) {
      best.distance = d;
      best.neighbor = p;
      best.label = train[p].label();
    }
  }
  if (!std::isfinite(best.distance)) {
    return Status::NotFound("empty training set");
  }
  return best;
}

Result<double> NearestNeighborClassifier::Evaluate(const Dataset& test,
                                                   bool brute_force) {
  if (test.empty()) return Status::InvalidArgument("empty test set");
  size_t correct = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    auto result = brute_force ? ClassifyBruteForce(test[i].View())
                              : Classify(test[i].View());
    if (!result.ok()) return result.status();
    if (result.value().label == test[i].label()) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace onex

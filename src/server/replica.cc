#include "server/replica.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "storage/storage.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace onex {
namespace server {

namespace {

namespace fs = std::filesystem;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True when the local copy of `file` already holds exactly the bytes
/// the manifest names (size + whole-file CRC). Used at bootstrap so a
/// restarted follower never re-downloads an unchanged base.
bool LocalFileMatches(const std::string& path, uint64_t bytes,
                      uint32_t crc, bool check_crc) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size != bytes) return false;
  if (!check_crc) return true;
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string data(static_cast<size_t>(size), '\0');
  in.read(data.data(), static_cast<std::streamsize>(data.size()));
  if (!in) return false;
  return Crc32(data.data(), data.size()) == crc;
}

bool SameDeltas(const std::vector<storage::ManifestEntry::DeltaRef>& a,
                const std::vector<storage::ManifestEntry::DeltaRef>& b,
                size_t prefix) {
  if (a.size() < prefix || b.size() < prefix) return false;
  for (size_t i = 0; i < prefix; ++i) {
    if (a[i].file != b[i].file || a[i].bytes != b[i].bytes ||
        a[i].crc != b[i].crc) {
      return false;
    }
  }
  return true;
}

bool SameEntry(const storage::ManifestEntry& a,
               const storage::ManifestEntry& b) {
  return a.series == b.series && a.live_series == b.live_series &&
         a.base_file == b.base_file && a.base_bytes == b.base_bytes &&
         a.base_crc == b.base_crc && a.wal_bytes == b.wal_bytes &&
         a.deltas.size() == b.deltas.size() &&
         SameDeltas(a.deltas, b.deltas, a.deltas.size());
}

}  // namespace

ReplicaSyncer::ReplicaSyncer(ReplicaOptions options, Catalog* catalog)
    : options_(std::move(options)), catalog_(catalog) {}

ReplicaSyncer::~ReplicaSyncer() { Stop(); }

Status ReplicaSyncer::Start() {
  const Status first = SyncOnce();
  if (!first.ok()) {
    ONEX_LOG_WARN << "replica: bootstrap sync failed (" << first.ToString()
                  << "); will keep polling";
  }
  poller_ = std::thread([this] {
    while (true) {
      {
        MutexLock lock(mutex_);
        const auto interval = std::chrono::duration<double>(
            options_.poll_interval_s > 0 ? options_.poll_interval_s : 1.0);
        cv_.WaitFor(mutex_,
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        interval));
        if (stop_) return;
      }
      const Status synced = SyncOnce();
      if (!synced.ok()) {
        ONEX_LOG_WARN << "replica: sync round failed: " << synced.ToString();
      }
    }
  });
  return first;
}

void ReplicaSyncer::Stop() {
  {
    MutexLock lock(mutex_);
    if (stop_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  if (poller_.joinable()) poller_.join();
  if (leader_.has_value()) leader_->Close();
}

ReplicaStatus ReplicaSyncer::status() const {
  ReplicaStatus status;
  MutexLock lock(mutex_);
  if (last_sync_ns_ != 0) {
    status.lag_seconds =
        static_cast<double>(NowNs() - last_sync_ns_) / 1e9;
  }
  status.last_applied_seq = last_applied_seq_;
  return status;
}

Result<Client*> ReplicaSyncer::LeaderClient() {
  if (leader_.has_value()) return &*leader_;
  auto connected =
      Client::Connect(options_.leader_host, options_.leader_port);
  if (!connected.ok()) return connected.status();
  leader_.emplace(std::move(connected).value());
  ONEX_LOG_INFO << "replica: connected to leader " << options_.leader_host
                << ":" << options_.leader_port << " ("
                << leader_->greeting() << ")";
  return &*leader_;
}

Status ReplicaSyncer::FetchAndPublish(Client* client,
                                      const std::string& dataset,
                                      const std::string& file) {
  auto fetched = client->FetchArtifact(dataset, file);
  if (!fetched.ok()) return fetched.status();
  const std::string& bytes = fetched.value();
  const std::string path =
      (fs::path(options_.data_dir) / file).string();
  const std::string tmp = path + ".sync.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("open " + tmp);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) return Status::IOError("write " + tmp);
  }
  Status synced = storage::SyncFile(tmp);
  if (!synced.ok()) return synced;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status ReplicaSyncer::SyncDataset(Client* client,
                                  const storage::ManifestEntry& entry) {
  const auto it = applied_.find(entry.name);
  const storage::ManifestEntry* last =
      it != applied_.end() ? &it->second : nullptr;
  if (last != nullptr && SameEntry(*last, entry)) return Status::OK();

  // Base: re-fetch when the manifest names different bytes than we
  // applied (leader compacted the chain into a fresh snapshot) — or,
  // with no in-memory record (fresh start / restart), when the local
  // file does not already hold exactly those bytes.
  bool need_base;
  if (last != nullptr) {
    need_base = last->base_bytes != entry.base_bytes ||
                last->base_crc != entry.base_crc;
  } else {
    const std::string local =
        (fs::path(options_.data_dir) / entry.base_file).string();
    need_base = !LocalFileMatches(local, entry.base_bytes, entry.base_crc,
                                  /*check_crc=*/true);
  }

  // Deltas: with an unchanged base and an applied prefix that still
  // matches, only the new chain links ship. Any divergence (or a
  // fresh base) refetches the whole chain — links are small.
  size_t first_delta = 0;
  if (!need_base && last != nullptr &&
      SameDeltas(last->deltas, entry.deltas,
                 std::min(last->deltas.size(), entry.deltas.size())) &&
      last->deltas.size() <= entry.deltas.size()) {
    first_delta = last->deltas.size();
  }

  if (need_base) {
    Status fetched = FetchAndPublish(client, entry.name, entry.base_file);
    if (!fetched.ok()) return fetched;
  }
  for (size_t k = first_delta; k < entry.deltas.size(); ++k) {
    Status fetched =
        FetchAndPublish(client, entry.name, entry.deltas[k].file);
    if (!fetched.ok()) return fetched;
  }
  // The WAL tail always rides along on a changed entry: it is the part
  // that moves every round, and its bytes are not CRC-named by the
  // manifest (the leader may have appended since the cut — recovery
  // replays whatever valid prefix arrives).
  Status fetched = FetchAndPublish(client, entry.name, entry.wal_file);
  if (!fetched.ok()) return fetched;

  // Drop local chain links past the manifest's — leftovers of a
  // compaction that recovery would (correctly but noisily) ignore.
  for (uint64_t k = entry.deltas.size() + 1;; ++k) {
    const std::string stale =
        storage::DeltaPathFor(options_.data_dir, entry.name, k);
    std::error_code ec;
    if (!fs::remove(stale, ec)) break;
  }
  Status dir_synced = storage::SyncDir(options_.data_dir);
  if (!dir_synced.ok()) return dir_synced;

  // New artifacts are on disk: drop the resident engine so the next
  // Acquire recovers from them.
  catalog_->Invalidate(entry.name);
  applied_[entry.name] = entry;
  return Status::OK();
}

Status ReplicaSyncer::SyncOnce() {
  auto client = LeaderClient();
  if (!client.ok()) return client.status();
  auto manifest = client.value()->FetchManifest();
  if (!manifest.ok()) {
    // Transport errors poison the session; reconnect next round.
    if (manifest.status().code() == Status::Code::kIOError) {
      leader_->Close();
      leader_.reset();
    }
    return manifest.status();
  }

  Status round = Status::OK();
  uint64_t applied_seq = 0;
  for (const auto& entry : manifest.value().entries) {
    Status synced = SyncDataset(client.value(), entry);
    if (!synced.ok()) {
      ONEX_LOG_WARN << "replica: dataset '" << entry.name
                    << "' sync failed: " << synced.ToString();
      if (round.ok()) round = synced;
      if (synced.code() == Status::Code::kIOError) {
        // The socket may be desynchronized mid-FETCH — abandon it.
        leader_->Close();
        leader_.reset();
        return round;
      }
      continue;
    }
    applied_seq += entry.live_series;
  }
  if (!round.ok()) return round;

  MutexLock lock(mutex_);
  last_sync_ns_ = NowNs();
  last_applied_seq_ = applied_seq;
  return Status::OK();
}

}  // namespace server
}  // namespace onex

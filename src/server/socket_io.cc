#include "server/socket_io.h"

#include <sys/socket.h>

#include <algorithm>

namespace onex {
namespace server {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SocketLineReader::ReadLine(std::string* line) {
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (buffer_.size() > max_line_) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool SocketLineReader::ReadBytes(size_t n, std::string* out) {
  out->clear();
  // Bytes past the last consumed newline belong to this read.
  const size_t from_buffer = std::min(n, buffer_.size());
  out->append(buffer_, 0, from_buffer);
  buffer_.erase(0, from_buffer);
  while (out->size() < n) {
    char chunk[4096];
    const size_t want = std::min(n - out->size(), sizeof(chunk));
    const ssize_t got = ::recv(fd_, chunk, want, 0);
    if (got <= 0) return false;
    out->append(chunk, static_cast<size_t>(got));
  }
  return true;
}

}  // namespace server
}  // namespace onex

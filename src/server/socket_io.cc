#include "server/socket_io.h"

#include <sys/socket.h>

namespace onex {
namespace server {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SocketLineReader::ReadLine(std::string* line) {
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    if (buffer_.size() > max_line_) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace server
}  // namespace onex

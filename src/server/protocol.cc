#include "server/protocol.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace onex {
namespace server {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Round-trip double formatting (%.17g reproduces the exact bits).
std::string Dbl(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string Csv(const std::vector<double>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out += ',';
    out += Dbl(values[i]);
  }
  return out;
}

std::optional<double> ParseDouble(const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<uint64_t> ParseUnsigned(const std::string& token) {
  if (token.empty() || !std::isdigit(static_cast<unsigned char>(token[0]))) {
    return std::nullopt;
  }
  char* end = nullptr;
  const uint64_t v = std::strtoull(token.c_str(), &end, 10);
  if (*end != '\0') return std::nullopt;
  return v;
}

/// Signed integer (labels may be negative in some UCR sets). Range
/// checked: an out-of-int label must be rejected, not silently wrapped.
std::optional<int> ParseInt(const std::string& token) {
  if (token.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(v);
}

Status Usage(const char* usage) {
  return Status::InvalidArgument(std::string("usage: ") + usage);
}

/// One-letter degree tokens of the q3 grammar.
const char* DegreeToken(SimilarityDegree degree) {
  switch (degree) {
    case SimilarityDegree::kStrict: return "S";
    case SimilarityDegree::kMedium: return "M";
    case SimilarityDegree::kLoose:  return "L";
  }
  return "M";
}

/// Strips '\n' so a multi-line message cannot break reply framing.
std::string OneLine(std::string message) {
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return message;
}

}  // namespace

std::optional<std::vector<double>> ParseValuesCsv(const std::string& csv) {
  // A trailing comma usually means the list continued past a stray
  // space and got truncated by tokenization — reject rather than
  // answer a shorter query than the user wrote.
  if (!csv.empty() && csv.back() == ',') return std::nullopt;
  std::vector<double> values;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    // Reject trailing garbage too ("0.1;0.2" must not become 0.1):
    // silently dropping values would answer the wrong query.
    if (end == item.c_str() || *end != '\0') return std::nullopt;
    values.push_back(v);
  }
  if (values.empty()) return std::nullopt;
  return values;
}

std::optional<size_t> ParseLengthToken(const std::string& token) {
  const std::string t = Lower(token);
  if (t == "any" || t == "all") return size_t{0};
  const auto v = ParseUnsigned(token);
  if (!v.has_value()) return std::nullopt;
  return static_cast<size_t>(*v);
}

Result<Request> ParseRequestLine(const std::string& line,
                                 RequestAttrs* attrs) {
  auto t = Tokenize(line);
  if (t.empty()) return Status::InvalidArgument("empty request");

  // ---- v3 attribute prefix: key=value tokens before the verb. A verb
  // never contains '=', so the first '='-free token ends the prefix.
  RequestAttrs parsed_attrs;
  size_t verb_at = 0;
  while (verb_at < t.size() &&
         t[verb_at].find('=') != std::string::npos) {
    const std::string& token = t[verb_at];
    const size_t eq = token.find('=');
    const std::string key = Lower(token.substr(0, eq));
    const std::string value = token.substr(eq + 1);
    if (key == "id") {
      const auto id = ParseUnsigned(value);
      if (!id || *id == 0) {
        return Status::InvalidArgument("bad id '" + value +
                                       "' (a positive integer)");
      }
      parsed_attrs.id = *id;
    } else if (key == "deadline_ms") {
      const auto ms = ParseUnsigned(value);
      if (!ms) {
        return Status::InvalidArgument("bad deadline_ms '" + value + "'");
      }
      // Clamp: a budget past a year is "unbounded" in practice, and an
      // unclamped u64 would overflow the chrono arithmetic downstream
      // (now() + milliseconds) into a deadline in the past.
      constexpr uint64_t kMaxDeadlineMs = 365ull * 24 * 3600 * 1000;
      parsed_attrs.deadline_ms = std::min(*ms, kMaxDeadlineMs);
    } else if (key == "progress") {
      if (value != "0" && value != "1") {
        return Status::InvalidArgument("bad progress '" + value +
                                       "' (0 or 1)");
      }
      parsed_attrs.progress = value == "1";
    } else if (key == "trace") {
      if (value != "0" && value != "1") {
        return Status::InvalidArgument("bad trace '" + value +
                                       "' (0 or 1)");
      }
      parsed_attrs.trace = value == "1";
    } else if (key == "dataset") {
      // v8 routing: per-query dataset (or, via onex_router, shard-set)
      // override. Any non-empty token is accepted here; whether a glob
      // is honored is the endpoint's call (a plain server rejects it).
      if (value.empty()) {
        return Status::InvalidArgument("bad dataset '' (a dataset name or "
                                       "shard-set like sales-*)");
      }
      parsed_attrs.dataset = value;
    } else {
      return Status::InvalidArgument(
          "unknown request attribute '" + key +
          "' (id, deadline_ms, progress, trace, dataset)");
    }
    ++verb_at;
  }
  if (verb_at == t.size()) {
    return Status::InvalidArgument("request has attributes but no verb");
  }
  if (parsed_attrs.progress && parsed_attrs.id == 0) {
    return Status::InvalidArgument("progress=1 needs id=<n>");
  }
  // Strip the prefix whenever one was WRITTEN — `deadline_ms=0` or
  // `progress=0` are valid (no-op) attributes, not part of the verb.
  if (verb_at > 0) {
    if (attrs == nullptr) {
      return Status::InvalidArgument(
          "request attributes are not supported on this endpoint");
    }
    t.erase(t.begin(), t.begin() + static_cast<ptrdiff_t>(verb_at));
  }
  if (attrs != nullptr) *attrs = parsed_attrs;

  const std::string verb = Lower(t[0]);
  if (verb_at > 0 && verb != "q1" && verb != "q1k" && verb != "q1r" &&
      verb != "q2" && verb != "q3" && verb != "refine") {
    return Status::InvalidArgument("request attributes only apply to query "
                                   "verbs (q1/q1k/q1r/q2/q3/refine)");
  }

  // ---- session control. Extra operands are rejected everywhere: a
  // line that doesn't parse whole must not silently answer something
  // shorter than what the client wrote.
  if (verb == "use") {
    if (t.size() != 2) return Usage("use <dataset>");
    return Request(ControlRequest{ControlVerb::kUse, t[1]});
  }
  if (verb == "cancel") {
    if (t.size() != 2) return Usage("cancel <id> | cancel <session>/<id>");
    // v7 admin form: `<session>/<id>` targets another session's query.
    const size_t slash = t[1].find('/');
    if (slash != std::string::npos) {
      const std::string session = t[1].substr(0, slash);
      const std::string id = t[1].substr(slash + 1);
      const auto session_no = ParseUnsigned(session);
      const auto request_id = ParseUnsigned(id);
      if (!session_no || *session_no == 0 || !request_id ||
          *request_id == 0) {
        return Status::InvalidArgument(
            "bad cancel target '" + t[1] +
            "' (expected <session>/<id>, two positive integers)");
      }
      return Request(ControlRequest{ControlVerb::kCancel, t[1]});
    }
    const auto id = ParseUnsigned(t[1]);
    if (!id || *id == 0) {
      return Status::InvalidArgument("bad id '" + t[1] +
                                     "' (a positive integer)");
    }
    return Request(ControlRequest{ControlVerb::kCancel, t[1]});
  }
  if (verb == "fetch") {
    if (t.size() != 3) return Usage("fetch <dataset> <file>");
    // The artifact name must be a plain manifest-relative file name:
    // anything with a path separator could walk out of the data
    // directory, and that hole is closed at parse time, not by each
    // server's handler remembering to check.
    if (t[2].find('/') != std::string::npos ||
        t[2].find('\\') != std::string::npos || t[2] == "." ||
        t[2] == "..") {
      return Status::InvalidArgument(
          "bad artifact '" + t[2] +
          "' (a plain file name from the manifest, no paths)");
    }
    return Request(ControlRequest{ControlVerb::kFetch, t[1], t[2]});
  }
  if (verb == "list" || verb == "stats" || verb == "metrics" ||
      verb == "inspect" || verb == "health" || verb == "manifest" ||
      verb == "ping" || verb == "help" || verb == "quit" ||
      verb == "exit" || verb == "flush") {
    if (t.size() != 1) {
      return Status::InvalidArgument("'" + verb + "' takes no operands");
    }
    if (verb == "list") return Request(ControlRequest{ControlVerb::kList, ""});
    if (verb == "stats") {
      return Request(ControlRequest{ControlVerb::kStats, ""});
    }
    if (verb == "metrics") {
      return Request(ControlRequest{ControlVerb::kMetrics, ""});
    }
    if (verb == "inspect") {
      return Request(ControlRequest{ControlVerb::kInspect, ""});
    }
    if (verb == "health") {
      return Request(ControlRequest{ControlVerb::kHealth, ""});
    }
    if (verb == "manifest") {
      return Request(ControlRequest{ControlVerb::kManifest, ""});
    }
    if (verb == "ping") return Request(ControlRequest{ControlVerb::kPing, ""});
    if (verb == "help") return Request(ControlRequest{ControlVerb::kHelp, ""});
    if (verb == "flush") {
      return Request(ControlRequest{ControlVerb::kFlush, ""});
    }
    return Request(ControlRequest{ControlVerb::kQuit, ""});
  }

  // ---- mutations.
  if (verb == "append") {
    if (t.size() < 2 || t.size() > 3) {
      return Usage("append <v1,v2,...> [label]");
    }
    const auto values = ParseValuesCsv(t[1]);
    if (!values) return Status::InvalidArgument("bad value list");
    AppendRequest request{*values, 0};
    if (t.size() > 2) {
      const auto label = ParseInt(t[2]);
      if (!label) {
        return Status::InvalidArgument("bad label '" + t[2] + "'");
      }
      request.label = *label;
    }
    return Request(std::move(request));
  }

  // ---- queries (the CLI's historical grammar, now shared).
  if (verb == "q1") {
    if (t.size() != 3) return Usage("q1 <len|any> <v1,v2,...>");
    const auto length = ParseLengthToken(t[1]);
    if (!length) return Status::InvalidArgument("bad length '" + t[1] + "'");
    const auto values = ParseValuesCsv(t[2]);
    if (!values) return Status::InvalidArgument("bad value list");
    return Request(QueryRequest(BestMatchRequest{*values, *length}));
  }
  if (verb == "q1k") {
    if (t.size() != 4) return Usage("q1k <k> <len|any> <v1,v2,...>");
    const auto k = ParseUnsigned(t[1]);
    if (!k || *k == 0) return Status::InvalidArgument("bad k '" + t[1] + "'");
    const auto length = ParseLengthToken(t[2]);
    if (!length) return Status::InvalidArgument("bad length '" + t[2] + "'");
    const auto values = ParseValuesCsv(t[3]);
    if (!values) return Status::InvalidArgument("bad value list");
    return Request(QueryRequest(
        KSimilarRequest{*values, static_cast<size_t>(*k), *length}));
  }
  if (verb == "q1r") {
    if (t.size() < 4 || t.size() > 5) {
      return Usage("q1r <st> <len|any> <v1,v2,...> [bound]");
    }
    const auto st = ParseDouble(t[1]);
    if (!st || *st < 0.0) {
      return Status::InvalidArgument("bad threshold '" + t[1] + "'");
    }
    const auto length = ParseLengthToken(t[2]);
    if (!length) return Status::InvalidArgument("bad length '" + t[2] + "'");
    const auto values = ParseValuesCsv(t[3]);
    if (!values) return Status::InvalidArgument("bad value list");
    bool exact = true;
    if (t.size() > 4) {
      if (Lower(t[4]) != "bound") {
        return Status::InvalidArgument("bad modifier '" + t[4] +
                                       "' (expected 'bound')");
      }
      exact = false;
    }
    return Request(QueryRequest(RangeWithinRequest{*values, *st, *length,
                                                   exact}));
  }
  if (verb == "q2") {
    if (t.size() != 3) return Usage("q2 <series|all> <len>");
    SeasonalRequest request;
    const auto length = ParseUnsigned(t[2]);
    if (!length) return Status::InvalidArgument("bad length '" + t[2] + "'");
    request.length = static_cast<size_t>(*length);
    if (Lower(t[1]) != "all") {
      const auto series = ParseUnsigned(t[1]);
      if (!series) {
        return Status::InvalidArgument("bad series '" + t[1] + "'");
      }
      request.series_id = static_cast<uint32_t>(*series);
    }
    return Request(QueryRequest(request));
  }
  if (verb == "q3") {
    if (t.size() > 3) return Usage("q3 <S|M|L|any> [len]");
    RecommendRequest request;
    if (t.size() > 1) {
      const std::string degree = Lower(t[1]);
      if (degree != "any" && degree != "all" && degree != "*") {
        if (degree != "s" && degree != "m" && degree != "l") {
          return Status::InvalidArgument("bad degree '" + t[1] +
                                         "' (expected S, M, L, or any)");
        }
        request.degree = ParseDegree(t[1]);
      }
    }
    if (t.size() > 2) {
      const auto length = ParseLengthToken(t[2]);
      if (!length) return Status::InvalidArgument("bad length '" + t[2] + "'");
      request.length = *length;
    }
    return Request(QueryRequest(request));
  }
  if (verb == "refine") {
    if (t.size() != 3) return Usage("refine <st'> <len|all>");
    const auto st = ParseDouble(t[1]);
    if (!st) return Status::InvalidArgument("bad threshold '" + t[1] + "'");
    const auto length = ParseLengthToken(t[2]);
    if (!length) return Status::InvalidArgument("bad length '" + t[2] + "'");
    return Request(QueryRequest(RefineThresholdRequest{*st, *length}));
  }

  return Status::InvalidArgument("unknown verb '" + t[0] + "' — try 'help'");
}

std::string RenderRequestLine(const QueryRequest& request) {
  std::string line;
  std::visit(
      [&](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, BestMatchRequest>) {
          line = "q1 " +
                 (req.length == 0 ? std::string("any")
                                  : std::to_string(req.length)) +
                 " " + Csv(req.query);
        } else if constexpr (std::is_same_v<T, KSimilarRequest>) {
          line = "q1k " + std::to_string(req.k) + " " +
                 (req.length == 0 ? std::string("any")
                                  : std::to_string(req.length)) +
                 " " + Csv(req.query);
        } else if constexpr (std::is_same_v<T, RangeWithinRequest>) {
          line = "q1r " + Dbl(req.st) + " " +
                 (req.length == 0 ? std::string("any")
                                  : std::to_string(req.length)) +
                 " " + Csv(req.query);
          if (!req.exact_distances) line += " bound";
        } else if constexpr (std::is_same_v<T, SeasonalRequest>) {
          line = "q2 " +
                 (req.series_id.has_value() ? std::to_string(*req.series_id)
                                            : std::string("all")) +
                 " " + std::to_string(req.length);
        } else if constexpr (std::is_same_v<T, RecommendRequest>) {
          line = std::string("q3 ") +
                 (req.degree.has_value() ? DegreeToken(*req.degree) : "any") +
                 " " +
                 (req.length == 0 ? std::string("any")
                                  : std::to_string(req.length));
        } else if constexpr (std::is_same_v<T, RefineThresholdRequest>) {
          line = "refine " + Dbl(req.st_prime) + " " +
                 (req.length == 0 ? std::string("all")
                                  : std::to_string(req.length));
        }
      },
      request);
  return line;
}

std::string RenderRequestLine(const QueryRequest& request,
                              const RequestAttrs& attrs) {
  std::string prefix;
  if (attrs.id != 0) prefix += "id=" + std::to_string(attrs.id) + " ";
  if (attrs.deadline_ms != 0) {
    prefix += "deadline_ms=" + std::to_string(attrs.deadline_ms) + " ";
  }
  if (attrs.progress) prefix += "progress=1 ";
  if (attrs.trace) prefix += "trace=1 ";
  if (!attrs.dataset.empty()) prefix += "dataset=" + attrs.dataset + " ";
  return prefix + RenderRequestLine(request);
}

std::string RenderAppendLine(const AppendRequest& request) {
  std::string line = "append " + Csv(request.values);
  if (request.label != 0) line += " " + std::to_string(request.label);
  return line;
}

std::string RenderCancelLine(uint64_t id) {
  return "cancel " + std::to_string(id);
}

namespace {

// Payload-line renderers, shared verbatim by final OK blocks and PART
// frames: a client renders partial and final rows with one code path
// because the bytes are the same.

std::string MatchLine(const QueryMatch& m) {
  return "match series=" + std::to_string(m.ref.series) +
         " start=" + std::to_string(m.ref.start) +
         " length=" + std::to_string(m.ref.length) +
         " distance=" + Dbl(m.distance) +
         " group=" + std::to_string(m.group_id) +
         " bound=" + (m.distance_is_upper_bound ? "1" : "0") + "\n";
}

std::string GroupLine(const std::vector<SubsequenceRef>& group) {
  std::string out = "group size=" + std::to_string(group.size()) + " refs=";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(group[i].series) + ":" +
           std::to_string(group[i].start) + ":" +
           std::to_string(group[i].length);
  }
  out += "\n";
  return out;
}

std::string RecommendLine(const Recommendation& rec) {
  return std::string("recommend degree=") + DegreeToken(rec.degree) +
         " low=" + Dbl(rec.st_low) + " high=" + Dbl(rec.st_high) + "\n";
}

std::string RefineLine(const RefineSummary& r) {
  return "refine length=" + std::to_string(r.length) +
         " before=" + std::to_string(r.groups_before) +
         " after=" + std::to_string(r.groups_after) + "\n";
}

/// The shared `id= seq= frac= snapshot= <count_key>=<n>` tail of every
/// PART header line.
std::string PartHeaderTail(uint64_t id, uint64_t seq, double work_fraction,
                           bool snapshot, const char* count_key,
                           size_t count) {
  char frac[16];
  std::snprintf(frac, sizeof(frac), "%.3f", work_fraction);
  return " id=" + std::to_string(id) + " seq=" + std::to_string(seq) +
         " frac=" + frac + " snapshot=" + (snapshot ? "1" : "0") + " " +
         count_key + "=" + std::to_string(count) + "\n";
}

}  // namespace

std::string RenderResponse(const QueryResponse& response, uint64_t id,
                           bool trace) {
  std::string out = "OK ";
  out += ToString(response.kind);
  if (id != 0) out += " id=" + std::to_string(id);
  // Header count + payload lines follow the typed payload; the visitor
  // is exhaustive by construction, so a new payload shape cannot ship
  // without a wire rendering.
  response.Visit(
      [&](const MatchResult& r) {
        out += " matches=" + std::to_string(r.matches.size());
      },
      [&](const SeasonalResult& r) {
        out += " groups=" + std::to_string(r.groups.size());
      },
      [&](const RecommendResult& r) {
        out += " rows=" + std::to_string(r.rows.size());
      },
      [&](const RefineResult& r) {
        out += " rows=" + std::to_string(r.refinements.size());
      });
  out += " latency_us=" +
         std::to_string(
             static_cast<long long>(std::llround(response.latency_seconds *
                                                 1e6)));
  if (response.partial) {
    out += std::string(" partial=1 interrupt=") + WireCode(response.interrupt);
  }
  out += "\n";

  const QueryStats& s = response.stats;
  char stats_line[192];
  std::snprintf(stats_line, sizeof(stats_line),
                "stats lengths_scanned=%" PRIu64 " reps_compared=%" PRIu64
                " reps_pruned=%" PRIu64 " members_compared=%" PRIu64
                " lemma2_admitted=%" PRIu64 "\n",
                s.lengths_scanned, s.reps_compared, s.reps_pruned,
                s.members_compared, s.members_admitted_by_lemma2);
  out += stats_line;

  if (trace) {
    // v5 `trace=1` rendering. Two lines, keys stable: stage timings in
    // integer microseconds, then the pruning cascade with the invariant
    // seen == kim_pruned + keogh_pruned + dtw_evaluated (dtw_evaluated
    // folds early-abandoned and completed DTWs together; the abandoned
    // share is broken out separately).
    const CascadeStats& c = s.cascade;
    const uint64_t evaluated = c.dtw_abandoned + c.dtw_completed;
    const double pruning_ratio =
        c.candidates == 0
            ? 0.0
            : 1.0 - static_cast<double>(evaluated) /
                        static_cast<double>(c.candidates);
    auto us = [](double seconds) {
      return static_cast<long long>(std::llround(seconds * 1e6));
    };
    char trace_line[256];
    std::snprintf(trace_line, sizeof(trace_line),
                  "trace stage queue_wait_us=%lld rep_scan_us=%lld"
                  " member_scan_us=%lld knn_us=%lld refine_us=%lld"
                  " exec_us=%lld\n",
                  us(s.queue_wait_seconds), us(s.rep_scan_seconds),
                  us(s.member_scan_seconds), us(s.knn_seconds),
                  us(s.refine_seconds), us(response.latency_seconds));
    out += trace_line;
    std::snprintf(trace_line, sizeof(trace_line),
                  "trace cascade seen=%" PRIu64 " kim_pruned=%" PRIu64
                  " keogh_pruned=%" PRIu64 " dtw_evaluated=%" PRIu64
                  " early_abandoned=%" PRIu64 " pruning_ratio=%.4f\n",
                  c.candidates, c.pruned_kim, c.pruned_keogh, evaluated,
                  c.dtw_abandoned, pruning_ratio);
    out += trace_line;
  }

  response.Visit(
      [&](const MatchResult& r) {
        for (const QueryMatch& m : r.matches) out += MatchLine(m);
      },
      [&](const SeasonalResult& r) {
        for (const auto& group : r.groups) out += GroupLine(group);
      },
      [&](const RecommendResult& r) {
        for (const Recommendation& rec : r.rows) out += RecommendLine(rec);
      },
      [&](const RefineResult& r) {
        for (const RefineSummary& summary : r.refinements) {
          out += RefineLine(summary);
        }
      });
  out += ".\n";
  return out;
}

std::string RenderPartBlock(QueryKind kind, uint64_t id, uint64_t seq,
                            double work_fraction, bool snapshot,
                            std::span<const QueryMatch> matches) {
  std::string out = std::string("PART ") + ToString(kind) +
                    PartHeaderTail(id, seq, work_fraction, snapshot,
                                   "matches", matches.size());
  for (const QueryMatch& m : matches) out += MatchLine(m);
  out += ".\n";
  return out;
}

std::string RenderPartBlock(uint64_t id, uint64_t seq, double work_fraction,
                            bool snapshot,
                            std::span<const std::vector<SubsequenceRef>>
                                groups) {
  std::string out = std::string("PART ") + kPartGroupToken +
                    PartHeaderTail(id, seq, work_fraction, snapshot,
                                   "groups", groups.size());
  for (const auto& group : groups) out += GroupLine(group);
  out += ".\n";
  return out;
}

std::string RenderPartBlock(uint64_t id, uint64_t seq, double work_fraction,
                            bool snapshot,
                            std::span<const Recommendation> rows) {
  std::string out = std::string("PART ") + kPartRecToken +
                    PartHeaderTail(id, seq, work_fraction, snapshot, "rows",
                                   rows.size());
  for (const Recommendation& rec : rows) out += RecommendLine(rec);
  out += ".\n";
  return out;
}

std::string RenderPartBlock(QueryKind kind, uint64_t id, uint64_t seq,
                            const ProgressEvent& event) {
  return std::visit(
      Overloaded{
          [&](const MatchProgress& p) {
            return RenderPartBlock(kind, id, seq, event.work_fraction,
                                   event.snapshot, p.matches);
          },
          [&](const GroupProgress& p) {
            return RenderPartBlock(id, seq, event.work_fraction,
                                   event.snapshot, p.groups);
          },
          [&](const RecommendProgress& p) {
            return RenderPartBlock(id, seq, event.work_fraction,
                                   event.snapshot, p.rows);
          },
      },
      event.payload);
}

const char* WireCode(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:              return "OK";
    case Status::Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Status::Code::kNotFound:        return "NOT_FOUND";
    case Status::Code::kIOError:         return "IO_ERROR";
    case Status::Code::kCorruption:      return "CORRUPTION";
    case Status::Code::kOutOfRange:      return "OUT_OF_RANGE";
    case Status::Code::kNotSupported:    return "NOT_SUPPORTED";
    case Status::Code::kCancelled:       return "CANCELLED";
    case Status::Code::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string RenderErrorBlock(const std::string& code,
                             const std::string& message, uint64_t id) {
  std::string out = "ERR " + code;
  if (id != 0) out += " id=" + std::to_string(id);
  if (!message.empty()) out += " " + OneLine(message);
  out += "\n.\n";
  return out;
}

std::string RenderError(const Status& status, uint64_t id) {
  return RenderErrorBlock(WireCode(status.code()), status.message(), id);
}

std::string Greeting() {
  return "ONEX/" + std::to_string(kWireVersion) + " ready\n";
}

std::string RenderHelp() {
  return
      "OK Help\n"
      "help q1 <len|any> <v1,v2,...>          best match\n"
      "help q1k <k> <len|any> <v1,v2,...>     k most similar\n"
      "help q1r <st> <len|any> <vals> [bound] all within st\n"
      "help q2 <series|all> <len>             seasonal similarity\n"
      "help q3 <S|M|L|any> [len]              threshold recommendation\n"
      "help refine <st'> <len|all>            refine similarity threshold\n"
      "help append <v1,v2,...> [label]        append series (WAL'd when durable)\n"
      "help flush                             checkpoint the bound dataset\n"
      "help use <dataset> / list              select / list datasets\n"
      "help stats / ping / quit               server metrics, liveness\n"
      "help metrics                           Prometheus text exposition (v5)\n"
      "help inspect                            live in-flight query table (v6)\n"
      "help health                             liveness/readiness probe (v6)\n"
      "help cancel <id>                       abort the in-flight query <id>\n"
      "help id=<n> deadline_ms=<n> progress=1 query attribute prefix (v3):\n"
      "help    tag/multiplex, bound, and stream partial results, e.g.\n"
      "help    id=7 deadline_ms=250 progress=1 q1r 0.3 any 0.1,0.5,0.9\n"
      "help    (v4: q2 streams PART GROUP, q3 streams PART REC frames)\n"
      "help trace=1                           append stage timings and pruning-\n"
      "help    cascade counters (TRACE lines) to the final response (v5)\n"
      "help cancel <session>/<id>             admin: cancel another session's\n"
      "help    query (session numbers from INSPECT) (v7)\n"
      "help manifest                          consistent-cut artifact manifest (v7)\n"
      "help fetch <dataset> <file>            stream one manifest artifact as\n"
      "help    CRC-framed binary chunks (v7)\n"
      "help dataset=<name>                    per-query dataset override (v8);\n"
      "help    through onex_router a shard-set like dataset=sales-* scatters\n"
      "help    the query and merges the answers\n"
      ".\n";
}

std::string RenderManifestBlock(const storage::Manifest& manifest) {
  std::string out =
      "OK Manifest version=" + std::to_string(manifest.version) +
      " created_unix_s=" + std::to_string(manifest.created_unix_s) +
      " datasets=" + std::to_string(manifest.entries.size()) + "\n";
  for (const storage::ManifestEntry& entry : manifest.entries) {
    out += "dataset name=" + entry.name +
           " series=" + std::to_string(entry.series) +
           " live_series=" + std::to_string(entry.live_series) +
           " base=" + entry.base_file +
           " base_bytes=" + std::to_string(entry.base_bytes) +
           " base_crc32=" + std::to_string(entry.base_crc) +
           " wal=" + entry.wal_file +
           " wal_bytes=" + std::to_string(entry.wal_bytes) +
           " deltas=" + std::to_string(entry.deltas.size()) + "\n";
    for (size_t k = 0; k < entry.deltas.size(); ++k) {
      const auto& d = entry.deltas[k];
      out += "delta dataset=" + entry.name +
             " k=" + std::to_string(k + 1) + " file=" + d.file +
             " bytes=" + std::to_string(d.bytes) +
             " crc32=" + std::to_string(d.crc) + "\n";
    }
  }
  out += ".\n";
  return out;
}

Result<storage::Manifest> ParseManifestPayload(
    const std::vector<std::string>& payload,
    const std::map<std::string, std::string>& header) {
  // Every lookup is strict: a follower that guessed a missing size or
  // CRC would fetch artifacts it cannot verify.
  auto need = [](const std::map<std::string, std::string>& kv,
                 const char* key) -> Result<std::string> {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      return Status::InvalidArgument(std::string("manifest line misses '") +
                                     key + "='");
    }
    return it->second;
  };
  auto need_u64 = [&need](const std::map<std::string, std::string>& kv,
                          const char* key) -> Result<uint64_t> {
    auto raw = need(kv, key);
    if (!raw.ok()) return raw.status();
    const auto v = ParseUnsigned(raw.value());
    if (!v) {
      return Status::InvalidArgument(std::string("bad manifest ") + key +
                                     " '" + raw.value() + "'");
    }
    return *v;
  };

  storage::Manifest manifest;
  auto version = need_u64(header, "version");
  if (!version.ok()) return version.status();
  if (version.value() != storage::kManifestFormatVersion) {
    return Status::InvalidArgument(
        "unsupported manifest version " + std::to_string(version.value()));
  }
  manifest.version = static_cast<uint32_t>(version.value());
  auto created = need_u64(header, "created_unix_s");
  if (!created.ok()) return created.status();
  manifest.created_unix_s = created.value();

  for (const std::string& line : payload) {
    const auto kv = ParseKeyValues(line);
    if (line.rfind("dataset ", 0) == 0) {
      storage::ManifestEntry entry;
      auto name = need(kv, "name");
      if (!name.ok()) return name.status();
      entry.name = name.value();
      auto series = need_u64(kv, "series");
      if (!series.ok()) return series.status();
      entry.series = series.value();
      auto live = need_u64(kv, "live_series");
      if (!live.ok()) return live.status();
      entry.live_series = live.value();
      auto base = need(kv, "base");
      if (!base.ok()) return base.status();
      entry.base_file = base.value();
      auto base_bytes = need_u64(kv, "base_bytes");
      if (!base_bytes.ok()) return base_bytes.status();
      entry.base_bytes = base_bytes.value();
      auto base_crc = need_u64(kv, "base_crc32");
      if (!base_crc.ok()) return base_crc.status();
      entry.base_crc = static_cast<uint32_t>(base_crc.value());
      auto wal = need(kv, "wal");
      if (!wal.ok()) return wal.status();
      entry.wal_file = wal.value();
      auto wal_bytes = need_u64(kv, "wal_bytes");
      if (!wal_bytes.ok()) return wal_bytes.status();
      entry.wal_bytes = wal_bytes.value();
      manifest.entries.push_back(std::move(entry));
    } else if (line.rfind("delta ", 0) == 0) {
      auto dataset = need(kv, "dataset");
      if (!dataset.ok()) return dataset.status();
      storage::ManifestEntry* owner = nullptr;
      for (auto& entry : manifest.entries) {
        if (entry.name == dataset.value()) owner = &entry;
      }
      if (owner == nullptr) {
        return Status::InvalidArgument("delta line for unknown dataset '" +
                                       dataset.value() + "'");
      }
      storage::ManifestEntry::DeltaRef ref;
      auto file = need(kv, "file");
      if (!file.ok()) return file.status();
      ref.file = file.value();
      auto bytes = need_u64(kv, "bytes");
      if (!bytes.ok()) return bytes.status();
      ref.bytes = bytes.value();
      auto crc = need_u64(kv, "crc32");
      if (!crc.ok()) return crc.status();
      ref.crc = static_cast<uint32_t>(crc.value());
      auto k = need_u64(kv, "k");
      if (!k.ok()) return k.status();
      if (k.value() != owner->deltas.size() + 1) {
        return Status::InvalidArgument(
            "delta chain for '" + owner->name + "' is out of order (got k=" +
            std::to_string(k.value()) + ", expected " +
            std::to_string(owner->deltas.size() + 1) + ")");
      }
      owner->deltas.push_back(std::move(ref));
    } else {
      return Status::InvalidArgument("unknown manifest payload line: '" +
                                     line + "'");
    }
  }
  return manifest;
}

std::map<std::string, std::string> ParseKeyValues(const std::string& line) {
  std::map<std::string, std::string> fields;
  for (const std::string& token : Tokenize(line)) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    fields[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return fields;
}

uint64_t WireResponse::id() const {
  const auto it = header.find("id");
  if (it == header.end()) return 0;
  char* end = nullptr;
  const uint64_t v = std::strtoull(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : 0;
}

bool WireResponse::partial() const {
  const auto it = header.find("partial");
  return it != header.end() && it->second == "1";
}

PayloadShape WireResponse::part_shape() const {
  if (kind == kPartGroupToken) return PayloadShape::kGroup;
  if (kind == kPartRecToken) return PayloadShape::kRecommend;
  return PayloadShape::kMatch;
}

Result<WireResponse> ParseResponseBlock(
    const std::vector<std::string>& lines) {
  if (lines.empty()) return Status::InvalidArgument("empty reply block");
  WireResponse response;
  const std::string& header = lines[0];
  const auto tokens = Tokenize(header);
  if (tokens.empty()) return Status::InvalidArgument("blank reply header");
  if (tokens[0] == "OK" || tokens[0] == "PART") {
    response.ok = true;
    response.part = tokens[0][0] == 'P';
    if (tokens.size() > 1) response.kind = tokens[1];
    response.header = ParseKeyValues(header);
  } else if (tokens[0] == "ERR") {
    response.ok = false;
    if (tokens.size() > 1) {
      response.code = tokens[1];
      // A v3 tagged error carries `id=<n>` between code and message;
      // lift it into the header map and keep it out of the message.
      size_t message_at = header.find(tokens[1]) + tokens[1].size();
      if (tokens.size() > 2 && tokens[2].rfind("id=", 0) == 0) {
        response.header = ParseKeyValues(tokens[2]);
        message_at = header.find(tokens[2], message_at) + tokens[2].size();
      }
      if (message_at < header.size()) {
        response.message = header.substr(message_at + 1);
      }
    }
  } else {
    return Status::InvalidArgument(
        "reply header is none of OK/PART/ERR: '" + header + "'");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i] == ".") break;
    response.payload.push_back(lines[i]);
  }
  return response;
}

}  // namespace server
}  // namespace onex

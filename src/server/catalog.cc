#include "server/catalog.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <utility>

#include "storage/manifest.h"
#include "util/logging.h"

namespace onex {
namespace server {

namespace fs = std::filesystem;

namespace {

constexpr const char* kBaseExtension = ".onex";

/// An entry is idle when no session holds its engine. The catalog's own
/// references are `engine` plus, in durable mode, `durable` (they share
/// one control block), so "idle" is use_count == that baseline.
bool IsIdle(const std::shared_ptr<Engine>& engine, bool durable) {
  return engine.use_count() <= (durable ? 2 : 1);
}

}  // namespace

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {
  if (options_.max_open_engines == 0) options_.max_open_engines = 1;
}

std::string Catalog::PathFor(const std::string& name) const {
  if (options_.data_dir.empty()) return "";
  return (fs::path(options_.data_dir) / (name + kBaseExtension)).string();
}

void Catalog::Register(const std::string& name, Engine engine) {
  Entry fresh;
  fresh.pinned = true;
  if (options_.durable && !options_.data_dir.empty()) {
    // Existing durable data wins over the offered engine: Create would
    // truncate the snapshot + WAL pair, silently destroying every
    // append acknowledged in earlier runs — the exact loss class this
    // subsystem exists to close.
    auto durable =
        fs::exists(PathFor(name))
            ? storage::DurableEngine::Open(options_.data_dir, name,
                                           options_.storage,
                                           options_.query_options)
            : storage::DurableEngine::Create(options_.data_dir, name,
                                             std::move(engine),
                                             options_.storage);
    if (durable.ok()) {
      fresh.durable = std::move(durable).value();
      fresh.engine = fresh.durable->engine();
    } else {
      ONEX_LOG_WARN << "catalog: could not make '" << name
                    << "' durable: " << durable.status().ToString()
                    << " — dropping the registration (a durable catalog "
                       "must not serve datasets it cannot recover)";
      return;
    }
  } else {
    if (options_.durable) {
      ONEX_LOG_WARN << "catalog: durable mode without a data_dir; '"
                    << name << "' is memory-only";
    }
    fresh.engine = std::make_shared<Engine>(std::move(engine));
  }

  MutexLock lock(mutex_);
  fresh.last_used = ++tick_;
  for (auto& [entry_name, entry] : entries_) {
    if (entry_name == name) {
      entry = std::move(fresh);
      EnforceCapLocked(&entry);
      return;
    }
  }
  entries_.emplace_back(name, std::move(fresh));
  EnforceCapLocked(&entries_.back().second);
}

Result<Catalog::Entry*> Catalog::ResolveLocked(const std::string& name) {
  Entry* entry = nullptr;
  for (auto& [entry_name, e] : entries_) {
    if (entry_name == name) {
      entry = &e;
      break;
    }
  }
  if (entry != nullptr && entry->engine != nullptr) {
    entry->last_used = ++tick_;
    ++stats_.hits;
    return entry;
  }

  // Lazy (re)open from disk.
  const std::string path = PathFor(name);
  if (path.empty() || !fs::exists(path)) {
    return Status::NotFound("dataset '" + name + "' is not in the catalog" +
                            (options_.data_dir.empty()
                                 ? ""
                                 : " (looked for " + path + ")"));
  }
  std::shared_ptr<storage::DurableEngine> durable;
  std::shared_ptr<Engine> engine;
  if (options_.durable) {
    auto opened = storage::DurableEngine::Open(
        options_.data_dir, name, options_.storage, options_.query_options);
    if (!opened.ok()) return opened.status();
    durable = std::move(opened).value();
    engine = durable->engine();
  } else {
    auto opened = Engine::Open(path, options_.query_options);
    if (!opened.ok()) return opened.status();
    engine = std::make_shared<Engine>(std::move(opened).value());
  }
  ++stats_.lazy_opens;
  if (entry == nullptr) {
    entries_.emplace_back(name, Entry{});
    entry = &entries_.back().second;
  }
  entry->engine = std::move(engine);
  entry->durable = std::move(durable);
  entry->pinned = false;
  entry->dirty = false;
  entry->last_used = ++tick_;
  EnforceCapLocked(entry);
  return entry;
}

Result<std::shared_ptr<const Engine>> Catalog::Acquire(
    const std::string& name) {
  MutexLock lock(mutex_);
  auto resolved = ResolveLocked(name);
  if (!resolved.ok()) return resolved.status();
  return std::shared_ptr<const Engine>(resolved.value()->engine);
}

Result<AppendOutcome> Catalog::Append(const std::string& name,
                                      TimeSeries series) {
  if (options_.read_only) {
    return Status::NotSupported(
        "catalog is read-only (follower mode): appends go to the leader");
  }
  // Resolve under the lock, append outside it: maintenance (DTW against
  // every group) and the WAL fsync must not stall other sessions'
  // Acquires.
  std::shared_ptr<storage::DurableEngine> durable;
  std::shared_ptr<Engine> engine;
  {
    MutexLock lock(mutex_);
    auto resolved = ResolveLocked(name);
    if (!resolved.ok()) return resolved.status();
    durable = resolved.value()->durable;
    engine = resolved.value()->engine;
  }

  // The index is captured inside AppendSeries under the writer lock:
  // reading num_series() afterwards would race a concurrent append and
  // report someone else's index back to this client.
  size_t index = 0;
  const Status appended = engine->AppendSeries(std::move(series), &index);
  if (!appended.ok()) return appended;

  AppendOutcome outcome;
  outcome.series = index;
  outcome.total = index + 1;
  outcome.durable = durable != nullptr;
  {
    MutexLock lock(mutex_);
    ++stats_.appends;
    for (auto& [entry_name, entry] : entries_) {
      if (entry_name == name) {
        entry.dirty = true;
        ++entry.mutations;
        break;
      }
    }
  }
  return outcome;
}

Status Catalog::Flush(const std::string& name) {
  if (options_.read_only) {
    return Status::NotSupported(
        "catalog is read-only (follower mode): nothing local to flush");
  }
  std::shared_ptr<storage::DurableEngine> durable;
  std::shared_ptr<Engine> engine;
  uint64_t mutations_before = 0;
  {
    MutexLock lock(mutex_);
    auto resolved = ResolveLocked(name);
    if (!resolved.ok()) return resolved.status();
    durable = resolved.value()->durable;
    engine = resolved.value()->engine;
    mutations_before = resolved.value()->mutations;
  }

  Status flushed;
  if (durable != nullptr) {
    flushed = durable->Checkpoint();
  } else {
    const std::string path = PathFor(name);
    if (path.empty()) {
      return Status::NotSupported(
          "dataset '" + name +
          "' has no data directory to flush to (start the catalog with "
          "one, or durable mode)");
    }
    // Write-temp, fsync, rename — like the durable checkpoint: a crash
    // or ENOSPC mid-save must not destroy the only good on-disk copy,
    // and the OK must mean the bytes actually reached stable storage.
    const std::string tmp = path + ".tmp";
    flushed = engine->Save(tmp);
    if (flushed.ok()) flushed = storage::SyncFile(tmp);
    if (flushed.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
      flushed = Status::IOError("rename '" + tmp + "' -> '" + path +
                                "': " + std::strerror(errno));
    }
    // The rename's directory entry must be durable too, or a crash
    // could roll back to the pre-flush snapshot after we reported OK.
    if (flushed.ok()) flushed = storage::SyncDir(options_.data_dir);
  }
  if (!flushed.ok()) return flushed;
  {
    MutexLock lock(mutex_);
    ++stats_.flushes;
    for (auto& [entry_name, entry] : entries_) {
      if (entry_name == name) {
        // An append that landed while the snapshot was being written is
        // NOT in it — the entry must stay dirty or eviction would
        // silently discard that append.
        if (entry.mutations == mutations_before) entry.dirty = false;
        break;
      }
    }
    // A refused-dirty entry may have left the catalog over cap; now
    // that it is clean, the LRU can catch up.
    EnforceCapLocked(nullptr);
  }
  return Status::OK();
}

size_t Catalog::FlushAll() {
  if (options_.read_only) return 0;  // Nothing here is ever dirty.
  // Snapshot the dirty resident names under the lock, flush outside it
  // (Flush resolves again by name; an entry that went clean or away in
  // between is simply a cheap no-op flush).
  std::vector<std::string> dirty;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, entry] : entries_) {
      if (entry.engine != nullptr && entry.dirty) dirty.push_back(name);
    }
  }
  size_t flushed = 0;
  for (const std::string& name : dirty) {
    const Status status = Flush(name);
    if (status.ok()) {
      ++flushed;
    } else {
      ONEX_LOG_WARN << "catalog: shutdown flush of '" << name
                    << "' failed: " << status.ToString();
    }
  }
  return flushed;
}

Result<storage::Manifest> Catalog::CheckpointAll() {
  if (options_.read_only) {
    return Status::NotSupported(
        "catalog is read-only (follower mode): cuts come from the leader");
  }
  if (!options_.durable || options_.data_dir.empty()) {
    return Status::NotSupported(
        "CheckpointAll requires durable mode with a data directory");
  }

  // Every durable dataset, registered or merely on disk. List() snapshots
  // both; new datasets registered after this point miss THIS manifest and
  // catch the next — the cut is over a name set, not a frozen world.
  std::vector<std::string> names;
  for (const CatalogEntryInfo& row : List()) names.push_back(row.name);

  storage::Manifest manifest;
  manifest.created_unix_s = static_cast<uint64_t>(std::time(nullptr));
  for (const std::string& name : names) {
    std::shared_ptr<storage::DurableEngine> durable;
    std::shared_ptr<Engine> engine;
    uint64_t mutations_before = 0;
    {
      MutexLock lock(mutex_);
      auto resolved = ResolveLocked(name);
      if (!resolved.ok()) return resolved.status();
      durable = resolved.value()->durable;
      engine = resolved.value()->engine;
      mutations_before = resolved.value()->mutations;
    }
    if (durable == nullptr) {
      // Only reachable for a pinned memory-only engine in a catalog that
      // lost its data_dir — it has no on-disk artifacts to name.
      ONEX_LOG_WARN << "catalog: '" << name
                    << "' is not durable; leaving it out of the manifest";
      continue;
    }
    // Abort on failure: a manifest naming a cut that was never taken
    // would send followers chasing artifacts that do not exist. The
    // previously published manifest stays valid.
    const Status cut = durable->Checkpoint();
    if (!cut.ok()) return cut;
    {
      MutexLock lock(mutex_);
      ++stats_.flushes;
      for (auto& [entry_name, entry] : entries_) {
        if (entry_name == name) {
          if (entry.mutations == mutations_before) entry.dirty = false;
          break;
        }
      }
    }

    const storage::ChainStatus chain = durable->chain_status();
    storage::ManifestEntry entry;
    entry.name = name;
    entry.series = chain.wal_sequence_base;
    entry.live_series = engine->num_series();
    entry.base_file = fs::path(chain.base_path).filename().string();
    entry.base_bytes = chain.base_bytes;
    entry.base_crc = chain.base_crc;
    for (const storage::ChainLink& link : chain.deltas) {
      entry.deltas.push_back({fs::path(link.path).filename().string(),
                              link.bytes, link.new_crc});
    }
    const std::string wal_path =
        storage::WalPathFor(options_.data_dir, name);
    entry.wal_file = fs::path(wal_path).filename().string();
    std::error_code ec;
    const auto wal_size = fs::file_size(wal_path, ec);
    entry.wal_bytes = ec ? 0 : static_cast<uint64_t>(wal_size);
    manifest.entries.push_back(std::move(entry));
  }

  const Status written =
      storage::WriteManifest(manifest, options_.data_dir);
  if (!written.ok()) return written;
  return manifest;
}

bool Catalog::Invalidate(const std::string& name) {
  MutexLock lock(mutex_);
  for (auto& [entry_name, entry] : entries_) {
    if (entry_name != name) continue;
    if (entry.engine == nullptr) return false;
    if (entry.dirty && entry.durable == nullptr) {
      ONEX_LOG_WARN << "catalog: refusing to invalidate '" << name
                    << "': unsaved appends exist in memory only";
      return false;
    }
    // Sessions holding the old engine keep serving its state; the next
    // Acquire re-opens whatever is on disk now.
    entry.engine.reset();
    entry.durable.reset();
    entry.dirty = false;
    entry.pinned = false;
    ++stats_.evictions;
    return true;
  }
  return false;
}

void Catalog::EnforceCapLocked(const Entry* keep) {
  size_t open = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.engine != nullptr) ++open;
  }
  if (open <= options_.max_open_engines) return;

  // Evictable: resident, reopenable, and idle (the catalog holds the
  // only references — dropping a shared engine frees no memory).
  // LRU order, oldest first.
  std::vector<std::pair<std::string, Entry>*> candidates;
  for (auto& named : entries_) {
    const Entry& entry = named.second;
    if (&entry == keep) continue;
    if (entry.engine == nullptr || entry.pinned) continue;
    if (!IsIdle(entry.engine, entry.durable != nullptr)) continue;
    candidates.push_back(&named);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto* a, const auto* b) {
              return a->second.last_used < b->second.last_used;
            });

  for (auto* named : candidates) {
    if (open <= options_.max_open_engines) break;
    Entry& victim = named->second;
    if (victim.dirty) {
      if (victim.durable != nullptr) {
        // Unsaved appends are WAL-protected, but checkpointing first
        // makes the next open replay-free and bounds WAL growth.
        const Status checkpointed = victim.durable->Checkpoint();
        if (!checkpointed.ok()) {
          ONEX_LOG_WARN << "catalog: dirty engine '" << named->first
                        << "' failed its pre-eviction checkpoint ("
                        << checkpointed.ToString()
                        << "); refusing to evict";
          ++stats_.refused_evictions;
          continue;
        }
        ++stats_.flush_evictions;
      } else {
        // Non-durable dirty data exists in memory ONLY. Eviction would
        // silently discard acknowledged appends — refuse, loudly.
        ONEX_LOG_WARN << "catalog: engine '" << named->first
                      << "' has unsaved appends and no WAL; refusing to "
                         "evict (send FLUSH or enable durable mode)";
        ++stats_.refused_evictions;
        continue;
      }
      victim.dirty = false;
    }
    victim.engine.reset();
    victim.durable.reset();
    ++stats_.evictions;
    --open;
  }
}

std::vector<CatalogEntryInfo> Catalog::List() const {
  // Snapshot the registry under the lock, then do the directory scan
  // (potentially slow I/O) outside it so LIST never stalls Acquire.
  std::vector<CatalogEntryInfo> rows;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, entry] : entries_) {
      rows.push_back({name, entry.engine != nullptr, entry.pinned,
                      entry.durable != nullptr, entry.dirty});
    }
  }
  if (!options_.data_dir.empty()) {
    std::error_code ec;
    for (const auto& file :
         fs::directory_iterator(options_.data_dir, ec)) {
      if (!file.is_regular_file(ec)) continue;
      const fs::path& p = file.path();
      if (p.extension() != kBaseExtension) continue;
      const std::string name = p.stem().string();
      const bool known =
          std::any_of(rows.begin(), rows.end(),
                      [&](const CatalogEntryInfo& r) { return r.name == name; });
      if (!known) rows.push_back({name, false, false, false, false});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const CatalogEntryInfo& a, const CatalogEntryInfo& b) {
              return a.name < b.name;
            });
  return rows;
}

CatalogStats Catalog::stats() const {
  MutexLock lock(mutex_);
  CatalogStats out = stats_;
  out.resident = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.engine != nullptr) ++out.resident;
  }
  return out;
}

storage::StorageStats Catalog::DurableStats() const {
  // Snapshot the durable handles under the mutex, read their (atomic)
  // counters outside it — per-entry stats() never takes a lock, but
  // keeping the registry section minimal is free here.
  std::vector<std::shared_ptr<storage::DurableEngine>> durables;
  {
    MutexLock lock(mutex_);
    for (const auto& [name, entry] : entries_) {
      if (entry.durable != nullptr) durables.push_back(entry.durable);
    }
  }
  storage::StorageStats out;
  for (const auto& durable : durables) {
    const storage::StorageStats one = durable->stats();
    out.appends += one.appends;
    out.wal_records += one.wal_records;
    out.wal_bytes += one.wal_bytes;
    out.checkpoints += one.checkpoints;
    // Most recent completion across entries (smallest age) and the
    // worst-case stall (largest duration).
    if (one.checkpoint_age_seconds >= 0.0 &&
        (out.checkpoint_age_seconds < 0.0 ||
         one.checkpoint_age_seconds < out.checkpoint_age_seconds)) {
      out.checkpoint_age_seconds = one.checkpoint_age_seconds;
    }
    out.checkpoint_last_duration_seconds =
        std::max(out.checkpoint_last_duration_seconds,
                 one.checkpoint_last_duration_seconds);
    // One unwritable WAL anywhere makes the node unready.
    out.wal_write_failed = out.wal_write_failed || one.wal_write_failed;
    // Incremental-checkpoint roll-up: totals sum; chain length and the
    // newest delta's size take the max (the worst case is what a
    // dashboard alert keys on); degraded recovery is sticky anywhere.
    out.delta_checkpoints += one.delta_checkpoints;
    out.chain_compactions += one.chain_compactions;
    out.delta_chain_bytes += one.delta_chain_bytes;
    out.delta_chain_length =
        std::max(out.delta_chain_length, one.delta_chain_length);
    out.last_delta_bytes =
        std::max(out.last_delta_bytes, one.last_delta_bytes);
    out.checkpoint_lock_hold_seconds =
        std::max(out.checkpoint_lock_hold_seconds,
                 one.checkpoint_lock_hold_seconds);
    out.degraded_recovery = out.degraded_recovery || one.degraded_recovery;
    out.gc_reclaimed_bytes += one.gc_reclaimed_bytes;
    out.gc_pending_artifacts += one.gc_pending_artifacts;
  }
  return out;
}

}  // namespace server
}  // namespace onex

#include "server/catalog.h"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace onex {
namespace server {

namespace fs = std::filesystem;

namespace {
constexpr const char* kBaseExtension = ".onex";
}  // namespace

Catalog::Catalog(CatalogOptions options) : options_(std::move(options)) {
  if (options_.max_open_engines == 0) options_.max_open_engines = 1;
}

std::string Catalog::PathFor(const std::string& name) const {
  if (options_.data_dir.empty()) return "";
  return (fs::path(options_.data_dir) / (name + kBaseExtension)).string();
}

void Catalog::Register(const std::string& name, Engine engine) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto shared = std::make_shared<const Engine>(std::move(engine));
  for (auto& [entry_name, entry] : entries_) {
    if (entry_name == name) {
      entry.engine = std::move(shared);
      entry.pinned = true;
      entry.last_used = ++tick_;
      EnforceCapLocked();
      return;
    }
  }
  entries_.emplace_back(name, Entry{std::move(shared), /*pinned=*/true,
                                    ++tick_});
  EnforceCapLocked();
}

Result<std::shared_ptr<const Engine>> Catalog::Acquire(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = nullptr;
  for (auto& [entry_name, e] : entries_) {
    if (entry_name == name) {
      entry = &e;
      break;
    }
  }
  if (entry != nullptr && entry->engine != nullptr) {
    entry->last_used = ++tick_;
    ++stats_.hits;
    return entry->engine;
  }

  // Lazy (re)open from disk.
  const std::string path = PathFor(name);
  if (path.empty() || !fs::exists(path)) {
    return Status::NotFound("dataset '" + name + "' is not in the catalog" +
                            (options_.data_dir.empty()
                                 ? ""
                                 : " (looked for " + path + ")"));
  }
  auto opened = Engine::Open(path, options_.query_options);
  if (!opened.ok()) return opened.status();
  auto shared = std::make_shared<const Engine>(std::move(opened).value());
  ++stats_.lazy_opens;
  if (entry != nullptr) {
    entry->engine = shared;
    entry->last_used = ++tick_;
  } else {
    entries_.emplace_back(name, Entry{shared, /*pinned=*/false, ++tick_});
  }
  EnforceCapLocked();
  return shared;
}

void Catalog::EnforceCapLocked() {
  auto resident = [&] {
    size_t n = 0;
    for (const auto& [name, entry] : entries_) {
      if (entry.engine != nullptr) ++n;
    }
    return n;
  };
  size_t open = resident();
  while (open > options_.max_open_engines) {
    Entry* victim = nullptr;
    for (auto& [name, entry] : entries_) {
      // Evictable: resident, reopenable, and idle (the catalog holds the
      // only reference — dropping a shared engine frees no memory).
      if (entry.engine == nullptr || entry.pinned) continue;
      if (entry.engine.use_count() > 1) continue;
      if (victim == nullptr || entry.last_used < victim->last_used) {
        victim = &entry;
      }
    }
    if (victim == nullptr) break;  // Everything in use or pinned.
    victim->engine.reset();
    ++stats_.evictions;
    --open;
  }
}

std::vector<CatalogEntryInfo> Catalog::List() const {
  // Snapshot the registry under the lock, then do the directory scan
  // (potentially slow I/O) outside it so LIST never stalls Acquire.
  std::vector<CatalogEntryInfo> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, entry] : entries_) {
      rows.push_back({name, entry.engine != nullptr, entry.pinned});
    }
  }
  if (!options_.data_dir.empty()) {
    std::error_code ec;
    for (const auto& file :
         fs::directory_iterator(options_.data_dir, ec)) {
      if (!file.is_regular_file(ec)) continue;
      const fs::path& p = file.path();
      if (p.extension() != kBaseExtension) continue;
      const std::string name = p.stem().string();
      const bool known =
          std::any_of(rows.begin(), rows.end(),
                      [&](const CatalogEntryInfo& r) { return r.name == name; });
      if (!known) rows.push_back({name, false, false});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const CatalogEntryInfo& a, const CatalogEntryInfo& b) {
              return a.name < b.name;
            });
  return rows;
}

CatalogStats Catalog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CatalogStats out = stats_;
  out.resident = 0;
  for (const auto& [name, entry] : entries_) {
    if (entry.engine != nullptr) ++out.resident;
  }
  return out;
}

}  // namespace server
}  // namespace onex

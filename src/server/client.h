// Copyright 2026 The ONEX Reproduction Authors.
// Minimal blocking client for the ONEX wire protocol: connect, send one
// request line, read the reply block. Used by the loopback server tests
// and bench/server_throughput.cc, and the dial-out side future
// replication/sharding PRs build on. One Client is one session (one
// socket); it is not thread-safe — give each client thread its own.

#ifndef ONEX_SERVER_CLIENT_H_
#define ONEX_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/engine.h"
#include "server/protocol.h"
#include "util/status.h"

namespace onex {
namespace server {

class SocketLineReader;

class Client {
 public:
  /// Connects and consumes the greeting line ("ONEX/<v> ready").
  /// IOError when the server is unreachable.
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request line (newline appended) and reads the full reply
  /// block. The returned WireResponse may itself be an ERR reply —
  /// that's a successful round trip; IOError only on transport failure.
  Result<WireResponse> Roundtrip(const std::string& line);

  /// Typed convenience: RenderRequestLine + Roundtrip.
  Result<WireResponse> Execute(const QueryRequest& request);

  /// The greeting line received at connect time (without newline).
  const std::string& greeting() const { return greeting_; }

  void Close();

 private:
  Client() = default;

  /// Reads one '\n'-terminated line into *line (CR stripped); shares
  /// the server's SocketLineReader so framing rules cannot diverge.
  Status ReadLine(std::string* line);

  int fd_ = -1;
  std::unique_ptr<SocketLineReader> reader_;
  std::string greeting_;
};

}  // namespace server
}  // namespace onex

#endif  // ONEX_SERVER_CLIENT_H_

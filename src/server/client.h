// Copyright 2026 The ONEX Reproduction Authors.
// Client for the ONEX wire protocol. Two modes, one socket:
//
//   BLOCKING (v2): Roundtrip()/Execute() — send one line, read one
//   reply block. Zero threads; what the loopback tests and the
//   throughput bench use.
//
//   ASYNC (v3): Submit() tags the request with an id and returns a
//   Handle immediately; a demultiplexer thread (started lazily on the
//   first Submit) reads blocks off the socket and routes them by id —
//   PART progress frames to the handle's OnProgress callback, the final
//   tagged reply to Handle::Wait(), untagged blocks to whichever
//   Roundtrip is waiting. Handle::Cancel() sends `cancel <id>` without
//   waiting for the query, which is the whole point. Several queries
//   can be in flight at once (pipelined, answered out of order).
//
// One Client is one session (one socket). Blocking mode is not
// thread-safe; once the demux is running, Submit/Roundtrip/Cancel may
// be called from any thread.

#ifndef ONEX_SERVER_CLIENT_H_
#define ONEX_SERVER_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "api/engine.h"
#include "server/protocol.h"
#include "storage/manifest.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace onex {
namespace server {

class SocketLineReader;

/// Connection behavior knobs. The defaults reproduce the historical
/// behavior exactly (blocking connect, no IO timeout, no reconnect).
struct ClientOptions {
  /// Bound on ::connect(); 0 = OS default (minutes on a black-holed
  /// route — the router always sets this).
  uint64_t connect_timeout_ms = 0;
  /// Bound on blocking-mode reads and on every send (SO_RCVTIMEO /
  /// SO_SNDTIMEO). The async demux read is exempt on purpose: an idle
  /// multiplexed session legitimately sits quiet between replies, so
  /// in-flight queries are bounded by their deadline budgets instead.
  uint64_t io_timeout_ms = 0;
  /// Async mode only: when the demux socket dies, dial the same
  /// host:port again and re-submit every UNANSWERED tagged query with
  /// its original id and attribute line, verbatim. Tagged queries are
  /// read-only (the attribute grammar rejects attrs on append/flush),
  /// so the re-submit is idempotent; blocking Roundtrip waiters are
  /// failed instead — an untagged line may be a write whose fate on
  /// the dead connection is unknowable. Progress streams restart from
  /// seq 0 on the new connection (at-least-once for PART frames; the
  /// final block is delivered exactly once).
  bool auto_reconnect = false;
  /// Dial attempts per outage before the session is declared dead.
  int reconnect_attempts = 3;
  /// Flat pause between dial attempts.
  uint64_t reconnect_backoff_ms = 100;
};

class Client {
 public:
  /// Called with each PART frame of one query, on the demux thread.
  /// Frames are typed per payload shape (v4): use
  /// WireResponse::part_shape() to tell match / GROUP / REC frames
  /// apart; payload rows are byte-identical to final-block rows.
  using ProgressCallback = std::function<void(const WireResponse&)>;

  struct SubmitOptions {
    /// DEADLINE_MS attribute; 0 = unbounded.
    uint64_t deadline_ms = 0;
    /// When set, the request asks for PART frames (progress=1) and the
    /// callback receives them. Prefer passing it here over
    /// Handle::OnProgress — frames can arrive before OnProgress runs.
    ProgressCallback on_progress;
    /// v8 DATASET attribute: run against this dataset instead of the
    /// session's bound one (empty = bound). What the router's upstream
    /// legs use — one multiplexed session serves every dataset.
    std::string dataset;
    /// v5 TRACE attribute: append TRACE lines to the final block.
    bool trace = false;
  };

  /// One in-flight tagged query. Cheap to copy; all copies refer to the
  /// same query. Outliving the Client is safe: the handle then reports
  /// the transport as closed.
  class Handle {
   public:
    Handle() = default;

    /// Blocks until the final reply block for this id (which may be an
    /// application-level ERR — that is a successful round trip, same as
    /// Roundtrip). IOError on transport failure.
    Result<WireResponse> Wait();

    /// Cancels the query. OK: the cancel reached a still-running query
    /// (sent `cancel <id>`, acknowledged). NotFound: the query had
    /// already completed — either the final reply is already here (no
    /// round trip made) or the server answered with the structured
    /// no-op ERR; the final reply is still delivered through Wait().
    Status Cancel();

    /// Replaces the progress callback (frames already delivered are
    /// gone). Runs on the demux thread.
    void OnProgress(ProgressCallback callback);

    /// The request id on the wire; 0 for a default-constructed handle.
    uint64_t id() const;

   private:
    friend class Client;
    struct State;
    std::shared_ptr<State> state_;
  };

  /// Connects and consumes the greeting line ("ONEX/<v> ready").
  /// IOError when the server is unreachable.
  static Result<Client> Connect(const std::string& host, uint16_t port);
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                const ClientOptions& options);

  // Moves are unchecked: moving a Client requires external
  // synchronization (both objects thread-confined for the duration), so
  // the guarded demux_ transfer cannot race.
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request line (newline appended) and reads the full reply
  /// block. The returned WireResponse may itself be an ERR reply —
  /// that's a successful round trip; IOError only on transport failure.
  /// Works in both modes (in async mode the demux routes untagged
  /// blocks back here in FIFO order).
  Result<WireResponse> Roundtrip(const std::string& line);

  /// Typed convenience: RenderRequestLine + Roundtrip.
  Result<WireResponse> Execute(const QueryRequest& request);

  /// v3 async: tags `request` with a fresh id, sends it, and returns a
  /// handle without waiting. Starts the demux thread on first use — the
  /// session is async from then on.
  Result<Handle> Submit(const QueryRequest& request, SubmitOptions options);
  Result<Handle> Submit(const QueryRequest& request);

  /// v7 replication: sends MANIFEST (the leader cuts a fresh consistent
  /// checkpoint per request) and parses the reply into the typed
  /// manifest. An application-level ERR surfaces as an error status.
  Result<storage::Manifest> FetchManifest();

  /// v7 replication: downloads one artifact of `dataset` (base, delta,
  /// or WAL file — exactly as named by the manifest) and returns its
  /// raw bytes, CRC-verified per chunk and whole. Blocking mode ONLY:
  /// the reply interleaves binary frames the demux thread cannot
  /// route, so this fails once Submit() has started the demux.
  /// NotFound suggests re-fetching the manifest (chain compacted).
  Result<std::string> FetchArtifact(const std::string& dataset,
                                    const std::string& artifact);

  /// The greeting line received at connect time (without newline).
  const std::string& greeting() const { return greeting_; }

  /// How many times the demux re-dialed the upstream (0 in blocking
  /// mode or when auto_reconnect is off). Thread-safe.
  uint64_t reconnects() const;

  void Close();

 private:
  struct Demux;

  Client() = default;

  /// Reads one '\n'-terminated line into *line (CR stripped); shares
  /// the server's SocketLineReader so framing rules cannot diverge.
  Status ReadLine(std::string* line);

  /// Reads blocks and routes them until the socket dies (demux thread
  /// body).
  static void DemuxLoop(std::shared_ptr<Demux> demux);

  /// Demux-thread reconnect: dial again, swap the socket in, and
  /// re-submit every unanswered tagged query. False when reconnecting
  /// is off, the client is closing, or every attempt failed.
  static bool TryReconnect(const std::shared_ptr<Demux>& demux);

  /// Starts the demux thread if not yet running (guarded by
  /// demux_mutex_ — two first-Submits racing must not spawn two
  /// readers over one socket) and returns it.
  Result<std::shared_ptr<Demux>> EnsureDemux();

  /// The current demux, or nullptr (blocking mode). Thread-safe.
  std::shared_ptr<Demux> demux() const;

  int fd_ = -1;
  std::unique_ptr<SocketLineReader> reader_;
  std::string greeting_;
  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  /// Guards the demux_ transition and pointer reads (heap-allocated so
  /// the client stays movable; nullptr only in a moved-from shell).
  /// Client-side ranks sit above every server rank — in-process only in
  /// tests, and client threads never hold server locks.
  mutable std::unique_ptr<Mutex> demux_mutex_ = std::make_unique<Mutex>(
      LockRank::kClientDemuxStart, "client.demux_mutex");
  std::shared_ptr<Demux> demux_ GUARDED_BY(*demux_mutex_);
  /// Atomic: Submit is documented callable from any thread once the
  /// demux runs, and two racing Submits must never share an id.
  std::atomic<uint64_t> next_id_{0};
};

}  // namespace server
}  // namespace onex

#endif  // ONEX_SERVER_CLIENT_H_

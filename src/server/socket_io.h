// Copyright 2026 The ONEX Reproduction Authors.
// Blocking socket I/O shared by the server's session loop and the
// client: a send-everything loop and a buffered newline reader. One
// implementation so framing rules (CR stripping, line-length cap)
// cannot diverge between the two ends of the wire.

#ifndef ONEX_SERVER_SOCKET_IO_H_
#define ONEX_SERVER_SOCKET_IO_H_

#include <cstddef>
#include <string>

namespace onex {
namespace server {

/// Writes the whole buffer; best-effort (a dying peer just ends the
/// session on its next read). Returns false on transport failure.
/// Uses MSG_NOSIGNAL so a closed peer cannot raise SIGPIPE.
bool SendAll(int fd, const std::string& data);

/// Buffered '\n'-delimited reader over a blocking socket. Strips a
/// trailing '\r'; fails on lines longer than `max_line` bytes.
class SocketLineReader {
 public:
  SocketLineReader(int fd, size_t max_line) : fd_(fd), max_line_(max_line) {}

  /// False on EOF, transport error, or an over-long line.
  bool ReadLine(std::string* line);

  /// Reads exactly `n` raw bytes (the FETCH binary chunk path),
  /// draining any bytes already buffered ahead by ReadLine first.
  /// False on EOF or transport error before `n` bytes arrive.
  bool ReadBytes(size_t n, std::string* out);

 private:
  int fd_;
  size_t max_line_;
  std::string buffer_;
};

}  // namespace server
}  // namespace onex

#endif  // ONEX_SERVER_SOCKET_IO_H_

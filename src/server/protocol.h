// Copyright 2026 The ONEX Reproduction Authors.
// The ONEX wire protocol: one newline-delimited text grammar shared by
// the TCP server (src/server/server.h) and the interactive CLI
// (examples/onex_cli.cpp), so a query typed into the shell is byte-for-
// byte the query a remote client sends. This module is pure grammar —
// parsing request lines into the Engine's typed QueryRequest, rendering
// QueryResponse / errors back into reply blocks — and does no I/O.
//
// Framing. Each request is ONE line. Each reply is a BLOCK: a header
// line starting with "OK" or "ERR", zero or more payload lines, and a
// terminator line containing only ".". Payload lines always begin with
// a keyword (match/group/recommend/refine/stats/dataset/...), never
// with ".", so the terminator is unambiguous. On connect the server
// greets with "ONEX/<version> ready".
//
// Request grammar (verbs are case-insensitive):
//   q1 <len|any> <v1,v2,...>            Q1 best match
//   q1k <k> <len|any> <v1,v2,...>       Q1 k most similar
//   q1r <st> <len|any> <v1,v2,...> [bound]   Q1 range; "bound" returns
//                                       Lemma-2 upper bounds, default
//                                       recomputes exact distances
//   q2 <series|all> <len>               Q2 seasonal similarity
//   q3 <S|M|L|any> [len]                Q3 threshold recommendation
//   refine <st'> <len|all>              Algorithm 2.C refinement
//   append <v1,v2,...> [label]          append a series to the bound
//                                       dataset (durable when the
//                                       server runs with --durable:
//                                       WAL'd before the OK)
//   flush                               force the bound dataset to
//                                       stable storage (checkpoint /
//                                       snapshot save)
//   use <dataset>                       bind the session to a dataset
//   list                                catalog contents
//   stats                               server metrics (per-kind
//                                       counters + latency percentiles)
//   metrics                             v5: every counter / histogram /
//                                       gauge in Prometheus text
//                                       exposition format
//   cancel <id>                         v3: cancel the in-flight query
//                                       tagged `id` on this session
//   cancel <session>/<id>               v7: admin form — cancel the
//                                       query tagged `id` on ANOTHER
//                                       session (session numbers come
//                                       from INSPECT); ERR NOT_FOUND
//                                       when no such in-flight query
//   manifest                            v7: the leader's consistent-cut
//                                       manifest (per-dataset artifact
//                                       set + CRCs) in line form
//   fetch <dataset> <file>              v7: stream one manifest-named
//                                       artifact (base / delta / WAL)
//                                       as binary chunks — see below
//   ping / help / quit
//
// Protocol v3 — interactive query control. Any QUERY line may be
// prefixed with `key=value` attribute tokens (everything before the
// first token without '='):
//   id=<n>          tag the request; the session goes MULTIPLEXED for
//                   it: the reply block header carries `id=<n>` and may
//                   arrive out of order relative to other tagged
//                   requests (untagged requests keep strict v2
//                   request/reply ordering)
//   deadline_ms=<n> server aborts the query once the budget elapses and
//                   returns what it confirmed, header-flagged
//                   `partial=1 interrupt=DEADLINE_EXCEEDED`
//   progress=1      (needs id=) stream confirmed partial results early
//                   as PART blocks while the query still runs. PART
//                   frames are TYPED per payload shape (protocol v4):
//                     match-shaped (q1/q1k/q1r, v3-identical bytes):
//                       PART <Kind> id=<n> seq=<k> frac=<f>
//                            snapshot=<0|1> matches=<m>
//                       match ...
//                       .
//                     group-shaped (q2) — the PART GROUP variant:
//                       PART GROUP id=<n> seq=<k> frac=<f>
//                            snapshot=<0|1> groups=<g>
//                       group size=... refs=...
//                       .
//                     recommendation-shaped (q3) — the PART REC variant:
//                       PART REC id=<n> seq=<k> frac=<f> snapshot=<0|1>
//                            rows=<r>
//                       recommend degree=... low=... high=...
//                       .
//                   snapshot=1 means the frame REPLACES earlier frames
//                   (best-so-far queries); 0 means it extends them.
//                   Payload lines are byte-identical to the same rows
//                   in a final OK block, so a client renders partial
//                   and final results with one code path.
//   trace=1         v5: the final OK block carries `trace ...` payload
//                   lines — per-stage timings and the pruning-cascade
//                   breakdown of exactly this query (see
//                   RenderResponse). Absent the attribute, the block is
//                   byte-identical to v4.
// Example:  id=7 deadline_ms=250 progress=1 q1r 0.3 any 0.1,0.5,0.9
// A v2 client is unaffected: lines without attributes parse and answer
// exactly as before, and PART frames are only sent to requests that
// asked for them. A v3 client is unaffected too: every v3 line parses
// and answers byte-identically (match-shaped PART frames keep the v3
// `PART <Kind>` spelling); the GROUP/REC variants only appear on
// progress=1 q2/q3 requests, which v3 accepted but never streamed.
//
// Protocol v7 — replication. MANIFEST renders the same consistent-cut
// data as the on-disk `onex_manifest.json` in the newline grammar
// (RenderManifestBlock / ParseManifestPayload below), so a follower
// needs no JSON parser. FETCH is the one deliberate departure from
// pure line framing: its reply starts with a normal text header
//   OK Fetch dataset=<d> file=<f> bytes=<n> crc32=<c> chunks=<k>
// and is followed by <k> BINARY chunks, each [u32 len][u32 crc32]
// [len payload bytes] (little-endian), then the usual "." terminator
// line. Each chunk is independently CRC'd so a torn transfer is caught
// at the chunk where it happened, and the header CRC covers the whole
// artifact. A client that never sends FETCH never sees a binary byte —
// which is how every v6-and-older session stays byte-identical.
//
// Error replies are a single header line "ERR <CODE> [id=<n>] <message>"
// plus the terminator; codes are WireCode(Status::Code) tokens or the
// protocol-level kOverloadedCode / kNoDatasetCode / kReadOnlyCode.

#ifndef ONEX_SERVER_PROTOCOL_H_
#define ONEX_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/engine.h"
#include "storage/manifest.h"
#include "util/status.h"

namespace onex {
namespace server {

/// Wire-format version, announced in the greeting ("ONEX/7 ready") and
/// bumped on any grammar change (2: APPEND/FLUSH mutation verbs; 3:
/// request ids / CANCEL / DEADLINE_MS / PART progressive frames; 4:
/// typed PART variants — group-shaped q2 and recommendation-shaped q3
/// progress stream as PART GROUP / PART REC frames; 5: observability —
/// the `trace=1` query attribute appends `trace ...` payload lines to
/// the final OK block, and the METRICS verb renders every counter /
/// histogram / gauge in Prometheus text exposition format; 6:
/// operational introspection — the INSPECT verb renders the live
/// in-flight query table plus worker/queue/session/catalog snapshots,
/// and the HEALTH verb answers liveness/readiness probes; 7:
/// replication — the MANIFEST verb renders the leader's consistent-cut
/// manifest in line form, FETCH streams one manifest artifact as
/// CRC-framed binary chunks, and CANCEL grows the cross-session admin
/// form `cancel <session>/<id>`; 8: routing — the `dataset=` query
/// attribute addresses a dataset (or, through onex_router, a shard-set
/// like `sales-*`) per query without rebinding the session). The v8
/// grammar is a strict superset of v7 (itself of v6, of v5, of v4, of
/// v3, of v2) — negotiation is one-sided: the server announces its
/// version, and a client that only speaks an older one simply never
/// sends the newer verbs, so every v7 session's bytes are unchanged.
inline constexpr int kWireVersion = 8;
/// Oldest grammar still accepted verbatim.
inline constexpr int kMinWireVersion = 2;

/// PART-frame shape tokens of the v4 variants. The match-shaped variant
/// keeps the v3 spelling — `PART <QueryKind>` — for byte compatibility;
/// GROUP and REC frames carry these tokens in the kind position.
inline constexpr const char* kPartGroupToken = "GROUP";
inline constexpr const char* kPartRecToken = "REC";

/// Protocol-level error codes with no Status::Code equivalent.
inline constexpr const char* kOverloadedCode = "OVERLOADED";
inline constexpr const char* kNoDatasetCode = "NO_DATASET";
/// v7: mutation verbs (APPEND/FLUSH) refused by a read-only follower.
inline constexpr const char* kReadOnlyCode = "READ_ONLY";

/// Session-control verbs (everything that is neither a QueryRequest nor
/// a mutation). kFlush rides here: it has no operands and, like the
/// other control verbs, is answered inline on the session thread.
/// kCancel (v3) is also inline: it must overtake queued queries, which
/// is the whole point. kMetrics (v5) renders the Prometheus exposition.
/// kInspect / kHealth (v6) answer the operational introspection tier —
/// inline too, precisely so they still work when every worker is wedged
/// (the one moment an operator needs them most).
enum class ControlVerb {
  kUse, kList, kStats, kPing, kHelp, kQuit, kFlush, kCancel, kMetrics,
  kInspect, kHealth, kManifest, kFetch,
};

/// A parsed control line; `argument` is the dataset name for kUse, the
/// decimal request id for kCancel (or `<session>/<id>`, both validated
/// as integers at parse time, for the v7 admin form), and the dataset
/// name for kFetch (whose artifact file name rides in `argument2`).
struct ControlRequest {
  ControlVerb verb = ControlVerb::kPing;
  std::string argument;
  std::string argument2 = {};
};

/// v3+ request attributes: the `key=value` tokens before the verb.
struct RequestAttrs {
  /// Request id; 0 = untagged (v2-style strictly ordered reply).
  uint64_t id = 0;
  /// Query budget in milliseconds; 0 = unbounded.
  uint64_t deadline_ms = 0;
  /// Stream PART frames while the query runs (requires id != 0).
  bool progress = false;
  /// v5: append `trace ...` payload lines (stage timings + cascade
  /// counters) to the final OK block. Render-time only — deliberately
  /// excluded from any(): tracing needs no ExecContext plumbing.
  bool trace = false;
  /// v8: per-query dataset override — this query runs against the named
  /// dataset instead of the session's bound one. Through onex_router
  /// the value may be a shard-set (`<prefix>-*` or `*`), which the
  /// router expands and scatters; a plain server accepts exact names
  /// only. Excluded from any(): addressing needs no ExecContext.
  std::string dataset;

  bool any() const { return id != 0 || deadline_ms != 0 || progress; }
};

/// The APPEND mutation: add one series to the session's bound dataset
/// (Algorithm 1 maintenance over the wire). Not a QueryRequest — it
/// needs mutable, catalog-mediated access, not Engine::Execute.
struct AppendRequest {
  std::vector<double> values;
  int label = 0;
};

/// One parsed request line: session control, a mutation, or an Engine
/// query.
using Request = std::variant<ControlRequest, AppendRequest, QueryRequest>;

// ------------------------------------------------------------- requests

/// Parses one request line. InvalidArgument with a human-readable
/// message on unknown verbs, malformed numbers, or missing operands.
/// v3 attribute tokens (`id=`, `deadline_ms=`, `progress=`) before the
/// verb are delivered through `attrs` when non-null; when `attrs` is
/// null a line carrying attributes is rejected (the caller has no way
/// to honor them, and silently dropping a deadline would be worse).
/// Attributes are only valid on QUERY lines.
Result<Request> ParseRequestLine(const std::string& line,
                                 RequestAttrs* attrs = nullptr);

/// Renders a QueryRequest back into its request line (the client side
/// of the grammar). ParseRequestLine(RenderRequestLine(r)) reproduces
/// `r` exactly: doubles are printed with round-trip precision.
std::string RenderRequestLine(const QueryRequest& request);

/// v3 form: the same line prefixed with the given attribute tokens.
std::string RenderRequestLine(const QueryRequest& request,
                              const RequestAttrs& attrs);

/// Same round-trip guarantee for the APPEND mutation line.
std::string RenderAppendLine(const AppendRequest& request);

/// The `cancel <id>` line.
std::string RenderCancelLine(uint64_t id);

// ------------------------------------------------------------ responses

/// Renders a successful QueryResponse as a full reply block (header,
/// stats line, payload lines, "." terminator), e.g.
///   OK BestMatch matches=1 latency_us=152
///   stats lengths_scanned=1 reps_compared=12 ... lemma2_admitted=0
///   match series=2 start=3 length=8 distance=0.012 group=4 bound=0
///   .
/// Tagged replies (id != 0) add `id=<n>` after the kind token; partial
/// (interrupted) responses add `partial=1 interrupt=<CODE>`.
/// `trace` (the v5 trace=1 attribute) appends the TRACE payload lines
/// after the stats line:
///   trace stage queue_wait_us=... rep_scan_us=... member_scan_us=...
///         knn_us=... refine_us=... exec_us=...
///   trace cascade seen=... kim_pruned=... keogh_pruned=...
///         dtw_evaluated=... early_abandoned=... pruning_ratio=...
/// where seen == kim_pruned + keogh_pruned + dtw_evaluated always, and
/// pruning_ratio = 1 - dtw_evaluated/seen (0 when nothing was seen).
/// With trace=false (every pre-v5 session) the block is byte-identical
/// to v4.
std::string RenderResponse(const QueryResponse& response, uint64_t id = 0,
                           bool trace = false);

/// Renders one match-shaped progressive frame (byte-identical to v3):
///   PART <Kind> id=<n> seq=<k> frac=<f> snapshot=<0|1> matches=<m>
///   match ...
///   .
std::string RenderPartBlock(QueryKind kind, uint64_t id, uint64_t seq,
                            double work_fraction, bool snapshot,
                            std::span<const QueryMatch> matches);

/// Renders one group-shaped (v4 `PART GROUP`) progressive frame; the
/// payload lines are the `group ...` lines of a final Seasonal block.
std::string RenderPartBlock(uint64_t id, uint64_t seq, double work_fraction,
                            bool snapshot,
                            std::span<const std::vector<SubsequenceRef>>
                                groups);

/// Renders one recommendation-shaped (v4 `PART REC`) progressive frame;
/// the payload lines are the `recommend ...` lines of a final block.
std::string RenderPartBlock(uint64_t id, uint64_t seq, double work_fraction,
                            bool snapshot,
                            std::span<const Recommendation> rows);

/// Renders one typed progress event as the PART variant matching its
/// payload shape — what the server's streamer and the CLI both call, so
/// the two surfaces cannot diverge. `kind` is only used by the
/// match-shaped variant (its header carries the query kind).
std::string RenderPartBlock(QueryKind kind, uint64_t id, uint64_t seq,
                            const ProgressEvent& event);

/// Renders an error reply block from a Status ("ERR <CODE> <msg>\n.\n");
/// `id` != 0 inserts the `id=<n>` token between code and message.
std::string RenderError(const Status& status, uint64_t id = 0);

/// Renders an error reply block from an explicit wire code (used for
/// kOverloadedCode / kNoDatasetCode, which have no Status equivalent).
std::string RenderErrorBlock(const std::string& code,
                             const std::string& message, uint64_t id = 0);

/// The connect-time greeting line (newline-terminated).
std::string Greeting();

/// The help payload rendered for the `help` verb (block with header and
/// terminator included).
std::string RenderHelp();

/// v7: renders a consistent-cut manifest as a MANIFEST reply block —
/// the line-grammar twin of storage::RenderManifestJson:
///   OK Manifest version=1 created_unix_s=<t> datasets=<n>
///   dataset name=<d> series=<s> live_series=<l> base=<file>
///           base_bytes=<b> base_crc32=<c> wal=<file> wal_bytes=<b>
///           deltas=<k>
///   delta dataset=<d> k=<i> file=<f> bytes=<b> crc32=<c>
///   .
/// Rendering and parsing live side by side here so the leader's bytes
/// and the follower's reader cannot drift apart.
std::string RenderManifestBlock(const storage::Manifest& manifest);

/// v7: reassembles a Manifest from the payload lines of a MANIFEST
/// reply block (WireResponse::payload). InvalidArgument on missing or
/// malformed fields — a follower must never bootstrap from a manifest
/// it only partially understood.
Result<storage::Manifest> ParseManifestPayload(
    const std::vector<std::string>& payload,
    const std::map<std::string, std::string>& header);

/// Maps a Status code to its wire token (e.g. kNotFound -> "NOT_FOUND").
const char* WireCode(Status::Code code);

// ------------------------------------------------------- client parsing

/// A reply block as seen by a client, split back into its parts.
struct WireResponse {
  bool ok = false;
  /// v3: a PART progressive frame (ok is also true). Final replies have
  /// part == false.
  bool part = false;
  std::string code;     ///< Error code token when !ok.
  std::string message;  ///< Error message remainder when !ok.
  std::string kind;     ///< Header kind token when ok ("BestMatch", ...).
  /// key=value pairs of the header line (matches=, latency_us=, and for
  /// v3 tagged replies id=, partial=, interrupt=, seq=, frac=, ...).
  std::map<std::string, std::string> header;
  /// Payload lines verbatim, terminator excluded.
  std::vector<std::string> payload;

  /// Request id the block answers (0 = untagged). Works for OK, PART,
  /// and ERR headers alike.
  uint64_t id() const;
  /// True when the reply is an interrupted (partial) result.
  bool partial() const;
  /// Shape of a PART frame's payload: kGroup for `PART GROUP`,
  /// kRecommend for `PART REC`, kMatch for the v3-style `PART <Kind>`
  /// frames. Only meaningful when `part` is true.
  PayloadShape part_shape() const;
};

/// Reassembles a reply block from its lines (terminator line optional).
/// InvalidArgument if the first line is none of "OK ...", "ERR ...",
/// "PART ...".
Result<WireResponse> ParseResponseBlock(const std::vector<std::string>& lines);

/// Splits "key=value" tokens of one line into a map (tokens without '='
/// are skipped). Convenience for clients digging into payload lines.
std::map<std::string, std::string> ParseKeyValues(const std::string& line);

// ------------------------------------------------------- shared lexing

/// Parses "0.1,0.2,-3e-1" into values; nullopt on empty or non-numeric
/// input. Shared with the CLI's append command.
std::optional<std::vector<double>> ParseValuesCsv(const std::string& csv);

/// "any"/"all" -> 0 (the engine's every-length sentinel); a number ->
/// itself; anything else -> nullopt so typos don't silently widen a
/// query to every length.
std::optional<size_t> ParseLengthToken(const std::string& token);

}  // namespace server
}  // namespace onex

#endif  // ONEX_SERVER_PROTOCOL_H_

// Copyright 2026 The ONEX Reproduction Authors.
// Serving-layer observability: per-QueryKind request counters and
// latency histograms (p50/p95/p99), plus connection / shed / error
// totals. The server records one sample per wire request (end-to-end:
// queue wait + execution) and renders the whole picture through the
// STATS protocol verb, which is how operators — and the throughput
// bench — watch the serving layer without attaching a profiler.
//
// The histogram is log-bucketed (multiplicative steps from 1µs to
// ~100s), so percentiles are approximate: each reported value is
// linearly interpolated within the bucket containing that quantile, so
// the worst case is half a bucket's width (~13% relative; the old
// upper-edge rule biased every estimate high by up to the full ~26%
// bucket resolution). Counters are exact.
//
// Two render surfaces share the same registry: the line-oriented STATS
// payload (Render) and Prometheus text exposition format
// (RenderPrometheus), which additionally takes a point-in-time gauge
// snapshot the server assembles — the metrics mutex is a leaf and must
// never reach into the queue, catalog, or storage locks itself.

#ifndef ONEX_SERVER_METRICS_H_
#define ONEX_SERVER_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "api/engine.h"
#include "distance/cascade.h"
#include "util/mutex.h"
#include "util/process_stats.h"
#include "util/thread_annotations.h"

namespace onex {
namespace server {

/// Log-bucketed latency histogram. Not thread-safe on its own;
/// ServerMetrics serializes access.
class LatencyHistogram {
 public:
  /// Buckets span [1µs, ~100s) in multiplicative steps of 10^(1/10)
  /// (~1.26x): 10 buckets per decade over 8 decades. Public so the
  /// Prometheus renderer and the grammar tests can walk the buckets.
  static constexpr size_t kBuckets = 81;
  static constexpr double kFirstUpperBound = 1e-6;

  /// Upper bound of bucket `i` in seconds.
  static double UpperBound(size_t i);

  void Record(double seconds);

  /// Approximate percentile in seconds, p in [0, 100]; 0 when empty.
  /// Linearly interpolates within the bucket holding the p-quantile
  /// (the bucket's lower edge is the previous bucket's upper bound, 0
  /// for the first), so a single-sample histogram reports mid-bucket at
  /// p=50 and the exact upper edge only at p=100.
  double Percentile(double p) const;

  uint64_t count() const { return count_; }
  double total_seconds() const { return total_seconds_; }
  /// Samples in bucket `i` (not cumulative).
  uint64_t bucket_count(size_t i) const { return buckets_[i]; }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double total_seconds_ = 0.0;
};

/// Point-in-time gauges rendered by RenderPrometheus. Assembled by the
/// SERVER at render time — queue depth under the queue mutex, catalog
/// and WAL figures from the catalog — never by ServerMetrics itself:
/// the metrics mutex is a leaf and cannot reach into those locks.
struct GaugeSnapshot {
  uint64_t queue_depth = 0;       ///< Jobs admitted, not yet picked up.
  uint64_t workers_busy = 0;      ///< Workers executing a job right now.
  uint64_t workers_total = 0;     ///< Worker pool size.
  uint64_t catalog_resident = 0;  ///< Engines resident in memory.
  uint64_t catalog_dirty = 0;     ///< Resident engines with unflushed state.
  uint64_t wal_bytes = 0;         ///< Live WAL bytes since last checkpoint.
  uint64_t wal_records = 0;       ///< Live WAL records since last checkpoint.
  /// Seconds since the most recent completed checkpoint across all
  /// durable engines; negative when none has ever completed.
  double checkpoint_age_seconds = -1.0;
  double checkpoint_last_duration_seconds = 0.0;
  /// Workers the stall watchdog currently flags (running past
  /// max(3x deadline budget, --stall-ms)). Cleared as stalled jobs
  /// finish; the cumulative count is onex_watchdog_stalls_total.
  uint64_t stalled_workers = 0;
  /// True when any durable engine's last WAL write failed and has not
  /// succeeded since (the HEALTH readiness gate; surfaced here so
  /// dashboards see it without a wire probe).
  bool wal_write_failed = false;
  /// v7 replication gauges, always emitted so dashboards and the
  /// metrics lint see one stable family set on leaders and followers
  /// alike. Leader side: bytes of the largest most-recent incremental
  /// checkpoint delta and the longest live delta chain across durable
  /// engines (both 0 before the first delta checkpoint).
  uint64_t checkpoint_delta_bytes = 0;
  uint64_t delta_chain_length = 0;
  /// v8 delta GC: cumulative bytes of retired checkpoint artifacts
  /// unlinked after the grace period, and retired files still waiting
  /// inside it (both 0 when GC is off).
  uint64_t delta_gc_reclaimed_bytes = 0;
  uint64_t delta_gc_pending_artifacts = 0;
  /// Follower side: seconds since the last successful leader sync
  /// (negative = not following / never synced) and total series the
  /// replica has applied (0 on leaders).
  double replica_lag_seconds = -1.0;
  uint64_t replica_last_applied_seq = 0;
  /// Process-level resource gauges, sampled by the server at render
  /// time (one /proc read per METRICS call).
  ProcessStats process;
};

/// Thread-safe metrics registry for one Server instance.
class ServerMetrics {
 public:
  /// One answered query of `kind`: end-to-end latency and whether the
  /// engine reported an error (errors still count one latency sample).
  void RecordQuery(QueryKind kind, double seconds, bool ok);

  /// Observability split recorded alongside RecordQuery (one lock, one
  /// call per answered query): time spent queued before a worker picked
  /// the job up vs time executing, plus the query's pruning-cascade
  /// counters rolled into the server-wide totals.
  void RecordQueryBreakdown(double queue_wait_seconds, double exec_seconds,
                            const CascadeStats& cascade);

  /// A query whose end-to-end latency crossed --slow-query-ms.
  void RecordSlowQuery();

  void RecordConnection();
  void RecordOverloaded();
  /// A line that failed to parse or arrived with no dataset bound.
  void RecordBadRequest();
  /// One APPEND / FLUSH mutation (errors still count the attempt).
  void RecordAppend(bool ok);
  void RecordFlush(bool ok);

  // ---- v3 interactive-control counters.

  /// A query aborted by its CancelToken (client CANCEL or disconnect).
  void RecordCancelled();
  /// A query aborted by its DEADLINE_MS budget — whether it fired
  /// mid-execution or the queue sweep shed it before a worker ran it.
  void RecordDeadlineExceeded();
  /// A reply that carried partial (interrupted) results.
  void RecordPartialResult();
  /// A deadline-carrying job that COMPLETED past its deadline — queue
  /// sheds and late finishers alike. The observable the EDF worker
  /// dispatch exists to push down (deadline_exceeded counts aborts;
  /// this counts lateness).
  void RecordDeadlineMiss();

  /// The stall watchdog flagged a worker (once per stalled job). The
  /// CURRENT stalled count is a gauge in GaugeSnapshot; this is the
  /// monotonic lifetime total (onex_watchdog_stalls_total).
  void RecordWatchdogStall();

  /// Renders the STATS reply payload lines (no OK header, no "."):
  ///   server connections=3 requests=120 overloaded=2 bad_requests=1
  ///          appends=4 append_errors=0 flushes=1 flush_errors=0
  ///          cancelled=2 deadline_exceeded=1 partial_results=3
  ///          deadline_miss=1
  ///   kind name=BestMatch requests=40 errors=0 p50_us=210 p95_us=800
  ///        p99_us=1500 p999_us=1800 mean_us=260
  /// Kinds with zero requests are omitted.
  std::string Render() const;

  /// Prometheus text exposition format: every counter above, the
  /// per-kind latency summaries (quantile labels + _sum/_count), the
  /// queue-wait vs exec-time histograms (cumulative _bucket{le=...}
  /// lines for non-empty buckets plus le="+Inf"), the cascade totals,
  /// and the caller-assembled gauges. scripts/check_metrics.sh lints
  /// exactly this output.
  std::string RenderPrometheus(const GaugeSnapshot& gauges) const;

  uint64_t requests() const;
  uint64_t overloaded() const;
  uint64_t cancelled() const;
  uint64_t deadline_exceeded() const;
  uint64_t partial_results() const;
  uint64_t deadline_miss() const;
  uint64_t watchdog_stalls() const;

 private:
  struct KindMetrics {
    uint64_t requests = 0;
    uint64_t errors = 0;
    LatencyHistogram latency;
  };

  static constexpr size_t kNumKinds = std::variant_size_v<QueryRequest>;
  static_assert(kNumKinds ==
                    static_cast<size_t>(QueryKind::kRefineThreshold) + 1,
                "QueryKind and QueryRequest diverged; RecordQuery indexes "
                "kinds_ by QueryKind");

  /// Leaf rank: metrics are recorded from everywhere (workers, session
  /// threads, the queue sweep) and call nothing that locks.
  mutable Mutex mutex_{LockRank::kMetrics, "metrics.mutex"};
  std::array<KindMetrics, kNumKinds> kinds_ GUARDED_BY(mutex_);
  uint64_t connections_ GUARDED_BY(mutex_) = 0;
  uint64_t overloaded_ GUARDED_BY(mutex_) = 0;
  uint64_t bad_requests_ GUARDED_BY(mutex_) = 0;
  uint64_t appends_ GUARDED_BY(mutex_) = 0;
  uint64_t append_errors_ GUARDED_BY(mutex_) = 0;
  uint64_t flushes_ GUARDED_BY(mutex_) = 0;
  uint64_t flush_errors_ GUARDED_BY(mutex_) = 0;
  uint64_t cancelled_ GUARDED_BY(mutex_) = 0;
  uint64_t deadline_exceeded_ GUARDED_BY(mutex_) = 0;
  uint64_t partial_results_ GUARDED_BY(mutex_) = 0;
  uint64_t deadline_miss_ GUARDED_BY(mutex_) = 0;
  uint64_t slow_queries_ GUARDED_BY(mutex_) = 0;
  uint64_t watchdog_stalls_ GUARDED_BY(mutex_) = 0;
  /// End-to-end latency split: queued-before-pickup vs executing.
  LatencyHistogram queue_wait_ GUARDED_BY(mutex_);
  LatencyHistogram exec_ GUARDED_BY(mutex_);
  /// Server-lifetime pruning-cascade totals (per-query counters from
  /// QueryStats roll up here).
  CascadeStats cascade_ GUARDED_BY(mutex_);
};

}  // namespace server
}  // namespace onex

#endif  // ONEX_SERVER_METRICS_H_

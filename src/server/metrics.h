// Copyright 2026 The ONEX Reproduction Authors.
// Serving-layer observability: per-QueryKind request counters and
// latency histograms (p50/p95/p99), plus connection / shed / error
// totals. The server records one sample per wire request (end-to-end:
// queue wait + execution) and renders the whole picture through the
// STATS protocol verb, which is how operators — and the throughput
// bench — watch the serving layer without attaching a profiler.
//
// The histogram is log-bucketed (multiplicative steps from 1µs to
// ~100s), so percentiles are approximate: each reported value is the
// upper edge of the bucket containing that quantile, i.e. exact within
// one bucket's resolution (~26% relative). Counters are exact.

#ifndef ONEX_SERVER_METRICS_H_
#define ONEX_SERVER_METRICS_H_

#include <array>
#include <cstdint>
#include <string>
#include <variant>

#include "api/engine.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace onex {
namespace server {

/// Log-bucketed latency histogram. Not thread-safe on its own;
/// ServerMetrics serializes access.
class LatencyHistogram {
 public:
  void Record(double seconds);

  /// Approximate percentile in seconds, p in [0, 100]; 0 when empty.
  /// Returns the upper edge of the bucket holding the p-quantile.
  double Percentile(double p) const;

  uint64_t count() const { return count_; }
  double total_seconds() const { return total_seconds_; }

 private:
  /// Buckets span [1µs, ~100s) in multiplicative steps of 10^(1/10)
  /// (~1.26x): 10 buckets per decade over 8 decades.
  static constexpr size_t kBuckets = 81;
  static constexpr double kFirstUpperBound = 1e-6;

  /// Upper bound of bucket `i` in seconds.
  static double UpperBound(size_t i);

  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double total_seconds_ = 0.0;
};

/// Thread-safe metrics registry for one Server instance.
class ServerMetrics {
 public:
  /// One answered query of `kind`: end-to-end latency and whether the
  /// engine reported an error (errors still count one latency sample).
  void RecordQuery(QueryKind kind, double seconds, bool ok);

  void RecordConnection();
  void RecordOverloaded();
  /// A line that failed to parse or arrived with no dataset bound.
  void RecordBadRequest();
  /// One APPEND / FLUSH mutation (errors still count the attempt).
  void RecordAppend(bool ok);
  void RecordFlush(bool ok);

  // ---- v3 interactive-control counters.

  /// A query aborted by its CancelToken (client CANCEL or disconnect).
  void RecordCancelled();
  /// A query aborted by its DEADLINE_MS budget — whether it fired
  /// mid-execution or the queue sweep shed it before a worker ran it.
  void RecordDeadlineExceeded();
  /// A reply that carried partial (interrupted) results.
  void RecordPartialResult();
  /// A deadline-carrying job that COMPLETED past its deadline — queue
  /// sheds and late finishers alike. The observable the EDF worker
  /// dispatch exists to push down (deadline_exceeded counts aborts;
  /// this counts lateness).
  void RecordDeadlineMiss();

  /// Renders the STATS reply payload lines (no OK header, no "."):
  ///   server connections=3 requests=120 overloaded=2 bad_requests=1
  ///          appends=4 append_errors=0 flushes=1 flush_errors=0
  ///          cancelled=2 deadline_exceeded=1 partial_results=3
  ///          deadline_miss=1
  ///   kind name=BestMatch requests=40 errors=0 p50_us=210 p95_us=800
  ///        p99_us=1500 mean_us=260
  /// Kinds with zero requests are omitted.
  std::string Render() const;

  uint64_t requests() const;
  uint64_t overloaded() const;
  uint64_t cancelled() const;
  uint64_t deadline_exceeded() const;
  uint64_t partial_results() const;
  uint64_t deadline_miss() const;

 private:
  struct KindMetrics {
    uint64_t requests = 0;
    uint64_t errors = 0;
    LatencyHistogram latency;
  };

  static constexpr size_t kNumKinds = std::variant_size_v<QueryRequest>;
  static_assert(kNumKinds ==
                    static_cast<size_t>(QueryKind::kRefineThreshold) + 1,
                "QueryKind and QueryRequest diverged; RecordQuery indexes "
                "kinds_ by QueryKind");

  /// Leaf rank: metrics are recorded from everywhere (workers, session
  /// threads, the queue sweep) and call nothing that locks.
  mutable Mutex mutex_{LockRank::kMetrics, "metrics.mutex"};
  std::array<KindMetrics, kNumKinds> kinds_ GUARDED_BY(mutex_);
  uint64_t connections_ GUARDED_BY(mutex_) = 0;
  uint64_t overloaded_ GUARDED_BY(mutex_) = 0;
  uint64_t bad_requests_ GUARDED_BY(mutex_) = 0;
  uint64_t appends_ GUARDED_BY(mutex_) = 0;
  uint64_t append_errors_ GUARDED_BY(mutex_) = 0;
  uint64_t flushes_ GUARDED_BY(mutex_) = 0;
  uint64_t flush_errors_ GUARDED_BY(mutex_) = 0;
  uint64_t cancelled_ GUARDED_BY(mutex_) = 0;
  uint64_t deadline_exceeded_ GUARDED_BY(mutex_) = 0;
  uint64_t partial_results_ GUARDED_BY(mutex_) = 0;
  uint64_t deadline_miss_ GUARDED_BY(mutex_) = 0;
};

}  // namespace server
}  // namespace onex

#endif  // ONEX_SERVER_METRICS_H_

// Copyright 2026 The ONEX Reproduction Authors.
// The ONEX TCP server: many concurrent exploration sessions over many
// datasets, speaking the newline protocol of server/protocol.h. This is
// the serving layer the ROADMAP's scaling PRs (sharding, caching,
// replication) plug into; the unit it multiplexes is the onex::Engine
// session facade, resolved per session through the server/catalog.h
// registry.
//
// Architecture (one Server instance):
//
//   accept thread ── one lightweight session thread per connection
//        │            (socket I/O + protocol parsing only)
//        │                     │  query lines become jobs
//        ▼                     ▼
//   listen socket      bounded job queue ──► fixed worker pool
//                      (sheds load with an     (num_workers threads run
//                       explicit OVERLOADED     Engine::Execute — the
//                       reply when full)        only CPU-heavy work)
//
// UNTAGGED (v2) queries: the session thread blocks on its job's future
// and writes the reply itself, so replies stay strictly ordered per
// connection. TAGGED (v3, `id=<n>`) queries multiplex: the session
// thread submits the job and immediately returns to reading — CANCEL
// lines can overtake running queries — while the worker that finishes
// the job writes its reply (and any PART progress frames) directly,
// serialized by a per-session write mutex. Workers dispatch EARLIEST-
// DEADLINE-FIRST: the queued job with the nearest DEADLINE_MS runs
// next, and deadline-less jobs rank by admission time plus a fixed
// implicit budget — an aging rank, so they yield briefly to urgent
// work but can never be starved. This cuts deadline-miss rates under
// load — watch the `deadline_miss` STATS counter. The worker pool
// caps CPU concurrency at `num_workers`
// no matter how many sessions are connected, and the queue bound
// converts overload into shedding:
// first, queued jobs whose DEADLINE_MS already passed are completed
// with DEADLINE_EXCEEDED; then the oldest over-deadline RUNNING query
// is cancelled to free its worker; only when neither applies does the
// new query get `ERR OVERLOADED`. Control verbs (use/list/stats/ping/
// help/quit/cancel) are answered inline on the session thread — they
// never queue.
//
// Shutdown: Stop() closes the listener, shuts down every session
// socket, drains the job queue (every submitted job still gets its
// completion run), then joins all threads. Safe to call from any
// thread; the destructor calls it. A disconnecting session cancels its
// in-flight tagged queries and waits for their completions before
// closing the socket, so workers never write to a dead fd.

#ifndef ONEX_SERVER_SERVER_H_
#define ONEX_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "core/inflight.h"
#include "server/catalog.h"
#include "server/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace onex {
namespace server {

/// What a follower's sync loop reports into the serving layer: the
/// HEALTH replica_lag gate and the onex_replica_* gauges read this
/// through ServerOptions::replica_status (unset on leaders).
struct ReplicaStatus {
  /// Seconds since the last successful sync round against the leader;
  /// negative = never synced yet (a follower that has not bootstrapped
  /// is not ready).
  double lag_seconds = -1.0;
  /// Total series applied locally (the replica's replication position).
  uint64_t last_applied_seq = 0;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via Server::port().
  uint16_t port = 0;
  /// Worker threads executing queries (CPU concurrency cap).
  size_t num_workers = 4;
  /// Max queries WAITING for a worker (in-flight ones excluded) before
  /// new queries are shed with ERR OVERLOADED. Clamped to >= 1.
  size_t max_queue = 64;
  /// When set, every session starts bound to this dataset (as if the
  /// client's first line were "use <default_dataset>").
  std::string default_dataset;
  /// Lines longer than this are a protocol error and close the session.
  size_t max_line_bytes = 1 << 20;
  /// Queries whose total latency (queue wait + execution) meets or
  /// exceeds this many milliseconds are written to the slow-query log —
  /// one structured JSON line each (kind, dataset, stage breakdown,
  /// pruning ratio, disposition) through util/logging's JSON sink.
  /// 0 disables the log.
  uint64_t slow_query_ms = 0;

  /// Stall watchdog: a job executing longer than
  /// max(3 x its deadline budget, stall_ms) is flagged as stalled —
  /// one WARN log line with its INSPECT row, the
  /// onex_watchdog_stalls_total counter, and a failed HEALTH workers
  /// check until the job finishes. 0 disables the watchdog thread
  /// entirely. Deadline-less jobs use stall_ms alone.
  uint64_t stall_ms = 10000;
  /// How often the watchdog scans the running set. Tests shrink this.
  uint64_t watchdog_period_ms = 1000;
  /// HEALTH readiness degrades once queue depth reaches this fraction
  /// of max_queue — deliberately BEFORE the queue starts shedding with
  /// OVERLOADED, so a router can drain the node while it still answers.
  double ready_queue_ratio = 0.8;
  /// HEALTH readiness fails when the newest completed checkpoint across
  /// durable engines is older than this many seconds (0 = no budget;
  /// a server that has never checkpointed is not penalized).
  double checkpoint_age_budget_s = 0.0;
  /// Follower mode (v7): set by onex_replica so HEALTH grows a
  /// replica_lag readiness gate and METRICS report the replica gauges.
  /// Unset on leaders — the gate is absent, not vacuously green.
  std::function<ReplicaStatus()> replica_status;
  /// HEALTH replica_lag fails once the reported lag exceeds this many
  /// seconds (0 = lag never fails readiness; a follower that has NEVER
  /// synced still fails — serving an unbootstrapped replica is wrong
  /// at any budget).
  double replica_lag_budget_s = 30.0;

  /// Test instrumentation (leave unset in production): called by a
  /// worker right before executing a job, and after a job is enqueued
  /// (with the new queue depth). Both may be called concurrently.
  std::function<void()> on_job_start;
  std::function<void(size_t)> on_enqueue;
};

class Server {
 public:
  /// Binds, listens, and spins up the worker pool and accept thread.
  /// IOError if the socket cannot be bound.
  static Result<std::unique_ptr<Server>> Start(
      ServerOptions options, std::shared_ptr<Catalog> catalog);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, disconnects sessions, drains the queue, joins all
  /// threads. Idempotent.
  void Stop();

  /// The bound TCP port (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  const ServerMetrics& metrics() const { return metrics_; }
  const Catalog& catalog() const { return *catalog_; }

  /// Per-session state shared between the session thread and the
  /// workers completing its tagged jobs. Defined in server.cc; public
  /// only so the PART-frame streamer there can hold one.
  struct Session;

 private:
  /// One queued query: the session's resolved engine travels with the
  /// job, so a catalog eviction mid-flight cannot invalidate it.
  struct Job {
    QueryRequest request;
    std::shared_ptr<const Engine> engine;
    /// Execution context (deadline / cancel token / progress sink);
    /// nullptr = context-free v2 path, which pays no checking overhead.
    std::shared_ptr<const ExecContext> ctx;
    /// Mirror of ctx->deadline, read by the queue-shed sweep.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// EDF dispatch rank, set at admission: the real deadline, or
    /// admission time + kDeadlineLessRankBudget for deadline-less jobs
    /// — an implicit urgency that AGES, so a deadline-less job is
    /// overtaken for at most the budget and can never be starved by a
    /// stream of deadline-carrying arrivals (each of those ranks by a
    /// deadline in the future, which an aged rank always beats).
    std::chrono::steady_clock::time_point rank;
    /// Admission order, for "oldest over-deadline" selection.
    uint64_t seq = 0;
    /// Admission instant; the dequeuing worker turns it into the
    /// query's queue_wait stage timing (and the queue-wait histogram).
    std::chrono::steady_clock::time_point admitted;
    /// Introspection identity (v6): the wire id (0 = untagged), the
    /// owning session's fd, the bound dataset, and the query kind
    /// travel with the job so INSPECT and the watchdog can name it.
    uint64_t wire_id = 0;
    int session_fd = -1;
    std::string dataset;
    QueryKind kind = QueryKind::kBestMatch;
    /// Completion: fulfils the session thread's future (untagged) or
    /// renders and writes the tagged reply. Runs on the worker that
    /// executed the job, or inline in Submit for queue-swept sheds.
    std::function<void(Result<QueryResponse>)> done;
  };

  /// What one worker is executing right now (guarded by queue_mutex_),
  /// so an overloaded Submit can cancel the oldest over-deadline query
  /// and the stall watchdog can flag jobs running past their budget.
  struct RunningJob {
    bool active = false;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    CancelToken token;
    uint64_t seq = 0;
    /// When the worker picked the job up (stall clock starts here, not
    /// at admission — queue wait is the queue's fault, not the job's).
    std::chrono::steady_clock::time_point started;
    std::chrono::steady_clock::time_point admitted;
    uint64_t wire_id = 0;
    QueryKind kind = QueryKind::kBestMatch;
    /// Watchdog latch: each stalled job is flagged (and counted) once.
    bool stalled = false;
    /// The job's registry slot, for the watchdog to set the probe's
    /// stalled flag. Nulled (under queue_mutex_) before release.
    InflightProbe* probe = nullptr;
  };

  Server(ServerOptions options, std::shared_ptr<Catalog> catalog);

  Status Listen();
  void AcceptLoop();
  void SessionLoop(int fd);
  void WorkerLoop(size_t index);
  /// Periodically flags running jobs past their stall budget (see
  /// ServerOptions::stall_ms). Started only when stall_ms > 0.
  void WatchdogLoop();

  /// Assembles the INSPECT reply: live query rows from the in-flight
  /// registry, queued jobs, worker/session/catalog snapshots. Inline on
  /// the session thread — it must answer even when workers are wedged.
  std::string RenderInspect();
  /// Assembles the HEALTH reply: liveness (trivially 1 when answering)
  /// and readiness with one `check` row per gate.
  std::string RenderHealth();
  /// Assembles the FETCH reply — text header, CRC-framed binary chunks,
  /// "." terminator — as ONE buffer, so the session write mutex keeps a
  /// worker's tagged reply from interleaving mid-artifact. Validates
  /// that `artifact` names one of `dataset`'s files (base / delta /
  /// WAL) before touching the disk.
  std::string RenderFetch(const std::string& dataset,
                          const std::string& artifact);

  /// Enqueues a job unless the queue is at capacity or the server is
  /// stopping; false means "shed this request". Before shedding, the
  /// deadline sweep runs (see the file comment).
  bool Submit(Job job);

  /// Folds one query outcome into the metrics: per-kind latency, the
  /// v3 cancelled / deadline-exceeded / partial-result counters, and
  /// (successful queries) the queue-wait/exec histograms + cascade
  /// counters. Queries at or past `slow_query_ms` additionally emit one
  /// structured slow-query JSON log line, tagged with `dataset`.
  void RecordOutcome(QueryKind kind, const std::string& dataset,
                     double seconds, const Result<QueryResponse>& result);

  ServerOptions options_;
  std::shared_ptr<Catalog> catalog_;
  ServerMetrics metrics_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  /// One tracked session thread; `done` flips after SessionLoop returns
  /// so the accept loop can reap (join + erase) finished sessions —
  /// otherwise every past connection would retain an un-reaped joinable
  /// pthread (descriptor + stack) until Stop().
  struct SessionThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  /// Joins and erases finished session threads. Caller holds
  /// sessions_mutex_; joins are instant because `done` flips after all
  /// locking in SessionLoop.
  void ReapFinishedSessionsLocked() REQUIRES(sessions_mutex_);

  /// Live session sockets, for shutdown; still-running threads are
  /// joined in Stop(). Outermost rank: the accept loop and Stop() hold
  /// it while touching per-session state, and a disconnecting session
  /// takes it (alone) to erase its fd.
  Mutex sessions_mutex_{LockRank::kServerSessions, "server.sessions_mutex"};
  std::set<int> session_fds_ GUARDED_BY(sessions_mutex_);
  std::vector<SessionThread> session_threads_ GUARDED_BY(sessions_mutex_);
  /// v7 admin-cancel routing: fd -> live session, so one session can
  /// cancel a query in flight on ANOTHER (`cancel <session>/<id>`; the
  /// session numbers are the fds INSPECT prints). weak_ptr: the map
  /// must never extend a session's life past its disconnect.
  std::map<int, std::weak_ptr<Session>> sessions_by_fd_
      GUARDED_BY(sessions_mutex_);

  Mutex queue_mutex_{LockRank::kServerQueue, "server.queue_mutex"};
  CondVar queue_cv_;
  std::deque<Job> queue_ GUARDED_BY(queue_mutex_);
  /// Set by Stop(); workers finish the queue.
  bool draining_ GUARDED_BY(queue_mutex_) = false;
  /// Admission counter.
  uint64_t job_seq_ GUARDED_BY(queue_mutex_) = 0;
  /// One slot per worker (sized once in Start, before workers exist).
  std::vector<RunningJob> running_ GUARDED_BY(queue_mutex_);
  std::vector<std::thread> workers_;

  /// Stall-watchdog plumbing. The watchdog mutex guards only its own
  /// stop flag / cv wait; the scan itself runs under queue_mutex_ with
  /// the watchdog mutex released — the two are never nested.
  Mutex watchdog_mutex_{LockRank::kServerWatchdog, "server.watchdog_mutex"};
  CondVar watchdog_cv_;
  bool watchdog_stop_ GUARDED_BY(watchdog_mutex_) = false;
  std::thread watchdog_;
};

}  // namespace server
}  // namespace onex

#endif  // ONEX_SERVER_SERVER_H_
